"""Reactive-NUCA data placement: page classification + home-slice mapping."""

from repro.rnuca.page_table import PageKind, RNucaPageTable
from repro.rnuca.placement import RNucaPlacement

__all__ = ["PageKind", "RNucaPageTable", "RNucaPlacement"]
