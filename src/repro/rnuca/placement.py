"""R-NUCA home-slice placement.

For a 64-core processor R-NUCA places (Section 2.1):

* **private data** at the L2 slice of the owning (requesting) core - local
  L2 access, no network traversal;
* **shared data** at a single slice determined by a hash of the line
  address - one fixed home for the whole chip;
* **instructions** replicated at one slice per cluster of 4 cores using
  rotational interleaving - each core finds instruction lines within its
  2x2 mesh neighbourhood.
"""

from __future__ import annotations

from repro.common import addr as addrmod
from repro.common.params import ArchConfig
from repro.rnuca.page_table import PageKind, RNucaPageTable

#: Knuth multiplicative hash constant - spreads consecutive lines across
#: slices without the striding artifacts of a plain modulo.
_HASH_MULTIPLIER = 2654435761


class RNucaPlacement:
    """Computes the home L2 slice for every access."""

    def __init__(self, arch: ArchConfig, page_table: RNucaPageTable | None = None) -> None:
        self.arch = arch
        self.page_table = page_table if page_table is not None else RNucaPageTable()
        self._cluster_tiles_cache: dict[int, tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    def shared_home(self, line: int) -> int:
        """Fixed chip-wide home slice for a shared line (address hash)."""
        return ((line * _HASH_MULTIPLIER) >> 16) % self.arch.num_cores

    def data_home(self, line: int, core: int) -> tuple[int, int | None]:
        """Home slice for a data access.

        Returns ``(home_tile, flush_owner)``; ``flush_owner`` is the previous
        private owner's tile when this access just reclassified the page
        shared (its slice must be flushed), else None.
        """
        page = addrmod.page_of(line << addrmod.LINE_BITS, self.arch.page_size)
        kind, owner, previous_owner = self.page_table.classify_data(page, core)
        if kind is PageKind.PRIVATE:
            return owner, None
        return self.shared_home(line), previous_owner

    # ------------------------------------------------------------------
    def shared_word_home(self, line: int, word: int) -> int:
        """Word-interleaved home slice for a shared word (the DLS LLC).

        DLS distributes the shared last-level cache at *word* granularity:
        consecutive words stripe round-robin across consecutive slices, so
        a line's 8 words spread over 8 slices and a streaming scan loads
        every slice evenly instead of hammering one line home.
        """
        return (line * self.arch.words_per_line + word) % self.arch.num_cores

    def data_word_home(self, line: int, word: int, core: int) -> tuple[int, int | None]:
        """Per-word home for a DLS data access (same contract as
        :meth:`data_home`: private pages stay at the owner's slice, shared
        words interleave, and ``flush_owner`` reports a private -> shared
        transition that requires flushing the old owner's slice)."""
        page = addrmod.page_of(line << addrmod.LINE_BITS, self.arch.page_size)
        kind, owner, previous_owner = self.page_table.classify_data(page, core)
        if kind is PageKind.PRIVATE:
            return owner, None
        return self.shared_word_home(line, word), previous_owner

    # ------------------------------------------------------------------
    def cluster_tiles(self, core: int) -> tuple[int, ...]:
        """Tiles of ``core``'s instruction-replication cluster (2x2 block)."""
        cached = self._cluster_tiles_cache.get(core)
        if cached is not None:
            return cached
        width = self.arch.mesh_width
        side = int(self.arch.instruction_cluster_size**0.5)
        if side * side != self.arch.instruction_cluster_size:
            # Non-square cluster: fall back to consecutive tile ids.
            base = core - core % self.arch.instruction_cluster_size
            tiles = tuple(range(base, base + self.arch.instruction_cluster_size))
        else:
            x, y = core % width, core // width
            bx, by = x - x % side, y - y % side
            tiles = tuple(
                (by + dy) * width + (bx + dx) for dy in range(side) for dx in range(side)
            )
        self._cluster_tiles_cache[core] = tiles
        return tiles

    def instruction_home(self, line: int, core: int) -> int:
        """Rotationally-interleaved instruction home within the cluster.

        Consecutive instruction lines rotate over the cluster's 4 slices, so
        each slice replicates 1/4 of the code and every fetch stays within
        one hop of the requester.
        """
        page = addrmod.page_of(line << addrmod.LINE_BITS, self.arch.page_size)
        self.page_table.classify_instruction(page)
        tiles = self.cluster_tiles(core)
        return tiles[line % len(tiles)]
