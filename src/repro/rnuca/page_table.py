"""OS page-table emulation for R-NUCA data classification.

Reactive-NUCA (Hardavellas et al., ISCA 2009) classifies data as private or
shared *at page granularity using OS page tables* (Section 2.1 of the paper):

* a data page is **private** to the first core that touches it;
* when a second core touches the page it is reclassified **shared** for the
  rest of the execution (transitions are one-way in R-NUCA);
* **instruction** pages are classified on first fetch and replicated per
  cluster of 4 cores.

The transition private -> shared requires flushing the page's lines from the
old home slice (placement changes); the protocol engine performs the flush
when ``classify_data`` reports a transition.
"""

from __future__ import annotations

import enum

from repro.common.errors import SimulationError


class PageKind(enum.IntEnum):
    PRIVATE = 0
    SHARED = 1
    INSTRUCTION = 2


class RNucaPageTable:
    """First-touch private/shared page classification."""

    def __init__(self) -> None:
        # page -> (kind, owner core for PRIVATE pages, else -1)
        self._pages: dict[int, tuple[PageKind, int]] = {}
        # Statistics.
        self.private_pages = 0
        self.shared_pages = 0
        self.instruction_pages = 0
        self.transitions = 0

    # ------------------------------------------------------------------
    def classify_data(self, page: int, core: int) -> tuple[PageKind, int, int | None]:
        """Classify a data access by ``core`` to ``page``.

        Returns ``(kind, owner, previous_owner)`` where ``previous_owner`` is
        the old private owner when this access just triggered a
        private -> shared transition (the caller must flush that slice), and
        None otherwise.
        """
        entry = self._pages.get(page)
        if entry is None:
            self._pages[page] = (PageKind.PRIVATE, core)
            self.private_pages += 1
            return PageKind.PRIVATE, core, None
        kind, owner = entry
        if kind is PageKind.INSTRUCTION:
            raise SimulationError(
                f"page {page:#x} classified as instruction but accessed as data"
            )
        if kind is PageKind.SHARED or owner == core:
            return kind, owner, None
        # Second core touched a private page: reclassify shared, one-way.
        self._pages[page] = (PageKind.SHARED, -1)
        self.private_pages -= 1
        self.shared_pages += 1
        self.transitions += 1
        return PageKind.SHARED, -1, owner

    def classify_instruction(self, page: int) -> PageKind:
        """Mark/confirm ``page`` as an instruction page."""
        entry = self._pages.get(page)
        if entry is None:
            self._pages[page] = (PageKind.INSTRUCTION, -1)
            self.instruction_pages += 1
            return PageKind.INSTRUCTION
        kind, _ = entry
        if kind is not PageKind.INSTRUCTION:
            raise SimulationError(
                f"page {page:#x} already classified as {kind.name}, cannot be instruction"
            )
        return kind

    def kind_of(self, page: int) -> PageKind | None:
        """Current classification of ``page`` (None if never touched)."""
        entry = self._pages.get(page)
        return entry[0] if entry else None

    def owner_of(self, page: int) -> int | None:
        """Owning core of a PRIVATE page, else None."""
        entry = self._pages.get(page)
        if entry and entry[0] is PageKind.PRIVATE:
            return entry[1]
        return None
