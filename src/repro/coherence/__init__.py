"""Coherence substrate: sharer-tracking directories and locality classifiers."""

from repro.coherence.classifier import (
    CompleteClassifier,
    CoreLocality,
    LimitedClassifier,
    LocalityClassifier,
    make_classifier,
)
from repro.coherence.directory import (
    AckwisePolicy,
    DirectoryEntry,
    FullMapPolicy,
    SharerTrackingPolicy,
    make_sharer_policy,
)

__all__ = [
    "AckwisePolicy",
    "CompleteClassifier",
    "CoreLocality",
    "DirectoryEntry",
    "FullMapPolicy",
    "LimitedClassifier",
    "LocalityClassifier",
    "SharerTrackingPolicy",
    "make_classifier",
    "make_sharer_policy",
]
