"""Sharer-tracking directory entries: ACKwise_p and full-map.

ACKwise (Section 3.1) maintains a limited set of ``p`` hardware pointers.
While the sharer count is <= p it behaves like a full-map directory and
invalidations are unicast to the known sharers.  When the count exceeds p the
identities are dropped: the directory only tracks *how many* sharers exist
and an exclusive request triggers a broadcast invalidation, with
acknowledgements collected only from the true sharers.

The simulator keeps the ground-truth sharer set in every entry (it must, to
operate the L1 caches); the ACKwise policy models the *knowledge limit*: the
``overflowed`` flag decides unicast vs broadcast invalidation.
"""

from __future__ import annotations

from repro.common.errors import CoherenceError
from repro.common.params import ProtocolConfig
from repro.common.types import DirState


class DirectoryEntry:
    """Directory state for one L2-resident cache line."""

    __slots__ = ("sharers", "owner", "overflowed")

    def __init__(self) -> None:
        self.sharers: set[int] = set()  # all cores holding a valid L1 copy
        self.owner: int = -1  # core holding E/M, or -1
        self.overflowed = False  # ACKwise pointers exceeded

    @property
    def state(self) -> DirState:
        if self.owner >= 0:
            return DirState.EXCLUSIVE
        if self.sharers:
            return DirState.SHARED
        return DirState.UNCACHED

    def check_invariants(self) -> None:
        """SWMR: an exclusive owner is the *only* core with a valid copy."""
        if self.owner >= 0 and self.sharers != {self.owner}:
            raise CoherenceError(
                f"SWMR violation: owner {self.owner} but sharers {sorted(self.sharers)}"
            )


class SharerTrackingPolicy:
    """Base class: full-map tracking (identities always known)."""

    name = "fullmap"

    def __init__(self, num_cores: int) -> None:
        self.num_cores = num_cores
        # Statistics.
        self.broadcast_invalidations = 0
        self.unicast_invalidations = 0

    # ------------------------------------------------------------------
    def add_sharer(self, entry: DirectoryEntry, core: int) -> None:
        entry.sharers.add(core)

    def remove_sharer(self, entry: DirectoryEntry, core: int) -> None:
        entry.sharers.discard(core)
        if entry.owner == core:
            entry.owner = -1

    def set_owner(self, entry: DirectoryEntry, core: int) -> None:
        entry.owner = core
        entry.sharers.add(core)

    def clear_owner(self, entry: DirectoryEntry) -> None:
        entry.owner = -1

    def use_broadcast(self, entry: DirectoryEntry) -> bool:
        """True when an invalidation must be broadcast (identities unknown)."""
        return False

    def storage_bits_per_entry(self) -> int:
        """Sharer-tracking bits per directory entry (for Section 3.6 math)."""
        return self.num_cores


class FullMapPolicy(SharerTrackingPolicy):
    """Classic full-map directory: one presence bit per core."""


class NullSharerPolicy(SharerTrackingPolicy):
    """No sharer tracking at all (``directory="none"``).

    Used by the directoryless protocol families (DLS, Neat): the home keeps
    no per-line coherence state, so every tracking operation is a no-op and
    the Section 3.6 storage accounting reports zero bits per entry.  An
    engine wired to this policy must never rely on sharer identities -
    ``use_broadcast`` is unreachable because no invalidation is ever sent.
    """

    name = "none"

    def add_sharer(self, entry: DirectoryEntry, core: int) -> None:
        pass

    def remove_sharer(self, entry: DirectoryEntry, core: int) -> None:
        pass

    def set_owner(self, entry: DirectoryEntry, core: int) -> None:
        pass

    def clear_owner(self, entry: DirectoryEntry) -> None:
        pass

    def storage_bits_per_entry(self) -> int:
        return 0


class AckwisePolicy(SharerTrackingPolicy):
    """ACKwise_p limited directory."""

    name = "ackwise"

    def __init__(self, num_cores: int, pointers: int) -> None:
        super().__init__(num_cores)
        self.pointers = pointers

    def add_sharer(self, entry: DirectoryEntry, core: int) -> None:
        entry.sharers.add(core)
        if not entry.overflowed and len(entry.sharers) > self.pointers:
            entry.overflowed = True

    def remove_sharer(self, entry: DirectoryEntry, core: int) -> None:
        super().remove_sharer(entry, core)
        # Identities cannot be re-learned until the sharer count drains;
        # once no sharers remain the pointers start fresh.
        if entry.overflowed and not entry.sharers:
            entry.overflowed = False

    def use_broadcast(self, entry: DirectoryEntry) -> bool:
        return entry.overflowed

    def storage_bits_per_entry(self) -> int:
        """p pointers of log2(num_cores) bits (Section 3.6: 24 bits for
        ACKwise_4 at 64 cores)."""
        core_id_bits = max(1, (self.num_cores - 1).bit_length())
        return self.pointers * core_id_bits


def make_sharer_policy(proto: ProtocolConfig, num_cores: int, pointers: int) -> SharerTrackingPolicy:
    """Instantiate the configured sharer-tracking policy."""
    if proto.directory == "none":
        return NullSharerPolicy(num_cores)
    if proto.directory == "fullmap":
        return FullMapPolicy(num_cores)
    return AckwisePolicy(num_cores, pointers)
