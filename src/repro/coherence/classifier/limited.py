"""Limited_k locality classifier (Section 3.4 / Figure 7).

Maintains locality state for at most ``k`` cores per directory entry and
classifies untracked cores by a majority vote of the tracked modes:

* if the core is already tracked, its entry is used;
* else if a free slot exists, the core is allocated one in the initial
  (Private) mode;
* else if an *inactive* sharer exists (a private sharer that was
  invalidated/evicted, or a remote sharer that another core wrote over), its
  slot is reallocated and the newcomer starts in the majority-vote mode -
  its "most probable" mode;
* else the majority vote alone decides and the list is left unchanged (the
  newcomer builds no utilization and therefore can never be promoted while
  untracked).

With the default k=3 this classifier matches - and occasionally beats - the
Complete classifier (Section 5.3): inheriting the majority mode skips the
per-sharer learning phase.
"""

from __future__ import annotations

import math

from repro.coherence.classifier.base import CoreLocality, LocalityClassifier
from repro.common.params import ProtocolConfig
from repro.common.types import SharerMode
from repro.mem.l2 import L2Line


class LimitedClassifier(LocalityClassifier):
    """Locality state for at most k cores per directory entry."""

    name = "limited"

    def __init__(self, proto: ProtocolConfig) -> None:
        super().__init__(proto)
        self.k = proto.limited_k
        # Statistics.
        self.replacements = 0
        self.allocation_failures = 0

    def locality_entry(self, l2line: L2Line, core: int, allocate: bool) -> CoreLocality | None:
        # Tracked entries live in an insertion-ordered {core: entry} dict:
        # the common "already tracked" case is one hash probe instead of a
        # k-entry scan, and insertion order still gives the same
        # replacement/vote semantics as the list it replaces.
        entries: dict[int, CoreLocality] | None = l2line.locality
        if entries is None:
            if not allocate:
                return None
            entries = {}
            l2line.locality = entries
        entry = entries.get(core)
        if entry is not None:
            return entry
        if not allocate:
            return None
        if len(entries) < self.k:
            entry = CoreLocality(core)  # free slot: start in the initial mode
            entries[core] = entry
            return entry
        replacement = next((e for e in entries.values() if not e.active), None)
        if replacement is None:
            self.allocation_failures += 1
            return None
        # Start the newcomer in its most probable mode (majority vote of the
        # tracked cores *before* replacement).
        vote = self.majority_vote(l2line)
        del entries[replacement.core]
        entry = CoreLocality(core, mode=vote)
        entries[core] = entry
        self.replacements += 1
        return entry

    def tracked_entries(self, l2line: L2Line):
        # A live view, not a copy: callers only iterate (hot path).
        entries = l2line.locality
        return entries.values() if entries is not None else ()

    def storage_bits_per_entry(self, num_cores: int) -> int:
        """k x (core ID + mode + remote utilization + RAT-level) bits.

        Section 3.6: 12 bits per tracked core at the default parameters
        (6 core-ID + 1 mode + 4 remote-utilization + 1 RAT-level), i.e. 36
        bits per entry for Limited_3 at 64 cores.
        """
        core_id_bits = max(1, (num_cores - 1).bit_length())
        util_bits = max(1, math.ceil(math.log2(self.proto.rat_max)))
        rat_bits = max(1, math.ceil(math.log2(max(2, self.proto.n_rat_levels))))
        return self.k * (core_id_bits + 1 + util_bits + rat_bits)


def make_classifier(proto: ProtocolConfig) -> LocalityClassifier:
    """Instantiate the configured classifier storage organization."""
    from repro.coherence.classifier.complete import CompleteClassifier

    if proto.classifier == "complete":
        return CompleteClassifier(proto)
    return LimitedClassifier(proto)


__all__ = ["LimitedClassifier", "SharerMode", "make_classifier"]
