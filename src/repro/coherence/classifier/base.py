"""Locality classifier core logic (Sections 3.2-3.4, 3.7).

A classifier answers one question per request: *is this core a private or a
remote sharer of this line?* - and maintains the per-core locality state
(mode bit, remote utilization counter, RAT level or timestamps) that drives
promotion (remote -> private) and demotion (private -> remote).

Two axes are configurable and composed here:

* **storage organization** - Complete (state for every core, Section 3.2)
  vs Limited_k (state for k cores + majority vote, Section 3.4); subclasses
  implement ``locality_entry`` / ``tracked_entries``;
* **remote->private policy** - the idealized Timestamp check (Section 3.2)
  vs the multi-level Remote Access Threshold approximation (Section 3.3),
  plus the Adapt1-way ablation that disables promotion entirely
  (Section 3.7).
"""

from __future__ import annotations

from repro.common.params import ProtocolConfig
from repro.common.types import RemovalReason, SharerMode
from repro.mem.l2 import L2Line


class CoreLocality:
    """Locality state the directory keeps for one (line, core) pair.

    Figure 7: core ID, mode bit (P/R), remote utilization counter and
    RAT-level (the RAT level replaces the last-access timestamp of the
    idealized scheme).
    """

    __slots__ = ("core", "mode", "remote_util", "rat_level", "active")

    def __init__(self, core: int, mode: SharerMode = SharerMode.PRIVATE) -> None:
        self.core = core
        self.mode = mode
        self.remote_util = 0
        self.rat_level = 0
        #: An *active* sharer is currently using the line: private sharers
        #: become inactive on invalidation/eviction, remote sharers on a
        #: write by another core.  Inactive entries are the replacement
        #: candidates of the Limited_k classifier.
        self.active = True


class LocalityClassifier:
    """Shared promotion/demotion logic; storage is subclass-specific."""

    def __init__(self, proto: ProtocolConfig) -> None:
        self.proto = proto
        self.pct = proto.pct
        self.one_way = proto.one_way
        self.use_timestamp = proto.remote_policy == "timestamp"
        self._rat_levels = proto.rat_levels()
        self._max_rat_level = len(self._rat_levels) - 1
        # Statistics.
        self.promotions = 0
        self.demotions = 0
        self.remote_accesses = 0
        self.vote_decisions = 0

    # ------------------------------------------------------------------
    # Storage organization hooks (Complete / Limited_k).
    # ------------------------------------------------------------------
    def locality_entry(self, l2line: L2Line, core: int, allocate: bool) -> CoreLocality | None:
        """Return the tracked entry for ``core`` (allocating if requested and
        possible), or None when the core cannot be tracked."""
        raise NotImplementedError

    def tracked_entries(self, l2line: L2Line) -> list[CoreLocality]:
        """All currently tracked entries for the line."""
        raise NotImplementedError

    def storage_bits_per_entry(self, num_cores: int) -> int:
        """Locality-tracking bits per directory entry (Section 3.6 math)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Mode resolution.
    # ------------------------------------------------------------------
    def majority_vote(self, l2line: L2Line) -> SharerMode:
        """Majority vote over tracked modes; ties favour PRIVATE (the
        protocol's initial mode, Figure 4)."""
        entries = self.tracked_entries(l2line)
        if not entries:
            return SharerMode.PRIVATE
        remote = 0
        for e in entries:
            if e.mode is SharerMode.REMOTE:
                remote += 1
        return SharerMode.REMOTE if 2 * remote > len(entries) else SharerMode.PRIVATE

    def resolve_mode(self, l2line: L2Line, core: int) -> tuple[SharerMode, CoreLocality | None]:
        """Mode used to service a request from ``core`` plus its tracked
        entry (None when the core is untracked and served by majority vote)."""
        entry = self.locality_entry(l2line, core, allocate=True)
        if entry is not None:
            return entry.mode, entry
        self.vote_decisions += 1
        return self.majority_vote(l2line), None

    # ------------------------------------------------------------------
    # Remote access bookkeeping (promotion side).
    # ------------------------------------------------------------------
    def on_remote_access(
        self,
        l2line: L2Line,
        entry: CoreLocality | None,
        l1_min_last_access: float | None,
        l1_has_invalid_way: bool,
    ) -> bool:
        """Update remote utilization for a remote-mode access; return True
        when the core must be *promoted* to a private sharer.

        ``l1_min_last_access``/``l1_has_invalid_way`` are the two pieces of
        L1-set-pressure information that the requester piggybacks on its miss
        request (None means an invalid way exists, so the Timestamp check is
        trivially true).
        """
        self.remote_accesses += 1
        if entry is None or self.one_way:
            # Untracked (vote said remote: no counters to build utilization)
            # or Adapt1-way (remote is a terminal mode).
            return False
        entry.active = True
        if self.use_timestamp:
            check_passed = (
                l1_min_last_access is None or l2line.last_access > l1_min_last_access
            )
            entry.remote_util = entry.remote_util + 1 if check_passed else 1
            threshold = self.pct
        else:
            entry.remote_util += 1
            threshold = self._rat_levels[entry.rat_level]
        promote = entry.remote_util >= threshold or (
            l1_has_invalid_way and entry.remote_util >= self.pct
        )
        if promote:
            entry.mode = SharerMode.PRIVATE
            self.promotions += 1
        return promote

    # ------------------------------------------------------------------
    # Write-induced resets.
    # ------------------------------------------------------------------
    def on_write(self, l2line: L2Line, writer: int) -> None:
        """A write zeroes the remote utilization of every *other* remote
        sharer (they must rebuild utilization) and renders them inactive."""
        for entry in self.tracked_entries(l2line):
            if entry.core != writer and entry.mode is SharerMode.REMOTE:
                entry.remote_util = 0
                entry.active = False

    # ------------------------------------------------------------------
    # Demotion side: L1 copy removed (eviction or invalidation).
    # ------------------------------------------------------------------
    def on_removal(
        self,
        l2line: L2Line,
        core: int,
        private_util: int,
        reason: RemovalReason,
    ) -> SharerMode:
        """Classify ``core`` when its L1 copy is removed.

        The observed utilization is private + remote utilization (the line
        would not have been evicted/invalidated earlier had it been cached
        when its remote utilization was last reset - Section 3.2).
        """
        entry = self.locality_entry(l2line, core, allocate=True)
        if entry is None:
            # Limited_k with no free/replaceable slot: classification is lost.
            return SharerMode.PRIVATE if private_util >= self.pct else SharerMode.REMOTE
        total = private_util + (0 if self.one_way else entry.remote_util)
        new_mode = SharerMode.PRIVATE if total >= self.pct else SharerMode.REMOTE
        if self.one_way and entry.mode is SharerMode.REMOTE:
            new_mode = SharerMode.REMOTE  # one-way: remote is terminal
        if not self.use_timestamp and not self.one_way:
            # RAT dynamics (Section 3.3): eviction-demotions raise the
            # threshold (cache-set pressure); invalidation-demotions keep it;
            # a private classification resets it so the core can re-learn.
            if new_mode is SharerMode.PRIVATE:
                entry.rat_level = 0
            elif reason is RemovalReason.EVICTION and entry.rat_level < self._max_rat_level:
                entry.rat_level += 1
        if new_mode is SharerMode.REMOTE and entry.mode is SharerMode.PRIVATE:
            self.demotions += 1
        entry.mode = new_mode
        entry.remote_util = 0
        entry.active = False
        return new_mode

    # ------------------------------------------------------------------
    def note_private_grant(self, l2line: L2Line, core: int) -> None:
        """A private copy was handed out: the core is an active private sharer.

        Under Adapt1-way (Section 3.7) remote is a terminal mode, so a
        demoted core's mode bit is never rewritten - the engine never grants
        such a core a private copy anyway, this just keeps the state machine
        airtight.
        """
        entry = self.locality_entry(l2line, core, allocate=True)
        if entry is None:
            return
        if self.one_way and entry.mode is SharerMode.REMOTE:
            return
        entry.mode = SharerMode.PRIVATE
        entry.active = True
