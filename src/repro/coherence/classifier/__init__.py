"""Locality classifiers: Complete and Limited_k, Timestamp and RAT policies."""

from repro.coherence.classifier.base import CoreLocality, LocalityClassifier
from repro.coherence.classifier.complete import CompleteClassifier
from repro.coherence.classifier.limited import LimitedClassifier, make_classifier

__all__ = [
    "CompleteClassifier",
    "CoreLocality",
    "LimitedClassifier",
    "LocalityClassifier",
    "make_classifier",
]
