"""Complete locality classifier (Section 3.2 / Figure 6).

Tracks locality information for *every* core in each directory entry.  This
is the accuracy reference for the Limited_k classifier, at a storage cost of
60% over baseline at 64 cores (and >10x at 1024 cores) - Section 3.6.

Per-core state is materialized lazily: a core that never touched a line is
indistinguishable from one tracked in the initial state (Private mode, zero
remote utilization, RAT level 0), so the dense hardware table is represented
sparsely without behavioural difference.

Section 5.3 notes that the Limited_k classifier sometimes *beats* Complete
because it starts newly-tracked sharers in the majority-vote mode, skipping
the per-sharer learning phase, and remarks that "the Complete locality
classifier can also be equipped with such a learning short-cut".  The
``complete_vote_init`` protocol option implements exactly that remark; the
vote-init ablation bench measures what it buys.
"""

from __future__ import annotations

import math

from repro.coherence.classifier.base import CoreLocality, LocalityClassifier
from repro.mem.l2 import L2Line


class CompleteClassifier(LocalityClassifier):
    """Locality state for all cores at every directory entry."""

    name = "complete"

    def locality_entry(self, l2line: L2Line, core: int, allocate: bool) -> CoreLocality | None:
        table: dict[int, CoreLocality] | None = l2line.locality
        if table is None:
            if not allocate:
                return None
            table = {}
            l2line.locality = table
        entry = table.get(core)
        if entry is None and allocate:
            if self.proto.complete_vote_init and table:
                entry = CoreLocality(core, mode=self.majority_vote(l2line))
                self.vote_decisions += 1
            else:
                entry = CoreLocality(core)
            table[core] = entry
        return entry

    def tracked_entries(self, l2line: L2Line) -> list[CoreLocality]:
        table = l2line.locality
        return list(table.values()) if table else []

    def storage_bits_per_entry(self, num_cores: int) -> int:
        """num_cores x (mode + remote-utilization + RAT-level) bits.

        Section 3.6 counts 6 bits per core at the default parameters
        (1 mode + 4 remote utilization for RATmax=16 + 1 RAT-level for
        2 levels), i.e. 384 bits per entry at 64 cores.
        """
        util_bits = max(1, math.ceil(math.log2(self.proto.rat_max)))
        rat_bits = max(1, math.ceil(math.log2(max(2, self.proto.n_rat_levels))))
        return num_cores * (1 + util_bits + rat_bits)
