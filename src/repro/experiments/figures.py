"""Per-figure reproduction: generates the rows/series of every evaluation
table and figure in the paper (see DESIGN.md section 4 for the index).

Each ``figure*`` function consumes an ``ExperimentRunner`` (which memoizes
simulations) and returns a ``FigureResult`` holding both structured data and
a rendered text table, so the same code backs the pytest-benchmark harness,
the CLI and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.params import ProtocolConfig, baseline_protocol
from repro.common.statsutil import UTILIZATION_BUCKETS, geomean
from repro.common.types import MissType
from repro.experiments.harness import (
    PCT_SWEEP_DETAIL,
    PCT_SWEEP_MISS,
    PCT_SWEEP_WIDE,
    ExperimentRunner,
    adaptive_protocol,
    protocol_for_pct,
)

ENERGY_COMPONENTS = ("l1i", "l1d", "l2", "directory", "router", "link")
TIME_COMPONENTS = ("compute", "l1_to_l2", "l2_waiting", "l2_sharers", "l2_offchip", "sync")


@dataclass
class FigureResult:
    """Structured data + rendered text for one figure reproduction."""

    figure: str
    title: str
    data: dict = field(default_factory=dict)
    text: str = ""

    def __str__(self) -> str:
        return self.text


def _header(figure: str, title: str) -> list[str]:
    rule = "=" * 76
    return [rule, f"{figure}: {title}", rule]


# ----------------------------------------------------------------------
# Figures 1 & 2 - utilization histograms of invalidated / evicted lines.
# ----------------------------------------------------------------------
def _utilization_figure(runner: ExperimentRunner, kind: str, figure: str) -> FigureResult:
    title = f"% of {kind} L1 lines by utilization (baseline)"
    runner.prefetch((name, baseline_protocol()) for name in runner.workloads)
    lines = _header(figure, title)
    lines.append(f"{'benchmark':<15}" + "".join(f"{b:>8}" for b in UTILIZATION_BUCKETS))
    data: dict[str, dict[str, float]] = {}
    for name in runner.workloads:
        stats = runner.baseline(name)
        hist = stats.inval_histogram if kind == "invalidated" else stats.evict_histogram
        pct = hist.percentages()
        data[name] = pct
        lines.append(f"{name:<15}" + "".join(f"{pct[b]:8.1f}" for b in UTILIZATION_BUCKETS))
    return FigureResult(figure, title, data, "\n".join(lines))


def figure1_invalidations(runner: ExperimentRunner) -> FigureResult:
    """Figure 1: invalidations vs utilization."""
    return _utilization_figure(runner, "invalidated", "Figure 1")


def figure2_evictions(runner: ExperimentRunner) -> FigureResult:
    """Figure 2: evictions vs utilization."""
    return _utilization_figure(runner, "evicted", "Figure 2")


# ----------------------------------------------------------------------
# Figure 8 - energy vs PCT (stacked components, normalized to PCT=1).
# ----------------------------------------------------------------------
def figure8_energy(runner: ExperimentRunner, pcts=PCT_SWEEP_DETAIL) -> FigureResult:
    title = "Energy breakdown vs PCT (normalized to PCT=1)"
    runner.prefetch((n, protocol_for_pct(p)) for n in runner.workloads for p in pcts)
    lines = _header("Figure 8", title)
    lines.append(
        f"{'benchmark':<15}{'pct':>4}" + "".join(f"{c:>9}" for c in ENERGY_COMPONENTS) + f"{'total':>9}"
    )
    data: dict[str, dict[int, dict[str, float]]] = {}
    for name in runner.workloads:
        anchor = runner.run(name, protocol_for_pct(pcts[0])).energy.total
        per_pct: dict[int, dict[str, float]] = {}
        for pct in pcts:
            energy = runner.run(name, protocol_for_pct(pct)).energy
            row = {c: getattr(energy, c) / anchor for c in ENERGY_COMPONENTS}
            row["total"] = energy.total / anchor
            per_pct[pct] = row
            lines.append(
                f"{name:<15}{pct:>4}"
                + "".join(f"{row[c]:9.3f}" for c in ENERGY_COMPONENTS)
                + f"{row['total']:9.3f}"
            )
        data[name] = per_pct
    totals_at = {
        pct: geomean([data[name][pct]["total"] for name in runner.workloads]) for pct in pcts
    }
    data["geomean"] = totals_at
    lines.append("-" * 76)
    lines.append("geomean total: " + "  ".join(f"pct{p}={v:.3f}" for p, v in totals_at.items()))
    return FigureResult("Figure 8", title, data, "\n".join(lines))


# ----------------------------------------------------------------------
# Figure 9 - completion time vs PCT (stacked components).
# ----------------------------------------------------------------------
def figure9_completion_time(runner: ExperimentRunner, pcts=PCT_SWEEP_DETAIL) -> FigureResult:
    title = "Completion-time breakdown vs PCT (normalized to PCT=1)"
    runner.prefetch((n, protocol_for_pct(p)) for n in runner.workloads for p in pcts)
    lines = _header("Figure 9", title)
    lines.append(
        f"{'benchmark':<15}{'pct':>4}" + "".join(f"{c:>10}" for c in TIME_COMPONENTS) + f"{'total':>9}"
    )
    data: dict[str, dict[int, dict[str, float]]] = {}
    for name in runner.workloads:
        anchor = runner.run(name, protocol_for_pct(pcts[0])).latency.total
        per_pct: dict[int, dict[str, float]] = {}
        for pct in pcts:
            lat = runner.run(name, protocol_for_pct(pct)).latency
            row = {c: getattr(lat, c) / anchor for c in TIME_COMPONENTS}
            row["total"] = lat.total / anchor
            per_pct[pct] = row
            lines.append(
                f"{name:<15}{pct:>4}"
                + "".join(f"{row[c]:10.3f}" for c in TIME_COMPONENTS)
                + f"{row['total']:9.3f}"
            )
        data[name] = per_pct
    totals_at = {
        pct: geomean([data[name][pct]["total"] for name in runner.workloads]) for pct in pcts
    }
    data["geomean"] = totals_at
    lines.append("-" * 76)
    lines.append("geomean total: " + "  ".join(f"pct{p}={v:.3f}" for p, v in totals_at.items()))
    return FigureResult("Figure 9", title, data, "\n".join(lines))


# ----------------------------------------------------------------------
# Figure 10 - L1-D miss rate and miss-type breakdown vs PCT.
# ----------------------------------------------------------------------
def figure10_miss_breakdown(runner: ExperimentRunner, pcts=PCT_SWEEP_MISS) -> FigureResult:
    title = "L1-D miss rate breakdown vs PCT (% of accesses)"
    runner.prefetch((n, protocol_for_pct(p)) for n in runner.workloads for p in pcts)
    type_names = [mt.name.lower() for mt in MissType]
    lines = _header("Figure 10", title)
    lines.append(f"{'benchmark':<15}{'pct':>4}" + "".join(f"{t:>10}" for t in type_names) + f"{'total':>8}")
    data: dict[str, dict[int, dict[str, float]]] = {}
    for name in runner.workloads:
        per_pct: dict[int, dict[str, float]] = {}
        for pct in pcts:
            miss = runner.run(name, protocol_for_pct(pct)).miss
            row = {k: 100.0 * v for k, v in miss.rate_breakdown().items()}
            row["total"] = 100.0 * miss.miss_rate
            per_pct[pct] = row
            lines.append(
                f"{name:<15}{pct:>4}"
                + "".join(f"{row[t]:10.2f}" for t in type_names)
                + f"{row['total']:8.2f}"
            )
        data[name] = per_pct
    return FigureResult("Figure 10", title, data, "\n".join(lines))


# ----------------------------------------------------------------------
# Figure 11 - geometric means vs PCT (the U-shape; optimum near PCT=4).
# ----------------------------------------------------------------------
def figure11_geomean_sweep(runner: ExperimentRunner, pcts=PCT_SWEEP_WIDE) -> FigureResult:
    title = "Geomean completion time & energy vs PCT (normalized to PCT=1)"
    runner.prefetch((n, protocol_for_pct(p)) for n in runner.workloads for p in pcts)
    lines = _header("Figure 11", title)
    lines.append(f"{'pct':>4}{'completion':>12}{'energy':>9}")
    time_anchor = {n: runner.run(n, protocol_for_pct(pcts[0])).completion_time for n in runner.workloads}
    energy_anchor = {n: runner.run(n, protocol_for_pct(pcts[0])).energy.total for n in runner.workloads}
    series: dict[int, tuple[float, float]] = {}
    for pct in pcts:
        times, energies = [], []
        for name in runner.workloads:
            stats = runner.run(name, protocol_for_pct(pct))
            times.append(stats.completion_time / time_anchor[name])
            energies.append(stats.energy.total / energy_anchor[name])
        series[pct] = (geomean(times), geomean(energies))
        lines.append(f"{pct:>4}{series[pct][0]:12.3f}{series[pct][1]:9.3f}")
    best_pct = min(series, key=lambda p: series[p][0] + series[p][1])
    lines.append(f"best combined PCT: {best_pct}")
    return FigureResult(
        "Figure 11", title, {"series": series, "best_pct": best_pct}, "\n".join(lines)
    )


# ----------------------------------------------------------------------
# Figure 12 - Remote Access Threshold sensitivity (vs Timestamp scheme).
# ----------------------------------------------------------------------
def figure12_rat_sensitivity(runner: ExperimentRunner) -> FigureResult:
    title = "RAT sensitivity: nRATlevels (L) x RATmax (T), normalized to Timestamp"
    configs: list[tuple[str, ProtocolConfig]] = [
        ("Timestamp", adaptive_protocol(remote_policy="timestamp")),
        ("L-1", adaptive_protocol(n_rat_levels=1, rat_max=4)),
        ("L-2,T-8", adaptive_protocol(n_rat_levels=2, rat_max=8)),
        ("L-2,T-16", adaptive_protocol(n_rat_levels=2, rat_max=16)),
        ("L-4,T-8", adaptive_protocol(n_rat_levels=4, rat_max=8)),
        ("L-4,T-16", adaptive_protocol(n_rat_levels=4, rat_max=16)),
        ("L-8,T-16", adaptive_protocol(n_rat_levels=8, rat_max=16)),
    ]
    runner.prefetch((n, proto) for n in runner.workloads for _, proto in configs)
    lines = _header("Figure 12", title)
    lines.append(f"{'config':<12}{'completion':>12}{'energy':>9}")
    time_anchor: dict[str, float] = {}
    energy_anchor: dict[str, float] = {}
    data: dict[str, tuple[float, float]] = {}
    for label, proto in configs:
        times, energies = [], []
        for name in runner.workloads:
            stats = runner.run(name, proto)
            if label == "Timestamp":
                time_anchor[name] = stats.completion_time
                energy_anchor[name] = stats.energy.total
            times.append(stats.completion_time / time_anchor[name])
            energies.append(stats.energy.total / energy_anchor[name])
        data[label] = (geomean(times), geomean(energies))
        lines.append(f"{label:<12}{data[label][0]:12.3f}{data[label][1]:9.3f}")
    return FigureResult("Figure 12", title, data, "\n".join(lines))


# ----------------------------------------------------------------------
# Figure 13 - Limited_k classifier sensitivity (vs Complete).
# ----------------------------------------------------------------------
def figure13_limited_classifier(runner: ExperimentRunner, ks=(1, 3, 5, 7)) -> FigureResult:
    title = "Limited_k classifier: completion time & energy normalized to Complete"
    lines = _header("Figure 13", title)
    header = f"{'benchmark':<15}"
    for k in ks:
        header += f"{f'T(k={k})':>9}"
    for k in ks:
        header += f"{f'E(k={k})':>9}"
    lines.append(header)
    complete = adaptive_protocol(classifier="complete")
    runner.prefetch(
        (n, proto)
        for n in runner.workloads
        for proto in [complete]
        + [adaptive_protocol(classifier="limited", limited_k=k) for k in ks]
    )
    data: dict[str, dict[int, tuple[float, float]]] = {}
    tratios = {k: [] for k in ks}
    eratios = {k: [] for k in ks}
    for name in runner.workloads:
        ref = runner.run(name, complete)
        row: dict[int, tuple[float, float]] = {}
        for k in ks:
            stats = runner.run(name, adaptive_protocol(classifier="limited", limited_k=k))
            tr = stats.completion_time / ref.completion_time
            er = stats.energy.total / ref.energy.total
            row[k] = (tr, er)
            tratios[k].append(tr)
            eratios[k].append(er)
        data[name] = row
        lines.append(
            f"{name:<15}"
            + "".join(f"{row[k][0]:9.3f}" for k in ks)
            + "".join(f"{row[k][1]:9.3f}" for k in ks)
        )
    summary = {k: (geomean(tratios[k]), geomean(eratios[k])) for k in ks}
    data["geomean"] = summary
    lines.append("-" * 76)
    lines.append(
        f"{'geomean':<15}"
        + "".join(f"{summary[k][0]:9.3f}" for k in ks)
        + "".join(f"{summary[k][1]:9.3f}" for k in ks)
    )
    return FigureResult("Figure 13", title, data, "\n".join(lines))


# ----------------------------------------------------------------------
# Figure 14 - Adapt1-way vs Adapt2-way.
# ----------------------------------------------------------------------
def figure14_one_way(runner: ExperimentRunner) -> FigureResult:
    title = "Adapt1-way / Adapt2-way ratio (higher = two-way transitions matter)"
    lines = _header("Figure 14", title)
    lines.append(f"{'benchmark':<15}{'completion':>12}{'energy':>9}")
    two_way = adaptive_protocol()
    one_way = adaptive_protocol(one_way=True)
    runner.prefetch((n, p) for n in runner.workloads for p in (two_way, one_way))
    data: dict[str, tuple[float, float]] = {}
    tratios, eratios = [], []
    for name in runner.workloads:
        ref = runner.run(name, two_way)
        alt = runner.run(name, one_way)
        tr = alt.completion_time / ref.completion_time
        er = alt.energy.total / ref.energy.total
        data[name] = (tr, er)
        tratios.append(tr)
        eratios.append(er)
        lines.append(f"{name:<15}{tr:12.3f}{er:9.3f}")
    summary = (geomean(tratios), geomean(eratios))
    data["geomean"] = summary
    lines.append("-" * 76)
    lines.append(f"{'geomean':<15}{summary[0]:12.3f}{summary[1]:9.3f}")
    return FigureResult("Figure 14", title, data, "\n".join(lines))


# ----------------------------------------------------------------------
# Section 5 preamble - ACKwise_4 vs full-map baseline comparison.
# ----------------------------------------------------------------------
def ackwise_vs_fullmap(runner: ExperimentRunner) -> FigureResult:
    title = "Baseline ACKwise_4 vs full-map directory (paper: within 1%)"
    lines = _header("Section 5", title)
    lines.append(f"{'benchmark':<15}{'T ack/full':>12}{'E ack/full':>12}")
    ack = baseline_protocol(directory="ackwise")
    full = baseline_protocol(directory="fullmap")
    runner.prefetch((n, p) for n in runner.workloads for p in (ack, full))
    data: dict[str, tuple[float, float]] = {}
    tratios, eratios = [], []
    for name in runner.workloads:
        a = runner.run(name, ack)
        f = runner.run(name, full)
        tr = a.completion_time / f.completion_time
        er = a.energy.total / f.energy.total
        data[name] = (tr, er)
        tratios.append(tr)
        eratios.append(er)
        lines.append(f"{name:<15}{tr:12.3f}{er:12.3f}")
    summary = (geomean(tratios), geomean(eratios))
    data["geomean"] = summary
    lines.append("-" * 76)
    lines.append(f"{'geomean':<15}{summary[0]:12.3f}{summary[1]:12.3f}")
    return FigureResult("Section 5", title, data, "\n".join(lines))


# ----------------------------------------------------------------------
# Extension: Victim Replication comparison (Section 2.1 discussion).
# ----------------------------------------------------------------------
def victim_replication_comparison(runner: ExperimentRunner) -> FigureResult:
    """Baseline vs Victim Replication vs the locality-aware protocol.

    Quantifies the Section 2.1 criticism: VR replicates every L1 victim
    "irrespective of whether [it] will be re-used in the future", so it wins
    where victims are re-read (large read-mostly working sets) and loses
    where they are not (streaming / write-shared data), while the
    locality-aware protocol adapts per line.
    """
    from repro.common.params import victim_replication_protocol

    title = "Victim Replication vs locality-aware (normalized to baseline)"
    lines = _header("Extension VR", title)
    lines.append(
        f"{'benchmark':<15}{'T(vr)':>9}{'E(vr)':>9}{'T(adapt)':>10}{'E(adapt)':>10}"
        f"{'replicas':>10}{'rep.hits':>10}"
    )
    base = baseline_protocol()
    vr = victim_replication_protocol()
    adapt = adaptive_protocol()
    runner.prefetch((n, p) for n in runner.workloads for p in (base, vr, adapt))
    data: dict[str, dict[str, float]] = {}
    vr_t, vr_e, ad_t, ad_e = [], [], [], []
    for name in runner.workloads:
        ref = runner.run(name, base)
        v = runner.run(name, vr)
        a = runner.run(name, adapt)
        row = {
            "vr_time": v.completion_time / ref.completion_time,
            "vr_energy": v.energy.total / ref.energy.total,
            "adapt_time": a.completion_time / ref.completion_time,
            "adapt_energy": a.energy.total / ref.energy.total,
            "replicas": v.replicas_created,
            "replica_hits": v.replica_hits,
        }
        data[name] = row
        vr_t.append(row["vr_time"])
        vr_e.append(row["vr_energy"])
        ad_t.append(row["adapt_time"])
        ad_e.append(row["adapt_energy"])
        lines.append(
            f"{name:<15}{row['vr_time']:9.3f}{row['vr_energy']:9.3f}"
            f"{row['adapt_time']:10.3f}{row['adapt_energy']:10.3f}"
            f"{row['replicas']:10d}{row['replica_hits']:10d}"
        )
    summary = {
        "vr_time": geomean(vr_t),
        "vr_energy": geomean(vr_e),
        "adapt_time": geomean(ad_t),
        "adapt_energy": geomean(ad_e),
    }
    data["geomean"] = summary
    lines.append("-" * 76)
    lines.append(
        f"{'geomean':<15}{summary['vr_time']:9.3f}{summary['vr_energy']:9.3f}"
        f"{summary['adapt_time']:10.3f}{summary['adapt_energy']:10.3f}"
    )
    return FigureResult("Extension VR", title, data, "\n".join(lines))


# ----------------------------------------------------------------------
# Extension: six-way protocol-family comparison (ROADMAP baselines).
# ----------------------------------------------------------------------
def protocol_families_comparison(runner: ExperimentRunner) -> FigureResult:
    """All six protocol families side by side, normalized to the baseline.

    One column pair (completion time, energy) per family: the paper's
    ACKwise directory baseline (the anchor), Victim Replication
    (Section 2.1), DLS (directoryless shared LLC - every access a word
    round-trip to the home), Neat (self-invalidation/self-downgrade
    without sharer tracking) and phase-priority directory coherence
    (write-shared lines pinned at the home) from PAPERS.md, and the
    locality-aware adaptive protocol at the paper's optimum PCT=4.  The
    expected shape: DLS wins only where R-NUCA keeps homes local, Neat
    pays write-through traffic on store-heavy sharing, phase sits between
    the baseline and the adaptive protocol on migratory data, and the
    adaptive protocol tracks the best per line.
    """
    from repro.common.params import (
        dls_protocol,
        neat_protocol,
        phase_protocol,
        victim_replication_protocol,
    )

    title = "Protocol families: completion time & energy (normalized to baseline)"
    families: list[tuple[str, ProtocolConfig]] = [
        ("baseline", baseline_protocol()),
        ("victim", victim_replication_protocol()),
        ("dls", dls_protocol()),
        ("neat", neat_protocol()),
        ("phase", phase_protocol()),
        ("adaptive", adaptive_protocol()),
    ]
    runner.prefetch((n, proto) for n in runner.workloads for _, proto in families)
    labels = [label for label, _ in families]
    lines = _header("Extension Families", title)
    lines.append(
        f"{'benchmark':<15}"
        + "".join(f"{f'T({lbl})':>12}" for lbl in labels)
        + "".join(f"{f'E({lbl})':>12}" for lbl in labels)
    )
    data: dict[str, dict[str, tuple[float, float]]] = {}
    tratios: dict[str, list[float]] = {lbl: [] for lbl in labels}
    eratios: dict[str, list[float]] = {lbl: [] for lbl in labels}
    for name in runner.workloads:
        ref = runner.run(name, families[0][1])
        row: dict[str, tuple[float, float]] = {}
        for label, proto in families:
            stats = runner.run(name, proto)
            tr = stats.completion_time / ref.completion_time
            er = stats.energy.total / ref.energy.total
            row[label] = (tr, er)
            tratios[label].append(tr)
            eratios[label].append(er)
        data[name] = row
        lines.append(
            f"{name:<15}"
            + "".join(f"{row[lbl][0]:12.3f}" for lbl in labels)
            + "".join(f"{row[lbl][1]:12.3f}" for lbl in labels)
        )
    summary = {lbl: (geomean(tratios[lbl]), geomean(eratios[lbl])) for lbl in labels}
    data["geomean"] = summary
    lines.append("-" * 76)
    lines.append(
        f"{'geomean':<15}"
        + "".join(f"{summary[lbl][0]:12.3f}" for lbl in labels)
        + "".join(f"{summary[lbl][1]:12.3f}" for lbl in labels)
    )
    return FigureResult("Extension Families", title, data, "\n".join(lines))


#: Registry used by the CLI: figure id -> generator.
FIGURES = {
    "1": figure1_invalidations,
    "2": figure2_evictions,
    "8": figure8_energy,
    "9": figure9_completion_time,
    "10": figure10_miss_breakdown,
    "11": figure11_geomean_sweep,
    "12": figure12_rat_sensitivity,
    "13": figure13_limited_classifier,
    "14": figure14_one_way,
    "ackwise-vs-fullmap": ackwise_vs_fullmap,
    "victim-replication": victim_replication_comparison,
    "protocol-families": protocol_families_comparison,
}
