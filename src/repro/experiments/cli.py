"""Command-line entry point: ``repro-experiments``.

Examples::

    repro-experiments --figure 11                 # geomean PCT sweep
    repro-experiments --figure 8 --scale full     # energy stacks, full scale
    repro-experiments --all                       # every figure
    repro-experiments --storage                   # Section 3.6 arithmetic
    repro-experiments --list                      # available figures/workloads
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.common.errors import ReproError
from repro.experiments.figures import FIGURES
from repro.experiments.harness import ExperimentRunner, bench_arch
from repro.experiments.storage import storage_table
from repro.runner.backends import BACKEND_NAMES, make_backend
from repro.runner.backends.remote import DEFAULT_WINDOW
from repro.runner.store import DEFAULT_CACHE_DIR, ResultStore
from repro.workloads.registry import WORKLOAD_NAMES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the evaluation figures of the Locality-Aware "
        "Adaptive Cache Coherence Protocol (ISCA 2013).",
    )
    parser.add_argument("--figure", action="append", choices=sorted(FIGURES),
                        help="figure id to reproduce (repeatable)")
    parser.add_argument("--all", action="store_true", help="reproduce every figure")
    parser.add_argument("--storage", action="store_true",
                        help="print the Section 3.6 storage-overhead table")
    parser.add_argument("--report", action="store_true",
                        help="regenerate EXPERIMENTS.md from archived bench results")
    parser.add_argument("--list", action="store_true",
                        help="list available figures and workloads")
    parser.add_argument("--scale", default="small", choices=("tiny", "small", "full"),
                        help="workload problem-size scale (default: small)")
    parser.add_argument("--cores", type=int, default=64,
                        help="number of cores (default: 64)")
    parser.add_argument("--workloads", nargs="+", metavar="NAME",
                        help="restrict to a subset of benchmarks")
    parser.add_argument("--no-warmup", action="store_true",
                        help="measure the cold run instead of warmup+measure")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for simulation batches "
                        "(default: 1 = in-process)")
    parser.add_argument("--backend", choices=BACKEND_NAMES, default="auto",
                        help="execution backend for simulation batches "
                        "(default: auto = remote when --hosts is given, "
                        "else process pool when --workers > 1)")
    parser.add_argument("--hosts", default=None, metavar="H:P[,H:P...]",
                        help="comma-separated repro-serve daemons to shard "
                        "figure grids across (implies --backend remote)")
    parser.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                        help="max in-flight jobs per remote host "
                        f"(default: {DEFAULT_WINDOW})")
    parser.add_argument("--cache", nargs="?", const=DEFAULT_CACHE_DIR, default=None,
                        metavar="DIR",
                        help="persist/reuse results in an on-disk cache "
                        f"(default dir when bare: {DEFAULT_CACHE_DIR}); a warm "
                        "cache reproduces every figure with zero simulations")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        print("figures  :", ", ".join(sorted(FIGURES)))
        print("workloads:", ", ".join(WORKLOAD_NAMES))
        return 0
    if args.storage:
        print(storage_table())
        if not (args.all or args.figure or args.report):
            return 0
    if args.report:
        from repro.experiments import report

        report.main()
        if not (args.all or args.figure):
            return 0

    wanted = sorted(FIGURES) if args.all else (args.figure or [])
    if not wanted:
        build_parser().print_help()
        return 1

    workloads = tuple(args.workloads) if args.workloads else WORKLOAD_NAMES
    unknown = set(workloads) - set(WORKLOAD_NAMES)
    if unknown:
        print(f"unknown workloads: {sorted(unknown)}", file=sys.stderr)
        return 2
    try:
        backend = make_backend(
            args.backend, workers=args.workers, hosts=args.hosts, window=args.window
        )
    except ReproError as exc:  # e.g. a malformed --hosts spec
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # The context manager closes the pool/backend even when a figure raises
    # mid-batch (previously a failed sweep leaked the worker pool).
    with ExperimentRunner(
        arch=bench_arch(args.cores),
        scale=args.scale,
        workloads=workloads,
        warmup=not args.no_warmup,
        workers=args.workers,
        store=ResultStore(args.cache) if args.cache else None,
        backend=backend,
    ) as runner:
        for figure_id in wanted:
            start = time.time()
            result = FIGURES[figure_id](runner)
            print(result.text)
            print(f"[{result.figure} in {time.time() - start:.1f}s, "
                  f"{runner.cached_runs} cached runs, {runner.simulations} simulated]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
