"""EXPERIMENTS.md generator: paper-vs-measured for every table and figure.

The benchmark suite archives every figure's rendered table under
``benchmarks/results/``.  This module pairs each archive with the paper's
reported expectation and emits EXPERIMENTS.md, so the document always
reflects the most recent benchmark run::

    python -m repro.experiments.report            # rewrite EXPERIMENTS.md
    repro-experiments --report                    # same, via the main CLI
"""

from __future__ import annotations

import dataclasses
import pathlib

#: Repository root (three levels above this file's package directory).
REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"
OUTPUT_PATH = REPO_ROOT / "EXPERIMENTS.md"


@dataclasses.dataclass(frozen=True)
class Experiment:
    """One paper table/figure: what the paper reports vs what we archive."""

    exp_id: str  # e.g. "Figure 11"
    result_file: str  # archive name under benchmarks/results/
    bench: str  # bench module that regenerates it
    paper_claim: str  # the paper's reported outcome
    expectation: str  # what shape the reproduction must show


EXPERIMENTS: tuple[Experiment, ...] = (
    Experiment(
        "Figure 1",
        "fig01_invalidations",
        "benchmarks/bench_fig01_invalidation_utilization.py",
        "Many invalidated lines have low utilization; e.g. in streamcluster "
        "~80% of invalidated lines have utilization < 4.",
        "Low buckets (1, 2-3) dominate invalidations for the sharing-heavy "
        "benchmarks; streamcluster's mass sits below utilization 4.",
    ),
    Experiment(
        "Figure 2",
        "fig02_evictions",
        "benchmarks/bench_fig02_eviction_utilization.py",
        "Evicted lines likewise skew to low utilization across benchmarks.",
        "Eviction histograms skew to the low buckets for streaming/graph "
        "workloads and to >=8 for compute-local ones.",
    ),
    Experiment(
        "Figure 8",
        "fig08_energy",
        "benchmarks/bench_fig08_energy_vs_pct.py",
        "Energy falls as PCT rises from 1, ~25% average saving at PCT=4; "
        "link energy dominates router energy at 11nm.",
        "Geomean energy at PCT=4 well below 1.0 (normalized to PCT=1); "
        "per-benchmark stacks show the network-link component shrinking.",
    ),
    Experiment(
        "Figure 9",
        "fig09_completion_time",
        "benchmarks/bench_fig09_completion_time_vs_pct.py",
        "Completion time falls ~15% at PCT=4; improvements from converting "
        "capacity/sharing misses into word misses.",
        "Geomean completion time at PCT=4 below 1.0; L2-waiting and "
        "L2-sharers components shrink for streamcluster/dijkstra-ss.",
    ),
    Experiment(
        "Figure 10",
        "fig10_miss_breakdown",
        "benchmarks/bench_fig10_miss_breakdown.py",
        "Raising PCT converts capacity misses (blackscholes, bodytrack) and "
        "sharing misses (dijkstra-ss, streamcluster) into word misses.",
        "Word-miss share grows with PCT while capacity+sharing shares "
        "shrink; total miss rate may rise while cost per miss falls.",
    ),
    Experiment(
        "Figure 11",
        "fig11_geomean_sweep",
        "benchmarks/bench_fig11_geomean_pct_sweep.py",
        "U-shaped curves: completion time -15% and energy -25% at the "
        "static optimum PCT=4; both degrade at large PCT.",
        "Completion time dips to ~0.85 at PCT=3-4 and climbs again by "
        "PCT=20 (the U-shape); energy reaches ~0.65 by PCT=5 and stays "
        "flat in the tail rather than climbing - a documented substrate "
        "deviation (synthetic kernels keep remote word accesses cheap).",
    ),
    Experiment(
        "Figure 12",
        "fig12_rat_sensitivity",
        "benchmarks/bench_fig12_rat_sensitivity.py",
        "Single RAT level costs ~9% energy vs Timestamp; nRATlevels=2 with "
        "RATmax=16 tracks the Timestamp scheme closely.",
        "L-1 worst in energy; L-2/T-16 within a few percent of Timestamp "
        "on both axes.",
    ),
    Experiment(
        "Figure 13",
        "fig13_limited_classifier",
        "benchmarks/bench_fig13_limited_classifier.py",
        "Limited_3 within 3% of the Complete classifier; k=1 pathologies "
        "on radix (starts sharers remote) and bodytrack (starts private).",
        "k=3 column ~1.0 everywhere; k=1 shows outliers on the named "
        "benchmarks.",
    ),
    Experiment(
        "Figure 14",
        "fig14_one_way",
        "benchmarks/bench_fig14_one_way_transition.py",
        "Adapt1-way is 34% worse in completion time and 13% in energy; "
        "bodytrack 3.3x and dijkstra-ss 2.3x in completion time.",
        "Completion-time geomean above 1 with the re-promotion-dependent "
        "benchmarks worst (lu-nc ~1.5x); the energy axis is mixed in this "
        "substrate - permanently-remote cores save network traffic on some "
        "kernels - where the paper reports a uniform +13%.",
    ),
    Experiment(
        "Section 5 preamble",
        "ackwise_vs_fullmap",
        "benchmarks/bench_ackwise_vs_fullmap.py",
        "Baseline ACKwise_4 performs within 1% of a full-map directory.",
        "Completion-time and energy ratios ~1.0 across benchmarks.",
    ),
    Experiment(
        "Section 3.6 (storage)",
        "storage_overhead",
        "benchmarks/bench_storage_overhead.py",
        "Limited_3 needs 18KB/core vs 192KB for Complete; ACKwise_4 12KB, "
        "full-map 32KB; Limited_3+ACKwise_4 < full-map and +5.7% vs "
        "baseline ACKwise_4.",
        "The arithmetic reproduces exactly (also unit-tested).",
    ),
    Experiment(
        "Extension: Victim Replication",
        "victim_replication",
        "benchmarks/bench_victim_replication.py",
        "Section 2.1 (qualitative): VR replicates every L1 victim "
        "irrespective of future re-use.",
        "VR wins where victims are re-read, pays where they are not; the "
        "adaptive protocol wins on geomean without blanket replication.",
    ),
    Experiment(
        "Ablation: link model",
        "ablation_link_model",
        "benchmarks/bench_ablation_link_model.py",
        "(ours - DESIGN.md decision 6)",
        "Naive next-free-time link accounting inflates completion time vs "
        "epoch accounting (phantom congestion); no-contention is fastest.",
    ),
    Experiment(
        "Ablation: ACKwise_p",
        "ablation_ackwise_pointers",
        "benchmarks/bench_ablation_ackwise_pointers.py",
        "(ours - Table 1 fixes p=4)",
        "Broadcast fraction falls as p grows; performance stable around "
        "p=4 (the knee).",
    ),
    Experiment(
        "Ablation: core scaling",
        "ablation_core_scaling",
        "benchmarks/bench_ablation_core_scaling.py",
        "(ours - the paper's scalability premise)",
        "The adaptive protocol's time/energy advantage holds from 16 to 64 "
        "cores.",
    ),
    Experiment(
        "Ablation: vote-init",
        "ablation_vote_init",
        "benchmarks/bench_ablation_vote_init.py",
        "Section 5.3 remark: Complete could adopt Limited's learning "
        "short-cut.",
        "The short-cut never hurts materially on the paper's named set.",
    ),
)

_PREAMBLE = """\
# EXPERIMENTS - paper vs measured

Every table and figure in the paper's evaluation (Section 5), what the
paper reports, and what this reproduction measures.  The measured tables
below are archived verbatim from the most recent benchmark run
(`pytest benchmarks/ --benchmark-only`); regenerate this file with
`python -m repro.experiments.report`.

**Reading the numbers.**  The substrate here is a synthetic-trace,
cycle-approximate simulator with capacity-scaled caches (DESIGN.md,
"Scaling methodology"), not the authors' Graphite setup running full
benchmark binaries - so we reproduce *shapes* (who wins, by roughly what
factor, where crossovers fall), not absolute percentages.  Figures 3-7 are
schematics with no data; they are realized as code structure
(`repro.protocol`, `repro.coherence`, `repro.mem`).
"""


def missing_results() -> list[str]:
    """Archive files the benchmark suite has not produced yet."""
    return [
        e.result_file
        for e in EXPERIMENTS
        if not (RESULTS_DIR / f"{e.result_file}.txt").exists()
    ]


def generate(results_dir: pathlib.Path = RESULTS_DIR) -> str:
    """Render the full EXPERIMENTS.md text from the archived results."""
    parts = [_PREAMBLE]
    parts.append("## Index\n")
    parts.append("| Experiment | Paper reports | Reproduction shows | Regenerated by |")
    parts.append("|---|---|---|---|")
    for e in EXPERIMENTS:
        parts.append(
            f"| {e.exp_id} | {e.paper_claim} | {e.expectation} | `{e.bench}` |"
        )
    parts.append("")
    for e in EXPERIMENTS:
        parts.append(f"## {e.exp_id}\n")
        parts.append(f"**Paper:** {e.paper_claim}\n")
        parts.append(f"**Expected shape:** {e.expectation}\n")
        archive = results_dir / f"{e.result_file}.txt"
        if archive.exists():
            parts.append("**Measured (latest benchmark run):**\n")
            parts.append("```")
            parts.append(archive.read_text().rstrip())
            parts.append("```\n")
        else:
            parts.append(
                f"*(no archived result yet - run `pytest {e.bench} "
                "--benchmark-only`)*\n"
            )
    return "\n".join(parts)


def write(path: pathlib.Path = OUTPUT_PATH) -> pathlib.Path:
    """Write EXPERIMENTS.md and return its path."""
    path.write_text(generate())
    return path


def main() -> int:
    missing = missing_results()
    path = write()
    print(f"wrote {path}")
    if missing:
        print(f"note: {len(missing)} experiment(s) have no archived result yet:")
        for name in missing:
            print(f"  - {name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
