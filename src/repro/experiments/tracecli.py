"""Command-line trace tools: ``repro-trace``.

Lets a downstream user move traces in and out of the simulator without
writing Python::

    repro-trace generate tsp out.traceb --scale small   # workload -> file
    repro-trace stats out.traceb                        # summarize a file
    repro-trace dump out.traceb --limit 20              # first records/thread
    repro-trace convert out.traceb out.trace            # binary <-> text
    repro-trace run out.traceb --pct 4                  # simulate a file
"""

from __future__ import annotations

import argparse
import sys

from repro.common.errors import ReproError
from repro.common.params import baseline_protocol
from repro.common.types import Op
from repro.experiments.harness import adaptive_protocol, bench_arch
from repro.sim.multicore import Simulator
from repro.workloads.registry import WORKLOAD_NAMES, load_workload
from repro.workloads.tracefile import load_trace, save_trace, trace_summary

_MNEMONIC = {
    int(Op.READ): "R",
    int(Op.WRITE): "W",
    int(Op.BARRIER): "B",
    int(Op.LOCK): "L",
    int(Op.UNLOCK): "U",
    int(Op.WORK): "K",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace", description="Trace-file tools for the repro simulator."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="render a built-in workload to a trace file")
    generate.add_argument("workload", choices=WORKLOAD_NAMES)
    generate.add_argument("output", help="output path (.traceb = binary, else text)")
    generate.add_argument("--scale", default="small", choices=("tiny", "small", "full"))
    generate.add_argument("--cores", type=int, default=64)

    stats = sub.add_parser("stats", help="summarize a trace file")
    stats.add_argument("path")

    dump = sub.add_parser("dump", help="print the first records of each thread")
    dump.add_argument("path")
    dump.add_argument("--limit", type=int, default=10, help="records per thread (default 10)")

    convert = sub.add_parser("convert", help="convert between text and binary formats")
    convert.add_argument("source")
    convert.add_argument("destination")

    run = sub.add_parser("run", help="simulate a trace file and print a summary")
    run.add_argument("path")
    run.add_argument("--pct", type=int, default=0,
                     help="Private Caching Threshold (0 = baseline protocol)")
    run.add_argument("--cores", type=int, default=64)
    run.add_argument("--no-warmup", action="store_true")
    return parser


def _cmd_generate(args) -> int:
    trace = load_workload(args.workload, bench_arch(args.cores), scale=args.scale)
    save_trace(trace, args.output)
    print(f"wrote {args.output}: {trace.total_records:,} records, "
          f"{trace.memory_accesses:,} memory accesses")
    return 0


def _cmd_stats(args) -> int:
    trace = load_trace(args.path)
    print(f"trace {trace.name!r}")
    for key, value in trace_summary(trace).items():
        print(f"  {key:<20} {value:,}")
    return 0


def _cmd_dump(args) -> int:
    trace = load_trace(args.path)
    for tid, stream in enumerate(trace.per_core):
        shown = stream[: args.limit]
        if not shown:
            continue
        print(f"thread {tid} ({len(stream):,} records):")
        for op, address, work in shown:
            mnemonic = _MNEMONIC[int(op)]
            operand = f"{work}" if mnemonic == "K" else f"{address:#x}"
            suffix = f" work={work}" if mnemonic != "K" and work else ""
            print(f"  {mnemonic} {operand}{suffix}")
        if len(stream) > args.limit:
            print(f"  ... {len(stream) - args.limit:,} more")
    return 0


def _cmd_convert(args) -> int:
    save_trace(load_trace(args.source), args.destination)
    print(f"converted {args.source} -> {args.destination}")
    return 0


def _cmd_run(args) -> int:
    trace = load_trace(args.path)
    arch = bench_arch(args.cores)
    proto = baseline_protocol() if args.pct <= 1 else adaptive_protocol(args.pct)
    stats = Simulator(arch, proto, warmup=not args.no_warmup).run(trace)
    label = "baseline" if args.pct <= 1 else f"adaptive pct={args.pct}"
    print(f"simulated {trace.name!r} under {label}:")
    print(f"  completion time : {stats.completion_time:14,.0f} cycles")
    print(f"  dynamic energy  : {stats.energy.total / 1e3:14,.1f} nJ")
    print(f"  L1-D miss rate  : {100 * stats.miss.miss_rate:14.2f} %")
    print(f"  network flits   : {stats.network_flits:14,}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "dump": _cmd_dump,
    "convert": _cmd_convert,
    "run": _cmd_run,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
