"""Experiment harness: shared configuration and cached simulation runs.

The harness is the engine behind every figure reproduction.  It provides

* ``bench_arch()`` - the Table-1 system with *capacity-scaled* caches.  The
  paper simulates full benchmark executions (billions of references); our
  traces are ~10^5 references, so the caches are scaled by the same factor
  as the problem sizes (L1-I 4KB, L1-D 8KB, L2 64KB per slice, associativity
  and latencies unchanged) to preserve the working-set:cache pressure ratios
  the classifier reacts to.  Everything else (64 cores, mesh, ACKwise_4,
  DRAM) is Table 1 verbatim.
* ``ExperimentRunner`` - a thin figure-facing façade over the sweep engine
  in ``repro.runner``: every simulation point becomes a content-addressed
  :class:`~repro.runner.job.Job`, executed through a
  :class:`~repro.runner.parallel.ParallelRunner` (parallel when
  ``workers > 1``, optionally persistent via a
  :class:`~repro.runner.store.ResultStore`) and memoized in-process so the
  many figures that share sweep points (8, 9, 10, 11 all reuse the PCT
  sweep) never re-simulate.  Figure generators batch their whole grid up
  front via :meth:`ExperimentRunner.prefetch`, so a cold run scales with
  cores and a warm-cache run performs zero simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.common.params import ArchConfig, CacheGeometry, ProtocolConfig, baseline_protocol
from repro.runner.backends import ExecutionBackend
from repro.runner.job import Job
from repro.runner.parallel import ParallelRunner, build_trace, format_progress
from repro.runner.store import ResultStore
from repro.sim.stats import RunStats
from repro.workloads.base import Trace
from repro.workloads.registry import WORKLOAD_NAMES

#: PCT sweep of Figures 8-10 (per-benchmark stacks).
PCT_SWEEP_DETAIL: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)
#: Extended sweep of Figure 11 (geometric means).
PCT_SWEEP_WIDE: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16, 18, 20)
#: Miss-breakdown sweep of Figure 10.
PCT_SWEEP_MISS: tuple[int, ...] = (1, 2, 3, 4, 6, 8)


def bench_arch(num_cores: int = 64) -> ArchConfig:
    """The evaluation system: Table 1 with capacity-scaled caches."""
    return ArchConfig(
        num_cores=num_cores,
        l1i=CacheGeometry(4, 4, 1),
        l1d=CacheGeometry(8, 4, 1),
        l2=CacheGeometry(64, 8, 7),
    )


def adaptive_protocol(pct: int = 4, **overrides) -> ProtocolConfig:
    """The paper's default adaptive configuration at a given PCT.

    The RAT ladder starts at PCT (Section 3.3), so for sweep points beyond
    the default RATmax of 16 (Figure 11 reaches PCT=20) the ceiling follows
    PCT unless explicitly overridden.
    """
    params = dict(
        protocol="adaptive",
        pct=pct,
        classifier="limited",
        limited_k=3,
        remote_policy="rat",
        rat_max=max(16, pct),
        n_rat_levels=2,
    )
    params.update(overrides)
    return ProtocolConfig(**params)


def protocol_for_pct(pct: int, **overrides) -> ProtocolConfig:
    """PCT sweep convention: PCT=1 *is* the baseline directory protocol."""
    if pct <= 1 and not overrides:
        return baseline_protocol()
    return adaptive_protocol(pct, **overrides)


@dataclass
class ExperimentRunner:
    """Memoizing simulation runner shared by all figure reproductions."""

    arch: ArchConfig = field(default_factory=bench_arch)
    scale: str = "small"
    workloads: tuple[str, ...] = WORKLOAD_NAMES
    verbose: bool = False
    #: Warmup-then-measure (standard methodology): the first execution warms
    #: caches/classifier, only the second is measured.
    warmup: bool = True
    #: Worker processes for batched execution (1 = in-process, no pool).
    workers: int = 1
    #: Optional on-disk result cache shared across sessions.
    store: ResultStore | None = None
    #: Optional execution backend (e.g. a ``RemoteBackend`` sharding figure
    #: grids across ``repro serve`` daemons).  ``None`` = derive from
    #: ``workers`` as the runner always has.
    backend: ExecutionBackend | None = None

    def __post_init__(self) -> None:
        self._results: dict[str, RunStats] = {}
        self._runner = ParallelRunner(
            store=self.store,
            workers=self.workers,
            progress=self._progress if self.verbose else None,
            backend=self.backend,
        )

    # ------------------------------------------------------------------
    def _progress(self, done: int, total: int, job: Job, source: str) -> None:
        print(format_progress(done, total, job, source))

    def job(self, workload: str, proto: ProtocolConfig, arch: ArchConfig | None = None) -> Job:
        """The content-addressed job for one simulation point of this runner."""
        return Job(
            workload=workload,
            proto=proto,
            arch=self.arch if arch is None else arch,
            scale=self.scale,
            warmup=self.warmup,
        )

    def trace(self, workload: str) -> Trace:
        """The (memoized) trace a job of this runner would simulate."""
        return build_trace(self.job(workload, baseline_protocol()))

    # ------------------------------------------------------------------
    def run_jobs(self, jobs: Sequence[Job]) -> list[RunStats]:
        """Execute a batch of jobs; session-memoized, order-preserving."""
        todo = [job for job in jobs if job.key not in self._results]
        if todo:
            for job, stats in zip(todo, self._runner.run(todo)):
                self._results[job.key] = stats
        return [self._results[job.key] for job in jobs]

    def prefetch(self, points: Iterable[tuple[str, ProtocolConfig]]) -> None:
        """Batch-execute (workload, protocol) points ahead of per-point reads.

        Figure generators call this with their whole grid so pending points
        run in parallel and the following ``run`` calls are memo lookups.
        """
        self.run_jobs([self.job(workload, proto) for workload, proto in points])

    def run(self, workload: str, proto: ProtocolConfig) -> RunStats:
        return self.run_jobs([self.job(workload, proto)])[0]

    # ------------------------------------------------------------------
    def pct_sweep(self, workload: str, pcts: tuple[int, ...]) -> dict[int, RunStats]:
        stats = self.run_jobs([self.job(workload, protocol_for_pct(p)) for p in pcts])
        return dict(zip(pcts, stats))

    def baseline(self, workload: str) -> RunStats:
        return self.run(workload, baseline_protocol())

    @property
    def cached_runs(self) -> int:
        return len(self._results)

    @property
    def simulations(self) -> int:
        """Simulations actually executed (memo/store hits excluded)."""
        return self._runner.simulations

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the execution backend (pool / connections); idempotent.

        The in-session result memo survives, so a closed runner can keep
        serving memoized points - only fresh simulations respawn resources.
        """
        self._runner.close()

    def __enter__(self) -> "ExperimentRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Process-wide runner shared by the pytest-benchmark suite so figures that
#: reuse sweep points never re-simulate within one session.
_shared_runner: ExperimentRunner | None = None


def shared_runner() -> ExperimentRunner:
    global _shared_runner
    if _shared_runner is None:
        _shared_runner = ExperimentRunner()
    return _shared_runner
