"""Experiment harness: shared configuration and cached simulation runs.

The harness is the engine behind every figure reproduction.  It provides

* ``bench_arch()`` - the Table-1 system with *capacity-scaled* caches.  The
  paper simulates full benchmark executions (billions of references); our
  traces are ~10^5 references, so the caches are scaled by the same factor
  as the problem sizes (L1-I 4KB, L1-D 8KB, L2 64KB per slice, associativity
  and latencies unchanged) to preserve the working-set:cache pressure ratios
  the classifier reacts to.  Everything else (64 cores, mesh, ACKwise_4,
  DRAM) is Table 1 verbatim.
* ``ExperimentRunner`` - builds each workload trace once and memoizes
  ``RunStats`` per (workload, protocol configuration), so the many figures
  that share sweep points (8, 9, 10, 11 all reuse the PCT sweep) never
  re-simulate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.params import ArchConfig, CacheGeometry, ProtocolConfig, baseline_protocol
from repro.sim.multicore import Simulator
from repro.sim.stats import RunStats
from repro.workloads.base import Trace
from repro.workloads.registry import WORKLOAD_NAMES, load_workload

#: PCT sweep of Figures 8-10 (per-benchmark stacks).
PCT_SWEEP_DETAIL: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)
#: Extended sweep of Figure 11 (geometric means).
PCT_SWEEP_WIDE: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16, 18, 20)
#: Miss-breakdown sweep of Figure 10.
PCT_SWEEP_MISS: tuple[int, ...] = (1, 2, 3, 4, 6, 8)


def bench_arch(num_cores: int = 64) -> ArchConfig:
    """The evaluation system: Table 1 with capacity-scaled caches."""
    return ArchConfig(
        num_cores=num_cores,
        l1i=CacheGeometry(4, 4, 1),
        l1d=CacheGeometry(8, 4, 1),
        l2=CacheGeometry(64, 8, 7),
    )


def adaptive_protocol(pct: int = 4, **overrides) -> ProtocolConfig:
    """The paper's default adaptive configuration at a given PCT.

    The RAT ladder starts at PCT (Section 3.3), so for sweep points beyond
    the default RATmax of 16 (Figure 11 reaches PCT=20) the ceiling follows
    PCT unless explicitly overridden.
    """
    params = dict(
        protocol="adaptive",
        pct=pct,
        classifier="limited",
        limited_k=3,
        remote_policy="rat",
        rat_max=max(16, pct),
        n_rat_levels=2,
    )
    params.update(overrides)
    return ProtocolConfig(**params)


def protocol_for_pct(pct: int, **overrides) -> ProtocolConfig:
    """PCT sweep convention: PCT=1 *is* the baseline directory protocol."""
    if pct <= 1 and not overrides:
        return baseline_protocol()
    return adaptive_protocol(pct, **overrides)


def _proto_key(proto: ProtocolConfig) -> tuple:
    return (
        proto.protocol,
        proto.pct,
        proto.classifier,
        proto.limited_k,
        proto.remote_policy,
        proto.rat_max,
        proto.n_rat_levels,
        proto.one_way,
        proto.directory,
        proto.complete_vote_init,
    )


@dataclass
class ExperimentRunner:
    """Memoizing simulation runner shared by all figure reproductions."""

    arch: ArchConfig = field(default_factory=bench_arch)
    scale: str = "small"
    workloads: tuple[str, ...] = WORKLOAD_NAMES
    verbose: bool = False
    #: Warmup-then-measure (standard methodology): the first execution warms
    #: caches/classifier, only the second is measured.
    warmup: bool = True

    def __post_init__(self) -> None:
        self._traces: dict[str, Trace] = {}
        self._results: dict[tuple[str, tuple], RunStats] = {}

    # ------------------------------------------------------------------
    def trace(self, workload: str) -> Trace:
        cached = self._traces.get(workload)
        if cached is None:
            cached = load_workload(workload, self.arch, scale=self.scale)
            self._traces[workload] = cached
        return cached

    def run(self, workload: str, proto: ProtocolConfig) -> RunStats:
        key = (workload, _proto_key(proto))
        cached = self._results.get(key)
        if cached is None:
            if self.verbose:
                print(f"  simulating {workload} / {proto.protocol} pct={proto.pct} ...")
            sim = Simulator(self.arch, proto, warmup=self.warmup)
            cached = sim.run(self.trace(workload))
            self._results[key] = cached
        return cached

    # ------------------------------------------------------------------
    def pct_sweep(self, workload: str, pcts: tuple[int, ...]) -> dict[int, RunStats]:
        return {pct: self.run(workload, protocol_for_pct(pct)) for pct in pcts}

    def baseline(self, workload: str) -> RunStats:
        return self.run(workload, baseline_protocol())

    @property
    def cached_runs(self) -> int:
        return len(self._results)


#: Process-wide runner shared by the pytest-benchmark suite so figures that
#: reuse sweep points never re-simulate within one session.
_shared_runner: ExperimentRunner | None = None


def shared_runner() -> ExperimentRunner:
    global _shared_runner
    if _shared_runner is None:
        _shared_runner = ExperimentRunner()
    return _shared_runner
