"""Ablation studies for the design choices DESIGN.md calls out.

These complement the paper's own sensitivity studies (Figures 12-14) with
experiments over *our* modelling decisions and over protocol knobs the
paper fixes:

* :func:`link_model_ablation` - epoch-based vs naive next-free-time link
  bandwidth accounting vs no contention (DESIGN.md decision 6);
* :func:`ackwise_pointer_sweep` - ACKwise_p sensitivity (the paper fixes
  p=4 citing [13]);
* :func:`core_count_scaling` - completion-time scaling at 16/36/64 tiles
  (the protocol's premise is that its benefit grows with core count);
* :func:`vote_init_ablation` - the Section 5.3 remark: give the Complete
  classifier the Limited_k learning short-cut.

Every ablation expands its grid into content-addressed jobs and submits the
whole batch through the runner, so points sharing a configuration reuse
cached results and pending points shard across workers like any sweep.
"""

from __future__ import annotations

import dataclasses

from repro.common.params import baseline_protocol
from repro.common.statsutil import geomean
from repro.experiments.figures import FigureResult, _header
from repro.experiments.harness import (
    ExperimentRunner,
    adaptive_protocol,
    bench_arch,
)
from repro.runner.job import Job
from repro.runner.parallel import ParallelRunner

#: Network-sensitive subset used by the ablations (kept small: every
#: ablation point is a fresh simulation that cannot reuse the PCT sweep).
ABLATION_WORKLOADS = ("streamcluster", "dijkstra-ss", "lu-nc", "concomp")


# ----------------------------------------------------------------------
def link_model_ablation(
    runner: ExperimentRunner, workloads: tuple[str, ...] = ABLATION_WORKLOADS
) -> FigureResult:
    """Completion time under the three link-contention models.

    The naive high-water-mark model lets future-scheduled messages (DRAM
    replies) block earlier traffic on idle links; the epoch model does not.
    Expected ordering per workload: none <= epoch <= naive.
    """
    title = "Link-contention model ablation (completion time, normalized to epoch)"
    lines = _header("Ablation: link model", title)
    lines.append(f"{'benchmark':<15}{'none':>9}{'epoch':>9}{'naive':>9}")
    proto = baseline_protocol()
    models = ("none", "epoch", "naive")
    jobs = [
        runner.job(name, proto, arch=dataclasses.replace(runner.arch, link_model=model))
        for name in workloads
        for model in models
    ]
    stats = iter(runner.run_jobs(jobs))
    data: dict[str, dict[str, float]] = {}
    for name in workloads:
        times = {model: next(stats).completion_time for model in models}
        anchor = times["epoch"]
        row = {m: times[m] / anchor for m in times}
        data[name] = row
        lines.append(f"{name:<15}{row['none']:9.3f}{row['epoch']:9.3f}{row['naive']:9.3f}")
    means = {m: geomean([data[n][m] for n in workloads]) for m in models}
    data["geomean"] = means
    lines.append("-" * 76)
    lines.append(f"{'geomean':<15}{means['none']:9.3f}{means['epoch']:9.3f}{means['naive']:9.3f}")
    return FigureResult("Ablation: link model", title, data, "\n".join(lines))


# ----------------------------------------------------------------------
def ackwise_pointer_sweep(
    runner: ExperimentRunner,
    pointers: tuple[int, ...] = (1, 2, 4, 8),
    workloads: tuple[str, ...] = ABLATION_WORKLOADS,
) -> FigureResult:
    """ACKwise_p sensitivity: broadcast rate and performance vs p.

    Fewer pointers overflow earlier, turning unicast invalidation rounds
    into broadcasts.  The paper fixes p=4; this sweep shows why that is a
    reasonable knee.
    """
    title = "ACKwise_p sensitivity (completion time normalized to p=4)"
    lines = _header("Ablation: ACKwise_p", title)
    lines.append(
        f"{'benchmark':<15}" + "".join(f"{f'T(p={p})':>9}" for p in pointers)
        + "".join(f"{f'bc(p={p})':>9}" for p in pointers)
    )
    jobs = [
        runner.job(
            name,
            baseline_protocol(),
            arch=dataclasses.replace(runner.arch, ackwise_pointers=p),
        )
        for name in workloads
        for p in pointers
    ]
    results = iter(runner.run_jobs(jobs))
    data: dict[str, dict[int, dict[str, float]]] = {}
    for name in workloads:
        per_p: dict[int, dict[str, float]] = {}
        for p in pointers:
            stats = next(results)
            rounds = stats.broadcast_invalidations + stats.unicast_invalidations
            per_p[p] = {
                "time": stats.completion_time,
                "broadcast_fraction": (
                    stats.broadcast_invalidations / rounds if rounds else 0.0
                ),
            }
        anchor = per_p[4]["time"] if 4 in per_p else per_p[pointers[-1]]["time"]
        for p in pointers:
            per_p[p]["time_norm"] = per_p[p]["time"] / anchor
        data[name] = per_p
        lines.append(
            f"{name:<15}"
            + "".join(f"{per_p[p]['time_norm']:9.3f}" for p in pointers)
            + "".join(f"{per_p[p]['broadcast_fraction']:9.3f}" for p in pointers)
        )
    return FigureResult("Ablation: ACKwise_p", title, data, "\n".join(lines))


# ----------------------------------------------------------------------
def core_count_scaling(
    core_counts: tuple[int, ...] = (16, 36, 64),
    workloads: tuple[str, ...] = ("streamcluster", "dijkstra-ss"),
    scale: str = "small",
    warmup: bool = True,
    workers: int = 1,
) -> FigureResult:
    """Adaptive-vs-baseline benefit as the mesh grows.

    The paper's motivation: network distance (and with it the cost of
    line movement and invalidation rounds) grows with the mesh diameter,
    so the adaptive protocol's advantage should not shrink at higher core
    counts.  Spans multiple architectures, so it runs on its own batch
    runner rather than a figure ``ExperimentRunner``.
    """
    title = "Core-count scaling: adaptive/baseline completion time & energy"
    lines = _header("Ablation: core scaling", title)
    lines.append(f"{'benchmark':<15}{'cores':>7}{'T ratio':>9}{'E ratio':>9}")
    protos = (baseline_protocol(), adaptive_protocol())
    jobs = [
        Job(workload=name, proto=proto, arch=bench_arch(n), scale=scale, warmup=warmup)
        for name in workloads
        for n in core_counts
        for proto in protos
    ]
    with ParallelRunner(workers=workers) as runner:
        stats = iter(runner.run(jobs))
    data: dict[str, dict[int, tuple[float, float]]] = {}
    for name in workloads:
        per_n: dict[int, tuple[float, float]] = {}
        for n in core_counts:
            base, adapt = next(stats), next(stats)
            ratio = (
                adapt.completion_time / base.completion_time,
                adapt.energy.total / base.energy.total,
            )
            per_n[n] = ratio
            lines.append(f"{name:<15}{n:>7}{ratio[0]:9.3f}{ratio[1]:9.3f}")
        data[name] = per_n
    return FigureResult("Ablation: core scaling", title, data, "\n".join(lines))


# ----------------------------------------------------------------------
def vote_init_ablation(
    runner: ExperimentRunner,
    workloads: tuple[str, ...] = ("streamcluster", "dijkstra-ss", "radix", "bodytrack"),
) -> FigureResult:
    """Complete classifier with the Section 5.3 learning short-cut.

    The benchmarks are those the paper names: streamcluster/dijkstra-ss
    (where Limited_3's vote inheritance *helps*) and radix/bodytrack (where
    inheriting the first sharer's mode misleads Limited_1).
    """
    title = "Complete classifier vote-init short-cut (normalized to plain Complete)"
    lines = _header("Ablation: vote-init", title)
    lines.append(f"{'benchmark':<15}{'T ratio':>9}{'E ratio':>9}")
    plain = adaptive_protocol(classifier="complete")
    shortcut = adaptive_protocol(classifier="complete", complete_vote_init=True)
    runner.prefetch((n, p) for n in workloads for p in (plain, shortcut))
    data: dict[str, tuple[float, float]] = {}
    tr_all, er_all = [], []
    for name in workloads:
        ref = runner.run(name, plain)
        alt = runner.run(name, shortcut)
        tr = alt.completion_time / ref.completion_time
        er = alt.energy.total / ref.energy.total
        data[name] = (tr, er)
        tr_all.append(tr)
        er_all.append(er)
        lines.append(f"{name:<15}{tr:9.3f}{er:9.3f}")
    summary = (geomean(tr_all), geomean(er_all))
    data["geomean"] = summary
    lines.append("-" * 76)
    lines.append(f"{'geomean':<15}{summary[0]:9.3f}{summary[1]:9.3f}")
    return FigureResult("Ablation: vote-init", title, data, "\n".join(lines))
