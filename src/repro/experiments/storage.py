"""Section 3.6 storage-overhead arithmetic.

Reproduces every number in the paper's storage analysis:

* 0.19 KB of utilization bits in the L1 caches (neglected),
* 18 KB per core for the Limited_3 classifier (36 bits/entry),
* 192 KB per core for the Complete classifier (384 bits/entry),
* 12 KB per core for ACKwise_4 (24 bits/entry),
* 32 KB per core for a full-map directory (64 bits/entry),
* Limited_3 + ACKwise_4 < full-map,
* +5.7% over the ACKwise_4 baseline; Complete +60%.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.params import ArchConfig, ProtocolConfig


@dataclass(frozen=True)
class StorageReport:
    """Per-core storage accounting (bytes unless noted)."""

    l1_utilization_bytes: float
    classifier_bits_per_entry: int
    classifier_bytes: float
    sharer_bits_per_entry: int
    sharer_bytes: float
    fullmap_bytes: float
    baseline_total_bytes: float
    overhead_fraction: float  # classifier bytes over the baseline total

    @property
    def classifier_kb(self) -> float:
        return self.classifier_bytes / 1024

    @property
    def sharer_kb(self) -> float:
        return self.sharer_bytes / 1024

    @property
    def fullmap_kb(self) -> float:
        return self.fullmap_bytes / 1024

    def beats_fullmap(self) -> bool:
        """Classifier + limited directory smaller than a full-map directory?"""
        return self.classifier_bytes + self.sharer_bytes < self.fullmap_bytes


def utilization_counter_bits(pct: int) -> int:
    """Bits of the L1 private-utilization counter (2 for the optimal PCT=4)."""
    return max(1, math.ceil(math.log2(max(2, pct))))


def classifier_bits_per_entry(proto: ProtocolConfig, num_cores: int) -> int:
    """Locality-tracking bits per directory entry (Figure 6/7 fields)."""
    util_bits = max(1, math.ceil(math.log2(proto.rat_max)))
    rat_bits = max(1, math.ceil(math.log2(max(2, proto.n_rat_levels))))
    per_core = 1 + util_bits + rat_bits  # mode + remote utilization + RAT level
    if proto.classifier == "complete":
        return num_cores * per_core
    core_id_bits = max(1, (num_cores - 1).bit_length())
    return proto.limited_k * (core_id_bits + per_core)


def sharer_bits_per_entry(proto: ProtocolConfig, arch: ArchConfig) -> int:
    """Sharer-tracking bits per directory entry (ACKwise_p or full map)."""
    if proto.directory == "fullmap":
        return arch.num_cores
    core_id_bits = max(1, (arch.num_cores - 1).bit_length())
    return arch.ackwise_pointers * core_id_bits


def storage_report(arch: ArchConfig | None = None, proto: ProtocolConfig | None = None) -> StorageReport:
    """Compute the Section 3.6 storage numbers for a configuration."""
    arch = arch if arch is not None else ArchConfig()
    proto = proto if proto is not None else ProtocolConfig()

    # L1 tag extensions: the private-utilization counter per L1 line.
    util_bits = utilization_counter_bits(proto.pct)
    l1_lines = arch.l1i.num_lines + arch.l1d.num_lines
    l1_utilization_bytes = l1_lines * util_bits / 8

    # Directory entries: one per L2 line (directory integrated in L2 tags).
    entries = arch.l2.num_lines
    cls_bits = classifier_bits_per_entry(proto, arch.num_cores)
    classifier_bytes = entries * cls_bits / 8
    shr_bits = sharer_bits_per_entry(proto, arch)
    sharer_bytes = entries * shr_bits / 8
    fullmap_bytes = entries * arch.num_cores / 8

    # Baseline per-core storage: L1-I + L1-D + L2 data + ACKwise directory.
    baseline_total = (
        arch.l1i.size_kb * 1024
        + arch.l1d.size_kb * 1024
        + arch.l2.size_kb * 1024
        + sharer_bytes
    )
    overhead = (classifier_bytes + l1_utilization_bytes) / baseline_total
    return StorageReport(
        l1_utilization_bytes=l1_utilization_bytes,
        classifier_bits_per_entry=cls_bits,
        classifier_bytes=classifier_bytes,
        sharer_bits_per_entry=shr_bits,
        sharer_bytes=sharer_bytes,
        fullmap_bytes=fullmap_bytes,
        baseline_total_bytes=baseline_total,
        overhead_fraction=overhead,
    )


def storage_table() -> str:
    """Render the Section 3.6 comparison at Table-1 parameters."""
    arch = ArchConfig()
    limited = storage_report(arch, ProtocolConfig(classifier="limited", limited_k=3))
    complete = storage_report(arch, ProtocolConfig(classifier="complete"))
    lines = [
        "Section 3.6 storage overheads (per core, Table-1 configuration)",
        f"  L1 utilization bits            : {limited.l1_utilization_bytes / 1024:6.2f} KB",
        f"  Limited_3 classifier           : {limited.classifier_kb:6.2f} KB "
        f"({limited.classifier_bits_per_entry} bits/entry)",
        f"  Complete classifier            : {complete.classifier_kb:6.2f} KB "
        f"({complete.classifier_bits_per_entry} bits/entry)",
        f"  ACKwise_4 directory            : {limited.sharer_kb:6.2f} KB "
        f"({limited.sharer_bits_per_entry} bits/entry)",
        f"  Full-map directory             : {limited.fullmap_kb:6.2f} KB",
        f"  Limited_3 + ACKwise_4 < full-map: {limited.beats_fullmap()}",
        f"  Overhead vs ACKwise_4 baseline : Limited_3 {limited.overhead_fraction:6.1%}, "
        f"Complete {complete.overhead_fraction:6.1%}",
    ]
    return "\n".join(lines)
