"""Experiment harness: figure reproductions, sweeps, storage arithmetic."""

from repro.experiments.figures import FIGURES, FigureResult
from repro.experiments.harness import (
    PCT_SWEEP_DETAIL,
    PCT_SWEEP_MISS,
    PCT_SWEEP_WIDE,
    ExperimentRunner,
    adaptive_protocol,
    bench_arch,
    protocol_for_pct,
    shared_runner,
)
from repro.experiments.storage import StorageReport, storage_report, storage_table

__all__ = [
    "FIGURES",
    "FigureResult",
    "ExperimentRunner",
    "PCT_SWEEP_DETAIL",
    "PCT_SWEEP_MISS",
    "PCT_SWEEP_WIDE",
    "StorageReport",
    "adaptive_protocol",
    "bench_arch",
    "protocol_for_pct",
    "shared_runner",
    "storage_report",
    "storage_table",
]
