"""repro - reproduction of "The Locality-Aware Adaptive Cache Coherence
Protocol" (Kurian, Khan, Devadas - ISCA 2013).

Public API quickstart::

    from repro import ArchConfig, ProtocolConfig, Simulator, load_workload

    arch = ArchConfig(num_cores=64)
    sim = Simulator(arch, ProtocolConfig(pct=4))
    trace = load_workload("streamcluster", arch, scale="small")
    stats = sim.run(trace)
    print(stats.completion_time, stats.energy.total)
"""

from repro.common import (
    AccessKind,
    ArchConfig,
    CacheGeometry,
    EnergyConfig,
    MESIState,
    MissType,
    ProtocolConfig,
    SharerMode,
    baseline_protocol,
)
from repro.common.params import (
    dls_protocol,
    neat_protocol,
    phase_protocol,
    victim_replication_protocol,
)
from repro.runner import Job, ParallelRunner, ResultStore, SweepGrid
from repro.sim import RunStats, Simulator
from repro.workloads import WORKLOAD_NAMES, load_workload
from repro.workloads.tracefile import load_trace, save_trace

__version__ = "1.2.0"

__all__ = [
    "AccessKind",
    "ArchConfig",
    "CacheGeometry",
    "EnergyConfig",
    "Job",
    "MESIState",
    "MissType",
    "ParallelRunner",
    "ProtocolConfig",
    "ResultStore",
    "RunStats",
    "SharerMode",
    "Simulator",
    "SweepGrid",
    "WORKLOAD_NAMES",
    "__version__",
    "baseline_protocol",
    "dls_protocol",
    "load_trace",
    "load_workload",
    "neat_protocol",
    "phase_protocol",
    "save_trace",
    "victim_replication_protocol",
]
