"""Trace-driven multicore simulator and its statistics."""

from repro.sim.multicore import Simulator
from repro.sim.stats import LatencyBreakdown, MissStats, RunStats, UtilizationHistogram

__all__ = [
    "LatencyBreakdown",
    "MissStats",
    "RunStats",
    "Simulator",
    "UtilizationHistogram",
]
