"""Trace-driven multicore timing simulator.

Executes one ``Trace`` (per-core instruction/reference streams) over the
``ProtocolEngine``.  Cores are in-order single-issue @ 1 GHz (Table 1):
every instruction costs one cycle of compute, memory references additionally
pay the L1 latency on a hit or the decomposed miss latency returned by the
protocol engine.

Scheduling is *min-clock*: the core with the smallest local clock executes
its next record, which guarantees nondecreasing service times at shared
resources (home L2 slices, mesh links, DRAM queues) and a well-defined
coherence order.

Synchronization (the "Synchronization" stack of Figure 9):

* **barriers** block arriving cores until all have arrived; everyone resumes
  at ``max(arrivals) + barrier_latency``;
* **locks** are FIFO: min-clock processing makes heap order equal arrival
  order, so a blocked core parks in the lock queue and is released by the
  unlocking core.

With ``warmup=True`` the trace is executed twice over the same engine and
only the second execution is measured - the standard warmup/measurement
methodology.  Short synthetic traces are otherwise dominated by the initial
cold-miss burst into DRAM, which belongs to neither protocol.
"""

from __future__ import annotations

import gc
import heapq
from collections import deque
from functools import partial

from repro import accel
from repro.common import addr as addrmod
from repro.common.errors import SimulationError
from repro.common.params import ArchConfig, EnergyConfig, ProtocolConfig
from repro.common.types import Op
from repro.energy.model import EnergyModel
from repro.obs import TELEMETRY
from repro.protocol.base import AccessResult, ProtocolEngineBase
from repro.protocol.engine import make_engine
from repro.sim.stats import LatencyBreakdown, RunStats
from repro.workloads.base import Trace


class _LockState:
    __slots__ = ("held_by", "queue")

    def __init__(self) -> None:
        self.held_by = -1
        self.queue: deque[tuple[int, float]] = deque()  # (core, arrival time)


class Simulator:
    """Public facade: configure once, ``run`` any number of traces."""

    def __init__(
        self,
        arch: ArchConfig | None = None,
        proto: ProtocolConfig | None = None,
        energy: EnergyConfig | None = None,
        verify: bool = False,
        warmup: bool = False,
    ) -> None:
        self.arch = arch if arch is not None else ArchConfig()
        self.proto = proto if proto is not None else ProtocolConfig()
        self.energy_model = EnergyModel(energy if energy is not None else EnergyConfig())
        self.verify = verify
        self.warmup = warmup
        # Scheduler fast-path hit counts of the most recent _execute pass
        # (telemetry snapshot inputs; not part of RunStats).
        self._fast_read_hits = 0
        self._fast_write_hits = 0

    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> RunStats:
        """Simulate ``trace`` to completion and return its statistics.

        The cyclic garbage collector is suspended for the duration of the
        run: the simulator allocates almost exclusively acyclic objects
        (tuples, cache lines, results) that reference counting reclaims
        immediately, so generation-0 sweeps are pure overhead (~10% of the
        hot loop).  The collector is restored to its previous state on
        exit; results are unaffected.
        """
        arch = self.arch
        if trace.num_cores != arch.num_cores:
            raise SimulationError(
                f"trace {trace.name!r} built for {trace.num_cores} cores, "
                f"architecture has {arch.num_cores}"
            )
        engine = make_engine(arch, self.proto, verify=self.verify)
        # Telemetry is per *phase*, never per record: with the sink disabled
        # this is one attribute check per run, and with it enabled the hot
        # loops below are untouched - RunStats stay bit-identical either way
        # (the neutrality property test pins this).
        tel = TELEMETRY if TELEMETRY.enabled else None
        run_span = 0
        if tel is not None:
            run_span = tel.begin(
                "sim.run",
                benchmark=trace.name,
                protocol=self.proto.protocol,
                cores=arch.num_cores,
                records=trace.total_records,
            )
            # Which implementation each kernel actually uses this run
            # (compiled vs pure Python) - the provenance the bench reports
            # and the trend gate rely on (DESIGN.md secs. 12 and 14).
            tel.event(
                "accel.active",
                implementation=engine.network.implementation,
                sched="accel" if accel.sched_kernel_class() is not None else "fallback",
            )
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            clocks = [0.0] * arch.num_cores
            if self.warmup:
                phase = tel.begin("sim.phase.warmup") if tel is not None else 0
                warm_bd = [LatencyBreakdown() for _ in range(arch.num_cores)]
                clocks = self._execute(engine, trace, clocks, warm_bd)
                engine.reset_stats()
                if tel is not None:
                    tel.end(phase)
            measure_start = max(clocks) if clocks else 0.0
            phase = tel.begin("sim.phase.simulate") if tel is not None else 0
            breakdowns = [LatencyBreakdown() for _ in range(arch.num_cores)]
            clocks = self._execute(engine, trace, clocks, breakdowns)
            completion = (max(clocks) if clocks else 0.0) - measure_start
            if tel is not None:
                tel.end(phase)
            if self.verify:
                phase = tel.begin("sim.phase.verify") if tel is not None else 0
                # Beyond the per-access golden checks: no write may be lost
                # even if the trace never re-reads it.
                engine.check_final_state()
                if tel is not None:
                    tel.end(phase)
        finally:
            if gc_was_enabled:
                gc.enable()
            if tel is not None:
                self._emit_run_telemetry(tel, engine)
                tel.end(run_span)
        #: The engine of the most recent run, kept for post-run inspection
        #: (the trace-level differential harness compares golden memories
        #: across protocol families after full simulations).
        self.last_engine = engine
        return self._collect(trace, engine, completion, breakdowns)

    # ------------------------------------------------------------------
    def _emit_run_telemetry(self, tel, engine: ProtocolEngineBase) -> None:
        """Counter snapshot of the measured pass (the internal rates the
        paper's claims rest on: fast-path hits, classification mix, mesh
        slot recycling).  Counters are increments, so concurrent runs in
        one process sum cleanly at render time."""
        miss = engine.miss_stats
        tel.count("sim.l1d.accesses", miss.accesses)
        tel.count("sim.l1d.hits", miss.hits)
        tel.count("sim.fastpath.read_hits", self._fast_read_hits)
        tel.count("sim.fastpath.write_hits", self._fast_write_hits)
        classifier = engine.classifier
        if classifier is not None:
            tel.count("classifier.promotions", classifier.promotions)
            tel.count("classifier.demotions", classifier.demotions)
            tel.count("classifier.remote_accesses", classifier.remote_accesses)
            tel.count("classifier.vote_decisions", classifier.vote_decisions)
        network = engine.network
        tel.count(f"sim.runs.{network.implementation}")
        tel.count("mesh.messages", network.messages_sent)
        tel.count("mesh.flits", network.flits_sent)
        tel.count("mesh.link_flit_traversals", network.link_flit_traversals)
        tel.count("mesh.slot_recycles", network.slot_recycles)
        tel.count("mesh.overflow_entries", len(network._overflow))
        tel.count("dram.requests", engine.memsys.total_requests)

    # ------------------------------------------------------------------
    def _execute(
        self,
        engine: ProtocolEngineBase,
        trace: Trace,
        start_clocks: list[float],
        breakdowns: list[LatencyBreakdown],
    ) -> list[float]:
        """Run every core through its stream once; return final clocks.

        This is the simulator's hottest loop.  It walks the trace's
        columnar IR directly (one ``array('q')`` triple per core, a cursor
        each) instead of unpacking record tuples, and it schedules with a
        single ``heappushpop`` per record - one sift instead of the
        pop-then-push pair of the record-at-a-time interpreter.  When the
        executing core remains the min-clock choice, ``heappushpop``
        returns its own entry untouched and the core keeps running without
        any heap movement.  All transformations preserve the exact
        min-clock schedule - ``(t, core)`` tuple order is the heap order -
        so the produced statistics are bit-identical to the interpreter
        this replaces.

        With the compiled scheduler kernel available (accelerator phase 2,
        DESIGN.md sec. 14) the walk below runs natively instead, exiting
        to :meth:`_execute_kernel`'s trampoline only on synchronization
        records; this pure-Python loop stays the ungated, bit-identical
        reference (``REPRO_NO_ACCEL``/``REPRO_NO_ACCEL_SCHED`` force it).
        """
        kernel_cls = accel.sched_kernel_class()
        if kernel_cls is not None:
            return self._execute_kernel(
                kernel_cls, engine, trace, start_clocks, breakdowns
            )
        arch = self.arch
        num_cores = arch.num_cores
        # Materialized list views of the columnar IR: indexing an
        # ``array('q')`` boxes a fresh int object per read, while a list
        # returns the already-boxed object.  One bulk conversion per
        # execution buys back three boxings per record in the loop below.
        ops_cols = [list(col) for col in trace.ops]
        addr_cols = [list(col) for col in trace.addresses]
        work_cols = [list(col) for col in trace.works]
        lengths = [len(col) for col in ops_cols]
        indices = [0] * num_cores
        clocks = list(start_clocks)
        l1_hit_latency = float(arch.l1d.latency)
        barrier_latency = arch.barrier_latency
        lock_latency = arch.lock_latency
        access = engine.access
        #: Release-boundary callback (Neat self-downgrade batching): only
        #: consulted at unlock/barrier/end-of-trace, so families without
        #: one (the default None) add a single is-not-None test to those
        #: rare opcodes and nothing to the record loop.
        sync_cb = engine.sync_boundary_hook()
        heappush, heappop = heapq.heappush, heapq.heappop
        heappushpop = heapq.heappushpop

        # Inline L1-hit fast path (see ProtocolEngineBase.scheduler_fast_path):
        # families with bookkeeping-only hits let the scheduler service them
        # without an ``access`` call.  Hoisted to locals once per execution.
        fast = engine.scheduler_fast_path()
        if fast is not None:
            f_buckets = fast["buckets"]
            f_set_bits = fast["set_bits"]
            f_stores = fast["stores"]
            f_mask = fast["set_mask"]
            f_exclusive = fast["exclusive"]
            f_modified = fast["modified"]
        else:
            # No inline hit path: probe permanently-empty surrogate buckets
            # (the engine fills its own L1 structures, never these), so the
            # record loop needs no per-record "is there a fast path?" check
            # - every probe misses and every access takes the full path.
            f_buckets = [{}] * num_cores
            f_set_bits = 0
            f_stores = None
            f_mask = 0
            f_exclusive = f_modified = None
        #: Deferred hit counters, flushed into the engine's aggregate
        #: counters (plain integer sums - order-independent) at the end
        #: of this execution, keeping the per-hit work to list updates.
        hits_r = [0] * num_cores
        hits_w = [0] * num_cores
        line_bits = addrmod.LINE_BITS

        ready: list[tuple[float, int]] = [
            (clocks[core], core) for core in range(num_cores) if lengths[core]
        ]
        heapq.heapify(ready)
        blocked = 0  # cores parked at barriers or lock queues

        #: Per-core compute-cycle accumulator, flushed into the breakdowns
        #: at the end: a local float add per record instead of an attribute
        #: round-trip.  Addition order per core is unchanged, and the final
        #: flush adds to a zero field, so the result is bit-identical.
        compute = [0.0] * num_cores

        barrier_waiters: dict[int, list[tuple[int, float]]] = {}
        locks: dict[int, _LockState] = {}

        op_read, op_write = int(Op.READ), int(Op.WRITE)
        op_barrier, op_lock, op_unlock = int(Op.BARRIER), int(Op.LOCK), int(Op.UNLOCK)

        if ready:
            now, core = heappop(ready)
        else:
            core = -1
        while core >= 0:
            ops = ops_cols[core]
            addresses = addr_cols[core]
            works = work_cols[core]
            n = lengths[core]
            i = indices[core]
            bd = breakdowns[core]
            acc = compute[core]
            core_sets = core << f_set_bits
            while True:
                op = ops[i]
                work = works[i]

                if op == op_read:
                    work += l1_hit_latency
                    acc += work
                    t = now + work
                    address = addresses[i]
                    i += 1
                    line = address >> line_bits
                    entry = f_buckets[core_sets | (line & f_mask)].get(line)
                    if entry is not None:
                        # Inline L1 read hit: exactly the bookkeeping the
                        # engine's access() hit branch performs (the
                        # hit/energy counters are deferred, see above).
                        store = f_stores[core]
                        counter = store._use_counter + 1
                        store._use_counter = counter
                        entry.last_use = counter
                        entry.utilization += 1
                        entry.last_access = t
                        hits_r[core] += 1
                    else:
                        result = access(core, False, address, t)
                        if not result.hit:
                            bd.l1_to_l2 += result.l1_to_l2
                            bd.l2_waiting += result.l2_waiting
                            bd.l2_sharers += result.l2_sharers
                            bd.l2_offchip += result.l2_offchip
                            t += result.latency
                elif op == op_write:
                    work += l1_hit_latency
                    acc += work
                    t = now + work
                    address = addresses[i]
                    i += 1
                    line = address >> line_bits
                    entry = f_buckets[core_sets | (line & f_mask)].get(line)
                    if entry is not None and entry.state >= f_exclusive:
                        # Inline L1 write hit (the silent E -> M upgrade).
                        store = f_stores[core]
                        counter = store._use_counter + 1
                        store._use_counter = counter
                        entry.last_use = counter
                        entry.utilization += 1
                        entry.last_access = t
                        entry.state = f_modified
                        hits_w[core] += 1
                    else:
                        result = access(core, True, address, t)
                        if not result.hit:
                            bd.l1_to_l2 += result.l1_to_l2
                            bd.l2_waiting += result.l2_waiting
                            bd.l2_sharers += result.l2_sharers
                            bd.l2_offchip += result.l2_offchip
                            t += result.latency
                elif op == op_barrier:
                    t = now + work
                    i += 1
                    if sync_cb is not None:
                        sync_cb(core, t)  # a barrier arrival is a release
                    indices[core] = i  # release below may re-queue this core
                    compute[core] = acc + work
                    address = addresses[i - 1]
                    waiters = barrier_waiters.setdefault(address, [])
                    waiters.append((core, t))
                    if len(waiters) == num_cores:
                        release = max(at for _, at in waiters) + barrier_latency
                        for wcore, at in waiters:
                            breakdowns[wcore].sync += release - at
                            clocks[wcore] = release
                            if indices[wcore] < lengths[wcore]:
                                heappush(ready, (release, wcore))
                        blocked -= len(waiters) - 1
                        del barrier_waiters[address]
                    else:
                        blocked += 1
                    # This core's clock is set by the release; move on.
                    if ready:
                        now, core = heappop(ready)
                    else:
                        core = -1
                    break
                elif op == op_lock:
                    t = now + work
                    i += 1
                    acc += work
                    state = locks.setdefault(addresses[i - 1], _LockState())
                    if state.held_by < 0:
                        state.held_by = core
                        bd.sync += lock_latency
                        t += lock_latency
                    else:
                        indices[core] = i
                        compute[core] = acc
                        state.queue.append((core, t))
                        blocked += 1
                        # Parked; the unlocking core re-queues us.
                        if ready:
                            now, core = heappop(ready)
                        else:
                            core = -1
                        break
                elif op == op_unlock:
                    t = now + work
                    i += 1
                    indices[core] = i
                    acc += work
                    address = addresses[i - 1]
                    state = locks.get(address)
                    if state is None or state.held_by != core:
                        raise SimulationError(
                            f"core {core} unlocks lock {address} it does not hold"
                        )
                    t += lock_latency
                    bd.sync += lock_latency
                    if sync_cb is not None:
                        sync_cb(core, t)  # flush before the lock hand-off
                    if state.queue:
                        wcore, arrival = state.queue.popleft()
                        state.held_by = wcore
                        breakdowns[wcore].sync += t - arrival
                        clocks[wcore] = t
                        blocked -= 1
                        if indices[wcore] < lengths[wcore]:
                            heappush(ready, (t, wcore))
                        elif state.queue:
                            raise SimulationError(
                                f"core {wcore} acquired lock {address} at end of trace "
                                "while others wait"
                            )
                    else:
                        state.held_by = -1
                else:  # Op.WORK
                    t = now + work
                    i += 1
                    acc += work

                if i < n:
                    if ready:
                        # Keep-running pre-check against the heap root: the
                        # same (t, core) tuple order heappushpop applies,
                        # without allocating the entry or sifting when this
                        # core remains the min-clock choice.
                        r0 = ready[0]
                        rt = r0[0]
                        if t < rt or (t == rt and core < r0[1]):
                            now = t  # still the min-clock core: keep going
                            continue
                        indices[core] = i
                        clocks[core] = t
                        compute[core] = acc
                        now, core = heappushpop(ready, (t, core))
                    else:
                        now = t  # only runnable core left
                        continue
                else:
                    indices[core] = i
                    clocks[core] = t
                    compute[core] = acc
                    if ready:
                        now, core = heappop(ready)
                    else:
                        core = -1
                break

        if blocked:
            raise SimulationError(
                f"deadlock: {blocked} cores still blocked at end of trace "
                f"(barriers awaiting: {sorted(barrier_waiters)})"
            )
        if sync_cb is not None:
            # End of the trace is its final release: no buffered store may
            # outlive the execution (the verify-mode final-state sweep and
            # the warmup -> measure transition both rely on this).
            for core in range(num_cores):
                sync_cb(core, clocks[core])
        for core in range(num_cores):
            breakdowns[core].compute += compute[core]
        reads = 0
        writes = 0
        if fast is not None:
            l1s = fast["l1s"]
            for core in range(num_cores):
                r, w = hits_r[core], hits_w[core]
                l1s[core].hits += r + w
                reads += r
                writes += w
            engine.miss_stats.hits += reads + writes
            engine.energy.l1d_reads += reads
            engine.energy.l1d_writes += writes
        # Scheduler fast-path hit counts of the most recent execution, read
        # by the telemetry snapshot (two attribute stores; no stats impact).
        self._fast_read_hits = reads
        self._fast_write_hits = writes
        return clocks

    # ------------------------------------------------------------------
    def _execute_kernel(
        self,
        kernel_cls,
        engine: ProtocolEngineBase,
        trace: Trace,
        start_clocks: list[float],
        breakdowns: list[LatencyBreakdown],
    ) -> list[float]:
        """One execution pass on the compiled scheduler kernel.

        The kernel owns cursors, heap, compute accumulators and the inline
        L1-hit path over the raw ``array('q')`` columns; this trampoline
        owns everything synchronization-shaped - barrier rendezvous, lock
        FIFOs, ``sync_boundary_hook`` boundaries, deadlock detection - at
        one FFI crossing per sync record.  Every arithmetic step below is
        the corresponding ``_execute`` branch verbatim, so the produced
        statistics stay bit-identical to the pure-Python loop.
        """
        arch = self.arch
        num_cores = arch.num_cores
        barrier_latency = arch.barrier_latency
        lock_latency = arch.lock_latency
        sync_cb = engine.sync_boundary_hook()
        fast = engine.scheduler_fast_path()
        kernel = kernel_cls(
            trace.ops,
            trace.addresses,
            trace.works,
            start_clocks,
            float(arch.l1d.latency),
            engine.access,
            AccessResult,
            fast,
        )
        stores = fast["stores"] if fast is not None else ()
        addr_cols = trace.addresses
        work_cols = trace.works
        op_barrier, op_lock = int(Op.BARRIER), int(Op.LOCK)
        barrier_waiters: dict[int, list[tuple[int, float]]] = {}
        locks: dict[int, _LockState] = {}
        blocked = 0
        run = kernel.run
        wake = kernel.wake
        continue_at = kernel.continue_at
        try:
            note = kernel.note
            for core, store in enumerate(stores):
                store._observer = partial(note, core)
            while True:
                exit_ = run()
                if exit_ is None:
                    break
                op, core, now, i, acc = exit_
                address = addr_cols[core][i]
                work = work_cols[core][i]
                if op == op_barrier:
                    t = now + work
                    if sync_cb is not None:
                        sync_cb(core, t)  # a barrier arrival is a release
                    kernel.advance(core, i + 1, acc + work)
                    waiters = barrier_waiters.setdefault(address, [])
                    waiters.append((core, t))
                    if len(waiters) == num_cores:
                        release = max(at for _, at in waiters) + barrier_latency
                        for wcore, at in waiters:
                            breakdowns[wcore].sync += release - at
                            wake(wcore, release)
                        blocked -= len(waiters) - 1
                        del barrier_waiters[address]
                    else:
                        blocked += 1
                elif op == op_lock:
                    t = now + work
                    acc += work
                    state = locks.setdefault(address, _LockState())
                    if state.held_by < 0:
                        state.held_by = core
                        breakdowns[core].sync += lock_latency
                        t += lock_latency
                        continue_at(core, i + 1, acc, t)
                    else:
                        kernel.advance(core, i + 1, acc)
                        state.queue.append((core, t))
                        blocked += 1
                else:  # Op.UNLOCK
                    t = now + work
                    acc += work
                    state = locks.get(address)
                    if state is None or state.held_by != core:
                        raise SimulationError(
                            f"core {core} unlocks lock {address} it does not hold"
                        )
                    t += lock_latency
                    breakdowns[core].sync += lock_latency
                    if sync_cb is not None:
                        sync_cb(core, t)  # flush before the lock hand-off
                    if state.queue:
                        wcore, arrival = state.queue.popleft()
                        state.held_by = wcore
                        breakdowns[wcore].sync += t - arrival
                        blocked -= 1
                        if not wake(wcore, t) and state.queue:
                            raise SimulationError(
                                f"core {wcore} acquired lock {address} at end of "
                                "trace while others wait"
                            )
                    else:
                        state.held_by = -1
                    continue_at(core, i + 1, acc, t)
            if blocked:
                raise SimulationError(
                    f"deadlock: {blocked} cores still blocked at end of trace "
                    f"(barriers awaiting: {sorted(barrier_waiters)})"
                )
            clocks = kernel.clocks()
            if sync_cb is not None:
                for core in range(num_cores):
                    sync_cb(core, clocks[core])
            hits_r, hits_w, rows = kernel.finish()
            for core in range(num_cores):
                bd = breakdowns[core]
                compute, l1_to_l2, l2_waiting, l2_sharers, l2_offchip = rows[core]
                bd.compute += compute
                bd.l1_to_l2 += l1_to_l2
                bd.l2_waiting += l2_waiting
                bd.l2_sharers += l2_sharers
                bd.l2_offchip += l2_offchip
            reads = 0
            writes = 0
            if fast is not None:
                l1s = fast["l1s"]
                for core in range(num_cores):
                    r, w = hits_r[core], hits_w[core]
                    l1s[core].hits += r + w
                    reads += r
                    writes += w
                engine.miss_stats.hits += reads + writes
                engine.energy.l1d_reads += reads
                engine.energy.l1d_writes += writes
            self._fast_read_hits = reads
            self._fast_write_hits = writes
            return clocks
        finally:
            for store in stores:
                store._observer = None

    # ------------------------------------------------------------------
    def _collect(
        self,
        trace: Trace,
        engine: ProtocolEngineBase,
        completion: float,
        breakdowns: list[LatencyBreakdown],
    ) -> RunStats:
        instructions = trace.instructions
        # Instruction fetches are modeled analytically (DESIGN.md decision 3): the
        # in-order core already pays 1 cycle/instruction and R-NUCA's
        # cluster replication keeps the instruction stream resident in L1-I,
        # so L1-I contributes energy proportional to instruction count.
        engine.energy.l1i_reads += instructions

        total = LatencyBreakdown()
        for bd in breakdowns:
            total.add(bd)
        average = total.scaled(1.0 / max(1, len(breakdowns)))

        stats = RunStats(
            benchmark=trace.name,
            num_cores=self.arch.num_cores,
            completion_time=completion,
            instructions=instructions,
            latency=average,
            miss=engine.miss_stats,
            energy=self.energy_model.breakdown(engine.energy, engine.network),
            inval_histogram=engine.inval_histogram,
            evict_histogram=engine.evict_histogram,
            broadcast_invalidations=engine.sharer_policy.broadcast_invalidations,
            unicast_invalidations=engine.sharer_policy.unicast_invalidations,
            dram_requests=engine.memsys.total_requests,
            network_flits=engine.network.flits_sent,
        )
        classifier = engine.classifier
        if classifier is not None:
            stats.promotions = classifier.promotions
            stats.demotions = classifier.demotions
            stats.remote_accesses = classifier.remote_accesses
        stats.l2_hits = sum(s.hits for s in engine.l2)
        stats.l2_misses = sum(s.misses for s in engine.l2)
        engine.export_stats(stats)
        return stats
