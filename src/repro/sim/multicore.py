"""Trace-driven multicore timing simulator.

Executes one ``Trace`` (per-core instruction/reference streams) over the
``ProtocolEngine``.  Cores are in-order single-issue @ 1 GHz (Table 1):
every instruction costs one cycle of compute, memory references additionally
pay the L1 latency on a hit or the decomposed miss latency returned by the
protocol engine.

Scheduling is *min-clock*: the core with the smallest local clock executes
its next record, which guarantees nondecreasing service times at shared
resources (home L2 slices, mesh links, DRAM queues) and a well-defined
coherence order.

Synchronization (the "Synchronization" stack of Figure 9):

* **barriers** block arriving cores until all have arrived; everyone resumes
  at ``max(arrivals) + barrier_latency``;
* **locks** are FIFO: min-clock processing makes heap order equal arrival
  order, so a blocked core parks in the lock queue and is released by the
  unlocking core.

With ``warmup=True`` the trace is executed twice over the same engine and
only the second execution is measured - the standard warmup/measurement
methodology.  Short synthetic traces are otherwise dominated by the initial
cold-miss burst into DRAM, which belongs to neither protocol.
"""

from __future__ import annotations

import heapq
from collections import deque

from repro.common.errors import SimulationError
from repro.common.params import ArchConfig, EnergyConfig, ProtocolConfig
from repro.common.types import Op
from repro.energy.model import EnergyModel
from repro.protocol.base import ProtocolEngineBase
from repro.protocol.engine import make_engine
from repro.sim.stats import LatencyBreakdown, RunStats
from repro.workloads.base import Trace


class _LockState:
    __slots__ = ("held_by", "queue")

    def __init__(self) -> None:
        self.held_by = -1
        self.queue: deque[tuple[int, float]] = deque()  # (core, arrival time)


class Simulator:
    """Public facade: configure once, ``run`` any number of traces."""

    def __init__(
        self,
        arch: ArchConfig | None = None,
        proto: ProtocolConfig | None = None,
        energy: EnergyConfig | None = None,
        verify: bool = False,
        warmup: bool = False,
    ) -> None:
        self.arch = arch if arch is not None else ArchConfig()
        self.proto = proto if proto is not None else ProtocolConfig()
        self.energy_model = EnergyModel(energy if energy is not None else EnergyConfig())
        self.verify = verify
        self.warmup = warmup

    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> RunStats:
        """Simulate ``trace`` to completion and return its statistics."""
        arch = self.arch
        if trace.num_cores != arch.num_cores:
            raise SimulationError(
                f"trace {trace.name!r} built for {trace.num_cores} cores, "
                f"architecture has {arch.num_cores}"
            )
        engine = make_engine(arch, self.proto, verify=self.verify)
        clocks = [0.0] * arch.num_cores
        if self.warmup:
            warm_bd = [LatencyBreakdown() for _ in range(arch.num_cores)]
            clocks = self._execute(engine, trace, clocks, warm_bd)
            engine.reset_stats()
        measure_start = max(clocks) if clocks else 0.0
        breakdowns = [LatencyBreakdown() for _ in range(arch.num_cores)]
        clocks = self._execute(engine, trace, clocks, breakdowns)
        completion = (max(clocks) if clocks else 0.0) - measure_start
        if self.verify:
            # Beyond the per-access golden checks: no write may be lost even
            # if the trace never re-reads it.
            engine.check_final_state()
        return self._collect(trace, engine, completion, breakdowns)

    # ------------------------------------------------------------------
    def _execute(
        self,
        engine: ProtocolEngineBase,
        trace: Trace,
        start_clocks: list[float],
        breakdowns: list[LatencyBreakdown],
    ) -> list[float]:
        """Run every core through its stream once; return final clocks."""
        arch = self.arch
        num_cores = arch.num_cores
        streams = trace.per_core
        indices = [0] * num_cores
        clocks = list(start_clocks)
        l1_hit_latency = float(arch.l1d.latency)

        ready: list[tuple[float, int]] = [
            (clocks[core], core) for core in range(num_cores) if streams[core]
        ]
        heapq.heapify(ready)
        blocked = 0  # cores parked at barriers or lock queues

        barrier_waiters: dict[int, list[tuple[int, float]]] = {}
        locks: dict[int, _LockState] = {}

        op_read, op_write = int(Op.READ), int(Op.WRITE)
        op_barrier, op_lock, op_unlock = int(Op.BARRIER), int(Op.LOCK), int(Op.UNLOCK)

        while ready:
            now, core = heapq.heappop(ready)
            stream = streams[core]
            op, address, work = stream[indices[core]]
            indices[core] += 1
            bd = breakdowns[core]
            t = now + work

            if op == op_read or op == op_write:
                bd.compute += work + l1_hit_latency
                t += l1_hit_latency
                result = engine.access(core, op == op_write, address, t)
                if not result.hit:
                    bd.l1_to_l2 += result.l1_to_l2
                    bd.l2_waiting += result.l2_waiting
                    bd.l2_sharers += result.l2_sharers
                    bd.l2_offchip += result.l2_offchip
                    t += result.latency
            elif op == op_barrier:
                bd.compute += work
                waiters = barrier_waiters.setdefault(address, [])
                waiters.append((core, t))
                if len(waiters) == num_cores:
                    release = max(at for _, at in waiters) + arch.barrier_latency
                    for wcore, at in waiters:
                        breakdowns[wcore].sync += release - at
                        clocks[wcore] = release
                        if indices[wcore] < len(streams[wcore]):
                            heapq.heappush(ready, (release, wcore))
                    blocked -= len(waiters) - 1
                    del barrier_waiters[address]
                else:
                    blocked += 1
                continue
            elif op == op_lock:
                bd.compute += work
                state = locks.setdefault(address, _LockState())
                if state.held_by < 0:
                    state.held_by = core
                    bd.sync += arch.lock_latency
                    t += arch.lock_latency
                else:
                    state.queue.append((core, t))
                    blocked += 1
                    continue
            elif op == op_unlock:
                bd.compute += work
                state = locks.get(address)
                if state is None or state.held_by != core:
                    raise SimulationError(
                        f"core {core} unlocks lock {address} it does not hold"
                    )
                t += arch.lock_latency
                bd.sync += arch.lock_latency
                if state.queue:
                    wcore, arrival = state.queue.popleft()
                    state.held_by = wcore
                    breakdowns[wcore].sync += t - arrival
                    clocks[wcore] = t
                    blocked -= 1
                    if indices[wcore] < len(streams[wcore]):
                        heapq.heappush(ready, (t, wcore))
                    elif state.queue:
                        raise SimulationError(
                            f"core {wcore} acquired lock {address} at end of trace "
                            "while others wait"
                        )
                else:
                    state.held_by = -1
            else:  # Op.WORK
                bd.compute += work

            clocks[core] = t
            if indices[core] < len(stream):
                heapq.heappush(ready, (t, core))

        if blocked:
            raise SimulationError(
                f"deadlock: {blocked} cores still blocked at end of trace "
                f"(barriers awaiting: {sorted(barrier_waiters)})"
            )
        return clocks

    # ------------------------------------------------------------------
    def _collect(
        self,
        trace: Trace,
        engine: ProtocolEngineBase,
        completion: float,
        breakdowns: list[LatencyBreakdown],
    ) -> RunStats:
        instructions = trace.instructions
        # Instruction fetches are modeled analytically (DESIGN.md decision 3): the
        # in-order core already pays 1 cycle/instruction and R-NUCA's
        # cluster replication keeps the instruction stream resident in L1-I,
        # so L1-I contributes energy proportional to instruction count.
        engine.energy.l1i_reads += instructions

        total = LatencyBreakdown()
        for bd in breakdowns:
            total.add(bd)
        average = total.scaled(1.0 / max(1, len(breakdowns)))

        stats = RunStats(
            benchmark=trace.name,
            num_cores=self.arch.num_cores,
            completion_time=completion,
            instructions=instructions,
            latency=average,
            miss=engine.miss_stats,
            energy=self.energy_model.breakdown(engine.energy, engine.network),
            inval_histogram=engine.inval_histogram,
            evict_histogram=engine.evict_histogram,
            broadcast_invalidations=engine.sharer_policy.broadcast_invalidations,
            unicast_invalidations=engine.sharer_policy.unicast_invalidations,
            dram_requests=engine.memsys.total_requests,
            network_flits=engine.network.flits_sent,
        )
        classifier = engine.classifier
        if classifier is not None:
            stats.promotions = classifier.promotions
            stats.demotions = classifier.demotions
            stats.remote_accesses = classifier.remote_accesses
        stats.l2_hits = sum(s.hits for s in engine.l2)
        stats.l2_misses = sum(s.misses for s in engine.l2)
        engine.export_stats(stats)
        return stats
