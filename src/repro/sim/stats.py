"""Statistics collected during a simulation run.

These map one-to-one onto the paper's evaluation metrics (Section 4.4):

* **completion time** decomposed into Compute, L1-to-L2, L2-waiting,
  L2-to-sharers, L2-to-off-chip and Synchronization (Figure 9's stack);
* **L1-D miss rate with miss-type breakdown** - Cold / Capacity / Upgrade /
  Sharing / Word (Figure 10);
* **dynamic energy breakdown** - L1-I / L1-D / L2 / Directory / Router /
  Link (Figure 8's stack);
* **utilization histograms** of invalidated and evicted lines
  (Figures 1 and 2).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.common.statsutil import UTILIZATION_BUCKETS, bucket_percentages, utilization_bucket
from repro.common.types import MissType
from repro.energy.model import EnergyBreakdown


@dataclass(slots=True)
class LatencyBreakdown:
    """Per-component cycles (the Figure 9 stack)."""

    compute: float = 0.0
    l1_to_l2: float = 0.0
    l2_waiting: float = 0.0
    l2_sharers: float = 0.0
    l2_offchip: float = 0.0
    sync: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.compute
            + self.l1_to_l2
            + self.l2_waiting
            + self.l2_sharers
            + self.l2_offchip
            + self.sync
        )

    def add(self, other: "LatencyBreakdown") -> None:
        self.compute += other.compute
        self.l1_to_l2 += other.l1_to_l2
        self.l2_waiting += other.l2_waiting
        self.l2_sharers += other.l2_sharers
        self.l2_offchip += other.l2_offchip
        self.sync += other.sync

    def scaled(self, factor: float) -> "LatencyBreakdown":
        return LatencyBreakdown(
            compute=self.compute * factor,
            l1_to_l2=self.l1_to_l2 * factor,
            l2_waiting=self.l2_waiting * factor,
            l2_sharers=self.l2_sharers * factor,
            l2_offchip=self.l2_offchip * factor,
            sync=self.sync * factor,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "compute": self.compute,
            "l1_to_l2": self.l1_to_l2,
            "l2_waiting": self.l2_waiting,
            "l2_sharers": self.l2_sharers,
            "l2_offchip": self.l2_offchip,
            "sync": self.sync,
            "total": self.total,
        }

    def to_dict(self) -> dict[str, float]:
        """Field-only mapping that round-trips exactly through :meth:`from_dict`
        (unlike :meth:`as_dict`, which also reports the derived total)."""
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyBreakdown":
        return cls(**{f.name: data[f.name] for f in dataclasses.fields(cls)})


class MissStats:
    """L1-D access/hit/miss counts with per-type miss classification."""

    __slots__ = ("hits", "_miss_counts")

    def __init__(self) -> None:
        self.hits = 0
        self._miss_counts = [0] * len(MissType)

    def record_hit(self) -> None:
        self.hits += 1

    def record_miss(self, miss_type: MissType) -> None:
        self._miss_counts[miss_type] += 1

    @property
    def misses(self) -> int:
        return sum(self._miss_counts)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def count(self, miss_type: MissType) -> int:
        return self._miss_counts[miss_type]

    def breakdown(self) -> dict[str, int]:
        return {mt.name.lower(): self._miss_counts[mt] for mt in MissType}

    def rate_breakdown(self) -> dict[str, float]:
        """Per-type miss rate as a fraction of all L1-D accesses (Fig. 10)."""
        total = self.accesses
        if total == 0:
            return {mt.name.lower(): 0.0 for mt in MissType}
        return {mt.name.lower(): self._miss_counts[mt] / total for mt in MissType}

    def to_dict(self) -> dict:
        """JSON-ready mapping that round-trips through :meth:`from_dict`.

        Miss types are keyed by name, not enum index, so stored results stay
        readable and survive reordering of ``MissType``.
        """
        return {"hits": self.hits, "by_type": self.breakdown()}

    @classmethod
    def from_dict(cls, data: dict) -> "MissStats":
        stats = cls()
        stats.hits = int(data["hits"])
        for name, count in data["by_type"].items():
            stats._miss_counts[MissType[name.upper()]] = int(count)
        return stats


class UtilizationHistogram:
    """Counts of removed L1 lines bucketed by utilization (Figures 1-2)."""

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: dict[str, int] = {b: 0 for b in UTILIZATION_BUCKETS}

    def record(self, utilization: int) -> None:
        if utilization < 1:
            utilization = 1  # a line is used at least once (the filling access)
        self.counts[utilization_bucket(utilization)] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def percentages(self) -> dict[str, float]:
        return bucket_percentages(self.counts)

    def to_dict(self) -> dict[str, int]:
        """JSON-ready mapping that round-trips through :meth:`from_dict`."""
        return dict(self.counts)

    @classmethod
    def from_dict(cls, data: dict) -> "UtilizationHistogram":
        hist = cls()
        hist.counts = {bucket: int(data.get(bucket, 0)) for bucket in UTILIZATION_BUCKETS}
        return hist


@dataclass
class RunStats:
    """Everything measured by one simulation run."""

    benchmark: str = ""
    num_cores: int = 0
    completion_time: float = 0.0  # max core finish time (cycles)
    instructions: int = 0
    latency: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    miss: MissStats = field(default_factory=MissStats)
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    inval_histogram: UtilizationHistogram = field(default_factory=UtilizationHistogram)
    evict_histogram: UtilizationHistogram = field(default_factory=UtilizationHistogram)
    # Protocol-level counters.
    promotions: int = 0
    demotions: int = 0
    remote_accesses: int = 0
    broadcast_invalidations: int = 0
    unicast_invalidations: int = 0
    dram_requests: int = 0
    network_flits: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    # Victim-replication counters (protocol="victim" runs only).
    replicas_created: int = 0
    replica_hits: int = 0
    replica_invalidations: int = 0
    replica_evictions: int = 0
    # Self-invalidation counters (protocol="neat" runs only).
    self_invalidations: int = 0
    write_throughs: int = 0
    # Phase-priority counters (protocol="phase" runs only).
    phase_promotions: int = 0
    phase_demotions: int = 0
    phase_word_accesses: int = 0

    #: Fields serialized via their own to_dict/from_dict rather than as scalars.
    _COMPOSITE_FIELDS = ("latency", "miss", "energy", "inval_histogram", "evict_histogram")

    @property
    def l1d_miss_rate(self) -> float:
        return self.miss.miss_rate

    def to_dict(self) -> dict:
        """Fully serialize the run for the on-disk result cache.

        Derived from ``dataclasses.fields`` so counters added later are
        picked up automatically; only the five composite members need
        explicit handling.  Floats survive the JSON round-trip exactly
        (shortest-repr float serialization), so
        ``RunStats.from_dict(s.to_dict())`` is bit-identical to ``s``.
        """
        out = {
            f.name: getattr(self, f.name)
            for f in dataclasses.fields(self)
            if f.name not in self._COMPOSITE_FIELDS
        }
        out["latency"] = self.latency.to_dict()
        out["miss"] = self.miss.to_dict()
        out["energy"] = self.energy.to_dict()
        out["inval_histogram"] = self.inval_histogram.to_dict()
        out["evict_histogram"] = self.evict_histogram.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunStats":
        # Tolerant of older serialized runs: scalar counters the mapping
        # predates (e.g. cache entries written before a family's counters
        # existed) keep their defaults, mirroring ProtocolConfig.from_dict.
        kwargs = {
            f.name: data[f.name]
            for f in dataclasses.fields(cls)
            if f.name not in cls._COMPOSITE_FIELDS and f.name in data
        }
        kwargs["latency"] = LatencyBreakdown.from_dict(data["latency"])
        kwargs["miss"] = MissStats.from_dict(data["miss"])
        kwargs["energy"] = EnergyBreakdown.from_dict(data["energy"])
        kwargs["inval_histogram"] = UtilizationHistogram.from_dict(data["inval_histogram"])
        kwargs["evict_histogram"] = UtilizationHistogram.from_dict(data["evict_histogram"])
        return cls(**kwargs)

    def summary(self) -> dict[str, float]:
        """Compact scalar view used by the experiment harness."""
        return {
            "completion_time": self.completion_time,
            "energy": self.energy.total,
            "l1d_miss_rate": self.miss.miss_rate,
            "instructions": self.instructions,
            "promotions": self.promotions,
            "demotions": self.demotions,
            "remote_accesses": self.remote_accesses,
        }
