"""Statistics collected during a simulation run.

These map one-to-one onto the paper's evaluation metrics (Section 4.4):

* **completion time** decomposed into Compute, L1-to-L2, L2-waiting,
  L2-to-sharers, L2-to-off-chip and Synchronization (Figure 9's stack);
* **L1-D miss rate with miss-type breakdown** - Cold / Capacity / Upgrade /
  Sharing / Word (Figure 10);
* **dynamic energy breakdown** - L1-I / L1-D / L2 / Directory / Router /
  Link (Figure 8's stack);
* **utilization histograms** of invalidated and evicted lines
  (Figures 1 and 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.statsutil import UTILIZATION_BUCKETS, bucket_percentages, utilization_bucket
from repro.common.types import MissType
from repro.energy.model import EnergyBreakdown


@dataclass
class LatencyBreakdown:
    """Per-component cycles (the Figure 9 stack)."""

    compute: float = 0.0
    l1_to_l2: float = 0.0
    l2_waiting: float = 0.0
    l2_sharers: float = 0.0
    l2_offchip: float = 0.0
    sync: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.compute
            + self.l1_to_l2
            + self.l2_waiting
            + self.l2_sharers
            + self.l2_offchip
            + self.sync
        )

    def add(self, other: "LatencyBreakdown") -> None:
        self.compute += other.compute
        self.l1_to_l2 += other.l1_to_l2
        self.l2_waiting += other.l2_waiting
        self.l2_sharers += other.l2_sharers
        self.l2_offchip += other.l2_offchip
        self.sync += other.sync

    def scaled(self, factor: float) -> "LatencyBreakdown":
        return LatencyBreakdown(
            compute=self.compute * factor,
            l1_to_l2=self.l1_to_l2 * factor,
            l2_waiting=self.l2_waiting * factor,
            l2_sharers=self.l2_sharers * factor,
            l2_offchip=self.l2_offchip * factor,
            sync=self.sync * factor,
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "compute": self.compute,
            "l1_to_l2": self.l1_to_l2,
            "l2_waiting": self.l2_waiting,
            "l2_sharers": self.l2_sharers,
            "l2_offchip": self.l2_offchip,
            "sync": self.sync,
            "total": self.total,
        }


class MissStats:
    """L1-D access/hit/miss counts with per-type miss classification."""

    __slots__ = ("hits", "_miss_counts")

    def __init__(self) -> None:
        self.hits = 0
        self._miss_counts = [0] * len(MissType)

    def record_hit(self) -> None:
        self.hits += 1

    def record_miss(self, miss_type: MissType) -> None:
        self._miss_counts[miss_type] += 1

    @property
    def misses(self) -> int:
        return sum(self._miss_counts)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0

    def count(self, miss_type: MissType) -> int:
        return self._miss_counts[miss_type]

    def breakdown(self) -> dict[str, int]:
        return {mt.name.lower(): self._miss_counts[mt] for mt in MissType}

    def rate_breakdown(self) -> dict[str, float]:
        """Per-type miss rate as a fraction of all L1-D accesses (Fig. 10)."""
        total = self.accesses
        if total == 0:
            return {mt.name.lower(): 0.0 for mt in MissType}
        return {mt.name.lower(): self._miss_counts[mt] / total for mt in MissType}


class UtilizationHistogram:
    """Counts of removed L1 lines bucketed by utilization (Figures 1-2)."""

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: dict[str, int] = {b: 0 for b in UTILIZATION_BUCKETS}

    def record(self, utilization: int) -> None:
        if utilization < 1:
            utilization = 1  # a line is used at least once (the filling access)
        self.counts[utilization_bucket(utilization)] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def percentages(self) -> dict[str, float]:
        return bucket_percentages(self.counts)


@dataclass
class RunStats:
    """Everything measured by one simulation run."""

    benchmark: str = ""
    num_cores: int = 0
    completion_time: float = 0.0  # max core finish time (cycles)
    instructions: int = 0
    latency: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    miss: MissStats = field(default_factory=MissStats)
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    inval_histogram: UtilizationHistogram = field(default_factory=UtilizationHistogram)
    evict_histogram: UtilizationHistogram = field(default_factory=UtilizationHistogram)
    # Protocol-level counters.
    promotions: int = 0
    demotions: int = 0
    remote_accesses: int = 0
    broadcast_invalidations: int = 0
    unicast_invalidations: int = 0
    dram_requests: int = 0
    network_flits: int = 0
    l2_hits: int = 0
    l2_misses: int = 0
    # Victim-replication counters (protocol="victim" runs only).
    replicas_created: int = 0
    replica_hits: int = 0
    replica_invalidations: int = 0
    replica_evictions: int = 0

    @property
    def l1d_miss_rate(self) -> float:
        return self.miss.miss_rate

    def summary(self) -> dict[str, float]:
        """Compact scalar view used by the experiment harness."""
        return {
            "completion_time": self.completion_time,
            "energy": self.energy.total,
            "l1d_miss_rate": self.miss.miss_rate,
            "instructions": self.instructions,
            "promotions": self.promotions,
            "demotions": self.demotions,
            "remote_accesses": self.remote_accesses,
        }
