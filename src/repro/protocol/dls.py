"""DLS: Directoryless Shared last-level cache (Liu et al.; PAPERS.md).

DLS removes the sharer-tracking directory altogether: no private cache ever
holds a copy of shared data, so there is nothing to keep coherent.  Every
data reference is serviced at a shared-LLC slice with a word-granularity
access - exactly the "remote sharer" service of the locality-aware protocol,
applied unconditionally to every access.

What this family models (and what it deliberately does not - see DESIGN.md,
"Comparison-baseline protocol families"):

* **No L1 data caching.**  Every load/store is a word round-trip to an LLC
  slice.  The private L1-D is unused, the L1-D miss rate is 100% by
  construction, and the *only* locality lever is placement: private pages
  live in the requester's own slice, so DLS degrades gracefully on
  thread-local data and pays the full mesh diameter on shared data - the
  trade-off the paper's remote-access mode inherits.  The in-order core
  model charges its per-reference L1-D probe (one cycle) to every protocol,
  DLS included; the matching tag-access energy event is charged here so the
  completion-time and energy columns of the family comparison stay mutually
  consistent.
* **Word-interleaved LLC addressing.**  DLS's shared LLC is interleaved at
  *word* granularity (not R-NUCA's line-hash): word ``w`` of line ``l``
  lives at slice ``(l * words_per_line + w) % num_cores``
  (:meth:`~repro.rnuca.placement.RNucaPlacement.shared_word_home`), so a
  line's words spread over consecutive slices and word traffic load-balances
  across the chip.  Each slice that is home to at least one word of a line
  keeps its own copy of the full line; only the words a slice is home to are
  ever read or written there, and only those words are written back on
  eviction (``L2Line.dirty_words`` masks the write-back).  Private pages
  still resolve to the owning core's slice for every word.
* **No directory state.**  L2 lines carry no ``DirectoryEntry``, no sharer
  pointers, no locality state (``ProtocolConfig`` pins ``directory="none"``
  and storage accounting reports zero bits/entry).  Invalidations,
  write-backs and upgrade transactions do not exist.
* **Word-access serialization.**  Word writes hold the home line until
  serviced; word reads pipeline through the banked L2 (one-cycle
  occupancy), the same Section 5.1.2 rule as the adaptive protocol's
  remote accesses, so DLS and the adaptive protocol's remote mode are
  timed identically - the comparison isolates the *policy*, not the
  plumbing.

Functional verification runs unchanged: word writes update the golden
memory in service order and word reads are checked against it, so the
differential harness can assert DLS equivalence with every other family.
Because words of one line are homed at different slices, the end-of-run
observable value of a line is assembled per word from each word's home
(:meth:`DLSEngine.final_line_value`), and an evicting slice merges only its
own dirty words into the DRAM image.
"""

from __future__ import annotations

from repro.common import addr as addrmod
from repro.network.messages import MsgType
from repro.protocol.base import _EVER_REMOTE, AccessResult, ProtocolEngineBase


class DLSEngine(ProtocolEngineBase):
    """Directoryless shared-LLC engine: every access is a remote word access."""

    __slots__ = ()

    def access(self, core: int, is_write: bool, address: int, now: float) -> AccessResult:
        """Service one load/store as a word round-trip to the word's home."""
        line = address >> addrmod.LINE_BITS
        word = (address >> addrmod.WORD_BITS) & (self._words_per_line - 1)
        # The core model pays the 1-cycle L1-D probe on every reference
        # (sim/multicore.py); charge the matching tag-access energy so the
        # timing and energy models agree (see module docstring).
        self.energy.l1d_tag_accesses += 1
        result = AccessResult()
        result.remote = True

        # ---- request to the word's home slice (writes carry the data word).
        # ``data_word_home`` must run unconditionally (page-classification
        # side effects); the chained shape only requires that no private
        # page is being flushed and the line is resident at the home.
        req_msg = MsgType.WRITE_REQ if is_write else MsgType.READ_REQ
        home, flush_owner = self.placement.data_word_home(line, word, core)
        l2line = None
        if flush_owner is None and self._chain_enabled:
            slice_ = self.l2[home]
            store = slice_.store
            l2line = store._sets[line & store._set_mask].get(line)
        if l2line is not None:
            # Resident line: request and reply reserved in one
            # ``traverse_chain`` call (the reply type depends only on
            # ``is_write``, so it is known before the request departs).
            reply_msg = MsgType.WORD_WRITE_ACK if is_write else MsgType.WORD_REPLY
            t, reply_t = self._chain_request_reply(
                core, home, l2line, slice_, req_msg, reply_msg, now, result
            )
            self._word_service_bookkeeping(core, is_write, line, word, l2line, slice_)
        else:
            home, slice_, l2line, t = self._deliver_request(
                core, line, home, flush_owner, req_msg, now, result
            )
            reply_t = None

        # ---- every access is a miss: first touch is cold, then word.
        flags = self._history[core].get(line, 0)
        result.miss_type = self._classify_miss(flags, upgrade=False, serviced_remote=True)
        self.miss_stats.record_miss(result.miss_type)
        self._history[core][line] = flags | _EVER_REMOTE

        if reply_t is None:
            reply_t = self._service_word_at_home(
                core, is_write, line, word, l2line, home, slice_, t
            )

        # ---- settle timing: writes serialize, word reads pipeline.
        if is_write:
            l2line.busy_until = t
        else:
            busy = t - self._l2_latency + 1.0
            if busy > l2line.busy_until:
                l2line.busy_until = busy
        slice_.touch(l2line, t)

        result.latency = reply_t - now
        result.l1_to_l2 = result.latency - result.l2_waiting - result.l2_offchip
        return result

    # ------------------------------------------------------------------
    # Word-interleaving aware eviction and final-state observation.
    # ------------------------------------------------------------------
    def _evict_l2_line(self, home: int, vline: int, ventry, t: float) -> None:
        """Evict a slice's copy of ``vline``: write back its own words only.

        There are no private copies to purge.  The slice's copy is
        authoritative exactly for the words it serviced writes for
        (``dirty_words``); its remaining words may be stale images of words
        homed at other slices, so they must not reach memory.  Timing and
        energy match the base path (one line-sized write-back transfer).
        """
        if ventry.dirty:
            self.energy.l2_line_reads += 1
            ctrl = self.memsys.controller_for_line(vline)
            self.network.unicast(home, ctrl.tile, MsgType.MEM_WRITE, t)
            ctrl.access(t, self.arch.line_size)
            if self.verify:
                self._merge_dirty_words(home, vline, ventry)
        self._home_of_line.pop(vline, None)

    def _merge_dirty_words(self, home: int, vline: int, ventry) -> None:
        """Verify + merge the evicting slice's dirty words into the DRAM image."""
        image = self._dram_image.get(vline)
        if image is None:
            image = [0] * self._words_per_line
            self._dram_image[vline] = image
        mask = ventry.dirty_words
        for word in range(self._words_per_line):
            if (mask >> word) & 1:
                self.golden.check_read(
                    vline, word, ventry.data[word], f"DLS write-back at tile {home}"
                )
                image[word] = ventry.data[word]

    def final_line_value(self, line: int) -> list[int]:
        """Assemble the observable line value word by word.

        Authority order per word: the word's home slice copy (private owner
        slice for private pages, word-interleaved slice otherwise) > the
        DRAM image > zero.  A word's home is stable once its page is
        classified, so the resident copy at that home - refreshed by every
        write to the word - is always the freshest value.
        """
        page = addrmod.page_of(line << addrmod.LINE_BITS, self.arch.page_size)
        owner = self.placement.page_table.owner_of(page)
        image = self._dram_image.get(line)
        words: list[int] = []
        for word in range(self._words_per_line):
            home = owner if owner is not None else self.placement.shared_word_home(line, word)
            l2line = self.l2[home].lookup(line)
            if l2line is not None and l2line.data is not None:
                words.append(l2line.data[word])
            elif image is not None:
                words.append(image[word])
            else:
                words.append(0)
        return words
