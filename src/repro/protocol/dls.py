"""DLS: Directoryless Shared last-level cache (Liu et al.; PAPERS.md).

DLS removes the sharer-tracking directory altogether: no private cache ever
holds a copy of shared data, so there is nothing to keep coherent.  Every
data reference is serviced at the line's shared-LLC home slice with a
word-granularity access - exactly the "remote sharer" service of the
locality-aware protocol, applied unconditionally to every access.

What this family models (and what it deliberately does not - see DESIGN.md,
"Comparison-baseline protocol families"):

* **No L1 data caching.**  Every load/store is a word round-trip to the
  R-NUCA home slice.  The private L1-D is unused, the L1-D miss rate is
  100% by construction, and the *only* locality lever is R-NUCA placement:
  private pages live in the requester's own slice, so DLS degrades
  gracefully on thread-local data and pays the full mesh diameter on
  shared data - the trade-off the paper's remote-access mode inherits.
  The in-order core model charges its per-reference L1-D probe (one
  cycle) to every protocol, DLS included; the matching tag-access energy
  event is charged here so the completion-time and energy columns of the
  family comparison stay mutually consistent.
* **No directory state.**  L2 lines carry no ``DirectoryEntry``, no sharer
  pointers, no locality state (``ProtocolConfig`` pins ``directory="none"``
  and storage accounting reports zero bits/entry).  Invalidations,
  write-backs and upgrade transactions do not exist.
* **Word-access serialization.**  Word writes hold the home line until
  serviced; word reads pipeline through the banked L2 (one-cycle
  occupancy), the same Section 5.1.2 rule as the adaptive protocol's
  remote accesses, so DLS and the adaptive protocol's remote mode are
  timed identically - the comparison isolates the *policy*, not the
  plumbing.

Functional verification runs unchanged: word writes update the golden
memory in service order and word reads are checked against it, so the
differential harness can assert DLS equivalence with every other family.
"""

from __future__ import annotations

from repro.common import addr as addrmod
from repro.network.messages import MsgType
from repro.protocol.base import _EVER_REMOTE, AccessResult, ProtocolEngineBase


class DLSEngine(ProtocolEngineBase):
    """Directoryless shared-LLC engine: every access is a remote word access."""

    def access(self, core: int, is_write: bool, address: int, now: float) -> AccessResult:
        """Service one load/store as a word round-trip to the home slice."""
        line = address >> addrmod.LINE_BITS
        word = (address >> addrmod.WORD_BITS) & (self._words_per_line - 1)
        # The core model pays the 1-cycle L1-D probe on every reference
        # (sim/multicore.py); charge the matching tag-access energy so the
        # timing and energy models agree (see module docstring).
        self.energy.l1d_tag_accesses += 1
        result = AccessResult()
        result.remote = True

        # ---- request to the home slice (writes carry the data word).
        req_msg = MsgType.WRITE_REQ if is_write else MsgType.READ_REQ
        home, slice_, l2line, t = self._request_at_home(core, line, req_msg, now, result)

        # ---- every access is a miss: first touch is cold, then word.
        flags = self._history[core].get(line, 0)
        result.miss_type = self._classify_miss(flags, upgrade=False, serviced_remote=True)
        self.miss_stats.record_miss(result.miss_type)
        self._history[core][line] = flags | _EVER_REMOTE

        reply_t = self._service_word_at_home(core, is_write, line, word, l2line, home, slice_, t)

        # ---- settle timing: writes serialize, word reads pipeline.
        if is_write:
            l2line.busy_until = t
        else:
            busy = t - self._l2_latency + 1.0
            if busy > l2line.busy_until:
                l2line.busy_until = busy
        slice_.touch(l2line, t)

        result.latency = reply_t - now
        result.l1_to_l2 = result.latency - result.l2_waiting - result.l2_offchip
        return result
