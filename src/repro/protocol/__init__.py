"""Coherence protocol engines: one pluggable family per module."""

from repro.protocol.base import AccessResult, ProtocolEngineBase
from repro.protocol.engine import (
    ENGINE_CLASSES,
    DLSEngine,
    DirectoryEngine,
    NeatEngine,
    ProtocolEngine,
    VictimReplicationEngine,
    make_engine,
)

__all__ = [
    "ENGINE_CLASSES",
    "AccessResult",
    "DLSEngine",
    "DirectoryEngine",
    "NeatEngine",
    "ProtocolEngine",
    "ProtocolEngineBase",
    "VictimReplicationEngine",
    "make_engine",
]
