"""The locality-aware adaptive coherence protocol engine."""

from repro.protocol.engine import AccessResult, ProtocolEngine

__all__ = ["AccessResult", "ProtocolEngine"]
