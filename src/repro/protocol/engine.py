"""Protocol-engine factory and backward-compatible entry point.

The engine itself lives in per-family modules:

* :mod:`repro.protocol.base` - the shared :class:`ProtocolEngineBase`
  interface (network/memory substrate, off-chip path, verification);
* :mod:`repro.protocol.directory` - directory families (``baseline``,
  ``adaptive``);
* :mod:`repro.protocol.victim` - Victim Replication (directory + local-L2
  victim caching);
* :mod:`repro.protocol.dls` - directoryless shared LLC;
* :mod:`repro.protocol.neat` - self-invalidation/self-downgrade coherence;
* :mod:`repro.protocol.phase` - phase-priority directory coherence.

:func:`make_engine` maps ``ProtocolConfig.protocol`` to the family class;
``ProtocolEngine`` remains the name of the directory engine, which predates
the split (the locality-aware protocol of the source paper *is* a directory
protocol).
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.common.params import ArchConfig, ProtocolConfig
from repro.protocol.base import AccessResult, ProtocolEngineBase
from repro.protocol.directory import DirectoryEngine
from repro.protocol.dls import DLSEngine
from repro.protocol.neat import NeatEngine
from repro.protocol.phase import PhaseEngine
from repro.protocol.victim import VictimReplicationEngine

#: Backward-compatible name: the directory engine (baseline/adaptive).
ProtocolEngine = DirectoryEngine

#: ``ProtocolConfig.protocol`` -> engine class.
ENGINE_CLASSES: dict[str, type[ProtocolEngineBase]] = {
    "baseline": DirectoryEngine,
    "adaptive": DirectoryEngine,
    "victim": VictimReplicationEngine,
    "dls": DLSEngine,
    "neat": NeatEngine,
    "phase": PhaseEngine,
}


def make_engine(
    arch: ArchConfig, proto: ProtocolConfig, verify: bool = False
) -> ProtocolEngineBase:
    """Instantiate the protocol engine for ``proto.protocol``."""
    try:
        cls = ENGINE_CLASSES[proto.protocol]
    except KeyError:
        raise ConfigError(f"no engine for protocol {proto.protocol!r}") from None
    return cls(arch, proto, verify=verify)


__all__ = [
    "ENGINE_CLASSES",
    "AccessResult",
    "DLSEngine",
    "DirectoryEngine",
    "NeatEngine",
    "PhaseEngine",
    "ProtocolEngine",
    "ProtocolEngineBase",
    "VictimReplicationEngine",
    "make_engine",
]
