"""Neat: low-complexity coherence without sharer tracking (Zhang et al.;
PAPERS.md).

Neat belongs to the self-invalidation / self-downgrade family: the home
never tracks sharers and never sends invalidations.  Instead, writers make
their stores visible at the home themselves (self-downgrade) and readers
discard possibly-stale private copies themselves (self-invalidation).  This
removes the directory - the entire sharer-tracking and invalidation machinery
- at the cost of extra write traffic and reload misses on write-shared data.

Modeling substitutions (documented in DESIGN.md, "Comparison-baseline
protocol families"):

* **Eager self-downgrade.**  Every store is written through to the home L2
  at word granularity (``WRITE_REQ`` carries the word; the home answers with
  a ``WORD_WRITE_ACK``).  The original defers the downgrade flush to release
  boundaries and batches dirty words; eager write-through is the
  conservative endpoint of that spectrum and keeps the home word-accurate at
  every instant.  A writer that still holds a clean copy refreshes it in
  place, so its own reads keep hitting.
* **Version-checked self-invalidation.**  The original invalidates all
  shared lines at acquire boundaries, relying on data-race-freedom for
  correctness.  Our synthetic traces carry no DRF annotations, so we model
  the *effect* precisely instead of the trigger: the engine keeps one global
  version per line, bumped on every write; an L1 copy records the version it
  was fetched at, and a read hit on an out-of-date copy is treated as the
  self-invalidation (the copy is discarded and reloaded from the home, a
  SHARING miss).  Read-shared data therefore caches perfectly and
  write-shared data pays a reload per remote write - the same asymptotic
  behaviour, without ever serving stale data (which would break golden
  verification).
* **No coherence traffic, no inclusion.**  L1 copies are always clean
  SHARED, evictions are silent (no notification - there is nobody to
  notify), and an L2 eviction leaves L1 copies in place: they stay correct
  until the next write bumps the line version.
* **Release-boundary batching** (``neat_downgrade="release"``).  The
  published Neat defers the downgrade flush to release boundaries; with
  this mode the writer buffers dirty words in its own L1 copy
  (write-allocating on a write miss) and flushes each dirty line as ONE
  batched ``WB_DATA`` message when the simulator signals a release
  (unlock or barrier arrival, via :meth:`sync_boundary_hook`), bumping the
  line version once per flushed line.  A line with pending words is
  flushed early if its copy must die first (self-invalidation, L1
  eviction), and every core flushes at the end of the trace.  Flushes are
  fire-and-forget (off the critical path, like evictions).  Golden-memory
  verification models release visibility faithfully: a buffered word is
  ahead of the golden image only inside its writer (whose read hits skip
  the check for exactly those words), and the flush updates the home line
  and the golden image at the same simulation point - so readers verify
  even across the benign races the synthetic traces contain.

The net effect mirrors Neat's published trade-off: directory storage goes to
zero and invalidation rounds disappear, while store-heavy sharing patterns
pay per-word write-through traffic and reload misses.
"""

from __future__ import annotations

from repro.common import addr as addrmod
from repro.common.types import MESIState, MissType
from repro.network.messages import MsgType
from repro.protocol.base import (
    _EVER_CACHED,
    _EVER_REMOTE,
    _LAST_REMOVAL_INVAL,
    AccessResult,
    ProtocolEngineBase,
)


class NeatEngine(ProtocolEngineBase):
    """Self-invalidation / self-downgrade engine without sharer tracking."""

    __slots__ = (
        "_line_version",
        "_copy_version",
        "_release_batching",
        "_pending",
        "_flush_result",
        "self_invalidations",
        "write_throughs",
    )

    def __init__(self, arch, proto, verify: bool = False) -> None:
        super().__init__(arch, proto, verify)
        #: Global per-line write version; an L1 copy is valid while its
        #: recorded fetch version still matches.
        self._line_version: dict[int, int] = {}
        #: Per-core {line: version-at-fetch} for resident L1 copies.
        self._copy_version: list[dict[int, int]] = [dict() for _ in range(arch.num_cores)]
        #: Release-boundary self-downgrade batching (see module docstring).
        self._release_batching = proto.neat_downgrade == "release"
        #: Per-core {line: dirty-word bitmask} of buffered (unflushed) stores.
        self._pending: list[dict[int, int]] = [dict() for _ in range(arch.num_cores)]
        #: Scratch result for flush deliveries: _request_at_home records
        #: serialization/off-chip latency into it, and a flush (being off
        #: the critical path) discards both.
        self._flush_result = AccessResult()
        # Statistics.
        self.self_invalidations = 0
        self.write_throughs = 0

    def reset_stats(self) -> None:
        """Also zero the Neat counters for warmup/measure runs."""
        super().reset_stats()
        self.self_invalidations = 0
        self.write_throughs = 0

    def export_stats(self, stats) -> None:
        stats.self_invalidations = self.self_invalidations
        stats.write_throughs = self.write_throughs

    # ------------------------------------------------------------------
    def access(self, core: int, is_write: bool, address: int, now: float) -> AccessResult:
        """Service one load/store: version-checked read caching, write-through."""
        line = address >> addrmod.LINE_BITS
        word = (address >> addrmod.WORD_BITS) & (self._words_per_line - 1)
        l1 = self.l1d[core]
        entry = l1.lookup(line)

        if is_write and self._release_batching:
            return self._buffered_write(core, line, word, now, l1, entry)

        if entry is not None and not is_write:
            if self._copy_version[core].get(line) == self._line_version.get(line, 0):
                # Valid read hit: the copy is as fresh as the home.
                l1.hit(entry, now)
                self.miss_stats.record_hit()
                self.energy.l1d_reads += 1
                if self.verify:
                    # A word this core has buffered but not yet flushed
                    # (release mode) is ahead of the golden image by
                    # design: the writer sees its own store, the world
                    # sees it at the release flush.
                    if not (self._pending[core].get(line, 0) >> word) & 1:
                        self.golden.check_read(
                            line, word, entry.data[word], f"Neat hit core {core}"
                        )
                return self._hit_result
            # Stale copy: self-invalidate and reload from the home.
            self._self_invalidate(core, line, now)

        return self._service_at_home(core, is_write, line, word, now)

    # ------------------------------------------------------------------
    def _self_invalidate(self, core: int, line: int, t: float) -> None:
        """Discard ``core``'s (stale) copy of ``line``, recording the
        invalidation in the histogram and the miss-history flags.  Buffered
        stores of the dying copy (release mode) are flushed home first -
        they must not be lost."""
        if self._pending[core].get(line):
            self._flush_line(core, line, t)
        removed = self.l1d[core].remove(line)
        self._copy_version[core].pop(line, None)
        self.self_invalidations += 1
        self.inval_histogram.record(removed.utilization)
        hist = self._history[core]
        hist[line] = hist.get(line, 0) | _LAST_REMOVAL_INVAL

    # ------------------------------------------------------------------
    def _service_at_home(
        self, core: int, is_write: bool, line: int, word: int, now: float
    ) -> AccessResult:
        l1 = self.l1d[core]
        l1.misses += 1
        self.energy.l1d_tag_accesses += 1
        result = AccessResult()

        # ---- request to the home slice (writes carry the data word).
        # A memoized home with the line resident chains request and reply
        # in one ``traverse_chain`` call; the reply type is known up front
        # (WORD_WRITE_ACK for the eager downgrade, LINE_REPLY for the
        # line fetch) and the home-side bookkeeping is time-independent.
        req_msg = MsgType.WRITE_REQ if is_write else MsgType.READ_REQ
        probe = self._chain_probe(core, line)
        if probe is not None:
            home, slice_, l2line = probe
            reply_msg = MsgType.WORD_WRITE_ACK if is_write else MsgType.LINE_REPLY
            t, reply_t = self._chain_request_reply(
                core, home, l2line, slice_, req_msg, reply_msg, now, result
            )
        else:
            home, slice_, l2line, t = self._request_at_home(core, line, req_msg, now, result)
            reply_t = None

        flags = self._history[core].get(line, 0)
        if is_write:
            # Classify against the copy the writer holds RIGHT NOW, before
            # _write_through refreshes or discards it: a write to a held
            # fresh copy is the upgrade case (store to a read-only line), a
            # write to a held stale copy is a sharing event (another core's
            # write killed the copy), and a copy-less write falls back to
            # the remote-access classification.
            held = self.l1d[core].lookup(line)
            if held is not None:
                fresh = self._copy_version[core].get(line) == self._line_version.get(line, 0)
                result.miss_type = MissType.UPGRADE if fresh else MissType.SHARING
            else:
                result.miss_type = self._classify_miss(flags, upgrade=False, serviced_remote=True)
            if reply_t is None:
                reply_t = self._write_through(core, line, word, l2line, home, slice_, t)
            else:
                old_version = self._line_version.get(line, 0)
                self._word_service_bookkeeping(core, True, line, word, l2line, slice_)
                self._downgrade_settle(core, line, word, old_version, reply_t)
            result.remote = True
            # History is re-read rather than taken from the pre-service
            # flags: _write_through may have self-invalidated a stale copy,
            # setting _LAST_REMOVAL_INVAL.
            self._history[core][line] = self._history[core].get(line, 0) | _EVER_REMOTE
            l2line.busy_until = t
        else:
            if reply_t is None:
                reply_t = self._read_line(core, line, word, l2line, home, slice_, t)
            else:
                self._fill_line(core, line, word, l2line, slice_, reply_t)
            result.miss_type = self._classify_miss(flags, upgrade=False, serviced_remote=False)
            self._history[core][line] = flags | _EVER_CACHED
            # Reads take no home-side ownership: pipeline through the bank.
            busy = t - self._l2_latency + 1.0
            if busy > l2line.busy_until:
                l2line.busy_until = busy
        self.miss_stats.record_miss(result.miss_type)
        slice_.touch(l2line, t)

        result.latency = reply_t - now
        result.l1_to_l2 = result.latency - result.l2_waiting - result.l2_offchip
        return result

    # ------------------------------------------------------------------
    def _write_through(
        self, core: int, line: int, word: int, l2line, home: int, slice_, t: float
    ) -> float:
        """Eager self-downgrade: the word is written at the home (no allocate).

        A resident *fresh* copy is refreshed in place so the writer's own
        reads keep hitting; a stale resident copy is discarded (refreshing
        one word of it would revalidate its other, stale words).  Every
        other core's copy goes stale and self-invalidates on its next use.
        """
        old_version = self._line_version.get(line, 0)
        # _service_word_at_home issues this write's token (verify mode);
        # self._write_token below refreshes the writer's own copy with it.
        reply_t = self._service_word_at_home(core, True, line, word, l2line, home, slice_, t)
        return self._downgrade_settle(core, line, word, old_version, reply_t)

    def _downgrade_settle(
        self, core: int, line: int, word: int, old_version: int, reply_t: float
    ) -> float:
        """Version bump + own-copy refresh half of :meth:`_write_through`,
        split out so the chained fast path (reply already reserved) can run
        it after the bookkeeping; nothing here touches the network before
        ``reply_t``, so the split cannot change results."""
        self.write_throughs += 1
        self._line_version[line] = old_version + 1
        l1 = self.l1d[core]
        entry = l1.lookup(line)
        if entry is not None:
            if self._copy_version[core].get(line) == old_version:
                l1.store.touch(entry)
                entry.utilization += 1
                entry.last_access = reply_t
                self.energy.l1d_writes += 1
                if self.verify:
                    entry.data[word] = self._write_token
                self._copy_version[core][line] = old_version + 1
            else:
                self._self_invalidate(core, line, reply_t)
        return reply_t

    # ------------------------------------------------------------------
    def _read_line(
        self, core: int, line: int, word: int, l2line, home: int, slice_, t: float
    ) -> float:
        """Read miss: fetch the full line, install it clean SHARED."""
        path = self._net_paths[home * self._num_tiles + core]
        if path is None:
            path = self._net_resolve(home, core)
        reply_t = self._net_traverse(path, t, self._net_flits[int(MsgType.LINE_REPLY)])
        self._fill_line(core, line, word, l2line, slice_, reply_t)
        return reply_t

    def _install_line(self, core: int, line: int, l2line, slice_, reply_t: float) -> None:
        """Install the fetched line clean SHARED (counter half of the
        fetch, shared by :meth:`_fill_line` and the buffered-write
        allocate; runs after the reply leg is reserved either way)."""
        slice_.line_reads += 1
        self.energy.l2_line_reads += 1
        l1 = self.l1d[core]
        data = list(l2line.data) if self.verify else None
        evicted = l1.fill(line, MESIState.SHARED, reply_t, data)
        self.energy.l1d_line_fills += 1
        if evicted is not None:
            self._handle_l1_eviction(core, evicted[0], evicted[1], reply_t)

    def _fill_line(
        self, core: int, line: int, word: int, l2line, slice_, reply_t: float
    ) -> None:
        """Fill bookkeeping of :meth:`_read_line` minus the reply
        traversal (the chained fast path reserves that leg itself)."""
        self._install_line(core, line, l2line, slice_, reply_t)
        self._copy_version[core][line] = self._line_version.get(line, 0)
        self.energy.l1d_reads += 1
        if self.verify:
            entry = self.l1d[core].lookup(line)
            self.golden.check_read(line, word, entry.data[word], f"Neat fill read core {core}")

    # ------------------------------------------------------------------
    # Release-boundary self-downgrade batching (neat_downgrade="release").
    # ------------------------------------------------------------------
    def _buffered_write(
        self, core: int, line: int, word: int, now: float, l1, entry
    ) -> AccessResult:
        """Release-mode store: buffer the dirty word in the writer's copy.

        A fresh resident copy makes the store a pure L1 hit (zero latency,
        zero traffic now - the word rides the next release flush).  A stale
        or absent copy write-allocates: the stale copy is flushed-and-
        discarded, the line is fetched like a read miss and the store lands
        in the fresh copy.
        """
        versions = self._copy_version[core]
        if entry is not None and versions.get(line) == self._line_version.get(line, 0):
            l1.hit(entry, now)
            self.miss_stats.record_hit()
            self.energy.l1d_writes += 1
            pending = self._pending[core]
            pending[line] = pending.get(line, 0) | (1 << word)
            if self.verify:
                # Mint the token into the local copy only; the golden image
                # is written at the flush, atomically with the home update,
                # so home and golden never disagree (racy readers verify).
                entry.data[word] = self._issue_write_token(core)
            return self._hit_result
        result = AccessResult()
        flags = self._history[core].get(line, 0)
        if entry is not None:
            result.miss_type = MissType.SHARING  # another core's flush killed it
            self._self_invalidate(core, line, now)
        else:
            result.miss_type = self._classify_miss(flags, upgrade=False, serviced_remote=False)
        l1.misses += 1
        self.energy.l1d_tag_accesses += 1
        probe = self._chain_probe(core, line)
        if probe is not None:
            home, slice_, l2line = probe
            t, reply_t = self._chain_request_reply(
                core, home, l2line, slice_, MsgType.READ_REQ, MsgType.LINE_REPLY, now, result
            )
        else:
            home, slice_, l2line, t = self._request_at_home(
                core, line, MsgType.READ_REQ, now, result
            )
            path = self._net_paths[home * self._num_tiles + core]
            if path is None:
                path = self._net_resolve(home, core)
            reply_t = self._net_traverse(path, t, self._net_flits[int(MsgType.LINE_REPLY)])
        self._install_line(core, line, l2line, slice_, reply_t)
        versions[line] = self._line_version.get(line, 0)
        self.energy.l1d_writes += 1
        pending = self._pending[core]
        pending[line] = pending.get(line, 0) | (1 << word)
        if self.verify:
            # Token into the local copy only; golden is written at the
            # flush (see _flush_line).
            self.l1d[core].lookup(line).data[word] = self._issue_write_token(core)
        self._history[core][line] = flags | _EVER_CACHED
        self.miss_stats.record_miss(result.miss_type)
        # The fetch is a read at the home: no ownership, bank-pipelined.
        busy = t - self._l2_latency + 1.0
        if busy > l2line.busy_until:
            l2line.busy_until = busy
        slice_.touch(l2line, t)
        result.latency = reply_t - now
        result.l1_to_l2 = result.latency - result.l2_waiting - result.l2_offchip
        return result

    def _flush_line(self, core: int, line: int, t: float, entry=None) -> None:
        """Self-downgrade one line's buffered words: a single batched
        ``WB_DATA`` message to the home, one version bump, fire-and-forget
        (off the critical path, like evictions)."""
        mask = self._pending[core].pop(line)
        result = self._flush_result
        result.l2_waiting = 0.0
        result.l2_offchip = 0.0
        home, slice_, l2line, t_at_home = self._request_at_home(
            core, line, MsgType.WB_DATA, t, result
        )
        if entry is None:
            entry = self.l1d[core].lookup(line)
        word = 0
        bits = mask
        while bits:
            if bits & 1:
                slice_.word_writes += 1
                self.energy.l2_word_writes += 1
                l2line.dirty = True
                l2line.dirty_words |= 1 << word
                if self.verify and entry is not None and entry.data is not None:
                    # Home and golden update at the same simulation point:
                    # any read serviced at the home always matches golden,
                    # even for (benign) races the trace may contain.
                    l2line.data[word] = entry.data[word]
                    self.golden.write_word(line, word, entry.data[word])
            bits >>= 1
            word += 1
        self.write_throughs += 1  # one downgrade message per flushed line
        old_version = self._line_version.get(line, 0)
        version = old_version + 1
        self._line_version[line] = version
        if entry is not None and self._copy_version[core].get(line) == old_version:
            # The writer's copy was fresh up to this flush, so it is exactly
            # the flushed image: still fresh.  A copy that went stale before
            # the flush (another core's flush intervened after our fetch)
            # must STAY stale - its non-pending words predate that flush,
            # and revalidating it here would resurrect them.  Found by the
            # exhaustive tier: W0(w0) W1(w4) flush0 flush1 R1(w0) read 0
            # where w0 held core 0's store.
            self._copy_version[core][line] = version
        l2line.busy_until = t_at_home
        slice_.touch(l2line, t_at_home)

    def _release_flush(self, core: int, t: float) -> None:
        """Release boundary: flush every line with buffered stores."""
        pending = self._pending[core]
        for line in list(pending):
            self._flush_line(core, line, t)

    def sync_boundary_hook(self):
        """Release-boundary callback (see ``ProtocolEngineBase``): flush
        buffered self-downgrades at unlock/barrier/end-of-trace."""
        return self._release_flush if self._release_batching else None

    # ------------------------------------------------------------------
    def _handle_l1_eviction(self, core: int, vline: int, ventry, t: float) -> None:
        """Silent eviction: copies are clean and nobody tracks them.
        Buffered stores of the victim (release mode) are flushed first."""
        if self._pending[core].get(vline):
            self._flush_line(core, vline, t, entry=ventry)
        self.evict_histogram.record(ventry.utilization)
        hist = self._history[core]
        hist[vline] = (hist.get(vline, 0) | _EVER_CACHED) & ~_LAST_REMOVAL_INVAL
        self._copy_version[core].pop(vline, None)

    # ------------------------------------------------------------------
    # L2 evictions leave L1 copies alone: they are clean, and the version
    # check retires them the moment the line is written again.
    # (_purge_copies_for_l2_eviction inherits the base no-op.)
