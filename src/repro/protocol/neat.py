"""Neat: low-complexity coherence without sharer tracking (Zhang et al.;
PAPERS.md).

Neat belongs to the self-invalidation / self-downgrade family: the home
never tracks sharers and never sends invalidations.  Instead, writers make
their stores visible at the home themselves (self-downgrade) and readers
discard possibly-stale private copies themselves (self-invalidation).  This
removes the directory - the entire sharer-tracking and invalidation machinery
- at the cost of extra write traffic and reload misses on write-shared data.

Modeling substitutions (documented in DESIGN.md, "Comparison-baseline
protocol families"):

* **Eager self-downgrade.**  Every store is written through to the home L2
  at word granularity (``WRITE_REQ`` carries the word; the home answers with
  a ``WORD_WRITE_ACK``).  The original defers the downgrade flush to release
  boundaries and batches dirty words; eager write-through is the
  conservative endpoint of that spectrum and keeps the home word-accurate at
  every instant.  A writer that still holds a clean copy refreshes it in
  place, so its own reads keep hitting.
* **Version-checked self-invalidation.**  The original invalidates all
  shared lines at acquire boundaries, relying on data-race-freedom for
  correctness.  Our synthetic traces carry no DRF annotations, so we model
  the *effect* precisely instead of the trigger: the engine keeps one global
  version per line, bumped on every write; an L1 copy records the version it
  was fetched at, and a read hit on an out-of-date copy is treated as the
  self-invalidation (the copy is discarded and reloaded from the home, a
  SHARING miss).  Read-shared data therefore caches perfectly and
  write-shared data pays a reload per remote write - the same asymptotic
  behaviour, without ever serving stale data (which would break golden
  verification).
* **No coherence traffic, no inclusion.**  L1 copies are always clean
  SHARED, evictions are silent (no notification - there is nobody to
  notify), and an L2 eviction leaves L1 copies in place: they stay correct
  until the next write bumps the line version.

The net effect mirrors Neat's published trade-off: directory storage goes to
zero and invalidation rounds disappear, while store-heavy sharing patterns
pay per-word write-through traffic and reload misses.
"""

from __future__ import annotations

from repro.common import addr as addrmod
from repro.common.types import MESIState, MissType
from repro.network.messages import MsgType
from repro.protocol.base import (
    _EVER_CACHED,
    _EVER_REMOTE,
    _LAST_REMOVAL_INVAL,
    AccessResult,
    ProtocolEngineBase,
)


class NeatEngine(ProtocolEngineBase):
    """Self-invalidation / self-downgrade engine without sharer tracking."""

    __slots__ = ("_line_version", "_copy_version", "self_invalidations", "write_throughs")

    def __init__(self, arch, proto, verify: bool = False) -> None:
        super().__init__(arch, proto, verify)
        #: Global per-line write version; an L1 copy is valid while its
        #: recorded fetch version still matches.
        self._line_version: dict[int, int] = {}
        #: Per-core {line: version-at-fetch} for resident L1 copies.
        self._copy_version: list[dict[int, int]] = [dict() for _ in range(arch.num_cores)]
        # Statistics.
        self.self_invalidations = 0
        self.write_throughs = 0

    def reset_stats(self) -> None:
        """Also zero the Neat counters for warmup/measure runs."""
        super().reset_stats()
        self.self_invalidations = 0
        self.write_throughs = 0

    def export_stats(self, stats) -> None:
        stats.self_invalidations = self.self_invalidations
        stats.write_throughs = self.write_throughs

    # ------------------------------------------------------------------
    def access(self, core: int, is_write: bool, address: int, now: float) -> AccessResult:
        """Service one load/store: version-checked read caching, write-through."""
        line = address >> addrmod.LINE_BITS
        word = (address >> addrmod.WORD_BITS) & (self._words_per_line - 1)
        l1 = self.l1d[core]
        entry = l1.lookup(line)

        if entry is not None and not is_write:
            if self._copy_version[core].get(line) == self._line_version.get(line, 0):
                # Valid read hit: the copy is as fresh as the home.
                l1.hit(entry, now)
                self.miss_stats.record_hit()
                self.energy.l1d_reads += 1
                if self.verify:
                    self.golden.check_read(line, word, entry.data[word], f"Neat hit core {core}")
                result = AccessResult()
                result.hit = True
                return result
            # Stale copy: self-invalidate and reload from the home.
            self._self_invalidate(core, line)

        return self._service_at_home(core, is_write, line, word, now)

    # ------------------------------------------------------------------
    def _self_invalidate(self, core: int, line: int) -> None:
        """Discard ``core``'s (stale) copy of ``line``, recording the
        invalidation in the histogram and the miss-history flags."""
        removed = self.l1d[core].remove(line)
        self._copy_version[core].pop(line, None)
        self.self_invalidations += 1
        self.inval_histogram.record(removed.utilization)
        hist = self._history[core]
        hist[line] = hist.get(line, 0) | _LAST_REMOVAL_INVAL

    # ------------------------------------------------------------------
    def _service_at_home(
        self, core: int, is_write: bool, line: int, word: int, now: float
    ) -> AccessResult:
        l1 = self.l1d[core]
        l1.misses += 1
        self.energy.l1d_tag_accesses += 1
        result = AccessResult()

        # ---- request to the home slice (writes carry the data word).
        req_msg = MsgType.WRITE_REQ if is_write else MsgType.READ_REQ
        home, slice_, l2line, t = self._request_at_home(core, line, req_msg, now, result)

        flags = self._history[core].get(line, 0)
        if is_write:
            # Classify against the copy the writer holds RIGHT NOW, before
            # _write_through refreshes or discards it: a write to a held
            # fresh copy is the upgrade case (store to a read-only line), a
            # write to a held stale copy is a sharing event (another core's
            # write killed the copy), and a copy-less write falls back to
            # the remote-access classification.
            held = self.l1d[core].lookup(line)
            if held is not None:
                fresh = self._copy_version[core].get(line) == self._line_version.get(line, 0)
                result.miss_type = MissType.UPGRADE if fresh else MissType.SHARING
            else:
                result.miss_type = self._classify_miss(flags, upgrade=False, serviced_remote=True)
            reply_t = self._write_through(core, line, word, l2line, home, slice_, t)
            result.remote = True
            # History is re-read rather than taken from the pre-service
            # flags: _write_through may have self-invalidated a stale copy,
            # setting _LAST_REMOVAL_INVAL.
            self._history[core][line] = self._history[core].get(line, 0) | _EVER_REMOTE
            l2line.busy_until = t
        else:
            reply_t = self._read_line(core, line, word, l2line, home, slice_, t)
            result.miss_type = self._classify_miss(flags, upgrade=False, serviced_remote=False)
            self._history[core][line] = flags | _EVER_CACHED
            # Reads take no home-side ownership: pipeline through the bank.
            busy = t - self._l2_latency + 1.0
            if busy > l2line.busy_until:
                l2line.busy_until = busy
        self.miss_stats.record_miss(result.miss_type)
        slice_.touch(l2line, t)

        result.latency = reply_t - now
        result.l1_to_l2 = result.latency - result.l2_waiting - result.l2_offchip
        return result

    # ------------------------------------------------------------------
    def _write_through(
        self, core: int, line: int, word: int, l2line, home: int, slice_, t: float
    ) -> float:
        """Eager self-downgrade: the word is written at the home (no allocate).

        A resident *fresh* copy is refreshed in place so the writer's own
        reads keep hitting; a stale resident copy is discarded (refreshing
        one word of it would revalidate its other, stale words).  Every
        other core's copy goes stale and self-invalidates on its next use.
        """
        old_version = self._line_version.get(line, 0)
        # _service_word_at_home issues this write's token (verify mode);
        # self._write_token below refreshes the writer's own copy with it.
        reply_t = self._service_word_at_home(core, True, line, word, l2line, home, slice_, t)
        self.write_throughs += 1
        self._line_version[line] = old_version + 1
        l1 = self.l1d[core]
        entry = l1.lookup(line)
        if entry is not None:
            if self._copy_version[core].get(line) == old_version:
                l1.store.touch(entry)
                entry.utilization += 1
                entry.last_access = reply_t
                self.energy.l1d_writes += 1
                if self.verify:
                    entry.data[word] = self._write_token
                self._copy_version[core][line] = old_version + 1
            else:
                self._self_invalidate(core, line)
        return reply_t

    # ------------------------------------------------------------------
    def _read_line(
        self, core: int, line: int, word: int, l2line, home: int, slice_, t: float
    ) -> float:
        """Read miss: fetch the full line, install it clean SHARED."""
        slice_.line_reads += 1
        self.energy.l2_line_reads += 1
        reply_t = self.network.unicast(home, core, MsgType.LINE_REPLY, t)

        l1 = self.l1d[core]
        data = list(l2line.data) if self.verify else None
        evicted = l1.fill(line, MESIState.SHARED, reply_t, data)
        self.energy.l1d_line_fills += 1
        if evicted is not None:
            self._handle_l1_eviction(core, evicted[0], evicted[1], reply_t)
        self._copy_version[core][line] = self._line_version.get(line, 0)
        self.energy.l1d_reads += 1
        if self.verify:
            entry = l1.lookup(line)
            self.golden.check_read(line, word, entry.data[word], f"Neat fill read core {core}")
        return reply_t

    # ------------------------------------------------------------------
    def _handle_l1_eviction(self, core: int, vline: int, ventry, t: float) -> None:
        """Silent eviction: copies are clean and nobody tracks them."""
        self.evict_histogram.record(ventry.utilization)
        hist = self._history[core]
        hist[vline] = (hist.get(vline, 0) | _EVER_CACHED) & ~_LAST_REMOVAL_INVAL
        self._copy_version[core].pop(vline, None)

    # ------------------------------------------------------------------
    # L2 evictions leave L1 copies alone: they are clean, and the version
    # check retires them the moment the line is written again.
    # (_purge_copies_for_l2_eviction inherits the base no-op.)
