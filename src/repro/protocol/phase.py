"""Phase-priority directory coherence (Li & An, arXiv 1305.3038; PAPERS.md).

The phase-priority idea: a directory line's service policy should follow the
line's current *access phase* rather than a per-sharer utilization estimate.
The engine tracks one of three phases per line at the home:

* **PRIVATE** - one core is accessing the line; classic directory service
  (full line grants, E/M states, invalidation rounds on writes).
* **READ_SHARED** - several cores read the line; still serviced with line
  grants (read copies are harmless), but the phase records that the line is
  actively shared so a subsequent write promotes it straight to
  WRITE_SHARED.
* **WRITE_SHARED** - the line migrates between writers; it is pinned at the
  home and every access (read or write) is serviced as a word access there,
  exactly the "remote sharer" service of the locality-aware protocol.  A
  write entering this phase first runs the normal invalidation round, so the
  single-writer/multiple-reader invariant is preserved and the home copy is
  authoritative from then on.

Modeling substitutions (documented in DESIGN.md section 11; the source paper
describes a NoC-priority mechanism, not a full protocol table, so this is a
behavioural interpretation behind the common ``ProtocolEngine`` interface):

* **Phase detection is at the home, on misses.**  A miss by a core other
  than the line's last accessor promotes PRIVATE -> READ_SHARED (reads) or
  any phase -> WRITE_SHARED (writes that find other private sharers or a
  different last accessor).  Same-core streaks never promote.
* **Phases decay at release epochs.**  One epoch is ``num_cores`` release
  boundaries (unlock/barrier completions, counted through
  :meth:`sync_boundary_hook`).  A line untouched for ``k`` full epochs
  decays ``k`` phase levels on its next access, so data that stops being
  write-shared eventually earns private copies again.  Decay is lazy (at
  the next touch), costing no sweep.
* **Timing reuses the directory machinery unchanged**: line grants, the
  invalidation round, the synchronous write-back and the word access at the
  home are the same paths (and latencies) the baseline/adaptive families
  use, so the family comparison isolates the phase *policy*.

Functional verification runs unchanged: WRITE_SHARED word writes follow an
invalidation round (SWMR holds), word accesses use the shared golden-checked
home service, and the base :meth:`final_line_value` authority order (MODIFIED
L1 > home L2 > DRAM) remains correct because the directory semantics are
untouched.
"""

from __future__ import annotations

from repro.common.types import MissType, SharerMode
from repro.protocol.base import (
    _EVER_CACHED,
    _EVER_REMOTE,
    _LAST_REMOVAL_INVAL,
    AccessResult,
)
from repro.protocol.directory import (
    _LINE_REPLY,
    _READ_REQ,
    _UPGRADE_REQ,
    _WORD_REPLY,
    _WORD_WRITE_ACK,
    _WRITE_REQ,
    DirectoryEngine,
)

# Line phases, ordered so decay is a subtraction.
PHASE_PRIVATE = 0
PHASE_READ_SHARED = 1
PHASE_WRITE_SHARED = 2

_PRIVATE_MODE = SharerMode.PRIVATE
_REMOTE_MODE = SharerMode.REMOTE


class PhaseEngine(DirectoryEngine):
    """Directory engine with phase-priority service policy."""

    __slots__ = (
        "_line_phase",
        "_epoch",
        "_release_count",
        "_releases_per_epoch",
        "phase_promotions",
        "phase_demotions",
        "phase_word_accesses",
    )

    def __init__(self, arch, proto, verify: bool = False) -> None:
        super().__init__(arch, proto, verify)
        #: line -> [phase, last accessing core, epoch of last phase change].
        self._line_phase: dict[int, list[int]] = {}
        self._epoch = 0
        self._release_count = 0
        self._releases_per_epoch = arch.num_cores
        # Statistics.
        self.phase_promotions = 0
        self.phase_demotions = 0
        self.phase_word_accesses = 0

    def reset_stats(self) -> None:
        """Also zero the phase counters for warmup/measure runs."""
        super().reset_stats()
        self.phase_promotions = 0
        self.phase_demotions = 0
        self.phase_word_accesses = 0

    def export_stats(self, stats) -> None:
        stats.phase_promotions = self.phase_promotions
        stats.phase_demotions = self.phase_demotions
        stats.phase_word_accesses = self.phase_word_accesses

    # ------------------------------------------------------------------
    # Release epochs drive phase decay.
    # ------------------------------------------------------------------
    def _on_release(self, core: int, t: float) -> None:
        self._release_count += 1
        self._epoch = self._release_count // self._releases_per_epoch

    def sync_boundary_hook(self):
        """Count release boundaries; ``num_cores`` of them close an epoch."""
        return self._on_release

    # ------------------------------------------------------------------
    def _resolve_phase(self, core: int, is_write: bool, line: int, dirent) -> int:
        """Decay, then promote, the line's phase for this miss; return it."""
        info = self._line_phase.get(line)
        epoch = self._epoch
        if info is None:
            info = [PHASE_PRIVATE, core, epoch]
            self._line_phase[line] = info
        elif info[0] != PHASE_PRIVATE and epoch > info[2]:
            # Lazy decay: one level per full epoch without a phase change.
            decayed = info[0] - (epoch - info[2])
            info[0] = decayed if decayed > PHASE_PRIVATE else PHASE_PRIVATE
            info[2] = epoch
            self.phase_demotions += 1
        phase = info[0]
        if is_write:
            sharers = dirent.sharers
            shared_write = info[1] != core or (
                sharers and not (len(sharers) == 1 and core in sharers)
            )
            if shared_write and phase != PHASE_WRITE_SHARED:
                info[0] = phase = PHASE_WRITE_SHARED
                info[2] = epoch
                self.phase_promotions += 1
        elif info[1] != core and phase == PHASE_PRIVATE:
            info[0] = phase = PHASE_READ_SHARED
            info[2] = epoch
            self.phase_promotions += 1
        info[1] = core
        return phase

    # ==================================================================
    # Miss path: DirectoryEngine._service_miss with the utilization
    # classifier replaced by the phase policy (the classifier is None for
    # this family, so the parent's classifier blocks are dropped rather
    # than branched around).
    # ==================================================================
    def _service_miss(
        self,
        core: int,
        is_write: bool,
        line: int,
        word: int,
        now: float,
        upgrade: bool,
    ) -> AccessResult:
        l1 = self.l1d[core]
        l1.misses += 1
        energy = self.energy
        energy.l1d_tag_accesses += 1
        result = AccessResult()

        # ---- request to the home slice (shared delivery path).
        if is_write:
            req_msg = _UPGRADE_REQ if upgrade else _WRITE_REQ
        else:
            req_msg = _READ_REQ
        reply_t = None
        cached = self._line_home_cache.get(line) if self._chain_enabled else None
        if cached is not None and (cached[1] < 0 or cached[1] == core):
            home = cached[0]
            slice_ = self.l2[home]
            store = slice_.store
            l2line = store._sets[line & store._set_mask].get(line)
            # Same clean precheck / chained shape as DirectoryEngine:
            # _resolve_phase touches no network or timing state and never
            # adds a sharer or owner, so it runs before the request departs
            # and the reply rides the same traverse_chain call.
            if l2line is not None:
                dirent = l2line.directory
                if is_write:
                    sharers = dirent.sharers
                    clean = not sharers or (len(sharers) == 1 and core in sharers)
                else:
                    clean = dirent.owner < 0 or dirent.owner == core
                if clean:
                    energy.directory_lookups += 1
                    phase = self._resolve_phase(core, is_write, line, dirent)
                    serviced_remote = phase == PHASE_WRITE_SHARED
                    if upgrade and serviced_remote:
                        self._remove_own_copy(core, line, l2line)
                        upgrade = False
                    if serviced_remote:
                        reply_msg = _WORD_WRITE_ACK if is_write else _WORD_REPLY
                    elif is_write and upgrade:
                        reply_msg = _WORD_WRITE_ACK
                    else:
                        reply_msg = _LINE_REPLY
                    t, reply_t = self._chain_request_reply(
                        core, home, l2line, slice_, req_msg, reply_msg, now, result
                    )
        if reply_t is None:
            home, slice_, l2line, t = self._request_at_home(core, line, req_msg, now, result)
            energy.directory_lookups += 1

            dirent = l2line.directory

            # ---- phase classification replaces the utilization classifier.
            phase = self._resolve_phase(core, is_write, line, dirent)
            serviced_remote = phase == PHASE_WRITE_SHARED

            if upgrade and serviced_remote:
                # The line just entered (or already was in) the write-shared
                # phase while this core still holds an S copy: fold the copy
                # back before servicing at the home.
                self._remove_own_copy(core, line, l2line)
                upgrade = False

        # ---- miss classification uses the pre-service history.
        history = self._history[core]
        flags = history.get(line, 0)
        if upgrade:
            miss_type = MissType.UPGRADE
        elif serviced_remote and flags & _EVER_REMOTE:
            miss_type = MissType.WORD
        elif not flags & _EVER_CACHED:
            miss_type = MissType.COLD
        elif flags & _LAST_REMOVAL_INVAL:
            miss_type = MissType.SHARING
        else:
            miss_type = MissType.CAPACITY
        result.miss_type = miss_type
        result.remote = serviced_remote
        self.miss_stats._miss_counts[miss_type] += 1

        # ---- coherence actions at the home (same as the directory path).
        if is_write:
            sharers = dirent.sharers
            if sharers and not (len(sharers) == 1 and core in sharers):
                sharers_lat = self._invalidate_sharers(line, l2line, home, core, t)
                t += sharers_lat
                result.l2_sharers = sharers_lat
        elif dirent.owner >= 0 and dirent.owner != core:
            sharers_lat = self._sync_writeback(line, l2line, home, t)
            t += sharers_lat
            result.l2_sharers = sharers_lat

        # ---- service: word access at the home or private line grant (on
        # the chained path the reply leg is already reserved).
        if serviced_remote:
            self.phase_word_accesses += 1
            if reply_t is None:
                reply_t = self._service_word_at_home(
                    core, is_write, line, word, l2line, home, slice_, t
                )
            else:
                self._word_service_bookkeeping(core, is_write, line, word, l2line, slice_)
            flags |= _EVER_REMOTE
        else:
            if reply_t is None:
                reply_t = self._service_private(
                    core, is_write, line, word, l2line, home, slice_, t, upgrade
                )
            else:
                self._grant_private(core, is_write, line, word, l2line, slice_, upgrade, reply_t)
            flags |= _EVER_CACHED
        history[line] = flags

        # ---- settle timing: word reads pipeline, everything else owns
        # the line until the directory settles (Section 5.1.2 rule).
        if serviced_remote and not is_write:
            busy = t - self._l2_latency + 1.0
            if busy > l2line.busy_until:
                l2line.busy_until = busy
        else:
            l2line.busy_until = t
        store = slice_.store
        store._use_counter = counter = store._use_counter + 1
        l2line.last_use = counter
        l2line.last_access = t
        energy.directory_updates += 1

        result.latency = reply_t - now
        result.l1_to_l2 = (
            result.latency - result.l2_waiting - result.l2_sharers - result.l2_offchip
        )
        if self.verify:
            dirent.check_invariants()
        return result

    # ------------------------------------------------------------------
    # Introspection helper used by tests.
    # ------------------------------------------------------------------
    def line_phase(self, line: int) -> int:
        """Current phase of ``line`` (before any lazy decay it has earned)."""
        info = self._line_phase.get(line)
        return info[0] if info is not None else PHASE_PRIVATE
