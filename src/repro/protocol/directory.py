"""Directory-based protocol families: baseline ACKwise and the
Locality-Aware Adaptive Coherence protocol (Section 3).

This engine services every L1 miss the way the paper's hardware would:

* computes the R-NUCA home slice for the line (flushing a private page's old
  slice when it transitions to shared);
* serializes requests to the same line at the home L2 ("L2 cache waiting
  time");
* fetches the line from off-chip memory on an L2 miss (inclusive L2, so an
  L2 eviction invalidates all L1 copies first);
* asks the locality classifier whether the requester is a **private** or a
  **remote** sharer and services the miss accordingly:

  - private read  -> synchronous write-back from an exclusive owner if any,
    then a full line reply (E if no other sharers, else S);
  - private write -> invalidation round to all other sharers (ACKwise
    unicast or broadcast), then an M-state line reply (header-only grant for
    an upgrade);
  - remote read   -> word read at the home L2, word reply;
  - remote write  -> invalidation round, then word write at the home L2;

* tracks private utilization in L1 tags, remote utilization + mode (+ RAT
  level / timestamps) at the directory, performing promotion on remote
  accesses and demotion when L1 copies are evicted or invalidated;
* accounts every message (flit-accurate, Section 3.6 rules), every cache/
  directory access (for the energy model) and the four L2-side latency
  components of Section 4.4.

The engine is *globally magic*: requests are serviced atomically in
simulation order while all latencies come from the network/DRAM/serialization
models.  This is the standard trace-driven methodology; per-line
serialization keeps the coherence order well defined.

With ``protocol="baseline"`` the classifier is disabled and every sharer is
private - the plain ACKwise/full-map directory protocol the paper
normalizes against.
"""

from __future__ import annotations

from repro.common import addr as addrmod
from repro.common.errors import CoherenceError, SimulationError
from repro.common.types import MESIState, MissType, RemovalReason, SharerMode
from repro.coherence.directory import DirectoryEntry
from repro.mem.cache import CacheLine
from repro.mem.l2 import L2Line, L2Slice
from repro.network.messages import MsgType
from repro.protocol.base import (
    _EVER_CACHED,
    _EVER_REMOTE,
    _LAST_REMOVAL_INVAL,
    AccessResult,
    ProtocolEngineBase,
)


_LINE_BITS = addrmod.LINE_BITS
_WORD_BITS = addrmod.WORD_BITS
_EXCLUSIVE = MESIState.EXCLUSIVE
_MODIFIED = MESIState.MODIFIED

# Message types as plain ints: the mesh's flit table indexes by value, and
# int indexing skips the enum __index__ dispatch on the hot path.
_READ_REQ = int(MsgType.READ_REQ)
_WRITE_REQ = int(MsgType.WRITE_REQ)
_UPGRADE_REQ = int(MsgType.UPGRADE_REQ)
_LINE_REPLY = int(MsgType.LINE_REPLY)
_WORD_REPLY = int(MsgType.WORD_REPLY)
_WORD_WRITE_ACK = int(MsgType.WORD_WRITE_ACK)
_INV_REQ = int(MsgType.INV_REQ)
_INV_ACK = int(MsgType.INV_ACK)
_WB_REQ = int(MsgType.WB_REQ)
_WB_DATA = int(MsgType.WB_DATA)
_EVICT_NOTIFY = int(MsgType.EVICT_NOTIFY)
_EVICT_DIRTY = int(MsgType.EVICT_DIRTY)

# Sharer modes as module constants: identity checks against local names on
# the miss path instead of enum attribute loads.
_PRIVATE_MODE = SharerMode.PRIVATE
_REMOTE_MODE = SharerMode.REMOTE


class DirectoryEngine(ProtocolEngineBase):
    """Directory protocol engine (baseline ACKwise / adaptive classifier)."""

    __slots__ = ()

    # ==================================================================
    # Public entry point
    # ==================================================================
    def access(self, core: int, is_write: bool, address: int, now: float) -> AccessResult:
        """Service one load/store issued by ``core`` at time ``now``.

        The L1-hit branch is the simulator's single hottest basic block
        (~80% of all accesses in steady state), so the lookup and the hit
        bookkeeping of ``L1Cache.lookup``/``L1Cache.hit`` are inlined here
        and the constant all-zero hit result is a shared per-engine
        instance instead of a fresh allocation.
        """
        line = address >> _LINE_BITS
        l1 = self.l1d[core]
        store = l1.store
        entry = store._sets[line & store._set_mask].get(line)
        if entry is not None and (not is_write or entry.state >= _EXCLUSIVE):
            # L1 hit (E -> M upgrade is silent).
            l1.hits += 1
            counter = store._use_counter + 1
            store._use_counter = counter
            entry.last_use = counter
            entry.utilization += 1
            entry.last_access = now
            self.miss_stats.hits += 1
            if is_write:
                entry.state = _MODIFIED
                self.energy.l1d_writes += 1
                if self.verify:
                    word = (address >> _WORD_BITS) & (self._words_per_line - 1)
                    self._verified_l1_write(core, entry, line, word)
            else:
                self.energy.l1d_reads += 1
                if self.verify:
                    word = (address >> _WORD_BITS) & (self._words_per_line - 1)
                    self.golden.check_read(line, word, entry.data[word], f"L1 hit core {core}")
            return self._hit_result
        word = (address >> _WORD_BITS) & (self._words_per_line - 1)
        upgrade = entry is not None  # write to an S-state copy
        return self._service_miss(core, is_write, line, word, now, upgrade)

    def scheduler_fast_path(self) -> dict | None:
        """Expose the L1 structures for the scheduler's inline hit path.

        Directory-family L1 hits (including the silent E -> M upgrade) are
        pure tag-side bookkeeping, so the simulator may service them
        without calling :meth:`access`.  Verify mode checks every hit
        against the golden memory and must take the full path.
        """
        if self.verify:
            return None
        store = self.l1d[0].store
        return {
            # All cores' set dicts in one flat list: bucket of (core, line)
            # is ``buckets[(core << set_bits) | (line & set_mask)]`` - a
            # single index operation per probe.  The dict objects are
            # shared with the stores, so miss-path fills/evictions are
            # visible here immediately.
            "buckets": [bucket for l1 in self.l1d for bucket in l1.store._sets],
            "set_bits": (store.num_sets - 1).bit_length(),
            "stores": [l1.store for l1 in self.l1d],
            "l1s": self.l1d,
            "set_mask": store._set_mask,
            "exclusive": _EXCLUSIVE,
            "modified": _MODIFIED,
            # C-adoption field (DESIGN.md sec. 14): the compiled scheduler
            # kernel resolves CacheLine's __slots__ member offsets from
            # this type and reads/writes entries through them directly.
            "line_type": CacheLine,
        }

    # ------------------------------------------------------------------
    def _install_line_state(self, l2line: L2Line) -> None:
        l2line.directory = DirectoryEntry()

    # ==================================================================
    # Miss path
    # ==================================================================
    def _service_miss(
        self,
        core: int,
        is_write: bool,
        line: int,
        word: int,
        now: float,
        upgrade: bool,
    ) -> AccessResult:
        l1 = self.l1d[core]
        l1.misses += 1
        energy = self.energy
        energy.l1d_tag_accesses += 1
        result = AccessResult()

        # ---- request to the home slice (tag + directory lookup there).
        # The home-memo hit (stable line home) plus uncontended delivery is
        # the common case, so ``_request_at_home``/``_deliver_request`` are
        # inlined here: reserved-path traversal, per-line serialization, L2
        # tag access.  Memo misses (first touch, private -> shared
        # transitions) take the shared slow path.
        if is_write:
            req_msg = _UPGRADE_REQ if upgrade else _WRITE_REQ
        else:
            req_msg = _READ_REQ
        reply_t = None
        cached = self._line_home_cache.get(line)
        if cached is not None and (cached[1] < 0 or cached[1] == core):
            home = cached[0]
            slice_ = self.l2[home]
            store = slice_.store
            l2line = store._sets[line & store._set_mask].get(line)
            # Clean precheck for the chained shape: when no invalidation
            # round (writes: no foreign sharer) and no synchronous
            # write-back (reads: no foreign exclusive owner) can fire, the
            # request and reply are the only traversals of this miss, so
            # both ride one traverse_chain call.  The check runs BEFORE
            # classification: _remove_own_copy - the only directory
            # mutation classification can make - removes the requester
            # itself, which cannot make a clean line dirty.
            if l2line is not None and self._chain_enabled:
                dirent = l2line.directory
                if is_write:
                    sharers = dirent.sharers
                    clean = not sharers or (len(sharers) == 1 and core in sharers)
                else:
                    clean = dirent.owner < 0 or dirent.owner == core
                if clean:
                    energy.directory_lookups += 1
                    serviced_remote, upgrade = self._classify_requester(
                        l1, l2line, core, line, upgrade
                    )
                    if serviced_remote:
                        reply_msg = _WORD_WRITE_ACK if is_write else _WORD_REPLY
                    elif is_write and upgrade:
                        reply_msg = _WORD_WRITE_ACK
                    else:
                        reply_msg = _LINE_REPLY
                    t, reply_t = self._chain_request_reply(
                        core, home, l2line, slice_, req_msg, reply_msg, now, result
                    )
            if reply_t is None:
                path = self._net_paths[core * self._num_tiles + home]
                if path is None:
                    path = self._net_resolve(core, home)
                t = self._net_traverse(path, now, self._net_flits[req_msg])
                if l2line is not None and l2line.busy_until > t:
                    result.l2_waiting = l2line.busy_until - t
                    t = l2line.busy_until
                t += self._l2_latency
                energy.l2_tag_accesses += 1
                if l2line is None:
                    slice_.misses += 1
                    l2line, t, result.l2_offchip = self._l2_fill(home, line, t)
                else:
                    slice_.hits += 1
        else:
            home, slice_, l2line, t = self._request_at_home(core, line, req_msg, now, result)
        if reply_t is None:
            energy.directory_lookups += 1
            # ---- classify the requester: private or remote sharer.
            # Inlined copy of _classify_requester (the chained branch's
            # canonical version above) - one method call per miss is
            # measurable in this loop, and the unchained path is what the
            # pure-Python fallback always runs.
            classifier = self.classifier
            if classifier is None:
                mode, centry = _PRIVATE_MODE, None
            else:
                entries = l2line.locality
                centry = entries.get(core) if entries is not None else None
                if centry is None:
                    centry = classifier.locality_entry(l2line, core, True)
                if centry is not None:
                    mode = centry.mode
                else:
                    classifier.vote_decisions += 1
                    tracked = remote_votes = 0
                    for e in entries.values():
                        tracked += 1
                        if e.mode is _REMOTE_MODE:
                            remote_votes += 1
                    mode = _REMOTE_MODE if 2 * remote_votes > tracked else _PRIVATE_MODE

            if upgrade and mode is _REMOTE_MODE:
                # Rare: the classifier lost this core's slot and votes
                # remote while it still holds an S copy - fold it back.
                self._remove_own_copy(core, line, l2line)
                upgrade = False

            serviced_remote = False
            if mode is _REMOTE_MODE:
                l1_min = l1.min_set_last_access(line)
                promoted = classifier.on_remote_access(
                    l2line, centry, l1_min, l1_min is None
                )
                serviced_remote = not promoted

        # ---- miss classification uses the pre-service history
        # (_classify_miss, inlined - Section 4.4).
        history = self._history[core]
        flags = history.get(line, 0)
        if upgrade:
            miss_type = MissType.UPGRADE
        elif serviced_remote and flags & _EVER_REMOTE:
            miss_type = MissType.WORD
        elif not flags & _EVER_CACHED:
            miss_type = MissType.COLD
        elif flags & _LAST_REMOVAL_INVAL:
            miss_type = MissType.SHARING
        else:
            miss_type = MissType.CAPACITY
        result.miss_type = miss_type
        result.remote = serviced_remote
        self.miss_stats._miss_counts[miss_type] += 1

        dirent = l2line.directory

        # ---- coherence actions at the home.
        if is_write:
            # The no-other-sharers write (the common write miss) skips the
            # invalidation round without a call; _invalidate_sharers keeps
            # the same guard for its other callers.
            sharers = dirent.sharers
            if sharers and not (len(sharers) == 1 and core in sharers):
                sharers_lat = self._invalidate_sharers(line, l2line, home, core, t)
                t += sharers_lat
                result.l2_sharers = sharers_lat
            classifier = self.classifier
            if classifier is not None:
                classifier.on_write(l2line, core)
        elif dirent.owner >= 0 and dirent.owner != core:
            sharers_lat = self._sync_writeback(line, l2line, home, t)
            t += sharers_lat
            result.l2_sharers = sharers_lat

        # ---- service: word access at L2 or private line grant.  On the
        # chained path the reply leg is already reserved; only the
        # time-independent bookkeeping halves run here.
        if serviced_remote:
            if reply_t is None:
                reply_t = self._service_word_at_home(
                    core, is_write, line, word, l2line, home, slice_, t
                )
            else:
                self._word_service_bookkeeping(core, is_write, line, word, l2line, slice_)
            flags |= _EVER_REMOTE
        else:
            if reply_t is None:
                reply_t = self._service_private(
                    core, is_write, line, word, l2line, home, slice_, t, upgrade
                )
            else:
                self._grant_private(core, is_write, line, word, l2line, slice_, upgrade, reply_t)
            flags |= _EVER_CACHED
        history[line] = flags

        # ---- settle timing and bookkeeping at the home.
        # Writes and line grants own the line until the directory settles;
        # remote word *reads* pipeline through the banked L2 (they take no
        # ownership), so they only occupy the line for one cycle - this is
        # why "a word miss only contributes marginally to the L2 cache
        # waiting time" (Section 5.1.2).
        if serviced_remote and not is_write:
            busy = t - self._l2_latency + 1.0
            if busy > l2line.busy_until:
                l2line.busy_until = busy
        else:
            l2line.busy_until = t
        # slice_.touch, inlined (bump LRU + last-access timestamp).
        store = slice_.store
        store._use_counter = counter = store._use_counter + 1
        l2line.last_use = counter
        l2line.last_access = t
        energy.directory_updates += 1

        result.latency = reply_t - now
        result.l1_to_l2 = (
            result.latency - result.l2_waiting - result.l2_sharers - result.l2_offchip
        )
        if self.verify:
            dirent.check_invariants()
        return result

    # ------------------------------------------------------------------
    # Requester classification (private vs remote sharer)
    # ------------------------------------------------------------------
    def _classify_requester(
        self, l1, l2line: L2Line, core: int, line: int, upgrade: bool
    ) -> tuple[bool, bool]:
        """Ask the locality classifier how to service this requester
        (classifier.resolve_mode inlined, including the tracked-entry
        probe of LimitedClassifier.locality_entry - one dict get).

        Touches no network or timing state, so it runs identically before
        the request departs (chained shape, which needs the reply type up
        front) or after it arrives (general path).  Returns
        ``(serviced_remote, upgrade)``; ``upgrade`` folds to False when
        the classifier votes remote for a core still holding an S copy
        (the copy is folded back via ``_remove_own_copy``).
        """
        classifier = self.classifier
        if classifier is None:
            mode, centry = _PRIVATE_MODE, None
        else:
            entries = l2line.locality
            centry = entries.get(core) if entries is not None else None
            if centry is None:
                centry = classifier.locality_entry(l2line, core, True)
            if centry is not None:
                mode = centry.mode
            else:
                # Untracked and untrackable (Limited_k, all slots active):
                # majority vote, inlined over the same live entry dict that
                # tracked_entries() would expose.
                classifier.vote_decisions += 1
                tracked = remote_votes = 0
                for e in entries.values():
                    tracked += 1
                    if e.mode is _REMOTE_MODE:
                        remote_votes += 1
                mode = _REMOTE_MODE if 2 * remote_votes > tracked else _PRIVATE_MODE

        if upgrade and mode is _REMOTE_MODE:
            # Rare: the classifier lost this core's slot and votes remote
            # while it still holds an S copy - fold the copy back first.
            self._remove_own_copy(core, line, l2line)
            upgrade = False

        serviced_remote = False
        if mode is _REMOTE_MODE:
            l1_min = l1.min_set_last_access(line)
            promoted = classifier.on_remote_access(
                l2line, centry, l1_min, l1_min is None
            )
            serviced_remote = not promoted
        return serviced_remote, upgrade

    # ------------------------------------------------------------------
    # Private (line) service
    # ------------------------------------------------------------------
    def _service_private(
        self,
        core: int,
        is_write: bool,
        line: int,
        word: int,
        l2line: L2Line,
        home: int,
        slice_: L2Slice,
        t: float,
        upgrade: bool,
    ) -> float:
        # The reply type depends only on is_write/upgrade, never on the
        # E-vs-S grant decision, so the traversal can run first and the
        # grant bookkeeping (shared with the chained path) after.
        reply = _WORD_WRITE_ACK if (is_write and upgrade) else _LINE_REPLY
        path = self._net_paths[home * self._num_tiles + core]
        if path is None:
            path = self._net_resolve(home, core)
        reply_t = self._net_traverse(path, t, self._net_flits[reply])
        self._grant_private(core, is_write, line, word, l2line, slice_, upgrade, reply_t)
        return reply_t

    def _grant_private(
        self,
        core: int,
        is_write: bool,
        line: int,
        word: int,
        l2line: L2Line,
        slice_: L2Slice,
        upgrade: bool,
        reply_t: float,
    ) -> None:
        """Directory/L1 bookkeeping of a private grant: everything
        :meth:`_service_private` does except the reply traversal (the
        chained fast path reserves that leg itself)."""
        dirent = l2line.directory
        classifier = self.classifier
        if classifier is not None:
            classifier.note_private_grant(l2line, core)
        policy = self.sharer_policy
        energy = self.energy

        if is_write:
            policy.set_owner(dirent, core)
        else:
            policy.add_sharer(dirent, core)
            if len(dirent.sharers) == 1:
                policy.set_owner(dirent, core)  # E grant
        if not upgrade:
            slice_.line_reads += 1
            energy.l2_line_reads += 1

        l1 = self.l1d[core]
        if upgrade:
            entry = l1.lookup(line)
            if entry is None:
                raise SimulationError(f"upgrade for core {core} but no L1 copy of {line:#x}")
            entry.state = MESIState.MODIFIED
            # Same side effects as a hit (LRU, utilization, timestamp) but
            # without touching the hit counter: this access is a miss.
            l1.store.touch(entry)
            entry.utilization += 1
            entry.last_access = reply_t
            energy.l1d_writes += 1
            if self.verify:
                self._verified_l1_write(core, entry, line, word)
            return

        if is_write:
            state = MESIState.MODIFIED
        elif dirent.owner == core:
            state = MESIState.EXCLUSIVE
        else:
            state = MESIState.SHARED
        data = list(l2line.data) if self.verify else None
        evicted = l1.fill(line, state, reply_t, data)
        energy.l1d_line_fills += 1
        if evicted is not None:
            self._handle_l1_eviction(core, evicted[0], evicted[1], reply_t)
        entry = l1.lookup(line)
        if is_write:
            energy.l1d_writes += 1
            if self.verify:
                self._verified_l1_write(core, entry, line, word)
        else:
            energy.l1d_reads += 1
            if self.verify:
                self.golden.check_read(line, word, entry.data[word], f"fill read core {core}")

    # ------------------------------------------------------------------
    # Invalidations (exclusive requests) - Section 3.2 write handling.
    # ------------------------------------------------------------------
    def _invalidate_sharers(
        self,
        line: int,
        l2line: L2Line,
        home: int,
        requester: int,
        t: float,
    ) -> float:
        """Invalidate every private sharer except ``requester``.

        Returns the "L2 cache to sharers" latency: the round-trip until all
        acknowledgements (with piggybacked utilization counters) arrive.
        ACKwise broadcasts when its pointers overflowed; acknowledgements
        come only from the true sharers.
        """
        dirent = l2line.directory
        sharers = dirent.sharers
        if not sharers or (len(sharers) == 1 and requester in sharers):
            return 0.0  # nobody else to invalidate (the common write miss)
        targets = [c for c in sharers if c != requester]
        if not targets:
            return 0.0
        paths = self._net_paths
        resolve = self._net_resolve
        traverse = self._net_traverse
        flits_tab = self._net_flits
        num_tiles = self._num_tiles
        if self.sharer_policy.use_broadcast(dirent):
            arrivals = self.network.broadcast(home, MsgType.INV_BROADCAST, t)
            self.sharer_policy.broadcast_invalidations += 1
        else:
            # All INVs depart together at ``t``: one batched traverse_many
            # reserves them in target order (one FFI crossing with the
            # compiled kernel).  The acks stay per-target below - each
            # departs at its own INV arrival and may differ in type - and
            # the all-INVs-then-acks reservation order is preserved.
            inv_paths = []
            for c in targets:
                path = paths[home * num_tiles + c]
                if path is None:
                    path = resolve(home, c)
                inv_paths.append(path)
            inv_flits = flits_tab[_INV_REQ]
            arrivals = dict(zip(targets, self._net_many(inv_paths, t, inv_flits)))
            self.sharer_policy.unicast_invalidations += len(targets)
        done = t
        for c in targets:
            ack_msg = self._purge_target_copy(c, line, l2line, merge_into_l2=True)
            path = paths[c * num_tiles + home]
            if path is None:
                path = resolve(c, home)
            ack_t = traverse(path, arrivals[c], flits_tab[ack_msg])
            if ack_t > done:
                done = ack_t
            self.sharer_policy.remove_sharer(dirent, c)
        return done - t

    # ------------------------------------------------------------------
    def _purge_target_copy(self, core: int, line: int, l2line: L2Line, merge_into_l2: bool) -> MsgType:
        """Kill ``core``'s private copy of ``line``; return the ack type.

        Handles histogram/history/classifier bookkeeping and, for MODIFIED
        copies, the write-back of the line data into ``l2line``
        (``merge_into_l2`` charges the L2 write; it is False when the L2
        line itself is dying - its locality state dies with it and the data
        flows straight to memory).  Subclasses override this to purge
        protocol-specific copies (e.g. local replicas in victim
        replication).
        """
        removed = self.l1d[core].remove(line)
        if removed is None:
            raise CoherenceError(f"directory lists core {core} for line {line:#x} but L1 empty")
        putil = removed.utilization
        self.inval_histogram.record(putil)
        hist = self._history[core]
        hist[line] = hist.get(line, 0) | _LAST_REMOVAL_INVAL
        if merge_into_l2 and self.classifier is not None:
            self.classifier.on_removal(l2line, core, putil, RemovalReason.INVALIDATION)
        if removed.state is not MESIState.MODIFIED:
            return _INV_ACK
        self.energy.l1d_line_reads += 1
        l2line.dirty = True
        if merge_into_l2:
            self.energy.l2_line_writes += 1
        if self.verify:
            l2line.data = list(removed.data)
        return _WB_DATA

    # ------------------------------------------------------------------
    # Synchronous write-back (read request hits an exclusive owner).
    # ------------------------------------------------------------------
    def _sync_writeback(self, line: int, l2line: L2Line, home: int, t: float) -> float:
        # The ack type is readable from the owner's L1 state before the
        # WB_REQ departs, so both legs ride one traverse_chain call (the
        # ack departs exactly at the request's arrival: no gap, no busy).
        dirent = l2line.directory
        owner = dirent.owner
        entry = self.l1d[owner].lookup(line)
        if entry is None:
            raise CoherenceError(f"owner {owner} of line {line:#x} has no L1 copy")
        dirty = entry.state is MESIState.MODIFIED
        msg = _WB_DATA if dirty else _INV_ACK  # data vs clean downgrade ack
        paths = self._net_paths
        num_tiles = self._num_tiles
        path1 = paths[home * num_tiles + owner]
        if path1 is None:
            path1 = self._net_resolve(home, owner)
        path2 = paths[owner * num_tiles + home]
        if path2 is None:
            path2 = self._net_resolve(owner, home)
        flits = self._net_flits
        _, ack_t = self._net_chain(path1, flits[_WB_REQ], t, 0.0, 0.0, path2, flits[msg])
        if dirty:
            self.energy.l1d_line_reads += 1
            self.energy.l2_line_writes += 1
            l2line.dirty = True
            if self.verify:
                l2line.data = list(entry.data)
        entry.state = MESIState.SHARED
        self.sharer_policy.clear_owner(dirent)
        return ack_t - t

    # ------------------------------------------------------------------
    # L1 evictions (capacity/conflict) - utilization flows back to the home.
    # ------------------------------------------------------------------
    def _handle_l1_eviction(self, core: int, vline: int, ventry, t: float) -> None:
        vhome = self._home_of_line.get(vline)
        if vhome is None:
            raise SimulationError(f"evicting line {vline:#x} with unknown home")
        self.evict_histogram.record(ventry.utilization)
        hist = self._history[core]
        hist[vline] = (hist.get(vline, 0) | _EVER_CACHED) & ~_LAST_REMOVAL_INVAL
        dirty = ventry.state is MESIState.MODIFIED
        msg = _EVICT_DIRTY if dirty else _EVICT_NOTIFY
        path = self._net_paths[core * self._num_tiles + vhome]
        if path is None:
            path = self._net_resolve(core, vhome)
        self._net_traverse(path, t, self._net_flits[msg])  # off the critical path
        vslice = self.l2[vhome]
        vl2 = vslice.lookup(vline)
        if vl2 is None:
            raise CoherenceError(f"inclusion violation: L1 evicts {vline:#x} absent from L2")
        if dirty:
            self.energy.l1d_line_reads += 1
            self.energy.l2_line_writes += 1
            vl2.dirty = True
            if self.verify:
                vl2.data = list(ventry.data)
        if self.classifier is not None:
            self.classifier.on_removal(vl2, core, ventry.utilization, RemovalReason.EVICTION)
        self.sharer_policy.remove_sharer(vl2.directory, core)
        self.energy.directory_updates += 1

    # ------------------------------------------------------------------
    # Fold back the requester's own stale S copy (classifier slot churn).
    # ------------------------------------------------------------------
    def _remove_own_copy(self, core: int, line: int, l2line: L2Line) -> None:
        removed = self.l1d[core].remove(line)
        if removed is None:
            return
        self.inval_histogram.record(removed.utilization)
        hist = self._history[core]
        hist[line] = hist.get(line, 0) | _LAST_REMOVAL_INVAL
        if self.classifier is not None:
            self.classifier.on_removal(
                l2line, core, removed.utilization, RemovalReason.INVALIDATION
            )
        self.sharer_policy.remove_sharer(l2line.directory, core)

    # ------------------------------------------------------------------
    # Inclusive-L2 eviction: kill all L1 copies first.
    # ------------------------------------------------------------------
    def _purge_copies_for_l2_eviction(self, home: int, vline: int, ventry: L2Line, t: float) -> None:
        dirent = ventry.directory
        for c in list(dirent.sharers):
            self.network.unicast(home, c, MsgType.INV_REQ, t)
            ack_msg = self._purge_target_copy(c, vline, ventry, merge_into_l2=False)
            self.network.unicast(c, home, ack_msg, t)
            self.sharer_policy.remove_sharer(dirent, c)
