"""Victim Replication baseline (Zhang & Asanovic, ISCA'05; paper Section 2.1).

Victim Replication (VR) starts from the same Private-L1 / Shared-L2
organization and uses the **local L2 slice as a victim cache** for lines
evicted from the L1: a subsequent miss on the victim hits the local slice
and is serviced without a network round-trip to the home.  The paper calls
out VR's central weakness - it "places all L1 cache victims into the local
L2 cache irrespective of whether they will be re-used in the future" - and
the comparison bench quantifies exactly that against the locality-aware
protocol.

Implementation notes (documented substitutions, see DESIGN.md):

* **Replicas are clean.**  A MODIFIED victim writes its data back to the
  home (EVICT_DIRTY, as in the baseline) and keeps a clean local replica;
  the original VR keeps dirty replicas locally.  This sidesteps remote
  ownership tracking while preserving VR's defining behaviour - local
  re-use of L1 victims - at the cost of charging write-back traffic the
  original would sometimes defer.
* **Sharer semantics.**  A replica counts as the core's copy: the core
  stays in the home directory's sharer set, so exclusive requests
  invalidate replicas exactly like L1 copies (one ack per true copy).
  A SHARED victim therefore replicates with *zero* network traffic.
* **Replacement preference.**  A replica may claim a free way, another
  replica (LRU) or an idle home line (no sharers; clean preferred).  It
  never displaces a home line with active sharers - the original VR's
  rule - and the victim is simply not replicated when no candidate exists.
"""

from __future__ import annotations

from repro.common.errors import CoherenceError
from repro.common.types import MESIState
from repro.mem.l2 import L2Line, L2Slice
from repro.network.messages import MsgType
from repro.protocol.base import _EVER_CACHED, _LAST_REMOVAL_INVAL, AccessResult
from repro.protocol.directory import DirectoryEngine


class VictimReplicationEngine(DirectoryEngine):
    """Protocol engine with victim replication in the local L2 slices."""

    __slots__ = (
        "replicas_created",
        "replica_hits",
        "replica_invalidations",
        "replica_evictions",
        "replication_failures",
    )

    def __init__(self, arch, proto, verify: bool = False) -> None:
        super().__init__(arch, proto, verify)
        # Statistics.
        self.replicas_created = 0
        self.replica_hits = 0
        self.replica_invalidations = 0
        self.replica_evictions = 0
        self.replication_failures = 0

    def reset_stats(self) -> None:
        """Also zero the replica counters for warmup/measure runs."""
        super().reset_stats()
        self.replicas_created = 0
        self.replica_hits = 0
        self.replica_invalidations = 0
        self.replica_evictions = 0
        self.replication_failures = 0

    def export_stats(self, stats) -> None:
        stats.replicas_created = self.replicas_created
        stats.replica_hits = self.replica_hits
        stats.replica_invalidations = self.replica_invalidations
        stats.replica_evictions = self.replica_evictions

    # ------------------------------------------------------------------
    # Fast path: L1 miss that hits a local replica.
    # ------------------------------------------------------------------
    def _service_miss(self, core, is_write, line, word, now, upgrade):
        if not is_write and not upgrade:
            local = self.l2[core]
            entry = local.lookup(line)
            if entry is not None and entry.is_replica:
                return self._replica_hit(core, line, word, entry, local, now)
        return super()._service_miss(core, is_write, line, word, now, upgrade)

    def _replica_hit(
        self,
        core: int,
        line: int,
        word: int,
        replica: L2Line,
        local: L2Slice,
        now: float,
    ) -> AccessResult:
        """Service a read miss from the local replica: no network traffic.

        The replica is promoted back into the L1 (and freed); the home
        directory still lists this core as a sharer, so no message is
        needed.  This is VR's entire benefit: a shared-L2 hit at private-L2
        latency.
        """
        self.replica_hits += 1
        local.hits += 1
        local.line_reads += 1
        self.energy.l2_tag_accesses += 1
        self.energy.l2_line_reads += 1
        t = now + self._l2_latency
        local.touch(replica, t)

        result = AccessResult()
        flags = self._history[core].get(line, 0)
        result.miss_type = self._classify_miss(flags, upgrade=False, serviced_remote=False)
        self.miss_stats.record_miss(result.miss_type)
        self._history[core][line] = flags | _EVER_CACHED

        data = list(replica.data) if self.verify and replica.data is not None else None
        local.remove(line)
        evicted = self.l1d[core].fill(line, MESIState.SHARED, t, data)
        self.energy.l1d_line_fills += 1
        if evicted is not None:
            self._handle_l1_eviction(core, evicted[0], evicted[1], t)
        self.energy.l1d_reads += 1
        if self.verify:
            l1entry = self.l1d[core].lookup(line)
            self.golden.check_read(line, word, l1entry.data[word], f"replica hit core {core}")
        result.latency = t - now
        result.l1_to_l2 = result.latency
        return result

    # ------------------------------------------------------------------
    # L1 evictions: try to keep the victim as a local replica.
    # ------------------------------------------------------------------
    def _handle_l1_eviction(self, core, vline, ventry, t):
        vhome = self._home_of_line.get(vline)
        if vhome is None:
            raise CoherenceError(f"evicting line {vline:#x} with unknown home")
        if vhome == core:
            # The home slice is local: a replica would duplicate it.
            super()._handle_l1_eviction(core, vline, ventry, t)
            return
        local = self.l2[core]
        if not self._make_room_for_replica(core, vline, local, t):
            self.replication_failures += 1
            super()._handle_l1_eviction(core, vline, ventry, t)
            return

        self.evict_histogram.record(ventry.utilization)
        hist = self._history[core]
        hist[vline] = (hist.get(vline, 0) | _EVER_CACHED) & ~_LAST_REMOVAL_INVAL

        vslice = self.l2[vhome]
        vl2 = vslice.lookup(vline)
        if vl2 is None:
            raise CoherenceError(f"inclusion violation: L1 evicts {vline:#x} absent from L2")
        dirent = vl2.directory
        if ventry.state is MESIState.MODIFIED:
            # Write the dirty data home; the local replica stays clean.
            self.network.unicast(core, vhome, MsgType.EVICT_DIRTY, t)
            self.energy.l1d_line_reads += 1
            self.energy.l2_line_writes += 1
            vl2.dirty = True
            if self.verify:
                vl2.data = list(ventry.data)
            self.sharer_policy.clear_owner(dirent)
        elif ventry.state is MESIState.EXCLUSIVE:
            # Tell the home it lost its exclusive owner (kept as a sharer).
            self.network.unicast(core, vhome, MsgType.EVICT_NOTIFY, t)
            self.sharer_policy.clear_owner(dirent)
        # SHARED victims replicate silently: the home already lists the core
        # as a sharer and nothing else changes - zero traffic.

        replica = L2Line()
        replica.is_replica = True
        replica.last_access = t
        if self.verify:
            replica.data = list(ventry.data) if ventry.data is not None else None
        displaced = local.store.insert(vline, replica)
        if displaced is not None:  # cannot happen: room was made above
            raise CoherenceError("replica insert displaced a line after making room")
        self.energy.l2_line_writes += 1
        self.replicas_created += 1

    # ------------------------------------------------------------------
    def _make_room_for_replica(self, core: int, vline: int, local: L2Slice, t: float) -> bool:
        """Free a way for a replica of ``vline``; True when one is available.

        Preference order (the original VR's rule): free way > LRU replica >
        idle clean home line > idle dirty home line.  Home lines with
        sharers are never displaced.
        """
        store = local.store
        if store.has_free_way(vline):
            return True
        entries = store.entries_in_set(vline)
        replicas = [(ln, e) for ln, e in entries if e.is_replica]
        if replicas:
            ln, entry = min(replicas, key=lambda item: item[1].last_use)
            self._drop_replica(core, ln, entry, t)
            return True
        idle = [
            (ln, e)
            for ln, e in entries
            if not e.is_replica and not e.directory.sharers
        ]
        if not idle:
            return False
        clean_idle = [(ln, e) for ln, e in idle if not e.dirty]
        ln, entry = min(clean_idle or idle, key=lambda item: item[1].last_use)
        self._evict_l2_line(core, ln, entry, t)
        store.pop(ln)
        return True

    def _drop_replica(self, core: int, line: int, replica: L2Line, t: float) -> None:
        """Discard a local replica, releasing its sharer slot at the home."""
        home = self._home_of_line.get(line)
        if home is None:
            raise CoherenceError(f"replica of line {line:#x} with unknown home")
        self.l2[core].store.pop(line)
        self.network.unicast(core, home, MsgType.EVICT_NOTIFY, t)
        homeline = self.l2[home].lookup(line)
        if homeline is None:
            raise CoherenceError(f"replica of {line:#x} outlived its home line")
        self.sharer_policy.remove_sharer(homeline.directory, core)
        self.energy.directory_updates += 1
        self.replica_evictions += 1

    # ------------------------------------------------------------------
    # Coherence: replicas answer invalidations like L1 copies.
    # ------------------------------------------------------------------
    def _purge_target_copy(self, core, line, l2line, merge_into_l2):
        l1entry = self.l1d[core].lookup(line)
        if l1entry is not None:
            return super()._purge_target_copy(core, line, l2line, merge_into_l2)
        replica = self.l2[core].lookup(line)
        if replica is None or not replica.is_replica:
            raise CoherenceError(
                f"directory lists core {core} for line {line:#x} but it holds "
                "neither an L1 copy nor a replica"
            )
        self.l2[core].remove(line)
        self.replica_invalidations += 1
        hist = self._history[core]
        hist[line] = hist.get(line, 0) | _LAST_REMOVAL_INVAL
        return MsgType.INV_ACK  # replicas are clean: never any data to return

    # ------------------------------------------------------------------
    # The requester's own replica dies when it receives a private copy.
    # (_grant_private, not _service_private: both the general path and the
    # chained fast path dispatch through the grant bookkeeping.)
    # ------------------------------------------------------------------
    def _grant_private(self, core, is_write, line, word, l2line, slice_, upgrade, reply_t):
        own = self.l2[core].lookup(line)
        if own is not None and own.is_replica:
            self.l2[core].remove(line)
            self.replica_evictions += 1
        super()._grant_private(core, is_write, line, word, l2line, slice_, upgrade, reply_t)

    # ------------------------------------------------------------------
    # L2 victim selection may hit a replica (it has no directory state).
    # ------------------------------------------------------------------
    def _evict_l2_line(self, home, vline, ventry, t):
        if ventry.is_replica:
            self._drop_replica(home, vline, ventry, t)
            return
        super()._evict_l2_line(home, vline, ventry, t)
