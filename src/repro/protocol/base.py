"""The ``ProtocolEngine`` interface: shared machinery for every coherence
protocol family.

A protocol engine services every memory reference of one simulated multicore:
``access(core, is_write, address, now)`` returns an :class:`AccessResult`
whose latency decomposition feeds the Figure-9 completion-time stack.  The
engine owns the substrate every family shares:

* the mesh network, memory subsystem and R-NUCA home placement;
* the per-core L1s and per-tile L2 slices (with their statistics);
* energy counters, miss statistics and the utilization histograms;
* the off-chip path: ``_l2_fill`` (inclusive-fill from DRAM) and
  ``_evict_l2_line`` (write-back + the per-family L1-purge hook);
* golden-memory verification plumbing (write tokens, the DRAM image, and
  the end-of-run ``check_final_state`` sweep used by the differential
  property harness).

Concrete families implement :meth:`access` plus the purge hooks:

* ``repro.protocol.directory`` - the directory-based families (``baseline``,
  ``adaptive``; ``victim`` extends it with local-L2 victim replication);
* ``repro.protocol.dls`` - the directoryless shared-LLC comparison baseline;
* ``repro.protocol.neat`` - the self-invalidation/self-downgrade comparison
  baseline.

``repro.protocol.engine.make_engine`` maps ``ProtocolConfig.protocol`` to the
family class.
"""

from __future__ import annotations

from repro.common import addr as addrmod
from repro.common.errors import SimulationError
from repro.common.params import ArchConfig, ProtocolConfig
from repro.common.types import MESIState, MissType
from repro.coherence.classifier.limited import make_classifier
from repro.coherence.directory import make_sharer_policy
from repro.energy.model import EnergyCounters
from repro.mem.golden import GoldenMemory
from repro.mem.l1 import L1Cache
from repro.mem.l2 import L2Line, L2Slice
from repro.mem.memctrl import MemorySubsystem
from repro.network.mesh import MeshNetwork
from repro.network.messages import MsgType
from repro.rnuca.page_table import PageKind
from repro.rnuca.placement import RNucaPlacement
from repro.sim.stats import MissStats, UtilizationHistogram

# Per-(core, line) history flags used for miss classification (Section 4.4).
_EVER_CACHED = 1  # line was previously brought into this core's L1
_LAST_REMOVAL_INVAL = 2  # last removal was an invalidation (else eviction)
_EVER_REMOTE = 4  # line was previously accessed remotely by this core

#: Write tokens are derived per core: ``count * _TOKEN_STRIDE + core``.  The
#: k-th write of a core therefore carries the same token value in every
#: protocol family (a core's write sequence is fixed by its trace stream),
#: which lets the trace-level differential harness compare golden images of
#: full ``Simulator`` runs even though families interleave cores differently.
_TOKEN_STRIDE = 1 << 20


class AccessResult:
    """Latency decomposition of one memory access."""

    __slots__ = (
        "latency",
        "l1_to_l2",
        "l2_waiting",
        "l2_sharers",
        "l2_offchip",
        "hit",
        "miss_type",
        "remote",
    )

    def __init__(self) -> None:
        self.latency = 0.0
        self.l1_to_l2 = 0.0
        self.l2_waiting = 0.0
        self.l2_sharers = 0.0
        self.l2_offchip = 0.0
        self.hit = False
        self.miss_type: MissType | None = None
        self.remote = False


class ProtocolEngineBase:
    """Coherence protocol + memory hierarchy for one simulated multicore.

    Slotted: the engine's attributes are read on every simulated access,
    and slot loads beat instance-dict lookups on the hot path.  Subclasses
    declare their own ``__slots__`` for any extra state.
    """

    __slots__ = (
        "arch",
        "proto",
        "verify",
        "network",
        "memsys",
        "placement",
        "sharer_policy",
        "classifier",
        "l1d",
        "l2",
        "energy",
        "miss_stats",
        "inval_histogram",
        "evict_histogram",
        "golden",
        "_dram_image",
        "_write_counts",
        "_write_token",
        "_history",
        "_home_of_line",
        "_l2_latency",
        "_words_per_line",
        "_hit_result",
        "_line_home_cache",
        "_num_tiles",
        "_net_paths",
        "_net_resolve",
        "_net_traverse",
        "_net_chain",
        "_net_many",
        "_net_flits",
        "_chain_enabled",
    )

    def __init__(
        self,
        arch: ArchConfig,
        proto: ProtocolConfig,
        verify: bool = False,
    ) -> None:
        self.arch = arch
        self.proto = proto
        self.verify = verify

        self.network = MeshNetwork(arch)
        self.memsys = MemorySubsystem(arch)
        self.placement = RNucaPlacement(arch)
        self.sharer_policy = make_sharer_policy(proto, arch.num_cores, arch.ackwise_pointers)
        self.classifier = make_classifier(proto) if proto.is_adaptive else None

        self.l1d = [L1Cache(arch.l1d, keep_data=verify) for _ in range(arch.num_cores)]
        self.l2 = [L2Slice(arch.l2, keep_data=verify) for _ in range(arch.num_cores)]

        self.energy = EnergyCounters()
        self.miss_stats = MissStats()
        self.inval_histogram = UtilizationHistogram()
        self.evict_histogram = UtilizationHistogram()

        self.golden = GoldenMemory() if verify else None
        self._dram_image: dict[int, list[int]] = {}
        self._write_counts = [0] * arch.num_cores
        self._write_token = 0  # most recently issued token value

        self._history: list[dict[int, int]] = [dict() for _ in range(arch.num_cores)]
        self._home_of_line: dict[int, int] = {}

        # Cheap int aliases for the hot path.
        self._l2_latency = arch.l2.latency
        self._words_per_line = arch.words_per_line

        #: Reserved-path traversal plumbing, hoisted once: the multi-hop
        #: request -> home -> reply chains probe the network's route memo
        #: directly and reserve whole paths in one ``traverse_path`` call
        #: (no per-message ``unicast`` wrapper, no MsgType dispatch).
        self._num_tiles = arch.num_cores
        self._net_paths = self.network.paths
        self._net_resolve = self.network.resolve_path
        self._net_traverse = self.network.traverse_path
        self._net_chain = self.network.traverse_chain
        self._net_many = self.network.traverse_many
        self._net_flits = [self.network.flits_for(msg) for msg in MsgType]
        #: The chained miss shapes only engage when each chain call
        #: actually saves an FFI crossing; without the kernel the probe
        #: and precheck are pure overhead, so the fallback runs the
        #: original inlined sequences (bit-identical either way - the
        #: chain composition is exact).
        self._chain_enabled = self.network.implementation == "accel"

        #: Shared L1-hit result: every field of a hit is constant (zero
        #: latency decomposition, ``hit=True``), so the hit fast path returns
        #: this one immutable-by-convention instance instead of allocating.
        self._hit_result = AccessResult()
        self._hit_result.hit = True

        #: line -> home-slice memo.  ``data_home`` is stable per line except
        #: across a private -> shared page transition, which is one-way; the
        #: transition handler drops the page's lines from this cache.
        self._line_home_cache: dict[int, int] = {}

    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero all measurement counters, keeping microarchitectural state.

        Used for warmup runs (standard simulator methodology): the caches,
        directory, classifier modes and network/DRAM reservations stay warm
        while hit/miss counts, energy events, histograms and traffic
        counters restart for the measured run.
        """
        self.energy = EnergyCounters()
        self.miss_stats = MissStats()
        self.inval_histogram = UtilizationHistogram()
        self.evict_histogram = UtilizationHistogram()
        net = self.network
        # router_flit_traversals is derived from these two; no reset needed.
        net.link_flit_traversals = 0
        net.messages_sent = 0
        net.flits_sent = 0
        net.slot_recycles = 0
        for ctrl in self.memsys.controllers.values():
            ctrl.requests = 0
            ctrl.bytes_transferred = 0
            ctrl.total_queue_delay = 0.0
        for l1 in self.l1d:
            l1.hits = 0
            l1.misses = 0
        for slice_ in self.l2:
            slice_.hits = 0
            slice_.misses = 0
            slice_.word_reads = 0
            slice_.word_writes = 0
            slice_.line_reads = 0
            slice_.line_writes = 0
        if self.classifier is not None:
            self.classifier.promotions = 0
            self.classifier.demotions = 0
            self.classifier.remote_accesses = 0
            self.classifier.vote_decisions = 0
        self.sharer_policy.broadcast_invalidations = 0
        self.sharer_policy.unicast_invalidations = 0

    # ==================================================================
    # Public entry point - implemented by each protocol family.
    # ==================================================================
    def access(self, core: int, is_write: bool, address: int, now: float) -> AccessResult:
        """Service one load/store issued by ``core`` at time ``now``."""
        raise NotImplementedError

    def scheduler_fast_path(self) -> dict | None:
        """Opt-in L1-hit fast path for the simulator's inner loop.

        A family whose L1-hit handling is pure bookkeeping (no protocol
        actions, no latency) may return a descriptor exposing the raw
        structures the scheduler needs to service a hit *inline*, skipping
        the ``access`` call entirely:

        ``buckets``    all cores' L1 set dicts in one flat list; the
                       bucket of (core, line) is
                       ``buckets[(core << set_bits) | (line & set_mask)]``,
        ``set_bits``   log2(sets per L1) for the flat indexing above,
        ``set_mask``   the shared L1 set-index mask,
        ``stores``     per-core ``SetAssocCache`` objects (LRU counter),
        ``l1s``        per-core ``L1Cache`` objects (hit counter),
        ``exclusive``  minimum state for a silent write hit,
        ``modified``   the state to write on a write hit,
        ``line_type``  the entry class whose ``__slots__`` hold ``state``/
                       ``last_use``/``last_access``/``utilization``.

        The contract is strict bit-identity: the inline path must perform
        exactly the bookkeeping ``access`` would (LRU, utilization,
        timestamp, hit/energy counters) and fall back to ``access`` for
        anything else.  Default: no fast path (miss-only families, or hit
        handling with side effects - version checks, golden verification).

        C adoption and writeback (DESIGN.md sec. 14): the compiled
        scheduler kernel mirrors the per-core stores in a native
        (core, line) map and *defers* hit bookkeeping.  Two rules keep the
        mirror coherent with engine-side mutations:

        * every membership change to a listed store while the kernel is
          attached must flow through ``SetAssocCache``'s ``_observer``
          hooks (fills, evictions, purges, clears) - true for any engine
          that mutates L1 residency via ``insert``/``pop``/``clear``;
        * the kernel flushes all deferred state (LRU counter replay,
          utilization, timestamps, E -> M upgrades) back into the entry
          objects *before every* ``access`` call and exit, so engine-side
          reads (victim choice, ``min_last_access``, purge state checks,
          utilization histograms) always observe exactly the values the
          pure-Python loop would have written.
        """
        return None

    def sync_boundary_hook(self):
        """Optional release-boundary callback for the scheduler.

        A family that acts at synchronization release points (e.g. Neat's
        release-boundary self-downgrade batching) returns a callable
        ``(core, t)``; the scheduler invokes it when ``core`` passes a
        release boundary - an unlock completion or a barrier arrival - and
        once per core at the end of each trace execution (a trace's end is
        its final release).  Default: None, and the scheduler pays nothing.
        """
        return None

    # ------------------------------------------------------------------
    @staticmethod
    def _classify_miss(flags: int, upgrade: bool, serviced_remote: bool) -> MissType:
        if upgrade:
            return MissType.UPGRADE
        if serviced_remote and flags & _EVER_REMOTE:
            return MissType.WORD
        if not flags & _EVER_CACHED:
            return MissType.COLD
        if flags & _LAST_REMOVAL_INVAL:
            return MissType.SHARING
        return MissType.CAPACITY

    # ------------------------------------------------------------------
    # Home-side access preamble, shared by every family's miss path.
    # ------------------------------------------------------------------
    def _request_at_home(
        self, core: int, line: int, req_msg: MsgType, now: float, result: AccessResult
    ) -> tuple[int, L2Slice, L2Line, float]:
        """Deliver a request to the line's home slice, ready for service.

        Performs the sequence every protocol family shares: R-NUCA home
        resolution (flushing a private page's old slice on a private ->
        shared transition), the request unicast, per-line serialization
        ("L2 cache waiting time", recorded into ``result``), the L2 tag
        access, and the off-chip fill on an L2 miss (recorded into
        ``result.l2_offchip``).  Returns ``(home, slice_, l2line, t)`` with
        ``t`` the time service at the home may begin.
        """
        # Memoized home: a line's home is stable while its page's
        # classification is stable - shared pages never reclassify and a
        # private page keeps its home for accesses by the owner.  Only an
        # access by a *different* core can move the home (the one-way
        # private -> shared transition); those fall through to the page
        # table via _resolve_data_home.
        cached = self._line_home_cache.get(line)
        if cached is not None and (cached[1] < 0 or cached[1] == core):
            return self._deliver_request(core, line, cached[0], None, req_msg, now, result)
        home, flush_owner = self._resolve_data_home(core, line)
        return self._deliver_request(core, line, home, flush_owner, req_msg, now, result)

    def _resolve_data_home(self, core: int, line: int) -> tuple[int, int | None]:
        """Home-memo miss path: classify through the page table and refill
        the memo.  Performs the first-touch classification side effects
        exactly as the unmemoized path did; on a private -> shared
        transition the page's stale memo entries are dropped."""
        placement = self.placement
        page = addrmod.page_of(line << addrmod.LINE_BITS, self.arch.page_size)
        kind, owner, previous_owner = placement.page_table.classify_data(page, core)
        if kind is PageKind.PRIVATE:
            self._line_home_cache[line] = (owner, owner)
            return owner, None
        if previous_owner is not None:
            # Transition: this page's lines were memoized at the old
            # private owner's slice; forget them before they mislead.
            for pline in addrmod.lines_in_page(page, self.arch.page_size):
                self._line_home_cache.pop(pline, None)
        home = placement.shared_home(line)
        self._line_home_cache[line] = (home, -1)
        return home, previous_owner

    def _deliver_request(
        self,
        core: int,
        line: int,
        home: int,
        flush_owner: int | None,
        req_msg: MsgType,
        now: float,
        result: AccessResult,
    ) -> tuple[int, L2Slice, L2Line, float]:
        """Home-resolution-agnostic half of :meth:`_request_at_home`.

        Split out so families with a different home function (DLS's
        word-interleaved LLC) can resolve the home themselves and reuse the
        shared delivery path (flush, unicast, serialization, tag access,
        off-chip fill).
        """
        if flush_owner is not None:
            self._flush_private_page(line, flush_owner, now)
        path = self._net_paths[core * self._num_tiles + home]
        if path is None:
            path = self._net_resolve(core, home)
        t = self._net_traverse(path, now, self._net_flits[req_msg])
        slice_ = self.l2[home]
        store = slice_.store
        l2line = store._sets[line & store._set_mask].get(line)
        if l2line is not None and l2line.busy_until > t:
            result.l2_waiting = l2line.busy_until - t
            t = l2line.busy_until
        t += self._l2_latency
        self.energy.l2_tag_accesses += 1
        if l2line is None:
            slice_.misses += 1
            l2line, t, result.l2_offchip = self._l2_fill(home, line, t)
        else:
            slice_.hits += 1
        return home, slice_, l2line, t

    # ------------------------------------------------------------------
    # Word service at the home L2 (shared by the remote path of the
    # adaptive protocol and by the DLS / Neat families).
    # ------------------------------------------------------------------
    def _word_service_bookkeeping(
        self,
        core: int,
        is_write: bool,
        line: int,
        word: int,
        l2line: L2Line,
        slice_: L2Slice,
    ) -> MsgType:
        """The home-side word access minus the reply traversal.

        Split from :meth:`_service_word_at_home` so the chained fast paths
        (which reserve request + reply in one ``traverse_chain`` call) can
        run the bookkeeping separately; none of it depends on time or on
        network state, so the split cannot change results.  Returns the
        reply message type (always determined by ``is_write`` alone).
        """
        if is_write:
            slice_.word_writes += 1
            self.energy.l2_word_writes += 1
            l2line.dirty = True
            l2line.dirty_words |= 1 << word
            if self.verify:
                token = self._issue_write_token(core)
                l2line.data[word] = token
                self.golden.write_word(line, word, token)
            return MsgType.WORD_WRITE_ACK
        slice_.word_reads += 1
        self.energy.l2_word_reads += 1
        if self.verify:
            self.golden.check_read(line, word, l2line.data[word], f"remote read core {core}")
        return MsgType.WORD_REPLY

    def _service_word_at_home(
        self,
        core: int,
        is_write: bool,
        line: int,
        word: int,
        l2line: L2Line,
        home: int,
        slice_: L2Slice,
        t: float,
    ) -> float:
        reply = self._word_service_bookkeeping(core, is_write, line, word, l2line, slice_)
        path = self._net_paths[home * self._num_tiles + core]
        if path is None:
            path = self._net_resolve(home, core)
        return self._net_traverse(path, t, self._net_flits[reply])

    # ------------------------------------------------------------------
    # Chained request -> home -> reply delivery (one FFI crossing per
    # miss with the compiled kernel; identical composition without it).
    # ------------------------------------------------------------------
    def _chain_probe(self, core: int, line: int):
        """Cheap preconditions for a chained miss: memoized home, line
        present at the home L2.  Returns ``(home, slice_, l2line)`` or
        ``None`` when the general path (home resolution side effects, or
        an off-chip fill whose timing interleaves with the reply) must
        run instead.
        """
        if not self._chain_enabled:
            return None
        cached = self._line_home_cache.get(line)
        if cached is None or not (cached[1] < 0 or cached[1] == core):
            return None
        home = cached[0]
        slice_ = self.l2[home]
        store = slice_.store
        l2line = store._sets[line & store._set_mask].get(line)
        if l2line is None:
            return None
        return home, slice_, l2line

    def _chain_request_reply(
        self,
        core: int,
        home: int,
        l2line: L2Line,
        slice_: L2Slice,
        req_msg: MsgType,
        reply_msg: MsgType,
        now: float,
        result: AccessResult,
    ) -> tuple[float, float]:
        """Reserve the request and reply legs in one ``traverse_chain``
        call, with the same serialization/latency arithmetic and the same
        counter updates as ``_deliver_request`` + a reply traversal.
        Returns ``(t, reply_t)``: the home service time and the reply's
        tail arrival at the requester.  Only valid when the reply message
        type is known up front (the L2-hit fast shapes).
        """
        paths = self._net_paths
        num_tiles = self._num_tiles
        flits = self._net_flits
        path1 = paths[core * num_tiles + home]
        if path1 is None:
            path1 = self._net_resolve(core, home)
        path2 = paths[home * num_tiles + core]
        if path2 is None:
            path2 = self._net_resolve(home, core)
        busy = l2line.busy_until
        t1, reply_t = self._net_chain(
            path1, flits[req_msg], now, busy, self._l2_latency, path2, flits[reply_msg]
        )
        if busy > t1:
            result.l2_waiting = busy - t1
            t = busy + self._l2_latency
        else:
            t = t1 + self._l2_latency
        self.energy.l2_tag_accesses += 1
        slice_.hits += 1
        return t, reply_t

    # ------------------------------------------------------------------
    # L2 miss: fetch the line from off-chip memory.
    # ------------------------------------------------------------------
    def _l2_fill(self, home: int, line: int, t: float) -> tuple[L2Line, float, float]:
        slice_ = self.l2[home]
        victim = slice_.victim(line)
        if victim is not None:
            self._evict_l2_line(home, victim[0], victim[1], t)
            slice_.remove(victim[0])

        ctrl = self.memsys.controller_for_line(line)
        req_t = self.network.unicast(home, ctrl.tile, MsgType.MEM_READ_REQ, t)
        finish, _queue = ctrl.access(req_t, self.arch.line_size)
        reply_t = self.network.unicast(ctrl.tile, home, MsgType.MEM_READ_REPLY, finish)

        data = None
        if self.verify:
            data = self._dram_image.get(line)
            data = list(data) if data is not None else [0] * self._words_per_line
        evicted = slice_.fill(line, reply_t, data)
        if evicted is not None:  # cannot happen: victim handled above
            raise SimulationError("L2 fill evicted after explicit victim handling")
        l2line = slice_.lookup(line)
        self._install_line_state(l2line)
        self.energy.l2_line_writes += 1
        self._home_of_line[line] = home
        return l2line, reply_t, reply_t - t

    def _install_line_state(self, l2line: L2Line) -> None:
        """Attach per-family home-side state to a freshly filled L2 line.

        The directory families attach a sharer-tracking ``DirectoryEntry``;
        DLS and Neat keep no home-side coherence state at all, so the
        default is a no-op (``l2line.directory`` stays None).
        """

    # ------------------------------------------------------------------
    def _evict_l2_line(self, home: int, vline: int, ventry: L2Line, t: float) -> None:
        """L2 eviction: purge dependent L1 state, write back if dirty.

        The per-family part - what happens to private copies of the dying
        line - is delegated to :meth:`_purge_copies_for_l2_eviction`; the
        write-back itself (off the requester's critical path, documented
        approximation) is identical for every family and fully accounted.
        """
        self._purge_copies_for_l2_eviction(home, vline, ventry, t)
        if ventry.dirty:
            self.energy.l2_line_reads += 1
            ctrl = self.memsys.controller_for_line(vline)
            self.network.unicast(home, ctrl.tile, MsgType.MEM_WRITE, t)
            ctrl.access(t, self.arch.line_size)
            if self.verify:
                self.golden.check_line(vline, ventry.data, f"L2 eviction at tile {home}")
                self._dram_image[vline] = list(ventry.data)
        self._home_of_line.pop(vline, None)

    def _purge_copies_for_l2_eviction(self, home: int, vline: int, ventry: L2Line, t: float) -> None:
        """Family hook: resolve private copies of an L2 line being evicted.

        Inclusive directory families invalidate every L1 copy (collecting
        write-backs); DLS caches nothing privately; Neat tolerates the stale
        copies (they are clean and version-checked on their next use).
        """

    # ------------------------------------------------------------------
    # R-NUCA private -> shared page transition: flush the old home slice.
    # ------------------------------------------------------------------
    def _flush_private_page(self, line: int, old_owner: int, t: float) -> None:
        page = addrmod.page_of(line << addrmod.LINE_BITS, self.arch.page_size)
        slice_ = self.l2[old_owner]
        for pline in addrmod.lines_in_page(page, self.arch.page_size):
            ventry = slice_.lookup(pline)
            if ventry is not None:
                self._evict_l2_line(old_owner, pline, ventry, t)
                slice_.remove(pline)

    # ------------------------------------------------------------------
    def _issue_write_token(self, core: int) -> int:
        """Mint the token for ``core``'s next write (order-independent).

        Tokens encode ``(per-core write index, core)`` so their values do
        not depend on how the protocol family interleaved *other* cores'
        writes; see ``_TOKEN_STRIDE``.  The most recent token stays
        available as ``self._write_token`` for same-access refresh paths.
        """
        count = self._write_counts[core] + 1
        self._write_counts[core] = count
        token = count * _TOKEN_STRIDE + core
        self._write_token = token
        return token

    def _verified_l1_write(self, core: int, entry, line: int, word: int) -> None:
        token = self._issue_write_token(core)
        entry.data[word] = token
        self.golden.write_word(line, word, token)

    # ------------------------------------------------------------------
    # End-of-run functional verification (differential harness).
    # ------------------------------------------------------------------
    def final_line_value(self, line: int) -> list[int]:
        """The architecturally observable value of ``line`` right now.

        Authority order: a MODIFIED private copy (SWMR guarantees at most
        one) > the home L2 line > the DRAM image.  Families without private
        ownership (DLS, Neat) simply never hit the first case.
        """
        for l1 in self.l1d:
            entry = l1.lookup(line)
            if (
                entry is not None
                and entry.state is MESIState.MODIFIED
                and entry.data is not None
            ):
                return list(entry.data)
        home = self._home_of_line.get(line)
        if home is not None:
            l2line = self.l2[home].lookup(line)
            if l2line is not None and not l2line.is_replica and l2line.data is not None:
                return list(l2line.data)
        image = self._dram_image.get(line)
        if image is not None:
            return list(image)
        return [0] * self._words_per_line

    def check_final_state(self) -> None:
        """Verify-mode sweep: no write may be lost even if never re-read.

        Walks every line the golden memory knows about and checks the
        observable value (L1 owner copy / home L2 / DRAM image) against the
        golden image; raises ``CoherenceError`` on the first divergence.
        """
        if self.golden is None:
            raise SimulationError("check_final_state requires verify mode")
        for line in sorted(self.golden.lines()):
            self.golden.check_line(line, self.final_line_value(line), "final state")

    # ------------------------------------------------------------------
    def export_stats(self, stats) -> None:
        """Copy family-specific counters onto a ``RunStats`` instance.

        The base exports nothing; families with extra counters (victim
        replication, Neat) override.  Keeps ``Simulator`` family-agnostic.
        """

    # ------------------------------------------------------------------
    # Introspection helpers used by tests.
    # ------------------------------------------------------------------
    def l1_state(self, core: int, line: int) -> MESIState:
        entry = self.l1d[core].lookup(line)
        return entry.state if entry is not None else MESIState.INVALID

    def directory_entry(self, line: int):
        home = self._home_of_line.get(line)
        if home is None:
            return None
        l2line = self.l2[home].lookup(line)
        return l2line.directory if l2line is not None else None
