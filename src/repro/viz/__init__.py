"""Terminal-friendly chart rendering for figure reproductions.

The paper's evaluation is communicated through stacked-bar figures (energy
and completion-time breakdowns), grouped bars (classifier sensitivity) and
line plots (the PCT U-curve).  This package renders all of those as plain
text so examples and the CLI can show the *shape* of each figure without a
plotting dependency:

* :func:`bar_chart` - horizontal labelled bars;
* :func:`stacked_bar_chart` - horizontal stacked bars with a legend
  (Figures 8 and 9);
* :func:`grouped_bar_chart` - several bars per category (Figures 13/14);
* :func:`line_chart` - multi-series x/y plot on a character grid
  (Figure 11);
* :func:`sparkline` - one-line trend summary;
* :class:`TextTable` - aligned column formatting with rules.

Everything is deterministic, pure Python and width-bounded.
"""

from repro.viz.ascii import (
    bar_chart,
    grouped_bar_chart,
    line_chart,
    sparkline,
    stacked_bar_chart,
)
from repro.viz.table import TextTable

__all__ = [
    "TextTable",
    "bar_chart",
    "grouped_bar_chart",
    "line_chart",
    "sparkline",
    "stacked_bar_chart",
]
