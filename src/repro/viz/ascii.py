"""ASCII chart primitives (bars, stacked bars, line plots, sparklines).

All functions return a single string (no trailing newline) and never print;
callers decide where the rendering goes.  Layout rules shared by every chart:

* bar lengths are scaled to ``width`` characters for the *largest* value
  (or an explicit ``max_value`` so that several charts share one scale);
* labels are left-aligned in a gutter sized to the longest label;
* values are appended after each bar so the text remains quantitative.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

#: Fill characters assigned to stacked/grouped series, in declaration order.
SERIES_GLYPHS = "#*=+o%@~^&"

#: Eight vertical resolution steps of a sparkline cell.
_SPARK_LEVELS = " .:-=+*#"


def _validate_width(width: int) -> None:
    if width < 4:
        raise ValueError(f"chart width must be >= 4 columns, got {width}")


def _finite(values: Sequence[float], what: str) -> None:
    for v in values:
        if not math.isfinite(v):
            raise ValueError(f"{what} must be finite, got {v!r}")
        if v < 0:
            raise ValueError(f"{what} must be non-negative, got {v!r}")


def _format_value(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 10:
        return f"{value:.1f}"
    return f"{value:.3f}"


# ----------------------------------------------------------------------
def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    max_value: float | None = None,
    title: str = "",
) -> str:
    """Render horizontal bars, one per (label, value) pair.

    >>> print(bar_chart(["a", "b"], [2.0, 1.0], width=8))
    a ######## 2.000
    b ####     1.000
    """
    if len(labels) != len(values):
        raise ValueError(f"{len(labels)} labels but {len(values)} values")
    if not labels:
        raise ValueError("bar_chart needs at least one bar")
    _validate_width(width)
    _finite(values, "bar values")
    scale_max = max(values) if max_value is None else max_value
    if max_value is not None and max_value <= 0:
        raise ValueError(f"max_value must be positive, got {max_value}")
    gutter = max(len(str(l)) for l in labels)
    out: list[str] = []
    if title:
        out.append(title)
    for label, value in zip(labels, values):
        cells = 0 if scale_max == 0 else round(width * value / scale_max)
        cells = min(cells, width)
        bar = "#" * cells + " " * (width - cells)
        out.append(f"{str(label):<{gutter}} {bar} {_format_value(value)}")
    return "\n".join(out)


# ----------------------------------------------------------------------
def stacked_bar_chart(
    labels: Sequence[str],
    series: Mapping[str, Sequence[float]],
    width: int = 48,
    max_value: float | None = None,
    title: str = "",
) -> str:
    """Render horizontal stacked bars (one glyph per series) with a legend.

    ``series`` maps a component name to its per-label values; the stacks of
    Figures 8/9 (energy and time components per PCT) render directly.
    """
    if not labels:
        raise ValueError("stacked_bar_chart needs at least one bar")
    if not series:
        raise ValueError("stacked_bar_chart needs at least one series")
    if len(series) > len(SERIES_GLYPHS):
        raise ValueError(f"at most {len(SERIES_GLYPHS)} series supported, got {len(series)}")
    _validate_width(width)
    names = list(series)
    for name in names:
        if len(series[name]) != len(labels):
            raise ValueError(
                f"series {name!r} has {len(series[name])} values for {len(labels)} labels"
            )
        _finite(series[name], f"series {name!r}")
    totals = [sum(series[name][i] for name in names) for i in range(len(labels))]
    scale_max = max(totals) if max_value is None else max_value
    if scale_max <= 0:
        scale_max = 1.0
    gutter = max(len(str(l)) for l in labels)
    out: list[str] = []
    if title:
        out.append(title)
    legend = "  ".join(f"{SERIES_GLYPHS[i]}={name}" for i, name in enumerate(names))
    out.append(f"legend: {legend}")
    for i, label in enumerate(labels):
        segments: list[str] = []
        used = 0
        for s, name in enumerate(names):
            share = series[name][i] / scale_max
            cells = round(width * share)
            cells = min(cells, width - used)
            segments.append(SERIES_GLYPHS[s] * cells)
            used += cells
        bar = "".join(segments) + " " * (width - used)
        out.append(f"{str(label):<{gutter}} {bar} {_format_value(totals[i])}")
    return "\n".join(out)


# ----------------------------------------------------------------------
def grouped_bar_chart(
    categories: Sequence[str],
    series: Mapping[str, Sequence[float]],
    width: int = 40,
    title: str = "",
) -> str:
    """Render one bar per (category, series) pair, grouped by category.

    Matches the layout of Figures 13/14: each benchmark (category) shows one
    bar per configuration (series), all on a shared scale.
    """
    if not categories:
        raise ValueError("grouped_bar_chart needs at least one category")
    if not series:
        raise ValueError("grouped_bar_chart needs at least one series")
    names = list(series)
    for name in names:
        if len(series[name]) != len(categories):
            raise ValueError(
                f"series {name!r} has {len(series[name])} values for "
                f"{len(categories)} categories"
            )
        _finite(series[name], f"series {name!r}")
    _validate_width(width)
    scale_max = max(max(series[name]) for name in names)
    gutter = max(len(str(n)) for n in names)
    out: list[str] = []
    if title:
        out.append(title)
    for i, category in enumerate(categories):
        out.append(f"{category}:")
        for name in names:
            value = series[name][i]
            cells = 0 if scale_max == 0 else min(width, round(width * value / scale_max))
            out.append(f"  {name:<{gutter}} {'#' * cells:<{width}} {_format_value(value)}")
    return "\n".join(out)


# ----------------------------------------------------------------------
def line_chart(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    height: int = 16,
    title: str = "",
) -> str:
    """Plot one or more y-series against shared x values on a text grid.

    Each series is drawn with its own glyph; collisions show the glyph of
    the *later* series.  The y-axis is annotated with min/max, the x-axis
    with the first/last x value.  Used for the Figure 11 U-curve.
    """
    if len(x) < 2:
        raise ValueError("line_chart needs at least two x points")
    if not series:
        raise ValueError("line_chart needs at least one series")
    if len(series) > len(SERIES_GLYPHS):
        raise ValueError(f"at most {len(SERIES_GLYPHS)} series supported")
    if height < 3:
        raise ValueError(f"height must be >= 3 rows, got {height}")
    _validate_width(width)
    names = list(series)
    for name in names:
        if len(series[name]) != len(x):
            raise ValueError(f"series {name!r} length {len(series[name])} != {len(x)} x points")
    xs = list(x)
    if sorted(xs) != xs:
        raise ValueError("x values must be nondecreasing")

    all_y = [v for name in names for v in series[name]]
    y_min, y_max = min(all_y), max(all_y)
    if not (math.isfinite(y_min) and math.isfinite(y_max)):
        raise ValueError("series values must be finite")
    y_span = (y_max - y_min) or 1.0
    x_span = (xs[-1] - xs[0]) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for s, name in enumerate(names):
        glyph = SERIES_GLYPHS[s]
        cols: list[tuple[int, int]] = []
        for xv, yv in zip(xs, series[name]):
            col = round((xv - xs[0]) / x_span * (width - 1))
            row = round((y_max - yv) / y_span * (height - 1))
            cols.append((col, row))
        # Connect consecutive points with vertical interpolation so the
        # curve shape reads even with few x samples.
        for (c0, r0), (c1, r1) in zip(cols, cols[1:]):
            span = max(1, c1 - c0)
            for c in range(c0, c1 + 1):
                frac = (c - c0) / span
                r = round(r0 + (r1 - r0) * frac)
                grid[r][c] = glyph
        for c, r in cols:
            grid[r][c] = glyph

    y_labels = [_format_value(y_max), _format_value(y_min)]
    gutter = max(len(l) for l in y_labels)
    out: list[str] = []
    if title:
        out.append(title)
    out.append("legend: " + "  ".join(f"{SERIES_GLYPHS[i]}={n}" for i, n in enumerate(names)))
    for r, row in enumerate(grid):
        if r == 0:
            label = y_labels[0]
        elif r == height - 1:
            label = y_labels[1]
        else:
            label = ""
        out.append(f"{label:>{gutter}} |{''.join(row)}")
    x_axis = f"{'':>{gutter}} +{'-' * width}"
    out.append(x_axis)
    left, right = _format_value(xs[0]), _format_value(xs[-1])
    pad = width - len(left) - len(right)
    out.append(f"{'':>{gutter}}  {left}{' ' * max(1, pad)}{right}")
    return "\n".join(out)


# ----------------------------------------------------------------------
def sparkline(values: Sequence[float]) -> str:
    """One-character-per-value trend line (8 vertical levels).

    >>> sparkline([0, 1, 2, 3])
    ' .=#'
    """
    if not values:
        raise ValueError("sparkline needs at least one value")
    _finite(values, "sparkline values")
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    steps = len(_SPARK_LEVELS) - 1
    return "".join(_SPARK_LEVELS[round((v - lo) / span * steps)] for v in values)
