"""Aligned text tables with typed columns.

``TextTable`` complements the ad-hoc f-string layouts in
``repro.experiments.figures`` for user-facing output: columns declare an
alignment and an optional float format once, rows are appended as plain
values, and rendering handles widths, rules and a footer row (used for the
geomean summaries that close most figures).
"""

from __future__ import annotations

from collections.abc import Sequence


class TextTable:
    """Column-aligned table renderer.

    >>> t = TextTable(["name", "time"], aligns=["<", ">"], formats=[None, ".3f"])
    >>> t.add_row(["radix", 1.0])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    name   time
    -----  -----
    radix  1.000
    """

    def __init__(
        self,
        columns: Sequence[str],
        aligns: Sequence[str] | None = None,
        formats: Sequence[str | None] | None = None,
        padding: int = 2,
    ) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = [str(c) for c in columns]
        n = len(self.columns)
        self.aligns = list(aligns) if aligns is not None else ["<"] + [">"] * (n - 1)
        self.formats = list(formats) if formats is not None else [None] * n
        if len(self.aligns) != n:
            raise ValueError(f"{len(self.aligns)} aligns for {n} columns")
        if len(self.formats) != n:
            raise ValueError(f"{len(self.formats)} formats for {n} columns")
        for a in self.aligns:
            if a not in ("<", ">", "^"):
                raise ValueError(f"alignment must be one of < > ^, got {a!r}")
        if padding < 1:
            raise ValueError(f"padding must be >= 1, got {padding}")
        self.padding = padding
        self._rows: list[list[str]] = []
        self._footer: list[str] | None = None

    # ------------------------------------------------------------------
    def _format_cell(self, value, fmt: str | None) -> str:
        if value is None:
            return "-"
        if fmt is not None and isinstance(value, (int, float)):
            return format(value, fmt)
        return str(value)

    def _format_row(self, values: Sequence) -> list[str]:
        if len(values) != len(self.columns):
            raise ValueError(f"row has {len(values)} cells, table has {len(self.columns)} columns")
        return [self._format_cell(v, f) for v, f in zip(values, self.formats)]

    def add_row(self, values: Sequence) -> None:
        """Append one data row (values are formatted per-column)."""
        self._rows.append(self._format_row(values))

    def set_footer(self, values: Sequence) -> None:
        """Set the summary row rendered below a rule (e.g. geomean)."""
        self._footer = self._format_row(values)

    @property
    def num_rows(self) -> int:
        return len(self._rows)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Render the table; raises if no rows were added."""
        if not self._rows and self._footer is None:
            raise ValueError("cannot render an empty table")
        all_rows = list(self._rows)
        if self._footer is not None:
            all_rows.append(self._footer)
        widths = [
            max(len(self.columns[i]), max(len(r[i]) for r in all_rows))
            for i in range(len(self.columns))
        ]
        gap = " " * self.padding

        def line(cells: Sequence[str]) -> str:
            return gap.join(
                f"{c:{a}{w}}" for c, a, w in zip(cells, self.aligns, widths)
            ).rstrip()

        out = [line(self.columns), gap.join("-" * w for w in widths)]
        out.extend(line(r) for r in self._rows)
        if self._footer is not None:
            out.append(gap.join("-" * w for w in widths))
            out.append(line(self._footer))
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()
