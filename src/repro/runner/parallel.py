"""Sweep orchestration: dedup, cache, backend dispatch, order reassembly.

``ParallelRunner`` turns a list of :class:`~repro.runner.job.Job` into a list
of :class:`~repro.sim.stats.RunStats`:

1. deduplicate jobs by content hash (figure sweeps share many points);
2. satisfy what it can from the :class:`~repro.runner.store.ResultStore`;
3. dispatch the remainder to an :class:`~repro.runner.backends.ExecutionBackend`
   - serial in-process, a spawn-safe ``multiprocessing`` pool, or remote
   ``repro serve`` daemons - persisting each result as it lands;
4. reassemble results in input order.

The runner is backend-agnostic: *what* executes a ``(payload, trace | None)``
task lives in :mod:`repro.runner.backends`, and every backend returns the
same ``RunStats.to_dict()`` payloads the cache persists, so serial, pooled,
remote and cached executions of one job are bit-identical by construction.

The runner is a context manager; prefer ``with ParallelRunner(...) as r:`` so
the backend (worker pool, connections) is released even when a sweep raises
mid-batch.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.common.errors import RunnerError
from repro.obs import TELEMETRY
from repro.runner.backends import ExecutionBackend, LocalBackend, ProcessBackend

# Re-exported for compatibility: the trace memo and job kernel moved to
# ``repro.runner.backends.local`` but remain part of this module's API.
from repro.runner.backends.local import build_trace, execute_job  # noqa: F401
from repro.runner.job import Job
from repro.runner.store import ResultStore
from repro.sim.stats import RunStats

#: Progress callback: (completed, total, job, source) with source one of
#: "cache", "serial", "parallel", "remote".
ProgressFn = Callable[[int, int, Job, str], None]


def format_progress(done: int, total: int, job: Job, source: str) -> str:
    """The one progress-line format shared by every CLI/harness frontend."""
    return f"  [{done}/{total}] {job.describe()} ({source})"


@dataclass
class ParallelRunner:
    """Executes job batches with caching, deduplication and backend sharding."""

    store: ResultStore | None = None
    workers: int = 1
    progress: ProgressFn | None = None
    #: ``multiprocessing`` start method for the default process backend.
    #: "spawn" works everywhere and proves workers carry no inherited state;
    #: "fork" is faster where available.
    start_method: str = "spawn"
    #: Execution backend.  ``None`` picks the historical default from
    #: ``workers``: a process pool when ``workers > 1``, else serial
    #: in-process execution.  Passing a backend hands its lifetime to the
    #: runner: :meth:`close` closes it.
    backend: ExecutionBackend | None = None

    #: Simulations actually executed by this runner (cache misses).
    simulations: int = 0

    _backend: ExecutionBackend | None = field(
        default=None, init=False, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[Job] | Iterable[Job]) -> list[RunStats]:
        """Execute ``jobs``; returns stats aligned with the input order.

        Duplicate jobs (same content hash) are executed once and share the
        returned ``RunStats`` object.
        """
        jobs = list(jobs)
        unique: dict[str, Job] = {}
        for job in jobs:
            kept = unique.setdefault(job.key, job)
            if job.verify and not kept.verify:
                # verify is hash-excluded, so twins collapse to one
                # execution; run the checked twin - its result is
                # identical and satisfies both (see ResultStore.get).
                unique[job.key] = job

        results: dict[str, RunStats] = {}
        pending: list[Job] = []
        total = len(unique)
        done = 0
        for key, job in unique.items():
            cached = self.store.get(job) if self.store is not None else None
            if cached is not None:
                results[key] = cached
                done += 1
                if self.progress is not None:
                    self.progress(done, total, job, "cache")
            else:
                pending.append(job)
        if TELEMETRY.enabled:
            TELEMETRY.count("runner.jobs", len(jobs))
            TELEMETRY.count("runner.cache.hits", done)
            TELEMETRY.count("runner.cache.misses", len(pending))

        if pending:
            # Advertise this process as a live appender while the batch
            # streams results into the store, so `repro cache compact`
            # refuses to rewrite the log out from under it.
            lock = (
                self.store.writer_lock()
                if self.store is not None
                else contextlib.nullcontext()
            )
            with lock:
                self._run_pending(pending, results, done, total)

        missing = [unique[k].describe() for k in unique if k not in results]
        if missing:
            raise RunnerError(f"jobs produced no result: {missing}")
        return [results[job.key] for job in jobs]

    # ------------------------------------------------------------------
    def _ensure_backend(self) -> ExecutionBackend:
        if self._backend is None:
            if self.backend is not None:
                self._backend = self.backend
            elif self.workers <= 1:
                self._backend = LocalBackend()
            else:
                self._backend = ProcessBackend(
                    workers=self.workers, start_method=self.start_method
                )
        return self._backend

    def _run_pending(
        self, pending: list[Job], results: dict[str, RunStats], done: int, total: int
    ) -> None:
        backend = self._ensure_backend()
        by_key = {job.key: job for job in pending}
        wants_traces = getattr(backend, "wants_traces", False)
        #: Batch dispatch origin: each finished job reports its time since
        #: this mark as queue-wait + execution (the only per-job latency a
        #: backend-agnostic orchestrator can observe for pooled/remote jobs).
        self._batch_started = time.perf_counter()

        def tasks():
            # In-process backends get each unique trace compiled once in the
            # parent (memoized by trace_key) and shipped with the job as
            # contiguous columnar buffers; lazy evaluation overlaps trace
            # builds with execution.  The remote backend declines: daemons
            # regenerate traces deterministically from the payload.
            for job in pending:
                yield job.to_dict(), (build_trace(job) if wants_traces else None)

        try:
            with TELEMETRY.span(
                "runner.batch", jobs=len(pending), backend=backend.source
            ):
                for key, payload in backend.run_batch(tasks()):
                    done = self._finish(
                        by_key[key], payload, results, done, total, backend.source
                    )
        except RunnerError:
            raise
        except Exception as exc:
            self.close()
            raise RunnerError(f"execution backend failed: {exc}") from exc

    def _finish(
        self,
        job: Job,
        payload: dict,
        results: dict[str, RunStats],
        done: int,
        total: int,
        source: str,
    ) -> int:
        """Record one completed simulation; returns the new done count."""
        if self.store is not None:
            self.store.put(job, payload)
        results[job.key] = RunStats.from_dict(payload)
        self.simulations += 1
        done += 1
        if TELEMETRY.enabled:
            TELEMETRY.event(
                "runner.job_done",
                key=job.key[:12],
                workload=job.workload,
                source=source,
                wait_s=round(time.perf_counter() - self._batch_started, 6),
            )
        if self.progress is not None:
            self.progress(done, total, job, source)
        return done

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the execution backend (idempotent; respawns on demand)."""
        backend = self._backend if self._backend is not None else self.backend
        self._backend = None
        if backend is not None:
            backend.close()

    def __enter__(self) -> "ParallelRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
