"""Parallel sweep execution: shard pending jobs across worker processes.

``ParallelRunner`` turns a list of :class:`~repro.runner.job.Job` into a list
of :class:`~repro.sim.stats.RunStats`:

1. deduplicate jobs by content hash (figure sweeps share many points);
2. satisfy what it can from the :class:`~repro.runner.store.ResultStore`;
3. execute the remainder - in-process when ``workers <= 1``, else sharded
   over a ``multiprocessing`` pool - and persist each result as it lands.

Worker processes are **spawn-safe**: the pool is created from the ``spawn``
context (the fork-unsafe-by-default world of macOS/Windows and of threaded
parents), and workers receive only the serialized job payload.  Each worker
rebuilds ``ArchConfig``/``ProtocolConfig``/``Simulator`` from that payload
and regenerates the trace through the workload registry under
``rng.seed_scope(job.seed)``, memoizing it per ``trace_key`` so a PCT sweep
builds each trace once per worker, and deriving every random stream from the
job itself - never from inherited process state (see DESIGN.md, "Runner and
result cache").

Results cross the process boundary as ``RunStats.to_dict()`` payloads - the
exact representation the cache persists - and the serial path round-trips
through the same representation, so serial, parallel, and cached executions
of one job are bit-identical by construction.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.common import rng
from repro.common.errors import RunnerError
from repro.runner.job import Job
from repro.runner.store import ResultStore
from repro.sim.multicore import Simulator
from repro.sim.stats import RunStats
from repro.workloads.base import Trace
from repro.workloads.registry import load_workload

#: Progress callback: (completed, total, job, source) with source one of
#: "cache", "serial", "parallel".
ProgressFn = Callable[[int, int, Job, str], None]


def format_progress(done: int, total: int, job: Job, source: str) -> str:
    """The one progress-line format shared by every CLI/harness frontend."""
    return f"  [{done}/{total}] {job.describe()} ({source})"

#: Per-process trace memo, keyed by ``Job.trace_key``.  In the parent it backs
#: serial execution; in pool workers it persists across jobs for the lifetime
#: of the worker process.  Bounded LRU: sweeps visit one trace's jobs in
#: bursts, so a small window captures nearly all reuse while keeping ablations
#: that span many arch variants (each variant = a distinct trace) from
#: pinning every trace ever built for the process lifetime.
_TRACE_CACHE: dict[str, Trace] = {}
_TRACE_CACHE_MAX = 32


def _memoize_trace(trace_key: str, trace: Trace) -> None:
    """Install ``trace`` in the per-process memo (bounded LRU)."""
    while len(_TRACE_CACHE) >= _TRACE_CACHE_MAX:
        _TRACE_CACHE.pop(next(iter(_TRACE_CACHE)))
    _TRACE_CACHE[trace_key] = trace


def build_trace(job: Job) -> Trace:
    """Regenerate ``job``'s trace deterministically (no process state).

    The trace depends only on (workload, scale, seed, arch); ``seed_scope``
    pins the salt for the duration of the build so concurrent sweeps with
    different seeds cannot interleave incorrectly.
    """
    cached = _TRACE_CACHE.get(job.trace_key)
    if cached is None:
        with rng.seed_scope(job.seed):
            cached = load_workload(job.workload, job.arch, scale=job.scale)
        _memoize_trace(job.trace_key, cached)
    else:
        # Move to the back so hot traces survive eviction (dict = LRU order).
        _TRACE_CACHE.pop(job.trace_key)
        _TRACE_CACHE[job.trace_key] = cached
    return cached


def execute_job(job: Job) -> RunStats:
    """Run one simulation point from scratch: trace + simulator from configs."""
    simulator = Simulator(
        job.arch, job.proto, energy=job.energy, warmup=job.warmup, verify=job.verify
    )
    return simulator.run(build_trace(job))


def _worker_run(task: dict | tuple[dict, Trace | None]) -> tuple[str, dict]:
    """Pool entry point: serialized (job, optional compiled trace) in,
    (key, serialized stats) out.

    The parent forwards the compiled columnar IR with each dispatched job -
    pickled as raw ``array('q')`` buffers, a few contiguous blobs per trace
    rather than a tuple graph - so workers never regenerate a trace the
    parent already built.  A bare payload dict (no trace) is still accepted
    for compatibility and triggers worker-side regeneration.
    """
    if isinstance(task, dict):  # legacy shape: regenerate in the worker
        payload, trace = task, None
    else:
        payload, trace = task
    job = Job.from_dict(payload)
    if trace is not None and job.trace_key not in _TRACE_CACHE:
        _memoize_trace(job.trace_key, trace)
    return job.key, execute_job(job).to_dict()


@dataclass
class ParallelRunner:
    """Executes job batches with caching, deduplication and worker sharding."""

    store: ResultStore | None = None
    workers: int = 1
    progress: ProgressFn | None = None
    #: ``multiprocessing`` start method.  "spawn" works everywhere and proves
    #: workers carry no inherited state; "fork" is faster where available.
    start_method: str = "spawn"

    #: Simulations actually executed by this runner (cache misses).
    simulations: int = 0

    #: Worker pool, created lazily on the first parallel batch and kept for
    #: the runner's lifetime: a figure gallery submits one batch per figure,
    #: and reusing the pool preserves both the spawn startup cost and each
    #: worker's trace memo across batches.  Terminated by :meth:`close` (or
    #: the pool's own GC finalizer; workers are daemonic either way).
    _pool: object = field(default=None, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------
    def run(self, jobs: Sequence[Job] | Iterable[Job]) -> list[RunStats]:
        """Execute ``jobs``; returns stats aligned with the input order.

        Duplicate jobs (same content hash) are executed once and share the
        returned ``RunStats`` object.
        """
        jobs = list(jobs)
        unique: dict[str, Job] = {}
        for job in jobs:
            kept = unique.setdefault(job.key, job)
            if job.verify and not kept.verify:
                # verify is hash-excluded, so twins collapse to one
                # execution; run the checked twin - its result is
                # identical and satisfies both (see ResultStore.get).
                unique[job.key] = job

        results: dict[str, RunStats] = {}
        pending: list[Job] = []
        total = len(unique)
        done = 0
        for key, job in unique.items():
            cached = self.store.get(job) if self.store is not None else None
            if cached is not None:
                results[key] = cached
                done += 1
                if self.progress is not None:
                    self.progress(done, total, job, "cache")
            else:
                pending.append(job)

        if pending:
            if self.workers <= 1 or len(pending) == 1:
                self._run_serial(pending, results, done, total)
            else:
                self._run_parallel(pending, results, done, total)

        missing = [unique[k].describe() for k in unique if k not in results]
        if missing:
            raise RunnerError(f"jobs produced no result: {missing}")
        return [results[job.key] for job in jobs]

    # ------------------------------------------------------------------
    def _finish(
        self,
        job: Job,
        payload: dict,
        results: dict[str, RunStats],
        done: int,
        total: int,
        source: str,
    ) -> int:
        """Record one completed simulation; returns the new done count."""
        if self.store is not None:
            self.store.put(job, payload)
        results[job.key] = RunStats.from_dict(payload)
        self.simulations += 1
        done += 1
        if self.progress is not None:
            self.progress(done, total, job, source)
        return done

    def _run_serial(
        self, pending: list[Job], results: dict[str, RunStats], done: int, total: int
    ) -> None:
        for job in pending:
            payload = execute_job(job).to_dict()
            done = self._finish(job, payload, results, done, total, "serial")

    def _run_parallel(
        self, pending: list[Job], results: dict[str, RunStats], done: int, total: int
    ) -> None:
        by_key = {job.key: job for job in pending}

        def tasks():
            # Compile each unique trace once in the parent (memoized by
            # trace_key) and ship the columnar IR with the job: pickling the
            # IR is a handful of contiguous array-buffer copies, so workers
            # receive a ready-to-run trace instead of regenerating it.
            # Lazily evaluated as the pool consumes tasks, so trace builds
            # overlap with worker execution.
            for job in pending:
                yield job.to_dict(), build_trace(job)

        if self._pool is None:
            context = multiprocessing.get_context(self.start_method)
            self._pool = context.Pool(processes=self.workers)
        try:
            for key, payload in self._pool.imap_unordered(_worker_run, tasks()):
                done = self._finish(by_key[key], payload, results, done, total, "parallel")
        except RunnerError:
            raise
        except Exception as exc:  # worker crash: surface which engine failed
            self.close()
            raise RunnerError(f"worker pool failed: {exc}") from exc

    def close(self) -> None:
        """Terminate the worker pool (idempotent; a new one spawns on demand)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
