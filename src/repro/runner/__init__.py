"""Sweep execution engine: parallel, distributed, resumable, content-addressed.

The runner turns experiment execution into a first-class service:

* :class:`~repro.runner.job.Job` - canonical, hashable description of one
  simulation point (arch + protocol + energy + workload + scale + seed +
  warmup) with deterministic content hashing;
* :class:`~repro.runner.store.ResultStore` - on-disk JSONL cache mapping job
  hash to fully serialized :class:`~repro.sim.stats.RunStats`, safe for
  concurrent appenders (single ``O_APPEND`` write per record) and mergeable
  across hosts;
* :class:`~repro.runner.parallel.ParallelRunner` - orchestration shell
  (dedup -> cache -> backend dispatch -> persistence -> input-order
  reassembly) over pluggable :mod:`~repro.runner.backends`: serial
  in-process, spawn-safe ``multiprocessing``, or remote ``repro serve``
  daemons sharded over TCP;
* :class:`~repro.runner.sweep.SweepGrid` - cartesian workload x protocol x
  PCT grid expansion behind the ``repro sweep`` CLI verb.
"""

from repro.runner.backends import (
    ExecutionBackend,
    LocalBackend,
    ProcessBackend,
    RemoteBackend,
    make_backend,
)
from repro.runner.job import JOB_SCHEMA, Job, canonical_json
from repro.runner.parallel import ParallelRunner, build_trace, execute_job
from repro.runner.store import DEFAULT_CACHE_DIR, ResultStore
from repro.runner.sweep import (
    FIGURE11_PCTS,
    SweepGrid,
    seed_spread_rows,
    seed_spread_table,
    sweep_rows,
    sweep_table,
)

__all__ = [
    "DEFAULT_CACHE_DIR",
    "ExecutionBackend",
    "FIGURE11_PCTS",
    "JOB_SCHEMA",
    "Job",
    "LocalBackend",
    "ParallelRunner",
    "ProcessBackend",
    "RemoteBackend",
    "ResultStore",
    "SweepGrid",
    "build_trace",
    "canonical_json",
    "execute_job",
    "make_backend",
    "seed_spread_rows",
    "seed_spread_table",
    "sweep_rows",
    "sweep_table",
]
