"""``repro bench``: trace-build + simulate throughput on fixed grid points.

Measures the two hot paths the columnar trace IR was built for:

* **build** - records/second constructing the workload trace (generator
  kernels appending into the column arrays, one validation pass);
* **simulate** - records/second executing the trace through the simulator
  (the ``Simulator._execute`` / ``ProtocolEngine.access`` inner loops),
  counting every executed record: with warmup enabled a trace is executed
  twice, so one run executes ``2 * total_records`` records.

Methodology: every sample is CPU time (``time.process_time`` - immune to
other processes, though not to frequency scaling) and each metric reports
the **best of N repetitions**, because a throttled container only ever adds
time; the fastest repetition is the closest estimate of the code's true
cost.  Grid points are fixed Figure-11 sweep points (workload x PCT at 64
cores, small scale, warmup on) so numbers are comparable across commits;
``BENCH_pr3.json`` in the repo root records the PR-3 baseline/after pair
produced by this verb.
"""

from __future__ import annotations

import json
import time

from repro import accel
from repro.common.errors import ConfigError
from repro.common.params import (
    ArchConfig,
    ProtocolConfig,
    baseline_protocol,
    dls_protocol,
    neat_protocol,
    phase_protocol,
    victim_replication_protocol,
)
from repro.sim.multicore import Simulator
from repro.workloads.registry import load_workload

#: The default fixed grid points as (workload, pct, family).  The first
#: entry is the primary point quoted in CHANGES/BENCH trajectories; the
#: rest give a hit-heavy (susan), a miss-heavy (radix) and a sync-heavy
#: (tsp) profile, plus the miss-heaviest profiles of all - the DLS (every
#: access a word round-trip) and Neat (write-through) comparison families
#: on radix - so a regression in any one hot path is visible.
DEFAULT_POINTS: tuple[tuple[str, int, str], ...] = (
    ("tsp", 4, "pct"),
    ("susan", 4, "pct"),
    ("radix", 4, "pct"),
    ("radix", 1, "dls"),
    ("radix", 1, "neat"),
)

#: Family -> ProtocolConfig for benched points ("pct" follows the paper's
#: sweep convention: PCT=1 is the baseline, otherwise adaptive at PCT).
BENCH_FAMILIES = ("pct", "baseline", "victim", "dls", "neat", "phase")


def _protocol_for(pct: int, family: str = "pct") -> ProtocolConfig:
    if family not in BENCH_FAMILIES:
        raise ConfigError(
            f"unknown bench family {family!r} (choose from {BENCH_FAMILIES})"
        )
    if family == "baseline":
        return baseline_protocol()
    if family == "victim":
        return victim_replication_protocol()
    if family == "dls":
        return dls_protocol()
    if family == "neat":
        return neat_protocol()
    if family == "phase":
        return phase_protocol()
    if pct <= 1:
        return baseline_protocol()
    return ProtocolConfig(protocol="adaptive", pct=pct, rat_max=max(16, pct))


def bench_point(
    workload: str,
    pct: int = 4,
    cores: int = 64,
    scale: str = "small",
    repeats: int = 3,
    warmup: bool = True,
    family: str = "pct",
) -> dict:
    """Benchmark one grid point; returns a JSON-ready result row.

    The row records the *effective* PCT of the protocol actually simulated
    (non-"pct" families ignore the argument and run at PCT=1), so trend
    keys always match between reports regardless of the caller's --pct.
    """
    arch = ArchConfig(num_cores=cores)
    proto = _protocol_for(pct, family)
    pct = proto.pct

    build_best = float("inf")
    trace = None
    for _ in range(repeats):
        t0 = time.process_time()
        trace = load_workload(workload, arch, scale=scale)
        build_best = min(build_best, time.process_time() - t0)

    simulator = Simulator(arch, proto, warmup=warmup)
    sim_best = float("inf")
    for _ in range(repeats):
        t0 = time.process_time()
        simulator.run(trace)
        sim_best = min(sim_best, time.process_time() - t0)

    # Guard against coarse process_time clocks resolving a fast repetition
    # to exactly zero (e.g. tiny traces on ~16 ms Windows ticks).
    build_best = max(build_best, 1e-9)
    sim_best = max(sim_best, 1e-9)
    records = trace.total_records
    executed = records * (2 if warmup else 1)
    return {
        "workload": workload,
        "family": family,
        "pct": pct,
        "cores": cores,
        "scale": scale,
        "warmup": warmup,
        "repeats": repeats,
        "records": records,
        "build_seconds": round(build_best, 6),
        "build_records_per_second": round(records / build_best),
        "simulate_seconds": round(sim_best, 6),
        "simulate_records_per_second": round(executed / sim_best),
    }


def run_bench(
    points: tuple[tuple[str, int, str], ...] = DEFAULT_POINTS,
    cores: int = 64,
    scale: str = "small",
    repeats: int = 3,
    json_path: str | None = None,
) -> dict:
    """Benchmark all ``points``; optionally write the report as JSON.

    Points are ``(workload, pct, family)``; legacy two-element points are
    accepted as family "pct".
    """
    rows = [
        bench_point(
            point[0],
            point[1],
            cores=cores,
            scale=scale,
            repeats=repeats,
            family=point[2] if len(point) > 2 else "pct",
        )
        for point in points
    ]
    status = accel.status()
    report = {
        # 2: rows carry the protocol family; 3: + mesh implementation;
        # 4: + per-kernel implementations (mesh AND sched).
        "schema": 4,
        "metric": "records/second, best of repeats, process_time",
        # Provenance: which implementations produced these numbers.
        # ``repro trend`` refuses comparisons where any shared kernel's
        # implementation differs (unless --allow-impl-mismatch), because
        # such a diff measures the kernel, not the change under test.
        # "implementation" is the legacy schema-3 mesh-only stamp, kept so
        # older tooling keeps reading these files.
        "implementation": status["implementation"],
        "implementations": {
            name: kstat["implementation"]
            for name, kstat in status["kernels"].items()
        },
        "accel": {
            "compiled": status["compiled"],
            "compiler": status["compiler"],
            "reason": status["reason"],
            "kernels": {
                name: {
                    "implementation": kstat["implementation"],
                    "compiled": kstat["compiled"],
                    "reason": kstat["reason"],
                }
                for name, kstat in status["kernels"].items()
            },
        },
        "points": rows,
    }
    if json_path:
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report


def implementations_map(report: dict) -> dict:
    """Per-kernel implementation stamps of a bench report.

    Schema-4 reports carry ``implementations`` (mesh AND sched); schema-3
    reports stamp only the mesh implementation, normalized here to
    ``{"mesh": ...}``.  Pre-provenance reports return ``{}``.
    """
    impls = report.get("implementations")
    if isinstance(impls, dict):
        return dict(impls)
    impl = report.get("implementation")
    return {"mesh": impl} if isinstance(impl, str) else {}


def format_report(report: dict) -> str:
    lines = []
    impls = implementations_map(report)
    if impls:
        info = report.get("accel", {})
        kernels = info.get("kernels", {})
        for name in sorted(impls):
            impl = impls[name]
            detail = (
                info.get("compiler")
                if impl == "accel"
                else kernels.get(name, info).get("reason")
            )
            lines.append(
                f"{name} implementation: {impl}" + (f" ({detail})" if detail else "")
            )
    lines.append(
        f"{'workload':<14} {'family':<8} {'pct':>3} {'records':>9} "
        f"{'build rec/s':>12} {'simulate rec/s':>15}"
    )
    for row in report["points"]:
        lines.append(
            f"{row['workload']:<14} {row.get('family', 'pct'):<8} "
            f"{row['pct']:>3} {row['records']:>9} "
            f"{row['build_records_per_second']:>12} "
            f"{row['simulate_records_per_second']:>15}"
        )
    return "\n".join(lines)


def _point_key(row: dict) -> tuple:
    return (
        row.get("workload"),
        row.get("family", "pct"),
        row.get("pct"),
        row.get("cores"),
        row.get("scale"),
    )


def load_baseline(path: str) -> dict:
    """Load a saved bench report for ``repro bench --baseline``."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except OSError as exc:
        raise ConfigError(f"cannot read bench baseline {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise ConfigError(f"unreadable bench baseline {path}: {exc}") from None
    if not isinstance(payload, dict) or "points" not in payload:
        raise ConfigError(
            f"{path} is not a bench report (expected an object with 'points')"
        )
    return payload


def format_baseline_diff(baseline: dict, fresh: dict) -> str:
    """Per-point speedups of a fresh bench run over a saved report.

    Speedup is ``fresh / baseline`` (values > 1 are faster).  Points
    missing from either side are listed but not compared, and an
    implementation mismatch between the two reports is called out - a
    compiled-vs-fallback diff measures the kernel, not the code change.
    """
    base_impls = implementations_map(baseline) or {"mesh": "unknown"}
    fresh_impls = implementations_map(fresh) or {"mesh": "unknown"}

    def _stamp(impls: dict) -> str:
        return ",".join(f"{k}={impls[k]}" for k in sorted(impls))

    lines = [
        f"baseline implementation: {_stamp(base_impls)}, "
        f"fresh: {_stamp(fresh_impls)}"
    ]
    shared = set(base_impls) & set(fresh_impls)
    if any(base_impls[k] != fresh_impls[k] for k in shared):
        lines.append(
            "WARNING: implementations differ - the speedups below include "
            "the accel-vs-fallback gap, not just the code change"
        )
    base_points = {_point_key(row): row for row in baseline.get("points", [])}
    lines.append(
        f"{'workload':<14} {'family':<8} {'pct':>3} "
        f"{'base sim rec/s':>15} {'fresh sim rec/s':>16} "
        f"{'simulate':>9} {'build':>7}"
    )
    for row in fresh.get("points", []):
        key = _point_key(row)
        base = base_points.pop(key, None)
        prefix = (
            f"{row['workload']:<14} {row.get('family', 'pct'):<8} {row['pct']:>3} "
        )
        if base is None:
            lines.append(prefix + "(not in baseline)")
            continue
        ratios = []
        for name in ("simulate_records_per_second", "build_records_per_second"):
            old, new = base.get(name), row.get(name)
            ratios.append(
                new / old
                if isinstance(old, (int, float))
                and isinstance(new, (int, float))
                and old
                else None
            )
        sim, build = ratios
        lines.append(
            prefix
            + f"{base.get('simulate_records_per_second', 0):>15} "
            + f"{row['simulate_records_per_second']:>16} "
            + (f"{sim:>8.2f}x" if sim is not None else f"{'n/a':>9}")
            + " "
            + (f"{build:>6.2f}x" if build is not None else f"{'n/a':>7}")
        )
    for key in base_points:
        lines.append(
            f"{key[0]:<14} {key[1]:<8} {key[2]:>3} (baseline only, not re-run)"
        )
    return "\n".join(lines)
