"""Unified command-line entry point: ``repro``.

Examples::

    repro sweep                                  # Figure-11 grid, all workloads
    repro sweep --workloads radix tsp --pct 1 4 8 --workers 8
    repro sweep --protocols pct victim --json results.json
    repro serve --port 8642 --workers 8          # execution daemon for remote sweeps
    repro sweep --backend remote --hosts h1:8642,h2:8642
    repro cache info                             # result-cache contents
    repro cache merge /mnt/hostb/.repro-cache    # fold a remote host's cache in
    repro cache clear                            # drop cached results
    repro figures --figure 11                    # delegate to repro-experiments
    repro trace stats out.traceb                 # delegate to repro-trace

``sweep`` expands a workload x protocol x PCT grid into jobs, executes them
through the runner (in-process, worker pool, or sharded across ``repro
serve`` daemons) with the on-disk result cache, and prints a table (or
writes JSON).  A warm cache re-runs the whole grid with zero simulations.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.common.errors import ReproError
from repro.runner.backends import BACKEND_NAMES, make_backend
from repro.runner.backends.remote import DEFAULT_PORT, DEFAULT_WINDOW
from repro.runner.parallel import ParallelRunner, format_progress
from repro.runner.store import DEFAULT_CACHE_DIR, ResultStore
from repro.runner.sweep import (
    FIGURE11_PCTS,
    PROTOCOL_FAMILIES,
    grid_from_args,
    seed_spread_rows,
    seed_spread_table,
    sweep_rows,
    sweep_table,
)
from repro.workloads.registry import WORKLOAD_NAMES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sweep execution engine for the locality-aware coherence "
        "protocol reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser("sweep", help="run a workload x protocol x PCT grid")
    sweep.add_argument("--workloads", nargs="+", metavar="NAME", default=None,
                       help="benchmarks to sweep (default: all 21)")
    sweep.add_argument("--pct", nargs="+", type=int, default=list(FIGURE11_PCTS),
                       help="PCT values (default: the Figure-11 grid)")
    sweep.add_argument("--protocols", nargs="+", choices=PROTOCOL_FAMILIES,
                       default=["pct"],
                       help="protocol families (default: pct = the paper's "
                       "sweep convention, PCT=1 is the baseline)")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (default: 1 = in-process)")
    sweep.add_argument("--backend", choices=BACKEND_NAMES, default="auto",
                       help="execution backend (default: auto = remote when "
                       "--hosts is given, else a process pool when "
                       "--workers > 1, else in-process)")
    sweep.add_argument("--hosts", default=None, metavar="H:P[,H:P...]",
                       help="comma-separated repro-serve daemons to shard "
                       "cache-miss jobs across (implies --backend remote)")
    sweep.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                       help="max in-flight jobs per remote host "
                       f"(default: {DEFAULT_WINDOW})")
    sweep.add_argument("--scale", default="small", choices=("tiny", "small", "full"))
    sweep.add_argument("--cores", type=int, default=64)
    sweep.add_argument("--seed", type=int, default=0,
                       help="trace-variant seed (default 0 = canonical traces)")
    sweep.add_argument("--seeds", type=int, default=1, metavar="N",
                       help="run N trace realizations per grid point "
                       "(Job.seed = seed..seed+N-1) and report the "
                       "completion-time/energy spread per point")
    sweep.add_argument("--no-warmup", action="store_true")
    sweep.add_argument("--verify", action="store_true",
                       help="run with golden-memory functional verification: "
                       "a coherence violation aborts the sweep, and only "
                       "cache entries that were themselves produced under "
                       "verification are reused")
    sweep.add_argument("--cache", default=DEFAULT_CACHE_DIR, metavar="DIR",
                       help=f"result-cache directory (default: {DEFAULT_CACHE_DIR})")
    sweep.add_argument("--no-cache", action="store_true",
                       help="run without reading or writing the result cache")
    sweep.add_argument("--json", metavar="PATH", default=None,
                       help="write rows as JSON to PATH ('-' = stdout) instead "
                       "of a table")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-job progress lines")

    cache = sub.add_parser(
        "cache", help="inspect, compact, merge or clear the result cache"
    )
    cache.add_argument("action", choices=("info", "compact", "merge", "clear"))
    cache.add_argument("source", nargs="?", default=None, metavar="OTHER-DIR",
                       help="for merge: cache directory (e.g. a remote "
                       "host's) to fold into --cache with last-entry-per-key "
                       "semantics")
    cache.add_argument("--cache", default=DEFAULT_CACHE_DIR, metavar="DIR")

    serve = sub.add_parser(
        "serve",
        help="run an execution daemon that serves sweep jobs over TCP",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1; use 0.0.0.0 "
                       "to serve other machines)")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help=f"TCP port (default: {DEFAULT_PORT}; 0 = "
                       "kernel-assigned, printed on the readiness line)")
    serve.add_argument("--workers", type=int, default=1,
                       help="local worker processes behind this daemon")
    serve.add_argument("--cache", default=None, metavar="DIR",
                       help="also persist served results in a server-side "
                       "result cache (mergeable into a client's via "
                       "'repro cache merge')")

    bench = sub.add_parser(
        "bench",
        help="time trace build + simulate throughput on fixed grid points",
    )
    bench.add_argument("--workloads", nargs="+", metavar="NAME", default=None,
                       help="grid-point workloads (default: the fixed bench set)")
    bench.add_argument("--pct", type=int, default=4,
                       help="PCT for the benchmarked points (default 4)")
    bench.add_argument("--family", default="pct",
                       choices=("pct", "baseline", "victim", "dls", "neat"),
                       help="protocol family for the --workloads points "
                       "(pct = the paper sweep convention; requires "
                       "--workloads, the default point set has fixed "
                       "families)")
    bench.add_argument("--cores", type=int, default=64)
    bench.add_argument("--scale", default="small", choices=("tiny", "small", "full"))
    bench.add_argument("--repeats", type=int, default=3,
                       help="repetitions per metric; best-of is reported")
    bench.add_argument("--json", metavar="PATH", default=None,
                       help="write the report as JSON to PATH")

    trend = sub.add_parser(
        "trend",
        help="diff bench reports or result-cache logs across revisions",
    )
    trend.add_argument("old", help="older source: BENCH_*.json / bench --json "
                       "report, or a results.jsonl cache log (or its directory)")
    trend.add_argument("new", help="newer source of the same kind")
    trend.add_argument("--metric", default=None,
                       help="restrict the comparison (and the regression "
                       "gate) to one metric")
    trend.add_argument("--assert-within", type=float, default=None,
                       metavar="FRACTION",
                       help="exit 1 when any compared metric regressed by "
                       "more than FRACTION (bench sources gate on simulate "
                       "throughput, e.g. 0.30 = fail on a >30%% drop)")

    # Delegating verbs: argument parsing happens in the delegate (main()
    # forwards everything after the verb verbatim; argparse's REMAINDER
    # cannot, since it refuses leading optionals like ``figures --figure 11``).
    sub.add_parser(
        "figures", help="reproduce paper figures (delegates to repro-experiments)",
        add_help=False,
    )
    sub.add_parser(
        "trace", help="trace-file tools (delegates to repro-trace)", add_help=False
    )
    return parser


# ----------------------------------------------------------------------
def _cmd_sweep(args) -> int:
    workloads = tuple(args.workloads) if args.workloads else WORKLOAD_NAMES
    grid = grid_from_args(
        workloads=workloads,
        families=tuple(args.protocols),
        pcts=tuple(args.pct),
        num_cores=args.cores,
        scale=args.scale,
        warmup=not args.no_warmup,
        seed=args.seed,
        num_seeds=args.seeds,
        verify=args.verify,
    )
    store = None if args.no_cache else ResultStore(args.cache)

    def progress(done: int, total: int, job, source: str) -> None:
        if not args.quiet:
            print(format_progress(done, total, job, source), file=sys.stderr)

    backend = make_backend(
        args.backend, workers=args.workers, hosts=args.hosts, window=args.window
    )
    jobs = grid.jobs()
    print(
        f"sweep: {grid.describe()}, workers={args.workers}"
        + (f", hosts={args.hosts}" if args.hosts else ""),
        file=sys.stderr,
    )
    start = time.time()
    # The context manager closes the backend (pool / connections) on every
    # path, including a sweep that raises mid-batch.
    with ParallelRunner(
        store=store, workers=args.workers, progress=progress, backend=backend
    ) as runner:
        results = runner.run(jobs)
    elapsed = time.time() - start

    rows = sweep_rows(jobs, results)
    spread = seed_spread_rows(rows) if args.seeds > 1 else None
    if args.json is not None:
        payload = rows if spread is None else {"rows": rows, "spread": spread}
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.json}: {len(rows)} rows", file=sys.stderr)
    else:
        print(sweep_table(rows))
        if spread is not None:
            print()
            print(seed_spread_table(spread))
    cache_note = ""
    if store is not None:
        cache_note = f", cache: {store.hits} hits / {store.misses} misses"
    print(
        f"[{len(rows)} jobs in {elapsed:.1f}s, "
        f"{runner.simulations} simulated{cache_note}]",
        file=sys.stderr,
    )
    return 0


def _cmd_cache(args) -> int:
    if args.action != "merge" and args.source is not None:
        print(f"error: cache {args.action} takes no source directory", file=sys.stderr)
        return 2
    store = ResultStore(args.cache)
    if args.action == "merge":
        if args.source is None:
            print("error: cache merge needs a source cache directory", file=sys.stderr)
            return 2
        if not ResultStore(args.source).path.exists():
            # An empty source is indistinguishable from a typo'd path; a
            # silent "0 entries folded" success would hide the mistake.
            print(f"error: no result cache at {args.source}", file=sys.stderr)
            return 1
        merged, skipped = store.merge(args.source)
        print(
            f"merged {args.source} into {store.path}: "
            f"{merged} entries folded, {skipped} already identical"
        )
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"cleared {removed} cached results from {store.path}")
        return 0
    if args.action == "compact":
        kept, dropped = store.compact()
        print(f"compacted {store.path}: kept {kept} entries, dropped {dropped} superseded lines")
        return 0
    print(store.describe())
    by_workload: dict[str, int] = {}
    for job in store.jobs():
        by_workload[job["workload"]] = by_workload.get(job["workload"], 0) + 1
    for name in sorted(by_workload):
        print(f"  {name:<15} {by_workload[name]} results")
    return 0


def _cmd_bench(args) -> int:
    from repro.runner.bench import DEFAULT_POINTS, format_report, run_bench

    if args.workloads:
        points = tuple((name, args.pct, args.family) for name in args.workloads)
    else:
        if args.family != "pct":
            print("error: --family requires --workloads (the default bench "
                  "points carry fixed families)", file=sys.stderr)
            return 2
        points = DEFAULT_POINTS
    report = run_bench(
        points,
        cores=args.cores,
        scale=args.scale,
        repeats=args.repeats,
        json_path=args.json,
    )
    print(format_report(report))
    if args.json:
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def _cmd_serve(args) -> int:
    from repro.runner.backends.remote import serve_forever

    store = ResultStore(args.cache) if args.cache else None
    return serve_forever(
        args.host, args.port, workers=args.workers, store=store
    )


def _cmd_trend(args) -> int:
    from repro.runner.trend import format_rows, run_trend, worst_regression

    rows, code = run_trend(
        args.old, args.new, assert_within=args.assert_within, metric=args.metric
    )
    print(format_rows(rows))
    if args.assert_within is not None:
        metric = args.metric
        if metric is None and rows and rows[0]["metric"].endswith("records_per_second"):
            metric = "simulate_records_per_second"
        worst = worst_regression(rows, metric)
        if worst is not None:
            print(
                f"worst regression: {worst['key']} {worst['metric']} "
                f"{worst['regression']:+.1%} (gate: {args.assert_within:.0%})",
                file=sys.stderr,
            )
        if code:
            print("trend: REGRESSION beyond threshold", file=sys.stderr)
    return code


_COMMANDS = {
    "sweep": _cmd_sweep,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "bench": _cmd_bench,
    "trend": _cmd_trend,
}


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "figures":
        from repro.experiments.cli import main as figures_main

        return figures_main(argv[1:])
    if argv and argv[0] == "trace":
        from repro.experiments.tracecli import main as trace_main

        return trace_main(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
