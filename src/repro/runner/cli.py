"""Unified command-line entry point: ``repro``.

Examples::

    repro sweep                                  # Figure-11 grid, all workloads
    repro sweep --workloads radix tsp --pct 1 4 8 --workers 8
    repro sweep --protocols pct victim --json results.json
    repro serve --port 8642 --workers 8          # execution daemon for remote sweeps
    repro sweep --backend remote --hosts h1:8642,h2:8642
    repro cache info                             # result-cache contents
    repro cache merge /mnt/hostb/.repro-cache    # fold a remote host's cache in
    repro cache clear                            # drop cached results
    repro figures --figure 11                    # delegate to repro-experiments
    repro trace stats out.traceb                 # delegate to repro-trace

``sweep`` expands a workload x protocol x PCT grid into jobs, executes them
through the runner (in-process, worker pool, or sharded across ``repro
serve`` daemons) with the on-disk result cache, and prints a table (or
writes JSON).  A warm cache re-runs the whole grid with zero simulations.

**Output discipline**: stdout carries only the machine-readable deliverable
(tables, JSON, cache reports) and stays byte-stable for scripts; every
diagnostic (progress lines, timing, errors) goes through the ``repro``
logger to stderr.  ``-q``/``-v`` before the verb move the log level
(WARNING / DEBUG); the default INFO renders bare messages, so default
stderr output is unchanged from the historical ``print`` diagnostics.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sys
import time

from repro import obs
from repro.common.errors import ReproError
from repro.runner.backends import BACKEND_NAMES, make_backend
from repro.runner.backends.remote import DEFAULT_PORT, DEFAULT_WINDOW, fetch_stats
from repro.runner.parallel import ParallelRunner, format_progress
from repro.runner.store import DEFAULT_CACHE_DIR, ResultStore
from repro.runner.sweep import (
    FIGURE11_PCTS,
    PROTOCOL_FAMILIES,
    grid_from_args,
    seed_spread_rows,
    seed_spread_table,
    sweep_rows,
    sweep_table,
)
from repro.workloads.registry import WORKLOAD_NAMES

log = logging.getLogger("repro")


class _DynamicStderrHandler(logging.Handler):
    """Logs to *the current* ``sys.stderr`` at emit time.

    ``logging.StreamHandler`` binds the stream once at construction; tests
    (and anything else that swaps ``sys.stderr``) need each record to land
    on the stream active when it is emitted.
    """

    def emit(self, record: logging.LogRecord) -> None:
        try:
            print(self.format(record), file=sys.stderr)
        except Exception:
            self.handleError(record)


_LOG_HANDLER: logging.Handler | None = None


def setup_logging(verbosity: int = 0) -> None:
    """Configure the ``repro`` logger tree (idempotent; level adjustable).

    ``verbosity`` < 0 -> WARNING (``-q``), 0 -> INFO, > 0 -> DEBUG
    (``-v``).  INFO records render as bare messages - byte-identical to the
    ``print(..., file=sys.stderr)`` diagnostics they replace - while other
    levels carry their level name as a prefix.
    """
    global _LOG_HANDLER
    if _LOG_HANDLER is None:
        _LOG_HANDLER = _DynamicStderrHandler()

        class _BareInfo(logging.Formatter):
            def format(self, record: logging.LogRecord) -> str:
                if record.levelno == logging.INFO:
                    return record.getMessage()
                return f"{record.levelname.lower()}: {record.getMessage()}"

        _LOG_HANDLER.setFormatter(_BareInfo())
        log.addHandler(_LOG_HANDLER)
        log.propagate = False
    if verbosity < 0:
        log.setLevel(logging.WARNING)
    elif verbosity > 0:
        log.setLevel(logging.DEBUG)
    else:
        log.setLevel(logging.INFO)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sweep execution engine for the locality-aware coherence "
        "protocol reproduction.",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="more diagnostics on stderr (DEBUG level)")
    parser.add_argument("-q", "--quiet", dest="log_quiet", action="store_true",
                        help="only warnings and errors on stderr")
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser("sweep", help="run a workload x protocol x PCT grid")
    sweep.add_argument("--workloads", nargs="+", metavar="NAME", default=None,
                       help="benchmarks to sweep (default: all 21)")
    sweep.add_argument("--pct", nargs="+", type=int, default=list(FIGURE11_PCTS),
                       help="PCT values (default: the Figure-11 grid)")
    sweep.add_argument("--protocols", nargs="+", choices=PROTOCOL_FAMILIES,
                       default=["pct"],
                       help="protocol families (default: pct = the paper's "
                       "sweep convention, PCT=1 is the baseline)")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (default: 1 = in-process)")
    sweep.add_argument("--backend", choices=BACKEND_NAMES, default="auto",
                       help="execution backend (default: auto = remote when "
                       "--hosts is given, else a process pool when "
                       "--workers > 1, else in-process)")
    sweep.add_argument("--hosts", default=None, metavar="H:P[,H:P...]",
                       help="comma-separated repro-serve daemons to shard "
                       "cache-miss jobs across (implies --backend remote)")
    sweep.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                       help="max in-flight jobs per remote host "
                       f"(default: {DEFAULT_WINDOW})")
    sweep.add_argument("--job-timeout", type=float, default=None, metavar="S",
                       help="process backend: per-job progress budget in "
                       "seconds; a pool that stalls past it is terminated "
                       "and its jobs re-dispatched (after repeated strikes, "
                       "finished serially). Default: no watchdog")
    sweep.add_argument("--frame-timeout", type=float, default=None, metavar="S",
                       help="remote backend: per-reply budget in seconds; a "
                       "host that stalls past it is treated as disconnected "
                       "(jobs requeue to other hosts). Default: wait forever")
    sweep.add_argument("--scale", default="small", choices=("tiny", "small", "full"))
    sweep.add_argument("--cores", type=int, default=64)
    sweep.add_argument("--seed", type=int, default=0,
                       help="trace-variant seed (default 0 = canonical traces)")
    sweep.add_argument("--seeds", type=int, default=1, metavar="N",
                       help="run N trace realizations per grid point "
                       "(Job.seed = seed..seed+N-1) and report the "
                       "completion-time/energy spread per point")
    sweep.add_argument("--no-warmup", action="store_true")
    sweep.add_argument("--verify", action="store_true",
                       help="run with golden-memory functional verification: "
                       "a coherence violation aborts the sweep, and only "
                       "cache entries that were themselves produced under "
                       "verification are reused")
    sweep.add_argument("--cache", default=DEFAULT_CACHE_DIR, metavar="DIR",
                       help=f"result-cache directory (default: {DEFAULT_CACHE_DIR})")
    sweep.add_argument("--no-cache", action="store_true",
                       help="run without reading or writing the result cache")
    sweep.add_argument("--json", metavar="PATH", default=None,
                       help="write rows as JSON to PATH ('-' = stdout) instead "
                       "of a table")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress per-job progress lines")
    sweep.add_argument("--telemetry", metavar="FILE", default=None,
                       help="append structured telemetry events (JSONL) to "
                       "FILE; worker processes inherit the sink via "
                       f"{obs.TELEMETRY_ENV}; render with 'repro events'")

    cache = sub.add_parser(
        "cache", help="inspect, compact, merge or clear the result cache"
    )
    cache.add_argument("action", choices=("info", "compact", "merge", "clear"))
    cache.add_argument("source", nargs="?", default=None, metavar="OTHER-DIR",
                       help="for merge: cache directory (e.g. a remote "
                       "host's) to fold into --cache with last-entry-per-key "
                       "semantics")
    cache.add_argument("--cache", default=DEFAULT_CACHE_DIR, metavar="DIR")

    serve = sub.add_parser(
        "serve",
        help="run an execution daemon that serves sweep jobs over TCP",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1; use 0.0.0.0 "
                       "to serve other machines)")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT,
                       help=f"TCP port (default: {DEFAULT_PORT}; 0 = "
                       "kernel-assigned, printed on the readiness line)")
    serve.add_argument("--workers", type=int, default=1,
                       help="local worker processes behind this daemon")
    serve.add_argument("--cache", default=None, metavar="DIR",
                       help="also persist served results in a server-side "
                       "result cache (mergeable into a client's via "
                       "'repro cache merge')")
    serve.add_argument("--job-timeout", type=float, default=None, metavar="S",
                       help="per-job budget in seconds: a pool worker that "
                       "wedges past it is killed (the client gets an error "
                       "frame instead of silence). Default: no watchdog")

    chaos = sub.add_parser(
        "chaos",
        help="differential fault-injection sweep: run a small grid under a "
        "single-fault schedule matrix and compare every surviving result "
        "bit-for-bit against a fault-free serial reference",
    )
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault schedule seed (default 0)")
    chaos.add_argument("--faults", nargs="+", metavar="NAME", default=None,
                       help="restrict the matrix to these faults "
                       "(default: the full single-fault matrix)")
    chaos.add_argument("--backends", nargs="+", metavar="NAME", default=None,
                       choices=("local", "process", "remote"),
                       help="restrict the matrix to these backends")
    chaos.add_argument("--job-timeout", type=float, default=1.5, metavar="S",
                       help="process-pool watchdog budget per cell "
                       "(default 1.5s; chaos jobs run in ~25ms)")
    chaos.add_argument("--frame-timeout", type=float, default=1.5, metavar="S",
                       help="remote stalled-host budget per cell (default 1.5s)")
    chaos.add_argument("--json", metavar="PATH", default=None,
                       help="write the cell report as JSON to PATH "
                       "('-' = stdout) instead of a table")

    bench = sub.add_parser(
        "bench",
        help="time trace build + simulate throughput on fixed grid points",
    )
    bench.add_argument("--workloads", nargs="+", metavar="NAME", default=None,
                       help="grid-point workloads (default: the fixed bench set)")
    bench.add_argument("--pct", type=int, default=4,
                       help="PCT for the benchmarked points (default 4)")
    bench.add_argument("--family", default="pct",
                       choices=("pct", "baseline", "victim", "dls", "neat", "phase"),
                       help="protocol family for the --workloads points "
                       "(pct = the paper sweep convention; requires "
                       "--workloads, the default point set has fixed "
                       "families)")
    bench.add_argument("--cores", type=int, default=64)
    bench.add_argument("--scale", default="small", choices=("tiny", "small", "full"))
    bench.add_argument("--repeats", type=int, default=3,
                       help="repetitions per metric; best-of is reported")
    bench.add_argument("--json", metavar="PATH", default=None,
                       help="write the report as JSON to PATH")
    bench.add_argument("--baseline", metavar="FILE", default=None,
                       help="diff the fresh run against a saved bench report "
                       "(BENCH_*.json / bench --json): per-point speedups, "
                       "with the mesh implementation of both sides called out")

    accel_info = sub.add_parser(
        "accel-info",
        help="show the compiled kernel status (mesh + sched): per-kernel "
        "implementation, build cache, compiler, or why a pure-Python "
        "fallback is active (REPRO_NO_ACCEL=1 forces both fallbacks, "
        "REPRO_NO_ACCEL_MESH/_SCHED one each)",
    )
    accel_info.add_argument("--json", action="store_true",
                            help="emit the status as one JSON object")
    accel_info.add_argument("--require-compiled", nargs="?", const="mesh,sched",
                            metavar="KERNELS", default=None,
                            help="exit 1 unless the named compiled kernels are "
                            "active (comma-separated subset of mesh,sched; "
                            "bare flag requires both - CI guard against "
                            "silently benching a fallback)")

    events = sub.add_parser(
        "events",
        help="render a telemetry event file: span tree and top counters",
    )
    events.add_argument("file", help="JSONL sink written by --telemetry / "
                        f"{obs.TELEMETRY_ENV}")
    events.add_argument("--limit", type=int, default=20,
                        help="rows per section (default 20)")

    stats = sub.add_parser(
        "serve-stats",
        help="query live repro-serve daemons for their stats frame",
    )
    stats.add_argument("hosts", metavar="H:P[,H:P...]",
                       help="daemons to query (same syntax as sweep --hosts)")
    stats.add_argument("--json", action="store_true",
                       help="emit one JSON object per host instead of a table")
    stats.add_argument("--timeout", type=float, default=10.0,
                       help="per-host connect/read timeout in seconds")

    exhaustive = sub.add_parser(
        "check-exhaustive",
        help="enumerate ALL interleavings of tiny two-core traces and "
        "verify every protocol family on each (model-checking tier)",
    )
    exhaustive.add_argument(
        "--ops", type=int, default=6,
        help="per-core op budget; templates needing more are skipped "
        "(default 6 = everything, 4 = the CI smoke budget)")
    exhaustive.add_argument(
        "--max-violations", type=int, default=10,
        help="stop after this many distinct violations (default 10)")
    exhaustive.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the full report (including minimized traces) to PATH")

    trend = sub.add_parser(
        "trend",
        help="diff bench reports or result-cache logs across revisions",
    )
    trend.add_argument("old", help="older source: BENCH_*.json / bench --json "
                       "report, or a results.jsonl cache log (or its directory)")
    trend.add_argument("new", help="newer source of the same kind")
    trend.add_argument("--metric", default=None,
                       help="restrict the comparison (and the regression "
                       "gate) to one metric")
    trend.add_argument("--assert-within", type=float, default=None,
                       metavar="FRACTION",
                       help="exit 1 when any compared metric regressed by "
                       "more than FRACTION (bench sources gate on simulate "
                       "throughput, e.g. 0.30 = fail on a >30%% drop)")
    trend.add_argument("--allow-impl-mismatch", action="store_true",
                       help="compare bench reports even when one was produced "
                       "by the compiled mesh kernel and the other by the "
                       "pure-Python fallback (normally an error: such a diff "
                       "measures the accelerator, not the change under test)")

    # Delegating verbs: argument parsing happens in the delegate (main()
    # forwards everything after the verb verbatim; argparse's REMAINDER
    # cannot, since it refuses leading optionals like ``figures --figure 11``).
    sub.add_parser(
        "figures", help="reproduce paper figures (delegates to repro-experiments)",
        add_help=False,
    )
    sub.add_parser(
        "trace", help="trace-file tools (delegates to repro-trace)", add_help=False
    )
    return parser


# ----------------------------------------------------------------------
def _cmd_sweep(args) -> int:
    """Telemetry-scoping wrapper: the sink is open exactly for the sweep.

    ``--telemetry`` enables the process-wide singleton and exports the sink
    path so spawn-children (pool workers) inherit it; both are restored on
    every exit path so an in-process caller (tests, notebooks) is not left
    with a dangling sink.
    """
    if not args.telemetry:
        return _run_sweep(args)
    prior = os.environ.get(obs.TELEMETRY_ENV)
    obs.TELEMETRY.enable(args.telemetry)
    os.environ[obs.TELEMETRY_ENV] = args.telemetry
    try:
        return _run_sweep(args)
    finally:
        obs.TELEMETRY.disable()
        if prior is None:
            os.environ.pop(obs.TELEMETRY_ENV, None)
        else:
            os.environ[obs.TELEMETRY_ENV] = prior


def _run_sweep(args) -> int:
    workloads = tuple(args.workloads) if args.workloads else WORKLOAD_NAMES
    grid = grid_from_args(
        workloads=workloads,
        families=tuple(args.protocols),
        pcts=tuple(args.pct),
        num_cores=args.cores,
        scale=args.scale,
        warmup=not args.no_warmup,
        seed=args.seed,
        num_seeds=args.seeds,
        verify=args.verify,
    )
    store = None if args.no_cache else ResultStore(args.cache)

    def progress(done: int, total: int, job, source: str) -> None:
        if not args.quiet:
            log.info(format_progress(done, total, job, source))

    backend = make_backend(
        args.backend, workers=args.workers, hosts=args.hosts, window=args.window,
        job_timeout=args.job_timeout, frame_timeout=args.frame_timeout,
    )
    jobs = grid.jobs()
    log.info(
        "sweep: %s, workers=%s%s",
        grid.describe(), args.workers,
        f", hosts={args.hosts}" if args.hosts else "",
    )
    start = time.time()
    # The context manager closes the backend (pool / connections) on every
    # path, including a sweep that raises mid-batch.
    with ParallelRunner(
        store=store, workers=args.workers, progress=progress, backend=backend
    ) as runner:
        results = runner.run(jobs)
    elapsed = time.time() - start

    rows = sweep_rows(jobs, results)
    spread = seed_spread_rows(rows) if args.seeds > 1 else None
    if args.json is not None:
        payload = rows if spread is None else {"rows": rows, "spread": spread}
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
            log.info("wrote %s: %d rows", args.json, len(rows))
    else:
        print(sweep_table(rows))
        if spread is not None:
            print()
            print(seed_spread_table(spread))
    cache_note = ""
    if store is not None:
        cache_note = f", cache: {store.hits} hits / {store.misses} misses"
    log.info(
        "[%d jobs in %.1fs, %d simulated%s]",
        len(rows), elapsed, runner.simulations, cache_note,
    )
    return 0


def _cmd_cache(args) -> int:
    if args.action != "merge" and args.source is not None:
        log.error("cache %s takes no source directory", args.action)
        return 2
    store = ResultStore(args.cache)
    if args.action == "merge":
        if args.source is None:
            log.error("cache merge needs a source cache directory")
            return 2
        if not ResultStore(args.source).path.exists():
            # An empty source is indistinguishable from a typo'd path; a
            # silent "0 entries folded" success would hide the mistake.
            log.error("no result cache at %s", args.source)
            return 1
        merged, skipped = store.merge(args.source)
        print(
            f"merged {args.source} into {store.path}: "
            f"{merged} entries folded, {skipped} already identical"
        )
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"cleared {removed} cached results from {store.path}")
        return 0
    if args.action == "compact":
        kept, dropped = store.compact()
        print(f"compacted {store.path}: kept {kept} entries, dropped {dropped} superseded lines")
        return 0
    print(store.describe())
    by_workload: dict[str, int] = {}
    for job in store.jobs():
        by_workload[job["workload"]] = by_workload.get(job["workload"], 0) + 1
    for name in sorted(by_workload):
        print(f"  {name:<15} {by_workload[name]} results")
    return 0


def _cmd_bench(args) -> int:
    from repro.runner.bench import (
        DEFAULT_POINTS,
        format_baseline_diff,
        format_report,
        load_baseline,
        run_bench,
    )

    if args.workloads:
        points = tuple((name, args.pct, args.family) for name in args.workloads)
    else:
        if args.family != "pct":
            log.error("--family requires --workloads (the default bench "
                      "points carry fixed families)")
            return 2
        points = DEFAULT_POINTS
    # Load the baseline before spending minutes benching: a bad path or a
    # non-bench file should fail immediately.
    baseline = load_baseline(args.baseline) if args.baseline else None
    report = run_bench(
        points,
        cores=args.cores,
        scale=args.scale,
        repeats=args.repeats,
        json_path=args.json,
    )
    print(format_report(report))
    if baseline is not None:
        print()
        print(format_baseline_diff(baseline, report))
    if args.json:
        log.info("wrote %s", args.json)
    return 0


def _cmd_accel_info(args) -> int:
    from repro import accel

    status = accel.status()
    if obs.TELEMETRY.enabled:
        # Mirror the status into the telemetry stream so a sweep's event
        # file records which implementation its numbers came from.
        obs.TELEMETRY.event("accel.info", **status)
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
    else:
        for name in sorted(status["kernels"]):
            kstat = status["kernels"][name]
            line = f"{name}: {kstat['implementation']}"
            if kstat["reason"]:
                line += f" ({kstat['reason']})"
            print(line)
        if status["compiler"]:
            print(f"compiler:       {status['compiler']}")
        print(f"cache dir:      {status['cache_dir']}")
        if status["artifact"]:
            print(f"artifact:       {status['artifact']}")
        print(f"source:         {status['source']}")
    if args.require_compiled:
        required = [k.strip() for k in args.require_compiled.split(",") if k.strip()]
        unknown = [k for k in required if k not in status["kernels"]]
        if unknown:
            log.error("unknown kernel(s) %s (known: %s)",
                      ", ".join(unknown), ", ".join(sorted(status["kernels"])))
            return 2
        failed = False
        for name in required:
            kstat = status["kernels"][name]
            if kstat["implementation"] != "accel":
                log.error(
                    "compiled %s kernel required but not active: %s",
                    name, kstat["reason"] or "unknown reason",
                )
                failed = True
        if failed:
            return 1
    return 0


def _cmd_serve(args) -> int:
    from repro.runner.backends.remote import serve_forever

    store = ResultStore(args.cache) if args.cache else None
    return serve_forever(
        args.host, args.port, workers=args.workers, store=store,
        job_timeout=args.job_timeout,
    )


def _cmd_chaos(args) -> int:
    from repro.faults.chaos import run_chaos

    def progress(fault: str, backend: str) -> None:
        log.info("chaos: %s x %s ...", fault, backend)

    report = run_chaos(
        seed=args.seed,
        faults=args.faults,
        backends=args.backends,
        job_timeout=args.job_timeout,
        frame_timeout=args.frame_timeout,
        progress=progress,
    )
    if args.json is not None:
        text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(text + "\n")
            log.info("wrote %s: %d cells", args.json, len(report.cells))
    else:
        print(report.table())
    return 0 if report.ok else 1


def _cmd_trend(args) -> int:
    from repro.runner.trend import format_rows, run_trend, worst_regression

    rows, code = run_trend(
        args.old, args.new, assert_within=args.assert_within, metric=args.metric,
        allow_impl_mismatch=args.allow_impl_mismatch,
    )
    print(format_rows(rows))
    if args.assert_within is not None:
        metric = args.metric
        if metric is None and rows and rows[0]["metric"].endswith("records_per_second"):
            metric = "simulate_records_per_second"
        worst = worst_regression(rows, metric)
        if worst is not None:
            log.info(
                "worst regression: %s %s %+.1f%% (gate: %.0f%%)",
                worst["key"], worst["metric"],
                worst["regression"] * 100, args.assert_within * 100,
            )
        if code:
            log.info("trend: REGRESSION beyond threshold")
    return code


def _cmd_events(args) -> int:
    print(obs.render_file(args.file, limit=args.limit))
    return 0


def _cmd_check_exhaustive(args) -> int:
    from repro.verify import run_exhaustive

    if args.ops < 1:
        log.error("--ops must be >= 1, got %d", args.ops)
        return 1

    def progress(template: str, runs: int) -> None:
        log.info("enumerating %-22s (%d verified runs)", template, runs)

    report = run_exhaustive(
        ops=args.ops, progress=progress, max_violations=args.max_violations
    )
    print(report.summary())
    for violation in report.violations:
        print()
        print(violation.describe())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        log.info("report written to %s", args.json)
    return 0 if report.ok else 1


def _cmd_serve_stats(args) -> int:
    from repro.runner.backends.remote import parse_hosts

    failures = 0
    for host, port in parse_hosts(args.hosts):
        try:
            stats = fetch_stats(host, port, timeout=args.timeout)
        except (ReproError, OSError) as exc:
            log.error("%s:%d unreachable: %s", host, port, exc)
            failures += 1
            continue
        if args.json:
            print(json.dumps({"host": host, "port": port, **stats}, sort_keys=True))
        else:
            print(
                f"{host}:{port}  up {stats['uptime_s']:.0f}s  "
                f"workers={stats['workers']}  served={stats['served']}  "
                f"errors={stats['errors']}  active={stats['active_jobs']}  "
                f"connections={stats['connections']}/{stats['total_connections']}  "
                f"caching={'yes' if stats['caching'] else 'no'}"
            )
    return 1 if failures else 0


_COMMANDS = {
    "sweep": _cmd_sweep,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "chaos": _cmd_chaos,
    "bench": _cmd_bench,
    "accel-info": _cmd_accel_info,
    "trend": _cmd_trend,
    "events": _cmd_events,
    "serve-stats": _cmd_serve_stats,
    "check-exhaustive": _cmd_check_exhaustive,
}


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "figures":
        from repro.experiments.cli import main as figures_main

        return figures_main(argv[1:])
    if argv and argv[0] == "trace":
        from repro.experiments.tracecli import main as trace_main

        return trace_main(argv[1:])
    args = build_parser().parse_args(argv)
    setup_logging(-1 if args.log_quiet else args.verbose)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        log.error("%s", exc)
        return 1
    except OSError as exc:
        log.error("%s", exc)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
