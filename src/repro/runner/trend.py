"""``repro trend``: diff benchmark / simulation results across revisions.

Two kinds of artifacts are comparable (auto-detected per file):

* **bench reports** - the JSON written by ``repro bench --json`` (and the
  committed ``BENCH_*.json`` trajectory files): points keyed by
  ``(workload, family, pct, cores, scale)``, compared on build / simulate
  throughput.  A *regression* is the new simulate throughput falling more
  than the threshold below the old one.
* **result caches** - ``.repro-cache/results.jsonl`` logs (archived per
  commit): entries keyed by the job content hash, which is stable across
  revisions for an identical configuration, compared on completion time
  and total energy.  The simulator is deterministic, so ANY drift on a
  matching key is a semantic change of the simulator itself; the threshold
  flags drifts large enough to care about.

``compare(old, new)`` returns rows; ``worst_regression`` reduces them to
the single worst ratio so CI can fail on it (the perf-smoke job runs
``repro trend --assert-within 0.30 <baseline> <fresh>``).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.common.errors import ReproError


def _bench_key(row: dict) -> tuple:
    return (
        row.get("workload"),
        row.get("family", "pct"),
        row.get("pct"),
        row.get("cores"),
        row.get("scale"),
    )


def _load_bench(payload: dict) -> dict:
    points = {}
    for row in payload["points"]:
        # Trajectory files (BENCH_pr*.json) nest two sides per point: the
        # "baseline" revision and the revision the file records (named per
        # PR: "columnar", "pr4", ...).  The recorded side is the one a
        # trend comparison wants; plain `repro bench --json` reports carry
        # the metrics at the top level.
        metrics = {}
        for side, values in row.items():
            if (
                side != "baseline"
                and isinstance(values, dict)
                and "simulate_records_per_second" in values
            ):
                metrics = dict(values)
        if not metrics and isinstance(row.get("baseline"), dict):
            metrics = dict(row["baseline"])
        for name in ("build_records_per_second", "simulate_records_per_second"):
            if name in row:
                metrics[name] = row[name]
        points[_bench_key(row)] = metrics
    return points


def _load_cache(path: Path) -> dict:
    points = {}
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail line
            key = record.get("key")
            stats = record.get("stats")
            if not isinstance(key, str) or not isinstance(stats, dict):
                continue
            job = record.get("job", {})
            label = "{} {} {}c/{}".format(
                job.get("workload", "?"),
                job.get("proto", {}).get("protocol", "?"),
                job.get("arch", {}).get("num_cores", "?"),
                job.get("scale", "?"),
            )
            energy = stats.get("energy", {})
            total_energy = (
                sum(v for v in energy.values() if isinstance(v, (int, float)))
                if isinstance(energy, dict)
                else None
            )
            metrics = {"completion_time": stats.get("completion_time")}
            if total_energy is not None:
                metrics["energy_total"] = total_energy
            # Last entry per key wins, like ResultStore loading.
            points[key] = {"label": label, **metrics}
    return points


def source_implementation(path: str | Path) -> dict | str | None:
    """The kernel implementation(s) a bench report records, if any.

    Schema-4 bench reports (PR 10+) stamp ``implementations`` - a
    per-kernel dict like ``{"mesh": "accel", "sched": "fallback"}`` -
    returned as-is.  Schema-3 reports (PR 8/9) stamp only the mesh
    implementation and return that string.  Older reports and cache logs
    return ``None`` (no provenance - the mismatch guard lets those
    through).
    """
    p = Path(path)
    if p.is_dir() or p.suffix == ".jsonl" or p.name == "results.jsonl":
        return None
    try:
        payload = json.loads(p.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    if isinstance(payload, dict):
        impls = payload.get("implementations")
        if isinstance(impls, dict):
            return impls
        impl = payload.get("implementation")
        if isinstance(impl, str):
            return impl
    return None


def _impl_map(provenance: dict | str | None) -> dict:
    """Normalize provenance to a per-kernel dict ({} when absent)."""
    if isinstance(provenance, dict):
        return provenance
    if isinstance(provenance, str):
        return {"mesh": provenance}  # legacy schema-3 mesh-only stamp
    return {}


def load_source(path: str | Path) -> tuple[str, dict]:
    """Load a trend source; returns ``(kind, points)`` with kind
    "bench" or "cache"."""
    p = Path(path)
    if not p.exists():
        raise ReproError(f"trend source not found: {p}")
    if p.suffix == ".jsonl" or p.name == "results.jsonl":
        return "cache", _load_cache(p)
    if p.is_dir():
        return "cache", _load_cache(p / "results.jsonl")
    try:
        payload = json.loads(p.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ReproError(f"unreadable trend source {p}: {exc}") from None
    if isinstance(payload, dict) and "points" in payload:
        return "bench", _load_bench(payload)
    raise ReproError(
        f"unrecognized trend source {p}: expected a bench report "
        "(object with 'points') or a results.jsonl cache log"
    )


#: Metrics where DOWN is bad (throughput) vs UP is bad (cost).
_HIGHER_IS_BETTER = ("build_records_per_second", "simulate_records_per_second")
_LOWER_IS_BETTER = ("completion_time", "energy_total")


def compare(old_points: dict, new_points: dict) -> list[dict]:
    """Match keys present on both sides; one row per (key, metric)."""
    rows = []
    for key in old_points:
        if key not in new_points:
            continue
        old_m, new_m = old_points[key], new_points[key]
        label = old_m.get("label") or " ".join(str(part) for part in key if part is not None)
        for metric in _HIGHER_IS_BETTER + _LOWER_IS_BETTER:
            a, b = old_m.get(metric), new_m.get(metric)
            if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
                continue
            ratio = b / a if a else float("inf")
            if metric in _HIGHER_IS_BETTER:
                # regression margin: how far throughput fell (negative = faster)
                regression = 1.0 - ratio
            else:
                regression = ratio - 1.0
            rows.append(
                {
                    "key": label,
                    "metric": metric,
                    "old": a,
                    "new": b,
                    "ratio": ratio,
                    "regression": regression,
                }
            )
    return rows


def worst_regression(rows: list[dict], metric: str | None = None) -> dict | None:
    """The row with the largest regression (optionally for one metric)."""
    picked = [r for r in rows if metric is None or r["metric"] == metric]
    return max(picked, key=lambda r: r["regression"]) if picked else None


def format_rows(rows: list[dict]) -> str:
    if not rows:
        return "(no matching keys between the two sources)"
    width = max(len(r["key"]) for r in rows)
    lines = [f"{'point':<{width}} {'metric':<28} {'old':>14} {'new':>14} {'ratio':>7}"]
    for r in rows:
        lines.append(
            f"{r['key']:<{width}} {r['metric']:<28} "
            f"{r['old']:>14.6g} {r['new']:>14.6g} {r['ratio']:>7.3f}"
        )
    return "\n".join(lines)


def run_trend(
    old_path: str,
    new_path: str,
    assert_within: float | None = None,
    metric: str | None = None,
    allow_impl_mismatch: bool = False,
) -> tuple[list[dict], int]:
    """Compare two sources; returns (rows, exit_code).

    With ``assert_within=R``, exit code 1 when any compared metric (or the
    selected ``metric``) regressed by more than the fraction ``R`` - e.g.
    0.30 fails the perf-smoke job when simulate throughput drops >30%.

    Bench reports carrying implementation provenance must agree on it:
    comparing an accel report against a fallback report measures the
    compiled kernel, not the change under test, so it fails loudly unless
    ``allow_impl_mismatch`` is set.  Reports without provenance (pre-PR-8)
    are let through.
    """
    old_kind, old_points = load_source(old_path)
    new_kind, new_points = load_source(new_path)
    if old_kind != new_kind:
        raise ReproError(
            f"cannot compare a {old_kind} source against a {new_kind} source"
        )
    if old_kind == "bench" and not allow_impl_mismatch:
        old_impl = _impl_map(source_implementation(old_path))
        new_impl = _impl_map(source_implementation(new_path))
        # Only kernels stamped on BOTH sides are comparable: a schema-3
        # report says nothing about the sched kernel, so it cannot clash
        # with a schema-4 report's sched stamp.
        mismatched = sorted(
            name for name in old_impl.keys() & new_impl.keys()
            if old_impl[name] != new_impl[name]
        )
        if mismatched:
            detail = "; ".join(
                f"{name}: {old_impl[name]!r} vs {new_impl[name]!r}"
                for name in mismatched
            )
            raise ReproError(
                f"bench reports use different kernel implementations "
                f"({detail}) between {old_path} and {new_path}; this "
                "comparison measures the accelerator, not the change "
                "under test - pass --allow-impl-mismatch to compare anyway"
            )
    if old_kind == "bench" and metric is None and assert_within is not None:
        # CI contract: bench gating is on simulate throughput.
        metric = "simulate_records_per_second"
    rows = compare(old_points, new_points)
    code = 0
    if assert_within is not None:
        worst = worst_regression(rows, metric)
        if worst is not None and worst["regression"] > assert_within:
            code = 1
    return rows, code
