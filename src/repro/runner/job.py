"""The :class:`Job` abstraction: one simulation point, content-addressed.

A job is the canonical description of everything that determines a
simulation's outcome: the hardware substrate (``ArchConfig``), the protocol
configuration (``ProtocolConfig``), the energy constants (``EnergyConfig``),
the workload name and problem-size scale, the warmup policy, and the
trace-variant seed.  Two jobs with equal content hash are guaranteed to
produce bit-identical ``RunStats`` - the simulator is deterministic and every
source of randomness derives from these fields (see ``common/rng.py``).

The hash is computed over the *resolved* canonical JSON serialization of the
config dataclasses (sorted keys, compact separators, sha256), so it is stable
across processes, machines and Python versions - unlike ``hash()``, which is
salted per process, and unlike pickled bytes, which are not canonical.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from functools import cached_property

from repro.common.errors import ConfigError
from repro.common.params import ArchConfig, EnergyConfig, ProtocolConfig

#: Bump when the meaning of a job's fields (or the stats schema) changes in a
#: way that invalidates previously cached results.
#: 2: RunStats gained the Neat counters (self_invalidations, write_throughs)
#:    and ProtocolConfig the dls/neat families with directory="none".
#: 3: ProtocolConfig gained ``neat_downgrade`` (release-boundary batched
#:    self-downgrade), changing the canonical proto serialization.
JOB_SCHEMA = 3


def canonical_json(payload: dict) -> str:
    """Canonical JSON: sorted keys, no whitespace, exact float reprs."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Job:
    """A hashable, serializable description of one simulation point."""

    workload: str
    proto: ProtocolConfig
    arch: ArchConfig = field(default_factory=ArchConfig)
    energy: EnergyConfig = field(default_factory=EnergyConfig)
    scale: str = "small"
    warmup: bool = True
    #: Trace-variant salt mixed into workload seed derivation (0 = canonical
    #: trace).  Workers apply it via ``rng.seed_scope`` around trace building,
    #: so the realized trace depends only on the job, never on worker state.
    seed: int = 0
    #: Run under golden-memory functional verification.  Verification can
    #: only abort a run (``CoherenceError``), never change its statistics,
    #: so this field is deliberately EXCLUDED from the content hash.  The
    #: ``ResultStore`` still records whether an entry was verified: a
    #: verified entry satisfies both twins, an unverified entry only the
    #: unverified one (a verified sweep must actually run its checks).
    verify: bool = False

    def __post_init__(self) -> None:
        if not self.workload:
            raise ConfigError("job needs a workload name")
        if self.seed < 0:
            raise ConfigError(f"job seed must be non-negative, got {self.seed}")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready mapping that round-trips through :meth:`from_dict`."""
        return {
            "schema": JOB_SCHEMA,
            "workload": self.workload,
            "scale": self.scale,
            "warmup": self.warmup,
            "seed": self.seed,
            "verify": self.verify,
            "arch": self.arch.to_dict(),
            "proto": self.proto.to_dict(),
            "energy": self.energy.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        schema = data.get("schema", JOB_SCHEMA)
        if schema != JOB_SCHEMA:
            raise ConfigError(f"job schema {schema} != supported {JOB_SCHEMA}")
        return cls(
            workload=data["workload"],
            proto=ProtocolConfig.from_dict(data["proto"]),
            arch=ArchConfig.from_dict(data["arch"]),
            energy=EnergyConfig.from_dict(data["energy"]),
            scale=data["scale"],
            warmup=data["warmup"],
            seed=data["seed"],
            verify=data.get("verify", False),
        )

    # ------------------------------------------------------------------
    @cached_property
    def key(self) -> str:
        """Content hash: sha256 over the canonical serialized job.

        ``verify`` is excluded: it cannot change the statistics, so a
        verified and an unverified run of the same point share one entry.
        """
        payload = self.to_dict()
        del payload["verify"]
        digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
        return digest.hexdigest()

    @cached_property
    def trace_key(self) -> str:
        """Content hash of the fields that determine the *trace* alone.

        Jobs differing only in protocol/energy configuration share a trace,
        so workers key their per-process trace cache on this.
        """
        payload = {
            "workload": self.workload,
            "scale": self.scale,
            "seed": self.seed,
            "arch": self.arch.to_dict(),
        }
        return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Short human-readable label for logs and progress lines."""
        parts = [self.workload, self.proto.protocol]
        if self.proto.protocol == "adaptive":
            parts.append(f"pct={self.proto.pct}")
        parts.append(f"{self.arch.num_cores}c/{self.scale}")
        if self.seed:
            parts.append(f"seed={self.seed}")
        if not self.warmup:
            parts.append("cold")
        if self.verify:
            parts.append("verify")
        return " ".join(parts)
