"""In-process execution: the serial reference backend and the task kernel.

This module owns the two building blocks every other backend reuses:

* the **per-process trace memo** (:func:`build_trace`) - traces are
  regenerated deterministically from the job alone (``rng.seed_scope``
  around the workload registry), memoized by ``Job.trace_key`` so a PCT
  sweep builds each trace once per process;
* the **uniform task kernel** (:func:`run_task`) - the one entry point
  through which every backend executes a job.  A task is always a
  ``(payload, trace | None)`` tuple: the serialized job dict plus an
  optionally pre-compiled columnar trace.  The pre-PR-3 bare-payload-dict
  shape is gone; shipping it is now an error.

``LocalBackend`` is the trivial :class:`~repro.runner.backends.ExecutionBackend`:
it runs each task in the calling process, in order.  It is both the
``workers <= 1`` fast path and the bit-identity reference the conformance
suite holds every other backend to.
"""

from __future__ import annotations

import os
import time
from typing import Iterable, Iterator

from repro.common import rng
from repro.common.errors import RunnerError
from repro.faults import FAULTS
from repro.obs import TELEMETRY
from repro.runner.job import Job
from repro.sim.multicore import Simulator
from repro.sim.stats import RunStats
from repro.workloads.base import Trace
from repro.workloads.registry import load_workload

#: A dispatchable unit of work: (serialized job, optional compiled trace).
Task = tuple[dict, "Trace | None"]

#: Per-process trace memo, keyed by ``Job.trace_key``.  In the parent it backs
#: serial execution; in pool workers it persists across jobs for the lifetime
#: of the worker process.  Bounded LRU: sweeps visit one trace's jobs in
#: bursts, so a small window captures nearly all reuse while keeping ablations
#: that span many arch variants (each variant = a distinct trace) from
#: pinning every trace ever built for the process lifetime.
_TRACE_CACHE: dict[str, Trace] = {}
_TRACE_CACHE_MAX = 32


def _memoize_trace(trace_key: str, trace: Trace) -> None:
    """Install ``trace`` in the per-process memo (bounded LRU)."""
    while len(_TRACE_CACHE) >= _TRACE_CACHE_MAX:
        _TRACE_CACHE.pop(next(iter(_TRACE_CACHE)))
    _TRACE_CACHE[trace_key] = trace


def build_trace(job: Job) -> Trace:
    """Regenerate ``job``'s trace deterministically (no process state).

    The trace depends only on (workload, scale, seed, arch); ``seed_scope``
    pins the salt for the duration of the build so concurrent sweeps with
    different seeds cannot interleave incorrectly.
    """
    cached = _TRACE_CACHE.get(job.trace_key)
    if cached is None:
        # span() is a no-op context when telemetry is disabled; a trace
        # build costs seconds, so the check is free at this altitude.
        with TELEMETRY.span(
            "trace.build", workload=job.workload, scale=job.scale, seed=job.seed
        ):
            with rng.seed_scope(job.seed):
                cached = load_workload(job.workload, job.arch, scale=job.scale)
        _memoize_trace(job.trace_key, cached)
    else:
        # Move to the back so hot traces survive eviction (dict = LRU order).
        _TRACE_CACHE.pop(job.trace_key)
        _TRACE_CACHE[job.trace_key] = cached
    return cached


def execute_job(job: Job) -> RunStats:
    """Run one simulation point from scratch: trace + simulator from configs."""
    simulator = Simulator(
        job.arch, job.proto, energy=job.energy, warmup=job.warmup, verify=job.verify
    )
    return simulator.run(build_trace(job))


def run_task(task: Task) -> tuple[str, dict]:
    """Execute one ``(payload, trace | None)`` task: (key, serialized stats) out.

    When a compiled trace rides along (pickled as raw ``array('q')`` buffers,
    a few contiguous blobs per trace rather than a tuple graph) it is adopted
    into the process trace memo, so workers never regenerate a trace the
    parent already built.  ``trace=None`` triggers deterministic regeneration
    from the payload alone - the remote backend relies on this to keep job
    frames trace-free.
    """
    if isinstance(task, dict):
        raise RunnerError(
            "bare-payload task shape was removed: dispatch (payload, trace|None) tuples"
        )
    payload, trace = task
    if FAULTS.active:
        # Failpoints for the chaos tier: a worker that dies or wedges
        # mid-job.  Scoped rules (scope="worker") leave the serial parent
        # untouched, which is what lets the watchdog's serial fallback
        # actually finish the batch.
        rule = FAULTS.trigger("worker.crash")
        if rule is not None:
            os._exit(int(rule.arg("exit_code", 3)))
        rule = FAULTS.trigger("worker.hang")
        if rule is not None:
            time.sleep(float(rule.arg("hang_s", 3600.0)))
    job = Job.from_dict(payload)
    if trace is not None and job.trace_key not in _TRACE_CACHE:
        _memoize_trace(job.trace_key, trace)
    # The per-job execution span: emitted by whichever process runs the
    # task (pool workers inherit REPRO_TELEMETRY through spawn), so the
    # sink shows where each job actually executed.
    with TELEMETRY.span(
        "job.execute", key=job.key[:12], workload=job.workload,
        protocol=job.proto.protocol,
    ):
        return job.key, execute_job(job).to_dict()


class LocalBackend:
    """Serial in-process execution - the reference every backend must match."""

    #: The runner pre-compiles traces for backends that can use them
    #: in-process (here: same memo, so adoption is free).
    wants_traces = True
    #: Progress-line label for results produced by this backend.
    source = "serial"

    def run_batch(self, tasks: Iterable[Task]) -> Iterator[tuple[str, dict]]:
        """Execute tasks one by one in submission order."""
        for task in tasks:
            yield run_task(task)

    def close(self) -> None:
        """Nothing to release - the memo is process-global by design."""
