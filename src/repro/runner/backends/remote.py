"""Distributed execution: asyncio job daemon + multi-host client backend.

The wire protocol is **newline-delimited JSON frames over TCP** - one JSON
object per line, no binary framing, so a daemon can be driven by hand with
``nc`` and frames stay greppable in captures.  Frame types:

* client -> daemon ``{"type": "hello", "wire": W, "job_schema": S}`` and the
  daemon's reply ``{"type": "hello", "wire": W, "job_schema": S,
  "workers": K}`` - both sides refuse mismatched schemas up front rather
  than misinterpreting payloads;
* client -> daemon ``{"type": "run", "id": I, "job": <Job.to_dict()>}`` -
  the job payload is the exact ``common/params.py``-hashed serialization the
  cache persists, so the daemon recomputes ``Job.key`` locally and traces
  regenerate deterministically on the remote host (job frames never carry
  trace bytes);
* daemon -> client ``{"type": "result", "id": I, "key": K, "stats":
  <RunStats.to_dict()>}`` or ``{"type": "error", "id": I, "message": M}``.

Bit-identity across the wire is structural: stats cross as the same
``RunStats.to_dict()`` JSON payloads the on-disk cache stores, and JSON
round-trips Python floats exactly (``repr`` graded), so a remote result is
byte-equal to a serial run of the same job.

``Daemon`` (the ``repro serve`` verb) fronts its own
:class:`~repro.runner.backends.process.ProcessBackend`: each ``run`` frame is
dispatched to the pool via an asyncio future, results stream back per
connection as they finish (out of order; the ``id`` correlates), and an
optional server-side :class:`~repro.runner.store.ResultStore` persists every
result under the same ``O_APPEND`` discipline the client uses.

``RemoteBackend`` shards a batch's tasks across hosts with a bounded
in-flight **window** per host, streams results back as they land, and
survives failures: a dropped connection requeues that host's outstanding
jobs at the front of the shared queue (any host may pick them up - including
the same one after it reconnects), reconnection retries back off linearly,
and a host that exhausts its retries is marked dead.  The batch fails only
when every host is dead with jobs outstanding, or a job itself raises
remotely (deterministic failures would fail on every host alike).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import logging
import os
import queue
import signal
import socket
import threading
import time
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.common.errors import ConfigError, RunnerError
from repro.faults import FAULTS
from repro.obs import TELEMETRY
from repro.runner.backends.local import Task
from repro.runner.backends.process import ProcessBackend
from repro.runner.job import JOB_SCHEMA, Job
from repro.runner.store import ResultStore

#: Bump when the frame grammar changes incompatibly.  Job payload
#: compatibility is covered separately by ``job_schema`` in the handshake.
WIRE_SCHEMA = 1

#: Version of the daemon ``stats`` frame body (``repro serve-stats``); bumped
#: when its fields change incompatibly, independent of the wire grammar.
STATS_SCHEMA = 1

log = logging.getLogger("repro.runner.remote")

#: Default daemon port (unregistered range; override with ``--port``).
DEFAULT_PORT = 8642
#: Default in-flight window per host: deep enough to hide one round-trip
#: behind simulation time, shallow enough that a dying host strands little.
DEFAULT_WINDOW = 4


# ----------------------------------------------------------------------
# Frame plumbing
# ----------------------------------------------------------------------
def encode_frame(frame: dict) -> bytes:
    """One frame -> one compact JSON line (the only bytes on the wire)."""
    return (json.dumps(frame, sort_keys=True, separators=(",", ":")) + "\n").encode("utf-8")


#: StreamReader line limit.  Frames are ~1 KB in practice (a result frame at
#: 64-core small scale measures under 1 KiB), but histograms scale with the
#: configuration, so leave generous headroom over asyncio's 64 KiB default.
STREAM_LIMIT = 4 * 1024 * 1024


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Next frame from the stream, or ``None`` on clean EOF."""
    line = await reader.readline()
    if not line:
        return None
    if not line.endswith(b"\n"):
        # EOF mid-line: a peer died while flushing a frame.  That is
        # transport death (requeue/reconnect), not a protocol violation.
        raise ConnectionError("stream ended mid-frame")
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise RunnerError(f"malformed wire frame: {exc}") from exc
    if not isinstance(frame, dict) or "type" not in frame:
        raise RunnerError(f"malformed wire frame: {line!r}")
    return frame


def parse_hosts(spec: str | Iterable[tuple[str, int]]) -> tuple[tuple[str, int], ...]:
    """``"h1:p1,h2:p2"`` -> ``(("h1", p1), ("h2", p2))`` (pairs pass through)."""
    if not isinstance(spec, str):
        hosts = tuple((host, int(port)) for host, port in spec)
    else:
        hosts = ()
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            host, sep, port = part.rpartition(":")
            if not sep or not host:
                raise ConfigError(f"host spec needs host:port, got {part!r}")
            try:
                hosts += ((host, int(port)),)
            except ValueError:
                raise ConfigError(f"invalid port in host spec {part!r}") from None
    if not hosts:
        raise ConfigError("remote backend needs at least one host:port")
    return hosts


# ----------------------------------------------------------------------
# Daemon (the `repro serve` verb)
# ----------------------------------------------------------------------
class Daemon:
    """Asyncio TCP server fronting a local process pool.

    Shutdown is **graceful on request** (:meth:`request_drain`, wired to
    ``SIGTERM`` by :meth:`serve`): the listener stops accepting, every open
    connection stops reading new frames, in-flight jobs finish and their
    reply frames flush, then :meth:`serve` returns.  A client mid-batch sees
    a clean EOF after its outstanding replies - a requeue-free handoff -
    instead of torn frames and stranded jobs.
    """

    def __init__(
        self,
        workers: int = 1,
        store: ResultStore | None = None,
        start_method: str = "spawn",
        job_timeout: float | None = None,
    ) -> None:
        if job_timeout is not None and job_timeout <= 0:
            raise ConfigError(f"job_timeout must be > 0, got {job_timeout}")
        self.workers = max(1, workers)
        self.store = store
        self.backend = ProcessBackend(workers=self.workers, start_method=start_method)
        #: Per-job wall-clock budget: a pool worker that wedges past this is
        #: killed with its pool (a fresh one spawns on demand) and the client
        #: gets an ``error`` frame instead of an eternally silent daemon.
        self.job_timeout = job_timeout
        #: Results served over the daemon's lifetime (for the shutdown line).
        self.served = 0
        #: Live-introspection counters behind the ``stats`` wire frame.
        self.errors = 0
        self.active_jobs = 0
        self.connections = 0
        self.total_connections = 0
        self._started = time.monotonic()
        #: Graceful-shutdown plumbing (created on the serve loop).
        self.drained = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._drain_event: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    def request_drain(self) -> None:
        """Ask the daemon to drain and exit; safe from any thread/signal.

        Idempotent; a no-op before :meth:`serve` has bound its loop.
        """
        loop, event = self._loop, self._drain_event
        if loop is not None and event is not None and not loop.is_closed():
            loop.call_soon_threadsafe(event.set)

    def stats_frame(self) -> dict:
        """The ``stats`` reply body (the ``repro serve-stats`` payload).

        Schema-versioned alongside the handshake: clients check
        ``stats_schema`` before interpreting fields, exactly as the hello
        frame pins ``wire``/``job_schema``.
        """
        return {
            "type": "stats",
            "stats_schema": STATS_SCHEMA,
            "wire": WIRE_SCHEMA,
            "job_schema": JOB_SCHEMA,
            "uptime_s": round(time.monotonic() - self._started, 3),
            "workers": self.workers,
            "served": self.served,
            "errors": self.errors,
            "active_jobs": self.active_jobs,
            "connections": self.connections,
            "total_connections": self.total_connections,
            "caching": self.store is not None,
        }

    # ------------------------------------------------------------------
    async def _submit(self, payload: dict) -> tuple[str, dict]:
        """Bridge one job onto the pool; resolves on a loop-safe future."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()

        def _resolve(setter, value):
            if not future.done():
                setter(value)

        self.backend.submit(
            (payload, None),
            callback=lambda result: loop.call_soon_threadsafe(
                _resolve, future.set_result, result
            ),
            error_callback=lambda exc: loop.call_soon_threadsafe(
                _resolve, future.set_exception, exc
            ),
        )
        return await future

    async def _serve_request(
        self, frame: dict, writer: asyncio.StreamWriter, write_lock: asyncio.Lock
    ) -> None:
        rid = frame.get("id")
        if FAULTS.active:
            rule = FAULTS.trigger("daemon.stall")
            if rule is not None:
                # Wedged daemon: the job never starts and no reply ever
                # flushes.  The client's frame_timeout must treat this
                # exactly like a dead connection.
                await asyncio.sleep(float(rule.arg("stall_s", 3600.0)))
        self.active_jobs += 1
        try:
            if self.job_timeout is not None:
                key, stats = await asyncio.wait_for(
                    self._submit(frame["job"]), timeout=self.job_timeout
                )
            else:
                key, stats = await self._submit(frame["job"])
        except asyncio.CancelledError:
            raise
        except asyncio.TimeoutError as exc:
            # Hung pool worker: kill the pool (other in-flight submits hit
            # their own wait_for budgets; a fresh pool spawns on demand) and
            # tell the client loudly rather than going silent.
            self.errors += 1
            self.backend.close()
            log.warning("job %r exceeded job_timeout=%.1fs; pool recycled",
                        rid, self.job_timeout)
            reply = {
                "type": "error", "id": rid,
                "message": f"TimeoutError: job exceeded daemon "
                           f"job_timeout={self.job_timeout}s ({exc or 'hung worker'})",
            }
        except Exception as exc:  # job failure is a frame, not a dead daemon
            self.errors += 1
            reply = {"type": "error", "id": rid, "message": f"{type(exc).__name__}: {exc}"}
        else:
            if self.store is not None:
                self.store.put(Job.from_dict(frame["job"]), stats)
            reply = {"type": "result", "id": rid, "key": key, "stats": stats}
            self.served += 1
        finally:
            self.active_jobs -= 1
        if FAULTS.active and FAULTS.trigger("daemon.frame_drop") is not None:
            # The job ran (and cached, if caching) but the reply evaporates:
            # the client must recover via frame_timeout + requeue, and the
            # re-run is dedup'd bit-identically by content key.
            return
        try:
            async with write_lock:
                writer.write(encode_frame(reply))
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # client vanished mid-reply; it requeues the job on its side

    async def _next_frame(self, reader: asyncio.StreamReader) -> dict | str | None:
        """``read_frame`` racing the drain event; ``"drain"`` when it wins."""
        if self._drain_event is None:  # serve() not driving (direct tests)
            return await read_frame(reader)
        read = asyncio.ensure_future(read_frame(reader))
        drain = asyncio.ensure_future(self._drain_event.wait())
        try:
            await asyncio.wait({read, drain}, return_when=asyncio.FIRST_COMPLETED)
        finally:
            drain.cancel()
            if not read.done():
                read.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await read
        if not read.done() or read.cancelled():
            return "drain"
        return read.result()  # re-raises read_frame's failures

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        conn_task = asyncio.current_task()
        if conn_task is not None:
            # serve() gathers these on drain so in-flight replies flush
            # before the process exits.
            self._conn_tasks.add(conn_task)
            conn_task.add_done_callback(self._conn_tasks.discard)
        write_lock = asyncio.Lock()
        inflight: set[asyncio.Task] = set()
        draining = False
        try:
            hello = await read_frame(reader)
            if hello is None:
                return
            if (
                hello.get("type") != "hello"
                or hello.get("wire") != WIRE_SCHEMA
                or hello.get("job_schema") != JOB_SCHEMA
            ):
                writer.write(encode_frame({
                    "type": "error",
                    "id": None,
                    "message": f"schema mismatch: daemon speaks wire={WIRE_SCHEMA} "
                               f"job_schema={JOB_SCHEMA}, got {hello!r}",
                }))
                await writer.drain()
                return
            writer.write(encode_frame({
                "type": "hello",
                "wire": WIRE_SCHEMA,
                "job_schema": JOB_SCHEMA,
                "workers": self.workers,
            }))
            await writer.drain()
            self.connections += 1
            self.total_connections += 1
            try:
                while True:
                    frame = await self._next_frame(reader)
                    if frame == "drain":
                        # Graceful shutdown: stop reading, let in-flight
                        # replies flush (the finally gathers them), then EOF.
                        draining = True
                        return
                    if frame is None:
                        return  # client hung up; in-flight replies have nowhere to go
                    if FAULTS.active:
                        rule = FAULTS.trigger("daemon.conn_reset")
                        if rule is not None:
                            raise ConnectionResetError(
                                "fault injected: daemon.conn_reset"
                            )
                        rule = FAULTS.trigger("daemon.kill")
                        if rule is not None:
                            os._exit(int(rule.arg("exit_code", 9)))
                    if frame["type"] == "stats":
                        # Live introspection: answered inline (never queued
                        # behind the pool), so a saturated daemon still
                        # reports its stats promptly.
                        async with write_lock:
                            writer.write(encode_frame(self.stats_frame()))
                            await writer.drain()
                        continue
                    if frame["type"] != "run":
                        raise RunnerError(f"unexpected frame type {frame['type']!r}")
                    task = asyncio.create_task(self._serve_request(frame, writer, write_lock))
                    inflight.add(task)
                    task.add_done_callback(inflight.discard)
            finally:
                self.connections -= 1
        except (ConnectionError, RunnerError, asyncio.IncompleteReadError):
            return  # one bad client must not take the daemon down
        finally:
            if draining and inflight:
                await asyncio.gather(*list(inflight), return_exceptions=True)
            for task in inflight:
                task.cancel()
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    # ------------------------------------------------------------------
    async def serve(self, host: str = "127.0.0.1", port: int = DEFAULT_PORT, ready=None):
        """Listen until drained; ``ready(host, bound_port)`` fires once bound.

        Runs forever unless :meth:`request_drain` fires (``SIGTERM`` is wired
        to it when the loop runs on the main thread), then: stop accepting,
        flush every in-flight reply, return.  ``server.wait_closed`` is
        deliberately avoided - on Python 3.12+ it waits for all open
        connections, which is exactly the drain we orchestrate by hand.
        """
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._drain_event = asyncio.Event()
        server = await asyncio.start_server(self._handle, host, port, limit=STREAM_LIMIT)
        bound_port = server.sockets[0].getsockname()[1]
        try:
            # Signal handlers attach only on the main thread; in-process
            # test daemons (serve on a helper thread) drain via
            # request_drain() directly.
            loop.add_signal_handler(signal.SIGTERM, self.request_drain)
            sigterm_wired = True
        except (NotImplementedError, RuntimeError, ValueError):
            sigterm_wired = False
        if ready is not None:
            ready(host, bound_port)
        serving = asyncio.ensure_future(server.serve_forever())
        drain = asyncio.ensure_future(self._drain_event.wait())
        try:
            await asyncio.wait({serving, drain}, return_when=asyncio.FIRST_COMPLETED)
            if serving.done() and not drain.done():
                await serving  # propagate the listener's failure
                return
            self.drained = True
            server.close()  # stop accepting; open connections drain below
            if self._conn_tasks:
                await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
            log.info(
                "drained: %d result(s) served, %d error(s), shutting down",
                self.served, self.errors,
            )
            if TELEMETRY.enabled:
                TELEMETRY.event(
                    "daemon.drain", served=self.served, errors=self.errors,
                )
        finally:
            drain.cancel()
            serving.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await serving
            if sigterm_wired:
                with contextlib.suppress(Exception):
                    loop.remove_signal_handler(signal.SIGTERM)
            server.close()
            self._loop = None

    def close(self) -> None:
        self.backend.close()


def serve_forever(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    workers: int = 1,
    store: ResultStore | None = None,
    announce=print,
    job_timeout: float | None = None,
) -> int:
    """Blocking daemon entry point for the ``repro serve`` CLI verb.

    The readiness line ("listening on HOST:PORT") goes to stdout *after* the
    socket is bound, so callers (tests, CI, shell scripts) can start the
    daemon with ``--port 0`` and parse the kernel-assigned port.  ``SIGTERM``
    drains gracefully (in-flight jobs finish, replies flush, then exit);
    ``SIGINT``/Ctrl-C remains the fast abort.
    """
    FAULTS.role = "daemon"
    daemon = Daemon(workers=workers, store=store, job_timeout=job_timeout)

    def ready(bound_host: str, bound_port: int) -> None:
        announce(
            f"repro serve: listening on {bound_host}:{bound_port} "
            f"({daemon.workers} workers"
            + (f", cache={store.directory}" if store is not None else "")
            + ")",
            flush=True,
        )

    # Advertise the daemon as a live cache appender so `repro cache compact`
    # on the same directory refuses while results may still stream in.
    lock = store.writer_lock() if store is not None else contextlib.nullcontext()
    try:
        with lock:
            asyncio.run(daemon.serve(host, port, ready))
    except KeyboardInterrupt:
        announce(f"repro serve: stopped after {daemon.served} results", flush=True)
    else:
        announce(
            f"repro serve: drained, stopped after {daemon.served} results",
            flush=True,
        )
    finally:
        daemon.close()
    return 0


# ----------------------------------------------------------------------
# Live daemon introspection (the `repro serve-stats` verb)
# ----------------------------------------------------------------------
def fetch_stats(host: str, port: int, timeout: float = 10.0) -> dict:
    """Query one live daemon's ``stats`` frame (one-shot, synchronous).

    Speaks the same handshake as :class:`RemoteBackend`, so schema refusal
    and daemon identity checks behave identically; the reply is the
    :meth:`Daemon.stats_frame` dict.  Raises
    :class:`~repro.common.errors.RunnerError` on refusal or a malformed
    peer, ``OSError`` on transport failure.
    """
    name = f"{host}:{port}"
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.settimeout(timeout)
        fh = sock.makefile("rwb")
        try:
            fh.write(encode_frame({
                "type": "hello", "wire": WIRE_SCHEMA, "job_schema": JOB_SCHEMA,
            }))
            fh.flush()
            hello = _read_sync_frame(fh, name)
            if hello.get("type") == "error":
                raise RunnerError(f"{name}: {hello.get('message')}")
            if hello.get("type") != "hello":
                raise RunnerError(f"{name}: incompatible daemon handshake: {hello!r}")
            fh.write(encode_frame({"type": "stats"}))
            fh.flush()
            frame = _read_sync_frame(fh, name)
            if frame.get("type") != "stats":
                raise RunnerError(f"{name}: expected a stats frame, got {frame!r}")
            if frame.get("stats_schema") != STATS_SCHEMA:
                raise RunnerError(
                    f"{name}: stats schema {frame.get('stats_schema')!r}, "
                    f"this client speaks {STATS_SCHEMA}"
                )
            return frame
        finally:
            fh.close()


def _read_sync_frame(fh, name: str) -> dict:
    """Blocking counterpart of :func:`read_frame` for one-shot queries."""
    line = fh.readline()
    if not line:
        raise ConnectionError(f"{name}: daemon closed the connection")
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise RunnerError(f"{name}: malformed wire frame: {exc}") from exc
    if not isinstance(frame, dict) or "type" not in frame:
        raise RunnerError(f"{name}: malformed wire frame: {line!r}")
    return frame


# ----------------------------------------------------------------------
# Client backend
# ----------------------------------------------------------------------
class _BatchState:
    """Shared dispatch state: one job queue, many host loops (one event loop)."""

    def __init__(self, payloads: list[dict]) -> None:
        self.queue: deque[tuple[int, dict]] = deque(enumerate(payloads))
        self.remaining = len(payloads)
        self.emitted: set[int] = set()
        self.dead_hosts = 0
        self.failure: BaseException | None = None
        self.cond = asyncio.Condition()

    def settled(self) -> bool:
        return self.remaining == 0 or self.failure is not None


@dataclass
class RemoteBackend:
    """Shards a batch's jobs across ``repro serve`` daemons over TCP.

    Connections are per-batch (opened lazily in :meth:`run_batch`, torn down
    when it finishes), so a daemon restarted between batches is picked up
    transparently, and :meth:`close` has nothing persistent to release.
    """

    hosts: tuple[tuple[str, int], ...]
    #: Max in-flight jobs per host.
    window: int = DEFAULT_WINDOW
    #: Reconnection attempts per host before it is declared dead...
    connect_retries: int = 5
    #: ...with capped exponential backoff: attempt *n* waits
    #: ``min(retry_delay * 2**(n-1), retry_max_delay)`` seconds, scaled by a
    #: deterministic jitter derived from the host name (see
    #: :meth:`_backoff_delay`).
    retry_delay: float = 0.2
    #: Backoff ceiling: a long daemon outage polls at this cadence instead
    #: of growing per-attempt sleeps without bound.
    retry_max_delay: float = 5.0
    #: Per-reply wall-clock budget (seconds) while jobs are in flight.
    #: ``None`` waits forever (the historical behavior).  When set, a host
    #: that stalls mid-batch - wedged worker, livelocked daemon, black-holed
    #: TCP session - is treated exactly like a dropped connection: its
    #: outstanding jobs requeue onto other hosts and the stalled host gets
    #: its bounded reconnect budget.  Size it well above the longest
    #: legitimate job: a daemon replies only when a job *finishes*.
    frame_timeout: float | None = None

    #: Job frames never carry trace bytes: daemons regenerate traces
    #: deterministically from the payload, so the parent skips compiling them.
    wants_traces = False
    source = "remote"

    #: Per-host lifetime introspection, keyed ``"host:port"``:
    #: ``{"completed", "requeued", "reconnects", "dead"}``.  Updated at every
    #: failover decision and mirrored to telemetry counters per batch, so
    #: dead-host debugging needs neither a packet capture nor a debugger.
    host_stats: dict = field(default_factory=dict, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.hosts = parse_hosts(self.hosts)
        if self.window < 1:
            raise ConfigError(f"window must be >= 1, got {self.window}")
        if self.retry_delay <= 0:
            raise ConfigError(f"retry_delay must be > 0, got {self.retry_delay}")
        if self.retry_max_delay < self.retry_delay:
            raise ConfigError(
                f"retry_max_delay ({self.retry_max_delay}) must be >= "
                f"retry_delay ({self.retry_delay})"
            )
        if self.frame_timeout is not None and self.frame_timeout <= 0:
            raise ConfigError(f"frame_timeout must be > 0, got {self.frame_timeout}")

    def _backoff_delay(self, host_name: str, attempt: int) -> float:
        """Reconnect sleep before attempt ``attempt`` (1-based) to one host.

        Exponential in the attempt number, capped at ``retry_max_delay`` so
        a long outage cannot grow per-attempt sleeps without bound, and
        scaled into ``[0.5, 1.0) x base`` by a jitter that is a pure
        function of ``(host name, attempt)`` - different hosts desynchronize
        their reconnect storms, yet every run of the same configuration
        sleeps identically (the determinism the chaos tier and the
        fake-clock test pin).
        """
        base = min(self.retry_delay * (2.0 ** (attempt - 1)), self.retry_max_delay)
        jitter = zlib.crc32(f"{host_name}#{attempt}".encode("utf-8")) % 1000 / 1000.0
        return base * (0.5 + 0.5 * jitter)

    def _host_entry(self, name: str) -> dict:
        entry = self.host_stats.get(name)
        if entry is None:
            entry = self.host_stats[name] = {
                "completed": 0, "requeued": 0, "reconnects": 0, "dead": False,
            }
        return entry

    def _note_failover(self, event: str, host: str, attempts: int, **attrs) -> None:
        """Record one failover decision: a log line + a telemetry event.

        These paths used to swallow their causes inside ``except
        (ConnectionError, OSError)`` - debugging a dead host meant a packet
        capture.  Every decision now names the host, the attempt count and
        the outstanding-job count.
        """
        level = logging.WARNING if event == "remote.host_dead" else logging.INFO
        log.log(
            level, "%s: %s (attempt %d/%d%s)", host, event.removeprefix("remote."),
            attempts, self.connect_retries + 1,
            "".join(f", {k}={v}" for k, v in attrs.items()),
        )
        if TELEMETRY.enabled:
            TELEMETRY.event(event, host=host, attempts=attempts, **attrs)

    # ------------------------------------------------------------------
    def run_batch(self, tasks: Iterable[Task]) -> Iterator[tuple[str, dict]]:
        """Shard tasks across hosts; yields results as daemons return them.

        The asyncio dispatcher runs on a helper thread so this stays an
        ordinary synchronous iterator for the runner: results stream through
        a queue and are yielded (and therefore persisted by the caller) the
        moment each lands, not when the batch completes.
        """
        payloads = [payload for payload, _trace in tasks]
        if not payloads:
            return
        results: queue.Queue = queue.Queue()
        control: dict = {"ready": threading.Event()}
        worker = threading.Thread(
            target=self._dispatch_thread, args=(payloads, results, control), daemon=True
        )
        worker.start()
        settled = False
        try:
            while True:
                kind, value = results.get()
                if kind == "result":
                    yield value
                else:
                    settled = True
                    if kind == "error":
                        raise value
                    return  # "done"
        finally:
            if not settled:
                # The consumer abandoned the iterator mid-batch (Ctrl-C, a
                # store failure...): poison the dispatcher so join() returns
                # now instead of after the rest of the sweep completes.
                # Wait for the dispatcher to publish its loop first - an
                # abort in the brief startup window would otherwise no-op
                # and leave join() waiting out the whole batch.  If the
                # dispatcher died before signalling, join() returns anyway.
                control["ready"].wait(timeout=5.0)
                self._poison(control, RunnerError("result consumer aborted the batch"))
            worker.join()

    @staticmethod
    def _poison(control: dict, exc: BaseException) -> None:
        """Wake the dispatch loop with a failure, from any thread."""
        loop = control.get("loop")
        state = control.get("state")
        if loop is None or loop.is_closed():
            return

        async def _set() -> None:
            async with state.cond:
                if state.failure is None:
                    state.failure = exc
                state.cond.notify_all()

        with contextlib.suppress(RuntimeError):  # loop finished in between
            asyncio.run_coroutine_threadsafe(_set(), loop)

    def _dispatch_thread(
        self, payloads: list[dict], results: queue.Queue, control: dict
    ) -> None:
        try:
            asyncio.run(self._dispatch(payloads, results, control))
        except BaseException as exc:  # surfaced on the consuming thread
            results.put(("error", exc))
        else:
            results.put(("done", None))

    async def _dispatch(
        self, payloads: list[dict], results: queue.Queue, control: dict
    ) -> None:
        state = _BatchState(payloads)
        control["loop"] = asyncio.get_running_loop()
        control["state"] = state
        control["ready"].set()
        #: host_stats snapshot: counters emitted per batch are deltas, so a
        #: backend reused across batches (figure galleries) never double-counts.
        base = {name: dict(entry) for name, entry in self.host_stats.items()}
        loops = [
            asyncio.create_task(self._host_loop(host, state, results))
            for host in self.hosts
        ]
        try:
            async with state.cond:
                await state.cond.wait_for(
                    lambda: state.settled() or state.dead_hosts == len(self.hosts)
                )
        finally:
            for task in loops:
                task.cancel()
            await asyncio.gather(*loops, return_exceptions=True)
            if TELEMETRY.enabled:
                for name, entry in self.host_stats.items():
                    before = base.get(name, {})
                    for counter in ("completed", "requeued", "reconnects"):
                        TELEMETRY.count(
                            f"remote.{counter}",
                            entry[counter] - before.get(counter, 0),
                            host=name,
                        )
        if state.failure is not None:
            raise state.failure
        if state.remaining:
            raise RunnerError(
                f"all {len(self.hosts)} remote hosts failed with "
                f"{state.remaining} jobs outstanding"
            )

    # ------------------------------------------------------------------
    async def _host_loop(
        self, host: tuple[str, int], state: _BatchState, results: queue.Queue
    ) -> None:
        """One host's lifecycle: connect -> pump window -> requeue on failure."""
        name = f"{host[0]}:{host[1]}"
        hs = self._host_entry(name)
        attempts = 0
        while True:
            async with state.cond:
                # Don't burn a connection while there is nothing to do: wake
                # on requeued work (another host died) or batch completion.
                await state.cond.wait_for(lambda: state.queue or state.settled())
                if state.settled():
                    return
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(*host, limit=STREAM_LIMIT), timeout=10.0
                )
            except (OSError, asyncio.TimeoutError) as exc:
                attempts += 1
                hs["reconnects"] += 1
                self._note_failover(
                    "remote.connect_failed", name, attempts,
                    outstanding=0, detail=f"{type(exc).__name__}: {exc}",
                )
                if attempts > self.connect_retries:
                    hs["dead"] = True
                    self._note_failover(
                        "remote.host_dead", name, attempts,
                        outstanding=len(state.queue),
                    )
                    async with state.cond:
                        state.dead_hosts += 1
                        state.cond.notify_all()
                    return
                await asyncio.sleep(self._backoff_delay(name, attempts))
                continue
            outstanding: dict[int, dict] = {}
            served = [0]  # results this connection delivered (progress marker)
            try:
                await self._handshake(name, reader, writer)
                await self._pump(reader, writer, state, outstanding, served, results, hs)
                return
            except Exception as exc:  # CancelledError (BaseException) passes
                if not isinstance(exc, (ConnectionError, OSError, EOFError,
                                        asyncio.IncompleteReadError,
                                        asyncio.TimeoutError)):
                    # Protocol or job failure (including anything unexpected,
                    # e.g. a malformed frame from a foreign daemon):
                    # deterministic, poison the whole batch rather than hang.
                    failure = exc if isinstance(exc, RunnerError) else RunnerError(
                        f"{name}: {type(exc).__name__}: {exc}"
                    )
                    async with state.cond:
                        state.failure = failure
                        state.cond.notify_all()
                    return
                # Transport death mid-batch: hand this host's outstanding jobs
                # back to the shared queue (front, to keep input order tight)
                # and try to reconnect.  Only a connection that actually
                # delivered results resets the retry budget - a handshake
                # alone must not, or a crash-looping daemon could trap the
                # client in an infinite requeue cycle with zero progress.
                requeued = 0
                async with state.cond:
                    for jid in sorted(outstanding, reverse=True):
                        if jid not in state.emitted:
                            state.queue.appendleft((jid, outstanding[jid]))
                            requeued += 1
                    state.cond.notify_all()
                if served[0]:
                    attempts = 0
                attempts += 1
                hs["requeued"] += requeued
                hs["reconnects"] += 1
                self._note_failover(
                    "remote.requeue", name, attempts,
                    outstanding=len(outstanding), requeued=requeued,
                    detail=f"{type(exc).__name__}: {exc}",
                )
                if attempts > self.connect_retries:
                    hs["dead"] = True
                    self._note_failover(
                        "remote.host_dead", name, attempts,
                        outstanding=len(state.queue),
                    )
                    async with state.cond:
                        state.dead_hosts += 1
                        state.cond.notify_all()
                    return
                await asyncio.sleep(self._backoff_delay(name, attempts))
            finally:
                writer.close()
                with contextlib.suppress(Exception):
                    await writer.wait_closed()

    async def _handshake(
        self, name: str, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        writer.write(encode_frame({
            "type": "hello", "wire": WIRE_SCHEMA, "job_schema": JOB_SCHEMA,
        }))
        await writer.drain()
        hello = await read_frame(reader)
        if hello is None:
            raise ConnectionError(f"{name}: daemon closed during handshake")
        if hello.get("type") == "error":
            raise RunnerError(f"{name}: {hello.get('message')}")
        if hello.get("type") != "hello" or hello.get("job_schema") != JOB_SCHEMA:
            raise RunnerError(f"{name}: incompatible daemon handshake: {hello!r}")

    async def _pump(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        state: _BatchState,
        outstanding: dict[int, dict],
        served: list[int],
        results: queue.Queue,
        hs: dict,
    ) -> None:
        """Keep the window full and drain result frames until the batch ends."""
        while True:
            async with state.cond:
                to_send = []
                while len(outstanding) < self.window and state.queue:
                    jid, payload = state.queue.popleft()
                    outstanding[jid] = payload
                    to_send.append((jid, payload))
                if not outstanding:
                    if state.settled():
                        return
                    # Idle but the batch isn't done: another host still holds
                    # jobs that may come back if it dies.  Sleep on the
                    # condition instead of busy-polling the queue.
                    await state.cond.wait()
                    continue
            for jid, payload in to_send:
                writer.write(encode_frame({"type": "run", "id": jid, "job": payload}))
            await writer.drain()
            if self.frame_timeout is not None:
                # A stalled host is handled exactly like a dropped one: the
                # TimeoutError lands in _host_loop's transport-death tuple,
                # so outstanding jobs requeue and this host gets its bounded
                # reconnect budget.
                frame = await asyncio.wait_for(
                    read_frame(reader), timeout=self.frame_timeout
                )
            else:
                frame = await read_frame(reader)
            if frame is None:
                raise ConnectionError("daemon disconnected with jobs in flight")
            ftype = frame.get("type")
            if ftype == "error":
                raise RunnerError(f"remote job failed: {frame.get('message')}")
            if ftype != "result":
                raise RunnerError(f"unexpected frame type {ftype!r}")
            jid = frame.get("id")
            if outstanding.pop(jid, None) is None:
                continue  # stale duplicate after a requeue cycle; ignore
            served[0] += 1
            hs["completed"] += 1
            async with state.cond:
                if jid not in state.emitted:
                    state.emitted.add(jid)
                    state.remaining -= 1
                    results.put(("result", (frame["key"], frame["stats"])))
                state.cond.notify_all()

    def close(self) -> None:
        """Connections are per-batch; nothing persistent to release."""
