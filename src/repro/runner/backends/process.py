"""Multiprocessing pool backend: spawn-safe workers on the local machine.

Worker processes are **spawn-safe**: the pool is created from the ``spawn``
context (the fork-unsafe-by-default world of macOS/Windows and of threaded
parents) and workers receive only serialized ``(payload, trace | None)``
tasks.  Each worker rebuilds ``ArchConfig``/``ProtocolConfig``/``Simulator``
from the payload, adopts the shipped columnar trace into its per-process
memo (or regenerates it under ``rng.seed_scope(job.seed)`` when none was
shipped), and derives every random stream from the job itself - never from
inherited process state (see DESIGN.md, "Runner and result cache").

Results cross the process boundary as ``RunStats.to_dict()`` payloads - the
exact representation the cache persists - so pooled execution is bit-identical
to the serial reference by construction.

**Hung-worker watchdog** (``job_timeout``): ``multiprocessing.Pool`` has no
defense against a worker that wedges (or one that ``os._exit``\\ s, whose
task the repopulated pool silently never finishes) - ``imap_unordered``
would wait forever.  With ``job_timeout`` set, the batch runs through
individually tracked ``apply_async`` handles instead: when no result lands
for ``job_timeout`` seconds while work is outstanding, the pool is
**terminated** (killing hung workers with it) and the stranded tasks are
re-dispatched on a fresh pool.  Jobs are deterministic and results are
deduplicated by content key, so a re-run is bit-identical - the cost of a
false strike is wall-clock, never wrong data.  After ``max_strikes``
terminations the backend stops trusting pools and finishes the batch
serially in the parent, which always makes progress.
"""

from __future__ import annotations

import logging
import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.common.errors import ConfigError, RunnerError
from repro.faults import FAULTS
from repro.obs import TELEMETRY
from repro.runner.backends.local import Task, run_task

log = logging.getLogger("repro.runner.process")


def _worker_init() -> None:
    """Pool initializer: mark this process as a pool worker.

    Spawn workers re-activate any inherited ``REPRO_FAULTS`` schedule at
    import with the default role; this pins the role fault rules scope on
    (``scope="worker"``) before the first task runs.
    """
    FAULTS.role = "worker"


@dataclass
class ProcessBackend:
    """Shards task batches over a lazily created ``multiprocessing`` pool."""

    workers: int = 2
    #: ``multiprocessing`` start method.  "spawn" works everywhere and proves
    #: workers carry no inherited state; "fork" is faster where available.
    start_method: str = "spawn"
    #: Per-job wall-clock budget (seconds).  ``None`` disables the watchdog
    #: and keeps the historical lazy ``imap_unordered`` path.  The clock
    #: measures *batch progress*: it restarts whenever any result lands, so
    #: it bounds the slowest single job, not the whole batch.  Size it well
    #: above the longest legitimate job.
    job_timeout: float | None = None
    #: Pool terminations tolerated before the batch falls back to serial
    #: in-parent execution for its remainder.
    max_strikes: int = 2

    wants_traces = True
    #: Per-batch progress label: "parallel" for pooled batches, "serial" when
    #: a single-task batch runs inline in the parent (no pool spin-up).
    source: str = field(default="parallel", init=False)

    #: Watchdog strikes accumulated over the backend's lifetime.  Persisted
    #: across batches deliberately: an environment that hangs pools once
    #: tends to do it again, and serial execution always finishes.
    strikes: int = field(default=0, init=False)

    #: Worker pool, created lazily on the first multi-task batch and kept for
    #: the backend's lifetime: a figure gallery submits one batch per figure,
    #: and reusing the pool preserves both the spawn startup cost and each
    #: worker's trace memo across batches.  Terminated by :meth:`close` (or
    #: the pool's own GC finalizer; workers are daemonic either way).
    _pool: object = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ConfigError(f"job_timeout must be > 0, got {self.job_timeout}")
        if self.max_strikes < 1:
            raise ConfigError(f"max_strikes must be >= 1, got {self.max_strikes}")

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            context = multiprocessing.get_context(self.start_method)
            self._pool = context.Pool(
                processes=self.workers, initializer=_worker_init
            )
        return self._pool

    def run_batch(self, tasks: Iterable[Task]) -> Iterator[tuple[str, dict]]:
        """Execute a batch over the pool; yields results as workers finish.

        Tasks are consumed lazily, so parent-side trace compilation overlaps
        with worker execution.  A batch of exactly one task runs inline in
        the parent (reported as ``source="serial"``): spinning up a pool for
        it would cost more than the simulation.  With ``job_timeout`` set,
        every batch goes through the watchdog path instead (tasks are
        materialized up front - the watchdog must be able to re-dispatch
        them, and even a single task must not hang the parent inline).
        """
        if self.job_timeout is not None:
            yield from self._run_watched(list(tasks))
            return
        it = iter(tasks)
        first = next(it, None)
        if first is None:
            return
        second = next(it, None)
        if second is None:
            self.source = "serial"
            yield run_task(first)
            return
        self.source = "parallel"

        def chain() -> Iterator[Task]:
            yield first
            yield second
            yield from it

        pool = self._ensure_pool()
        try:
            yield from pool.imap_unordered(run_task, chain())
        except RunnerError:
            raise
        except Exception as exc:  # worker crash: surface which engine failed
            self.close()
            raise RunnerError(f"worker pool failed: {exc}") from exc

    # ------------------------------------------------------------------
    def _run_watched(self, pending: list[Task]) -> Iterator[tuple[str, dict]]:
        """The watchdog path: tracked handles, strike on stall, re-dispatch."""
        poll = min(0.05, self.job_timeout / 10)
        while pending:
            if self.strikes >= self.max_strikes:
                log.warning(
                    "worker pool struck out (%d terminations): finishing "
                    "%d job(s) serially in the parent",
                    self.strikes, len(pending),
                )
                if TELEMETRY.enabled:
                    TELEMETRY.event(
                        "process.serial_fallback",
                        strikes=self.strikes, jobs=len(pending),
                    )
                self.source = "serial"
                for task in pending:
                    yield run_task(task)
                return
            self.source = "parallel"
            pool = self._ensure_pool()
            handles = [pool.apply_async(run_task, (task,)) for task in pending]
            finished = [False] * len(handles)
            done = 0
            last_progress = time.monotonic()
            struck = False
            while done < len(handles):
                progressed = False
                for index, handle in enumerate(handles):
                    if finished[index] or not handle.ready():
                        continue
                    finished[index] = True
                    done += 1
                    progressed = True
                    try:
                        result = handle.get()
                    except RunnerError:
                        raise
                    except Exception as exc:  # deterministic job failure
                        self.close()
                        raise RunnerError(f"worker pool failed: {exc}") from exc
                    yield result
                if progressed:
                    last_progress = time.monotonic()
                    continue
                if time.monotonic() - last_progress >= self.job_timeout:
                    struck = True
                    break
                time.sleep(poll)
            if not struck:
                return
            self.strikes += 1
            pending = [task for index, task in enumerate(pending) if not finished[index]]
            log.warning(
                "worker watchdog: no result for %.1fs with %d job(s) "
                "outstanding; terminating the pool and re-dispatching "
                "(strike %d/%d)",
                self.job_timeout, len(pending), self.strikes, self.max_strikes,
            )
            if TELEMETRY.enabled:
                TELEMETRY.event(
                    "process.watchdog_strike",
                    strike=self.strikes, stranded=len(pending),
                    timeout_s=self.job_timeout,
                )
            self.close()  # terminate() kills hung/crashed workers with the pool

    def submit(
        self,
        task: Task,
        callback: Callable[[tuple[str, dict]], None],
        error_callback: Callable[[BaseException], None],
    ) -> None:
        """Dispatch one task asynchronously (callbacks fire on a pool thread).

        This is the hook the ``repro serve`` daemon uses to front the pool
        from its asyncio event loop: each incoming job frame becomes one
        ``submit`` whose callback resolves an asyncio future.
        """
        self._ensure_pool().apply_async(
            run_task, (task,), callback=callback, error_callback=error_callback
        )

    def close(self) -> None:
        """Terminate the worker pool (idempotent; a new one spawns on demand)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
