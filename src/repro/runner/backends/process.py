"""Multiprocessing pool backend: spawn-safe workers on the local machine.

Worker processes are **spawn-safe**: the pool is created from the ``spawn``
context (the fork-unsafe-by-default world of macOS/Windows and of threaded
parents) and workers receive only serialized ``(payload, trace | None)``
tasks.  Each worker rebuilds ``ArchConfig``/``ProtocolConfig``/``Simulator``
from the payload, adopts the shipped columnar trace into its per-process
memo (or regenerates it under ``rng.seed_scope(job.seed)`` when none was
shipped), and derives every random stream from the job itself - never from
inherited process state (see DESIGN.md, "Runner and result cache").

Results cross the process boundary as ``RunStats.to_dict()`` payloads - the
exact representation the cache persists - so pooled execution is bit-identical
to the serial reference by construction.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.common.errors import RunnerError
from repro.runner.backends.local import Task, run_task


@dataclass
class ProcessBackend:
    """Shards task batches over a lazily created ``multiprocessing`` pool."""

    workers: int = 2
    #: ``multiprocessing`` start method.  "spawn" works everywhere and proves
    #: workers carry no inherited state; "fork" is faster where available.
    start_method: str = "spawn"

    wants_traces = True
    #: Per-batch progress label: "parallel" for pooled batches, "serial" when
    #: a single-task batch runs inline in the parent (no pool spin-up).
    source: str = field(default="parallel", init=False)

    #: Worker pool, created lazily on the first multi-task batch and kept for
    #: the backend's lifetime: a figure gallery submits one batch per figure,
    #: and reusing the pool preserves both the spawn startup cost and each
    #: worker's trace memo across batches.  Terminated by :meth:`close` (or
    #: the pool's own GC finalizer; workers are daemonic either way).
    _pool: object = field(default=None, init=False, repr=False, compare=False)

    # ------------------------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            context = multiprocessing.get_context(self.start_method)
            self._pool = context.Pool(processes=self.workers)
        return self._pool

    def run_batch(self, tasks: Iterable[Task]) -> Iterator[tuple[str, dict]]:
        """Execute a batch over the pool; yields results as workers finish.

        Tasks are consumed lazily, so parent-side trace compilation overlaps
        with worker execution.  A batch of exactly one task runs inline in
        the parent (reported as ``source="serial"``): spinning up a pool for
        it would cost more than the simulation.
        """
        it = iter(tasks)
        first = next(it, None)
        if first is None:
            return
        second = next(it, None)
        if second is None:
            self.source = "serial"
            yield run_task(first)
            return
        self.source = "parallel"

        def chain() -> Iterator[Task]:
            yield first
            yield second
            yield from it

        pool = self._ensure_pool()
        try:
            yield from pool.imap_unordered(run_task, chain())
        except RunnerError:
            raise
        except Exception as exc:  # worker crash: surface which engine failed
            self.close()
            raise RunnerError(f"worker pool failed: {exc}") from exc

    def submit(
        self,
        task: Task,
        callback: Callable[[tuple[str, dict]], None],
        error_callback: Callable[[BaseException], None],
    ) -> None:
        """Dispatch one task asynchronously (callbacks fire on a pool thread).

        This is the hook the ``repro serve`` daemon uses to front the pool
        from its asyncio event loop: each incoming job frame becomes one
        ``submit`` whose callback resolves an asyncio future.
        """
        self._ensure_pool().apply_async(
            run_task, (task,), callback=callback, error_callback=error_callback
        )

    def close(self) -> None:
        """Terminate the worker pool (idempotent; a new one spawns on demand)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
