"""Pluggable execution backends behind the ``ExecutionBackend`` protocol.

The :class:`~repro.runner.parallel.ParallelRunner` is an orchestration shell
(dedup -> cache lookup -> backend dispatch -> store persistence -> input-order
reassembly); *how* pending jobs execute is a backend's business:

* :class:`LocalBackend` - serial, in the calling process (the bit-identity
  reference);
* :class:`ProcessBackend` - spawn-safe ``multiprocessing`` pool with
  zero-copy columnar trace shipping;
* :class:`RemoteBackend` - shards jobs across ``repro serve`` daemons over
  newline-delimited-JSON TCP frames with per-host in-flight windows and
  requeue-on-disconnect.

Every backend consumes ``(payload, trace | None)`` tasks and yields
``(job key, RunStats.to_dict())`` pairs - the exact representation the cache
persists - so results are bit-identical across backends by construction
(pinned by ``tests/runner/test_backends.py``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Protocol, runtime_checkable

from repro.common.errors import ConfigError
from repro.runner.backends.local import LocalBackend, Task, build_trace, execute_job, run_task
from repro.runner.backends.process import ProcessBackend
from repro.runner.backends.remote import (
    DEFAULT_PORT,
    DEFAULT_WINDOW,
    STATS_SCHEMA,
    Daemon,
    RemoteBackend,
    fetch_stats,
    parse_hosts,
    serve_forever,
)

#: CLI-selectable backend names ("auto" resolves from workers/hosts).
BACKEND_NAMES = ("auto", "local", "process", "remote")


@runtime_checkable
class ExecutionBackend(Protocol):
    """The seam between sweep orchestration and job execution.

    ``wants_traces`` tells the runner whether to pre-compile each job's
    columnar trace parent-side (in-process backends adopt it; the remote
    backend regenerates traces on the daemon instead).  ``source`` labels
    this backend's results on progress lines.
    """

    wants_traces: bool
    source: str

    def run_batch(self, tasks: Iterable[Task]) -> Iterator[tuple[str, dict]]:
        """Execute a batch; yield ``(job key, stats dict)`` as results land."""
        ...

    def close(self) -> None:
        """Release executor resources (idempotent)."""
        ...


def make_backend(
    spec: str = "auto",
    *,
    workers: int = 1,
    start_method: str = "spawn",
    hosts: str | Iterable[tuple[str, int]] | None = None,
    window: int | None = None,
    job_timeout: float | None = None,
    frame_timeout: float | None = None,
):
    """Resolve a CLI-style backend spec into an :class:`ExecutionBackend`.

    ``auto`` keeps the historical behavior: hosts given -> remote, else a
    process pool when ``workers > 1``, else serial in-process execution.

    ``job_timeout`` arms the process pool's hung-worker watchdog;
    ``frame_timeout`` arms the remote backend's stalled-host detection.
    Each applies only to its backend; the serial reference has no workers
    to watchdog, so both are ignored for ``local``.
    """
    if spec not in BACKEND_NAMES:
        raise ConfigError(f"unknown backend {spec!r} (choose from {BACKEND_NAMES})")
    if spec == "auto":
        spec = "remote" if hosts else ("process" if workers > 1 else "local")
    if spec != "remote" and hosts:
        raise ConfigError(f"--hosts only applies to the remote backend, not {spec!r}")
    if spec == "local":
        return LocalBackend()
    if spec == "process":
        return ProcessBackend(
            workers=max(1, workers),
            start_method=start_method,
            job_timeout=job_timeout,
        )
    if not hosts:
        raise ConfigError("remote backend needs --hosts host:port[,host:port...]")
    return RemoteBackend(
        hosts=parse_hosts(hosts),
        window=DEFAULT_WINDOW if window is None else window,
        frame_timeout=frame_timeout,
    )


__all__ = [
    "BACKEND_NAMES",
    "DEFAULT_PORT",
    "DEFAULT_WINDOW",
    "STATS_SCHEMA",
    "Daemon",
    "ExecutionBackend",
    "LocalBackend",
    "ProcessBackend",
    "RemoteBackend",
    "Task",
    "build_trace",
    "execute_job",
    "fetch_stats",
    "make_backend",
    "parse_hosts",
    "run_task",
    "serve_forever",
]
