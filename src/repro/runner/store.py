"""On-disk, content-addressed result cache for simulation runs.

``ResultStore`` maps :class:`~repro.runner.job.Job` content hashes to fully
serialized :class:`~repro.sim.stats.RunStats`, persisted as JSON-lines under
a cache directory (default ``.repro-cache/``).  Properties:

* **content-addressed** - the key covers every field that can change a
  result, so any config change (a different ``pct``, ``ackwise_pointers``,
  scale, seed...) is automatically a miss, while re-running an identical
  sweep is pure cache hits;
* **append-only JSONL** - one line per result; loading replays the log and
  keeps the last entry per key, so interrupted runs lose at most the line
  being written and concurrent *processes* never corrupt existing data;
* **instrumented** - ``hits``/``misses``/``stores`` counters let callers
  (and the acceptance tests) verify that a warm-cache sweep performed zero
  simulations;
* **schema-versioned** - entries from an incompatible schema are ignored on
  load rather than misinterpreted.

Appends are **multi-writer safe without locking**: each ``put`` is a single
``O_APPEND`` ``os.write`` of one complete JSONL record, which POSIX appends
atomically, so a ``repro serve`` daemon's store and a sweeping client's
store may target the same directory and interleave whole lines, never
fragments.  ``merge`` folds another cache directory's log into this one with
last-entry-per-key semantics (remote hosts ship their ``results.jsonl``
home).  ``compact`` rewrites the whole log and therefore still assumes a
single writer: run it while no sweep or daemon is appending.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.runner.job import JOB_SCHEMA, Job
from repro.sim.stats import RunStats

#: Default cache location, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"
_RESULTS_FILE = "results.jsonl"


class ResultStore:
    """Durable job-hash -> RunStats mapping with hit/miss accounting."""

    def __init__(self, path: str | os.PathLike = DEFAULT_CACHE_DIR) -> None:
        self.directory = Path(path)
        self.path = self.directory / _RESULTS_FILE
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self._entries: dict[str, dict] = {}
        self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        if not self.path.exists():
            return
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from an interrupted run
                if record.get("schema") != JOB_SCHEMA:
                    continue
                key = record.get("key")
                if isinstance(key, str) and "stats" in record:
                    self._entries[key] = record

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, job: Job) -> bool:
        return job.key in self._entries

    def get(self, job: Job) -> RunStats | None:
        """Cached stats for ``job``, counting the lookup as a hit or miss.

        A job with ``verify=True`` only accepts entries that were produced
        under verification: results are identical either way, but a verified
        sweep must actually *run* the golden-memory checks, not inherit a
        green light from an unchecked twin.  (Unverified jobs accept both -
        verified entries carry strictly more assurance.)
        """
        record = self._entries.get(job.key)
        if record is None or (job.verify and not record.get("verified")):
            self.misses += 1
            return None
        self.hits += 1
        return RunStats.from_dict(record["stats"])

    def _append(self, record: dict) -> None:
        """Append one record as a single ``O_APPEND`` write.

        One ``os.write`` on an ``O_APPEND`` descriptor is atomic on POSIX
        local filesystems: concurrent appenders (a serving daemon and a
        sweeping client sharing one cache directory) interleave whole lines,
        never fragments, so no lock file is needed.
        """
        data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        self.directory.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            # Regular-file O_APPEND writes normally complete in one call;
            # loop anyway so a short write (ENOSPC recovery, signal) can
            # never leave a silent fragment for the next appender to
            # concatenate onto.
            view = memoryview(data)
            while view:
                view = view[os.write(fd, view):]
        finally:
            os.close(fd)

    def put(self, job: Job, stats: RunStats | dict) -> None:
        """Persist ``stats`` for ``job`` (appends one JSONL record)."""
        payload = stats.to_dict() if isinstance(stats, RunStats) else stats
        record = {
            "schema": JOB_SCHEMA,
            "key": job.key,
            "verified": job.verify,
            "job": job.to_dict(),
            "stats": payload,
        }
        self._entries[job.key] = record
        self._append(record)
        self.stores += 1

    def merge(self, other: "ResultStore | str | os.PathLike") -> tuple[int, int]:
        """Fold another cache's entries into this log (last-entry-per-key).

        Entries whose key is absent locally - or present with a *different*
        record - are appended here, so replaying the merged log keeps the
        incoming entry (it is last).  Byte-identical entries are skipped.
        Returns ``(merged, skipped)``.
        """
        if not isinstance(other, ResultStore):
            other = ResultStore(other)
        merged = skipped = 0
        for key, record in other._entries.items():
            if self._entries.get(key) == record:
                skipped += 1
                continue
            self._entries[key] = record
            self._append(record)
            merged += 1
        return merged, skipped

    # ------------------------------------------------------------------
    def jobs(self) -> list[dict]:
        """Serialized job descriptions of every cached result (for tooling)."""
        return [record["job"] for record in self._entries.values()]

    def compact(self) -> tuple[int, int]:
        """Rewrite the JSONL log to one line per live key.

        The append-only log accumulates superseded lines over time: repeated
        ``put`` calls for the same key, entries from older schema versions,
        and torn lines from interrupted runs.  Loading already ignores all of
        those, so compaction drops them physically: the log is re-read first
        (picking up results other processes appended since this store
        loaded), then rewritten from the last-entry-per-key map (current
        schema only) via an atomic rename, so a crash mid-compaction can
        never lose the log.  Like every other write, compaction assumes the
        single-writer discipline: another process appending or clearing the
        log *during* the rewrite can have its change overwritten.

        Returns ``(kept, dropped)``: live entries written and physical lines
        removed (0 when compaction only materialized in-memory entries).
        """
        self._load()
        before = 0
        if self.path.exists():
            with self.path.open("r", encoding="utf-8") as fh:
                before = sum(1 for line in fh if line.strip())
        tmp = self.path.with_suffix(".jsonl.tmp")
        self.directory.mkdir(parents=True, exist_ok=True)
        with tmp.open("w", encoding="utf-8") as fh:
            for record in self._entries.values():
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        tmp.replace(self.path)
        return len(self._entries), max(0, before - len(self._entries))

    def clear(self) -> int:
        """Drop all entries (and the backing file); returns entries removed."""
        removed = len(self._entries)
        self._entries.clear()
        if self.path.exists():
            self.path.unlink()
        return removed

    def describe(self) -> str:
        return (
            f"{self.path}: {len(self._entries)} results, "
            f"{self.hits} hits / {self.misses} misses / {self.stores} stores this session"
        )
