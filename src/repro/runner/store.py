"""On-disk, content-addressed result cache for simulation runs.

``ResultStore`` maps :class:`~repro.runner.job.Job` content hashes to fully
serialized :class:`~repro.sim.stats.RunStats`, persisted as JSON-lines under
a cache directory (default ``.repro-cache/``).  Properties:

* **content-addressed** - the key covers every field that can change a
  result, so any config change (a different ``pct``, ``ackwise_pointers``,
  scale, seed...) is automatically a miss, while re-running an identical
  sweep is pure cache hits;
* **append-only JSONL** - one line per result; loading replays the log and
  keeps the last entry per key, so interrupted runs lose at most the line
  being written and concurrent *processes* never corrupt existing data;
* **instrumented** - ``hits``/``misses``/``stores`` counters let callers
  (and the acceptance tests) verify that a warm-cache sweep performed zero
  simulations;
* **schema-versioned** - entries from an incompatible schema are ignored on
  load rather than misinterpreted.

Appends are **multi-writer safe without locking**: each ``put`` is a single
``O_APPEND`` ``os.write`` of one complete JSONL record, which POSIX appends
atomically, so a ``repro serve`` daemon's store and a sweeping client's
store may target the same directory and interleave whole lines, never
fragments.  ``merge`` folds another cache directory's log into this one with
last-entry-per-key semantics (remote hosts ship their ``results.jsonl``
home).  ``compact`` rewrites the whole log and therefore still assumes a
single writer: run it while no sweep or daemon is appending.
"""

from __future__ import annotations

import contextlib
import errno
import json
import os
from pathlib import Path

from repro.common.errors import RunnerError
from repro.faults import FAULTS
from repro.runner.job import JOB_SCHEMA, Job
from repro.sim.stats import RunStats

#: Default cache location, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"
_RESULTS_FILE = "results.jsonl"


class ResultStore:
    """Durable job-hash -> RunStats mapping with hit/miss accounting."""

    def __init__(self, path: str | os.PathLike = DEFAULT_CACHE_DIR) -> None:
        self.directory = Path(path)
        self.path = self.directory / _RESULTS_FILE
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Lines the last :meth:`_load` pass ignored, broken out by cause.
        #: Torn/corrupt lines are expected debris of interrupted writers;
        #: foreign-schema lines are entries from another repo revision.
        #: Both used to vanish silently - now they are counted and surfaced
        #: through ``describe()`` / ``repro cache info``.
        self.skipped_torn = 0
        self.skipped_schema = 0
        self._entries: dict[str, dict] = {}
        self._load()

    @property
    def skipped_lines(self) -> int:
        """Total lines ignored by the last load (torn + foreign-schema)."""
        return self.skipped_torn + self.skipped_schema

    # ------------------------------------------------------------------
    def _load(self) -> None:
        self.skipped_torn = 0
        self.skipped_schema = 0
        if not self.path.exists():
            return
        # errors="replace": a scribbled-over line (crashed writer, bad
        # sector) must count as one torn line below, not abort the whole
        # load with a UnicodeDecodeError.
        with self.path.open("r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    self.skipped_torn += 1  # torn write from an interrupted run
                    continue
                if not isinstance(record, dict):
                    self.skipped_torn += 1
                    continue
                if record.get("schema") != JOB_SCHEMA:
                    self.skipped_schema += 1
                    continue
                key = record.get("key")
                if isinstance(key, str) and "stats" in record:
                    self._entries[key] = record
                else:
                    self.skipped_torn += 1

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, job: Job) -> bool:
        return job.key in self._entries

    def get(self, job: Job) -> RunStats | None:
        """Cached stats for ``job``, counting the lookup as a hit or miss.

        A job with ``verify=True`` only accepts entries that were produced
        under verification: results are identical either way, but a verified
        sweep must actually *run* the golden-memory checks, not inherit a
        green light from an unchecked twin.  (Unverified jobs accept both -
        verified entries carry strictly more assurance.)
        """
        record = self._entries.get(job.key)
        if record is None or (job.verify and not record.get("verified")):
            self.misses += 1
            return None
        self.hits += 1
        return RunStats.from_dict(record["stats"])

    def _append(self, record: dict) -> None:
        """Append one record as a single ``O_APPEND`` write.

        One ``os.write`` on an ``O_APPEND`` descriptor is atomic on POSIX
        local filesystems: concurrent appenders (a serving daemon and a
        sweeping client sharing one cache directory) interleave whole lines,
        never fragments, so no lock file is needed.

        Failpoints (``repro chaos``): ``store.append.disk_full`` raises the
        ``OSError(ENOSPC)`` a full disk would; ``store.append.corrupt``
        scribbles over the head of the record (a full-length non-JSON
        line); ``store.append.torn`` writes only a prefix and stops (a
        writer dying mid-append).  The latter two leave this process's
        in-memory entries intact - they model damage a *future* load must
        survive, which ``_load`` now counts instead of silently eating.
        """
        data = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
        if FAULTS.active:
            if FAULTS.trigger("store.append.disk_full") is not None:
                raise OSError(
                    errno.ENOSPC, f"fault injected: no space left writing {self.path}"
                )
            if FAULTS.trigger("store.append.corrupt") is not None:
                scribble = min(16, len(data) - 1)
                data = b"\xef" * scribble + data[scribble:]
            if FAULTS.trigger("store.append.torn") is not None:
                data = data[: max(1, len(data) // 2)]
        self.directory.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            # Regular-file O_APPEND writes normally complete in one call;
            # loop anyway so a short write (ENOSPC recovery, signal) can
            # never leave a silent fragment for the next appender to
            # concatenate onto.
            view = memoryview(data)
            while view:
                view = view[os.write(fd, view):]
        finally:
            os.close(fd)

    def put(self, job: Job, stats: RunStats | dict) -> None:
        """Persist ``stats`` for ``job`` (appends one JSONL record)."""
        payload = stats.to_dict() if isinstance(stats, RunStats) else stats
        record = {
            "schema": JOB_SCHEMA,
            "key": job.key,
            "verified": job.verify,
            "job": job.to_dict(),
            "stats": payload,
        }
        self._entries[job.key] = record
        self._append(record)
        self.stores += 1

    def merge(self, other: "ResultStore | str | os.PathLike") -> tuple[int, int]:
        """Fold another cache's entries into this log (last-entry-per-key).

        Entries whose key is absent locally - or present with a *different*
        record - are appended here, so replaying the merged log keeps the
        incoming entry (it is last).  Byte-identical entries are skipped.
        Returns ``(merged, skipped)``.
        """
        if not isinstance(other, ResultStore):
            other = ResultStore(other)
        merged = skipped = 0
        for key, record in other._entries.items():
            if self._entries.get(key) == record:
                skipped += 1
                continue
            self._entries[key] = record
            self._append(record)
            merged += 1
        return merged, skipped

    # ------------------------------------------------------------------
    # Writer advisory locks
    # ------------------------------------------------------------------
    def _lock_path(self, pid: int) -> Path:
        return self.directory / f"writer-{pid}.lock"

    @contextlib.contextmanager
    def writer_lock(self):
        """Advertise this process as a live appender for the duration.

        Appends themselves need no lock (single ``O_APPEND`` writes are
        atomic); the lock file exists so whole-log *rewrites* can refuse to
        run concurrently: :meth:`compact` checks for live writers before
        replacing the log.  The file holds the pid, so a lock left behind
        by a crashed writer is recognized as stale and swept away.
        Reentrant per process (the file is simply rewritten).
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self._lock_path(os.getpid())
        path.write_text(f"{os.getpid()}\n", encoding="utf-8")
        try:
            yield self
        finally:
            with contextlib.suppress(OSError):
                path.unlink()

    def live_writers(self) -> list[int]:
        """Pids of *other* processes holding a writer lock (stale ones swept)."""
        pids = []
        for path in sorted(self.directory.glob("writer-*.lock")):
            try:
                pid = int(path.read_text(encoding="utf-8").strip())
            except (OSError, ValueError):
                with contextlib.suppress(OSError):
                    path.unlink()  # unreadable lock: treat as stale debris
                continue
            if pid == os.getpid():
                continue
            if _pid_alive(pid):
                pids.append(pid)
            else:
                with contextlib.suppress(OSError):
                    path.unlink()
        return pids

    # ------------------------------------------------------------------
    def jobs(self) -> list[dict]:
        """Serialized job descriptions of every cached result (for tooling)."""
        return [record["job"] for record in self._entries.values()]

    def compact(self) -> tuple[int, int]:
        """Rewrite the JSONL log to one line per live key.

        The append-only log accumulates superseded lines over time: repeated
        ``put`` calls for the same key, entries from older schema versions,
        and torn lines from interrupted runs.  Loading already ignores all of
        those, so compaction drops them physically: the log is re-read first
        (picking up results other processes appended since this store
        loaded), then rewritten from the last-entry-per-key map (current
        schema only) via an atomic rename, so a crash mid-compaction can
        never lose the log.  Like every other write, compaction assumes the
        single-writer discipline: another process appending or clearing the
        log *during* the rewrite can have its change overwritten.

        Returns ``(kept, dropped)``: live entries written and physical lines
        removed (0 when compaction only materialized in-memory entries).
        """
        writers = self.live_writers()
        if writers:
            raise RunnerError(
                f"cache compact refused: live writer pid(s) "
                f"{', '.join(map(str, writers))} hold {self.directory} "
                f"(a sweep or daemon is appending; retry when it finishes)"
            )
        self._load()
        before = 0
        if self.path.exists():
            with self.path.open("r", encoding="utf-8") as fh:
                before = sum(1 for line in fh if line.strip())
        tmp = self.path.with_suffix(".jsonl.tmp")
        self.directory.mkdir(parents=True, exist_ok=True)
        with tmp.open("w", encoding="utf-8") as fh:
            for record in self._entries.values():
                fh.write(json.dumps(record, sort_keys=True) + "\n")
        tmp.replace(self.path)
        return len(self._entries), max(0, before - len(self._entries))

    def clear(self) -> int:
        """Drop all entries (and the backing file); returns entries removed."""
        removed = len(self._entries)
        self._entries.clear()
        if self.path.exists():
            self.path.unlink()
        return removed

    def describe(self) -> str:
        text = (
            f"{self.path}: {len(self._entries)} results, "
            f"{self.hits} hits / {self.misses} misses / {self.stores} stores this session"
        )
        if self.skipped_lines:
            text += (
                f", {self.skipped_lines} skipped lines "
                f"({self.skipped_torn} torn, {self.skipped_schema} foreign-schema)"
            )
        return text


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for writer-lock staleness checks."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # alive, just not ours
    except OSError:
        return True  # unknowable: refuse to treat as stale
    return True
