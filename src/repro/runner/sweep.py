"""Sweep construction: cartesian (workload x protocol x PCT) job grids.

The paper's evaluation is one big sweep; this module makes "add a config
point" cost one entry in a grid instead of a hand-written loop.  Used by the
``repro sweep`` CLI verb and available as a library API::

    from repro.runner import ParallelRunner, ResultStore, SweepGrid, make_backend

    grid = SweepGrid(workloads=("radix", "tsp"), pcts=(1, 2, 4, 8))
    with ParallelRunner(store=ResultStore(), workers=8) as runner:
        results = runner.run(grid.jobs())

    # or sharded across `repro serve` daemons:
    backend = make_backend("remote", hosts="hostA:8642,hostB:8642")
    with ParallelRunner(store=ResultStore(), backend=backend) as runner:
        results = runner.run(grid.jobs())
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.params import (
    ArchConfig,
    EnergyConfig,
    ProtocolConfig,
    baseline_protocol,
    dls_protocol,
    neat_protocol,
    phase_protocol,
    victim_replication_protocol,
)
from repro.common.statsutil import geomean
from repro.runner.job import Job
from repro.sim.stats import RunStats
from repro.workloads.registry import WORKLOAD_NAMES

#: The Figure-11 PCT grid (the widest sweep in the paper).
FIGURE11_PCTS: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14, 16, 18, 20)

#: Protocol families selectable in a sweep.  "pct" follows the paper's sweep
#: convention (PCT=1 *is* the baseline directory protocol); "adaptive" forces
#: the adaptive protocol even at PCT=1.  "dls", "neat" and "phase" are the
#: related-work comparison baselines (PAPERS.md): each is a single grid
#: point - none has a PCT axis.
PROTOCOL_FAMILIES = ("pct", "adaptive", "baseline", "victim", "dls", "neat", "phase")


def _family_protocols(family: str, pcts: tuple[int, ...]) -> list[ProtocolConfig]:
    if family == "baseline":
        return [baseline_protocol()]
    if family == "victim":
        return [victim_replication_protocol()]
    if family == "dls":
        return [dls_protocol()]
    if family == "neat":
        return [neat_protocol()]
    if family == "phase":
        return [phase_protocol()]
    protos = []
    for pct in pcts:
        if family == "pct" and pct <= 1:
            protos.append(baseline_protocol())
        else:
            protos.append(
                ProtocolConfig(protocol="adaptive", pct=pct, rat_max=max(16, pct))
            )
    return protos


@dataclass(frozen=True)
class SweepGrid:
    """A cartesian sweep: workloads x protocol families x PCT x trace seeds."""

    workloads: tuple[str, ...] = WORKLOAD_NAMES
    families: tuple[str, ...] = ("pct",)
    pcts: tuple[int, ...] = FIGURE11_PCTS
    arch: ArchConfig = field(default_factory=ArchConfig)
    energy: EnergyConfig = field(default_factory=EnergyConfig)
    scale: str = "small"
    warmup: bool = True
    seed: int = 0
    #: Trace-variant axis: each grid point runs ``num_seeds`` trace
    #: realizations (``Job.seed`` = seed .. seed+num_seeds-1), so figure
    #: points can report a confidence spread instead of one sample.
    num_seeds: int = 1
    #: Run every job under golden-memory functional verification (any
    #: coherence violation aborts the sweep with a ``CoherenceError``).
    verify: bool = False

    def __post_init__(self) -> None:
        unknown = set(self.workloads) - set(WORKLOAD_NAMES)
        if unknown:
            raise ConfigError(f"unknown workloads: {sorted(unknown)}")
        bad = set(self.families) - set(PROTOCOL_FAMILIES)
        if bad:
            raise ConfigError(
                f"unknown protocol families: {sorted(bad)} (choose from {PROTOCOL_FAMILIES})"
            )
        if not self.pcts:
            raise ConfigError("sweep needs at least one PCT value")
        if any(pct < 1 for pct in self.pcts):
            raise ConfigError(f"pct values must be >= 1, got {self.pcts}")
        if self.num_seeds < 1:
            raise ConfigError(f"num_seeds must be >= 1, got {self.num_seeds}")

    # ------------------------------------------------------------------
    def protocols(self) -> list[ProtocolConfig]:
        """The protocol axis, deduplicated while preserving order."""
        protos: list[ProtocolConfig] = []
        for family in self.families:
            for proto in _family_protocols(family, self.pcts):
                if proto not in protos:
                    protos.append(proto)
        return protos

    def seeds(self) -> tuple[int, ...]:
        """The trace-variant axis: ``num_seeds`` consecutive seeds."""
        return tuple(range(self.seed, self.seed + self.num_seeds))

    def jobs(self) -> list[Job]:
        """Expand the grid into a job list (workload-major order)."""
        return [
            Job(
                workload=name,
                proto=proto,
                arch=self.arch,
                energy=self.energy,
                scale=self.scale,
                warmup=self.warmup,
                seed=seed,
                verify=self.verify,
            )
            for name in self.workloads
            for proto in self.protocols()
            for seed in self.seeds()
        ]

    def describe(self) -> str:
        n_protos = len(self.protocols())
        n_jobs = len(self.workloads) * n_protos * self.num_seeds
        seeds_note = f" x {self.num_seeds} seeds" if self.num_seeds > 1 else ""
        verify_note = ", golden-verify" if self.verify else ""
        return (
            f"{len(self.workloads)} workloads x {n_protos} protocol points"
            f"{seeds_note} = {n_jobs} jobs "
            f"({self.arch.num_cores} cores, scale={self.scale}{verify_note})"
        )


# ----------------------------------------------------------------------
def sweep_rows(jobs: list[Job], results: list[RunStats]) -> list[dict]:
    """Flatten (job, stats) pairs into table/JSON-ready row dicts."""
    rows = []
    for job, stats in zip(jobs, results):
        rows.append(
            {
                "workload": job.workload,
                "protocol": job.proto.protocol,
                "pct": job.proto.pct,
                "seed": job.seed,
                "completion_time": stats.completion_time,
                "energy": stats.energy.total,
                "l1d_miss_rate": stats.miss.miss_rate,
                "network_flits": stats.network_flits,
                "remote_accesses": stats.remote_accesses,
                "key": job.key,
            }
        )
    return rows


def sweep_table(rows: list[dict]) -> str:
    """Fixed-width text table of sweep rows (one line per job).

    The seed column appears only when the rows span several trace seeds -
    single-seed sweeps (the common case) keep the compact layout.
    """
    with_seeds = len({row["seed"] for row in rows}) > 1
    seed_hdr = f"{'seed':>6}" if with_seeds else ""
    lines = [
        f"{'workload':<15}{'protocol':<10}{'pct':>4}{seed_hdr}{'completion':>14}"
        f"{'energy(nJ)':>12}{'miss%':>7}{'flits':>12}"
    ]
    lines.append("-" * len(lines[0]))
    for row in rows:
        seed_col = f"{row['seed']:>6}" if with_seeds else ""
        lines.append(
            f"{row['workload']:<15}{row['protocol']:<10}{row['pct']:>4}{seed_col}"
            f"{row['completion_time']:>14,.0f}{row['energy'] / 1e3:>12,.1f}"
            f"{100 * row['l1d_miss_rate']:>7.2f}{row['network_flits']:>12,}"
        )
    return "\n".join(lines)


def seed_spread_rows(rows: list[dict]) -> list[dict]:
    """Aggregate per-seed sweep rows into one confidence row per grid point.

    Groups rows by (workload, protocol, pct) across the trace-seed axis and
    reports the geometric-mean completion time and energy plus their
    **spread** - max/min ratio over the seed realizations (1.0 = perfectly
    stable).  This is the ROADMAP "trace-variant confidence intervals" view:
    a figure point is only trustworthy when its spread stays near 1.
    """
    groups: dict[tuple, list[dict]] = {}
    for row in rows:
        groups.setdefault((row["workload"], row["protocol"], row["pct"]), []).append(row)
    out = []
    for (workload, protocol, pct), members in groups.items():
        times = [r["completion_time"] for r in members]
        energies = [r["energy"] for r in members]
        out.append(
            {
                "workload": workload,
                "protocol": protocol,
                "pct": pct,
                "seeds": sorted(r["seed"] for r in members),
                "completion_time_geomean": geomean(times),
                "completion_time_spread": max(times) / min(times),
                "energy_geomean": geomean(energies),
                "energy_spread": max(energies) / min(energies),
            }
        )
    return out


def seed_spread_table(spread: list[dict]) -> str:
    """Fixed-width text table of :func:`seed_spread_rows` output."""
    lines = [
        f"{'workload':<15}{'protocol':<10}{'pct':>4}{'seeds':>7}"
        f"{'T geomean':>14}{'T spread':>10}{'E spread':>10}"
    ]
    lines.append("-" * len(lines[0]))
    for row in spread:
        lines.append(
            f"{row['workload']:<15}{row['protocol']:<10}{row['pct']:>4}"
            f"{len(row['seeds']):>7}{row['completion_time_geomean']:>14,.0f}"
            f"{row['completion_time_spread']:>10.3f}{row['energy_spread']:>10.3f}"
        )
    return "\n".join(lines)


def grid_from_args(
    workloads: tuple[str, ...],
    families: tuple[str, ...],
    pcts: tuple[int, ...],
    num_cores: int,
    scale: str,
    warmup: bool,
    seed: int,
    num_seeds: int = 1,
    verify: bool = False,
) -> SweepGrid:
    """Build a grid from CLI-style arguments, using the benchmark arch.

    Imported lazily from the CLI to keep ``repro.runner`` importable without
    the experiments layer.
    """
    from repro.experiments.harness import bench_arch

    return SweepGrid(
        workloads=workloads,
        families=families,
        pcts=pcts,
        arch=bench_arch(num_cores),
        scale=scale,
        warmup=warmup,
        seed=seed,
        num_seeds=num_seeds,
        verify=verify,
    )


__all__ = [
    "FIGURE11_PCTS",
    "PROTOCOL_FAMILIES",
    "SweepGrid",
    "grid_from_args",
    "seed_spread_rows",
    "seed_spread_table",
    "sweep_rows",
    "sweep_table",
]
