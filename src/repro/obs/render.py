"""Read a telemetry sink and render it for humans (``repro events``).

The sink is append-only JSONL produced by any number of processes (sweep
parent, pool workers, daemons), so rendering is a pure aggregation:

* **span tree** - spans are grouped by their *name path* (the chain of
  ancestor names down to the span), summing counts and durations across
  processes, so eight workers each running ``sim.run > sim.phase.simulate``
  render as one tree row with ``8x`` and the total seconds;
* **counters** - increment records summed per name (label attributes fold
  into the name as ``name{k=v}``), sorted by value;
* **events** - point-in-time records, counted per name with the most
  recent occurrences shown verbatim (a ``remote.requeue`` trail reads like
  a failover log).

Malformed lines (torn writes from a killed worker) and records from other
schema versions are skipped, never fatal - the renderer must work on the
sink of a crashed run, which is exactly when it is needed most.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.common.errors import ReproError
from repro.obs.core import EVENT_SCHEMA


def load_events(path: str | Path) -> list[dict]:
    """Parse one sink file; skips malformed lines and foreign schemas."""
    target = Path(path)
    if not target.exists():
        raise ReproError(f"no telemetry sink at {target}")
    records: list[dict] = []
    with target.open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn write from a dying process
            if not isinstance(record, dict) or record.get("v") != EVENT_SCHEMA:
                continue
            if "kind" not in record or "name" not in record:
                continue
            records.append(record)
    return records


# ----------------------------------------------------------------------
def _span_paths(records: list[dict]) -> dict[tuple[str, ...], list[float]]:
    """Aggregate span records into name-path -> [count, total_duration].

    Parent links are per-process (``(pid, id)`` keyed); a span whose parent
    record is missing (still open when the process died) roots its own
    subtree rather than vanishing.
    """
    spans = {
        (r.get("pid"), r.get("id")): r
        for r in records
        if r.get("kind") == "span" and r.get("id") is not None
    }

    def path_of(record: dict) -> tuple[str, ...]:
        names: list[str] = []
        seen = set()
        node = record
        while node is not None and id(node) not in seen:
            seen.add(id(node))
            names.append(str(node.get("name")))
            node = spans.get((node.get("pid"), node.get("parent")))
        return tuple(reversed(names))

    paths: dict[tuple[str, ...], list[float]] = {}
    for record in spans.values():
        bucket = paths.setdefault(path_of(record), [0, 0.0])
        bucket[0] += 1
        bucket[1] += float(record.get("dur", 0.0))
    return paths


def _counter_totals(records: list[dict]) -> dict[str, int]:
    totals: dict[str, int] = {}
    for record in records:
        if record.get("kind") != "counter":
            continue
        name = str(record["name"])
        attrs = record.get("attrs")
        if attrs:
            labels = ",".join(f"{k}={attrs[k]}" for k in sorted(attrs))
            name = f"{name}{{{labels}}}"
        try:
            value = int(record.get("value", 0))
        except (TypeError, ValueError):
            continue
        totals[name] = totals.get(name, 0) + value
    return totals


def render_events(records: list[dict], limit: int = 20) -> str:
    """The ``repro events`` report: span tree, top counters, recent events."""
    lines: list[str] = []
    pids = {r.get("pid") for r in records if "pid" in r}
    lines.append(f"{len(records)} records from {len(pids)} process(es)")

    paths = _span_paths(records)
    if paths:
        lines.append("")
        lines.append("span tree (count x total seconds, all processes):")
        width = max(2 * (len(p) - 1) + len(p[-1]) for p in paths) + 2
        for path in sorted(paths):
            count, total = paths[path]
            label = "  " * (len(path) - 1) + path[-1]
            lines.append(f"  {label:<{width}} {count:>6}x {total:>10.3f}s")

    counters = _counter_totals(records)
    if counters:
        lines.append("")
        shown = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))[:limit]
        lines.append(f"top counters ({len(shown)} of {len(counters)}):")
        width = max(len(name) for name, _ in shown) + 2
        for name, value in shown:
            lines.append(f"  {name:<{width}} {value}")

    events = [r for r in records if r.get("kind") == "event"]
    if events:
        lines.append("")
        by_name: dict[str, int] = {}
        for record in events:
            by_name[record["name"]] = by_name.get(record["name"], 0) + 1
        summary = ", ".join(f"{name} x{n}" for name, n in sorted(by_name.items()))
        lines.append(f"events: {summary}")
        for record in events[-min(limit, 10):]:
            attrs = record.get("attrs") or {}
            detail = " ".join(f"{k}={attrs[k]}" for k in sorted(attrs))
            lines.append(f"  {record['name']} {detail}".rstrip())
    return "\n".join(lines)


def render_file(path: str | Path, limit: int = 20) -> str:
    """Load + render one sink file (the ``repro events`` verb body)."""
    return render_events(load_events(path), limit=limit)
