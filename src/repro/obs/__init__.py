"""``repro.obs``: structured telemetry for every layer of the repo.

The introspection substrate (DESIGN.md section 10): span timers, monotonic
counters and point events streamed to an append-only JSONL sink, threaded
through the simulator, the mesh, the runner, the execution backends and the
``repro serve`` daemon.  Enable with ``repro sweep --telemetry FILE`` or
``REPRO_TELEMETRY=FILE`` (inherited by spawn-children, so one sink collects
a whole distributed sweep); read with ``repro events FILE``; query a live
daemon with ``repro serve-stats host:port``.

With telemetry disabled every instrumentation site is a single attribute
check and ``RunStats`` stay bit-identical - the neutrality contract the
property suite pins.
"""

from repro.obs.core import (
    EVENT_SCHEMA,
    TELEMETRY,
    TELEMETRY_ENV,
    Telemetry,
    enable_from_env,
)
from repro.obs.render import load_events, render_events, render_file

__all__ = [
    "EVENT_SCHEMA",
    "TELEMETRY",
    "TELEMETRY_ENV",
    "Telemetry",
    "enable_from_env",
    "load_events",
    "render_events",
    "render_file",
]
