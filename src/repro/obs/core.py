"""Telemetry core: spans, monotonic counters, and a JSONL event sink.

One :class:`Telemetry` object owns an event sink (an append-only JSONL
file) and three primitives:

* **spans** - nested wall-clock timers.  ``begin``/``end`` (or the
  ``span(...)`` context manager) emit one ``span`` record per completed
  span carrying its id, parent id, depth and duration, so a renderer can
  rebuild the tree without any in-band nesting markers;
* **counters** - monotonic increments.  ``count(name, value)`` emits an
  increment record; aggregation (summing increments per name across
  processes) happens at read time, so emitters are stateless and a
  ``Pool.terminate``'d worker loses nothing that was already emitted;
* **events** - point-in-time facts with attributes (``remote.requeue``
  with host/attempts/outstanding, for example).

**Disabled-path contract** (pinned by the neutrality property test and the
CI bench gate): instrumentation sites gate on the single attribute check
``TELEMETRY.enabled`` and all per-record hot loops stay untouched - the
simulator emits per *run*, not per access, so ``RunStats`` are bit-identical
and ``repro bench`` throughput is unchanged with telemetry off (and within
2% with it on).

**Multi-process discipline**: every record is serialized to one line and
written with a single ``O_APPEND`` ``os.write`` - the same atomic-append
discipline as :class:`~repro.runner.store.ResultStore` - so a sweep parent,
its spawn-children and a serving daemon may all stream into one sink file.
Records carry ``pid``; span ids are unique per ``(pid, id)``.

A sink failure after enablement (disk full, deleted directory) **disables
telemetry and keeps the run alive**: observability must never turn a
passing sweep into a failing one.
"""

from __future__ import annotations

import contextlib
import itertools
import json
import logging
import os
import threading
import time
from pathlib import Path

from repro.common.errors import ConfigError
from repro.faults import FAULTS

#: Bump when the record grammar changes incompatibly.  Every record carries
#: it as ``"v"``; readers skip records from other schemas.
EVENT_SCHEMA = 1

#: Environment variable that enables telemetry process-wide at import time.
#: Spawn-children (pool workers, daemons started from an enabled parent)
#: inherit it, so one sink file collects a whole distributed sweep.
TELEMETRY_ENV = "REPRO_TELEMETRY"

log = logging.getLogger("repro.obs")

#: Shared no-op context manager returned by :meth:`Telemetry.span` when
#: disabled - allocation-free, so unconditional ``with tel.span(...):``
#: sites off the hot path stay cheap.
_NULL_SPAN = contextlib.nullcontext(0)


class Telemetry:
    """A span/counter/event emitter bound to one JSONL sink.

    The module-level :data:`TELEMETRY` singleton is the instance every
    instrumentation point in the repo consults; constructing private
    instances is supported for tests.
    """

    __slots__ = ("enabled", "path", "_fd", "_ids", "_stack", "_origin")

    def __init__(self) -> None:
        self.enabled = False
        self.path: Path | None = None
        self._fd: int | None = None
        self._ids = itertools.count(1)
        #: Per-thread span stacks: the remote backend emits from its
        #: dispatcher thread while the main thread runs the sweep, and the
        #: two nestings must not interleave.
        self._stack = threading.local()
        self._origin = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self, path: str | os.PathLike) -> None:
        """Start streaming records to ``path`` (append; parents created).

        Raises :class:`~repro.common.errors.ConfigError` when the sink
        cannot be opened (path is a directory, parent is a file, ...):
        a misconfigured sink should fail loudly *before* a long sweep, not
        silently drop its telemetry.
        """
        self.disable()
        target = Path(path)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(target, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        except OSError as exc:
            raise ConfigError(f"cannot open telemetry sink {target}: {exc}") from exc
        self.path = target
        self._fd = fd
        self._origin = time.perf_counter()
        self.enabled = True
        self.emit("meta", "telemetry.enabled")

    def disable(self) -> None:
        """Stop emitting and release the sink (idempotent)."""
        self.enabled = False
        fd, self._fd = self._fd, None
        self.path = None
        self._stack = threading.local()
        if fd is not None:
            with contextlib.suppress(OSError):
                os.close(fd)

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, kind: str, name: str, attrs: dict | None = None, **fields) -> None:
        """Write one record (one atomic JSONL line); never raises.

        A failing sink disables telemetry with a logged warning - the
        simulation result matters more than its observability.
        """
        fd = self._fd
        if fd is None:
            return
        record: dict = {"v": EVENT_SCHEMA, "kind": kind, "name": name,
                        "pid": os.getpid(), "ts": round(time.time(), 6)}
        if fields:
            record.update(fields)
        if attrs:
            record["attrs"] = attrs
        try:
            if FAULTS.active and FAULTS.trigger("obs.sink_dead") is not None:
                # Chaos failpoint: the sink dying mid-run must take the
                # warn-and-self-disable path below, never the sweep.
                raise OSError("fault injected: telemetry sink died")
            data = (json.dumps(record, sort_keys=True, default=str) + "\n").encode("utf-8")
            view = memoryview(data)
            while view:
                view = view[os.write(fd, view):]
        except (OSError, ValueError, TypeError) as exc:
            self.disable()
            log.warning("telemetry sink failed, disabling: %s", exc)

    def count(self, name: str, value: int = 1, **attrs) -> None:
        """Emit a monotonic counter *increment* (aggregated at read time)."""
        self.emit("counter", name, attrs or None, value=value)

    def event(self, name: str, **attrs) -> None:
        """Emit a point-in-time event with attributes."""
        self.emit("event", name, attrs or None)

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def _frames(self) -> list:
        frames = getattr(self._stack, "frames", None)
        if frames is None:
            frames = self._stack.frames = []
        return frames

    def begin(self, name: str, **attrs) -> int:
        """Open a span; returns its id (hand it back to :meth:`end`)."""
        if not self.enabled:
            return 0
        frames = self._frames()
        sid = next(self._ids)
        parent = frames[-1][0] if frames else 0
        frames.append((sid, name, time.perf_counter(), parent, attrs or None))
        return sid

    def end(self, span_id: int, **extra) -> None:
        """Close a span by id; emits its record.

        Robust to mismatched nesting: unknown ids no-op, and closing an
        outer span closes (and emits) abandoned inner spans first, so an
        exception path that skips an ``end`` cannot corrupt later parents.
        """
        if not self.enabled or span_id == 0:
            return
        frames = self._frames()
        while frames:
            sid, name, start, parent, attrs = frames.pop()
            if extra and sid == span_id:
                attrs = {**(attrs or {}), **extra}
            self.emit(
                "span", name, attrs,
                id=sid, parent=parent, depth=len(frames),
                start=round(start - self._origin, 6),
                dur=round(time.perf_counter() - start, 6),
            )
            if sid == span_id:
                return

    def span(self, name: str, **attrs):
        """Context manager over :meth:`begin`/:meth:`end` (exception-safe).

        Disabled telemetry returns a shared no-op context manager, so
        unconditional ``with`` sites cost one attribute check and no
        allocation.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _SpanContext(self, name, attrs)


class _SpanContext:
    """The live ``with tel.span(...)`` object: yields the span id."""

    __slots__ = ("_tel", "_name", "_attrs", "_sid")

    def __init__(self, tel: Telemetry, name: str, attrs: dict) -> None:
        self._tel, self._name, self._attrs = tel, name, attrs

    def __enter__(self) -> int:
        self._sid = self._tel.begin(self._name, **self._attrs)
        return self._sid

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._tel.end(self._sid)
        else:
            self._tel.end(self._sid, error=exc_type.__name__)


def enable_from_env(tel: Telemetry, environ=os.environ) -> bool:
    """Enable ``tel`` from :data:`TELEMETRY_ENV` if set; returns success.

    Import-time hook: a bad sink path logs a warning instead of raising,
    because breaking every ``import repro`` over a typo'd environment
    variable would be worse than losing the telemetry.
    """
    sink = environ.get(TELEMETRY_ENV)
    if not sink:
        return False
    try:
        tel.enable(sink)
        return True
    except ConfigError as exc:
        log.warning("%s ignored: %s", TELEMETRY_ENV, exc)
        return False


#: The process-wide telemetry instance every instrumentation point checks.
TELEMETRY = Telemetry()
enable_from_env(TELEMETRY)
