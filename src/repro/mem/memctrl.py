"""Off-chip memory controller model.

Table 1: 8 controllers, 5 GBps each, 100 ns DRAM latency.  Each controller
is a single-server queue: a request occupies the controller for
``bytes / bandwidth`` cycles (the transfer time) and completes after the
DRAM latency plus transfer time.  The queueing delay incurred under finite
off-chip bandwidth is reported separately because the paper charges it to
the "L2 cache to off-chip memory" latency component.
"""

from __future__ import annotations

from repro.common.params import ArchConfig


class MemoryController:
    """One DRAM channel attached to a mesh tile."""

    def __init__(self, arch: ArchConfig, tile: int) -> None:
        self.arch = arch
        self.tile = tile
        self._next_free = 0.0
        # Statistics.
        self.requests = 0
        self.bytes_transferred = 0
        self.total_queue_delay = 0.0

    def access(self, start: float, nbytes: int) -> tuple[float, float]:
        """Service ``nbytes`` starting no earlier than ``start``.

        Returns ``(finish_time, queue_delay)``.
        """
        service = nbytes / self.arch.dram_bandwidth_bytes_per_cycle
        begin = self._next_free if self._next_free > start else start
        queue_delay = begin - start
        self._next_free = begin + service
        finish = begin + self.arch.dram_latency_cycles + service
        self.requests += 1
        self.bytes_transferred += nbytes
        self.total_queue_delay += queue_delay
        return finish, queue_delay


class MemorySubsystem:
    """The set of memory controllers, indexed by cache-line interleaving."""

    def __init__(self, arch: ArchConfig) -> None:
        self.arch = arch
        self.controllers = {
            tile: MemoryController(arch, tile) for tile in arch.memory_controller_tiles
        }

    def controller_for_line(self, line: int) -> MemoryController:
        return self.controllers[self.arch.controller_for_line(line)]

    @property
    def total_requests(self) -> int:
        return sum(c.requests for c in self.controllers.values())
