"""Golden (reference) memory used by the functional-verification mode.

Graphite, the simulator the paper evaluates on, "requires the memory system
to be functionally correct to complete simulation" (Section 4.1).  We provide
the same property: in verify mode every write updates this golden image at
the moment it is serviced in coherence order, and every read's returned value
is checked against it.  A mismatch means the protocol lost or duplicated data
(e.g. a missing synchronous write-back) and raises ``CoherenceError``.
"""

from __future__ import annotations

from repro.common import addr as addrmod
from repro.common.errors import CoherenceError


class GoldenMemory:
    """Word-granularity reference image of the entire address space."""

    def __init__(self) -> None:
        self._lines: dict[int, list[int]] = {}

    def lines(self) -> list[int]:
        """Line numbers of every line ever written (for final-state sweeps)."""
        return list(self._lines)

    def line_snapshot(self, line: int) -> list[int]:
        """Return a copy of the 8 words of ``line`` (zero-filled if untouched)."""
        words = self._lines.get(line)
        if words is None:
            return [0] * addrmod.WORDS_PER_LINE
        return list(words)

    def write_word(self, line: int, word_index: int, value: int) -> None:
        words = self._lines.get(line)
        if words is None:
            words = [0] * addrmod.WORDS_PER_LINE
            self._lines[line] = words
        words[word_index] = value

    def read_word(self, line: int, word_index: int) -> int:
        words = self._lines.get(line)
        if words is None:
            return 0
        return words[word_index]

    def check_read(self, line: int, word_index: int, observed: int, context: str) -> None:
        """Raise ``CoherenceError`` if ``observed`` differs from the golden value."""
        expected = self.read_word(line, word_index)
        if observed != expected:
            raise CoherenceError(
                f"data-value violation at line {line:#x} word {word_index} "
                f"({context}): observed {observed}, expected {expected}"
            )

    def check_line(self, line: int, observed: list[int], context: str) -> None:
        """Raise ``CoherenceError`` if a written-back line diverged."""
        expected = self.line_snapshot(line)
        if observed != expected:
            raise CoherenceError(
                f"write-back divergence at line {line:#x} ({context}): "
                f"observed {observed}, expected {expected}"
            )
