"""Memory-system substrate: caches, L2 slices, DRAM controllers, golden memory."""

from repro.mem.cache import CacheLine, SetAssocCache
from repro.mem.golden import GoldenMemory
from repro.mem.l1 import L1Cache
from repro.mem.l2 import L2Line, L2Slice
from repro.mem.memctrl import MemoryController, MemorySubsystem

__all__ = [
    "CacheLine",
    "GoldenMemory",
    "L1Cache",
    "L2Line",
    "L2Slice",
    "MemoryController",
    "MemorySubsystem",
    "SetAssocCache",
]
