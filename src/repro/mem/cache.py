"""Generic set-associative cache with LRU replacement.

This is the hot path of the simulator: lines are stored per-set in small
dicts keyed by the *full line number* (the set index is derived from the line
number, so keys never collide across sets) and replacement uses a global
monotonic use-counter per cache, which makes LRU selection an O(associativity)
scan of at most 8 ways.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.common.params import CacheGeometry
from repro.common.types import MESIState


class CacheLine:
    """One L1 line: MESI state + the paper's locality-tracking tag extensions.

    Figure 5: each L1 tag is extended with a private utilization counter and
    (for the Timestamp classification scheme) a last-access timestamp.
    """

    __slots__ = ("state", "last_use", "last_access", "utilization", "data")

    def __init__(self, state: MESIState = MESIState.INVALID) -> None:
        self.state = state
        self.last_use = 0  # LRU replacement counter
        self.last_access = 0.0  # last-access timestamp (Timestamp scheme)
        self.utilization = 0  # private utilization counter
        self.data: list[int] | None = None  # word values (verify mode only)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheLine(state={MESIState(self.state).name}, util={self.utilization}, "
            f"last_use={self.last_use})"
        )


class SetAssocCache:
    """Set-associative cache indexed by line number with LRU replacement.

    ``_observer`` is the membership hook of the compiled scheduler kernel
    (DESIGN.md section 14): while a ``SchedKernel`` mirrors this cache's
    buckets in its native (core, line) map, every resident-set change must
    reach it - ``obs(0, line, entry)`` after an insert (including the
    internal victim eviction, reported first as ``obs(1, victim_line,
    None)``), ``obs(1, line, None)`` for a pop that removed something, and
    ``obs(2, -1, None)`` for a clear.  ``touch`` needs no hook: membership
    is unchanged and the LRU counter is reconciled by the kernel's
    counter-replay flush.  Default None; the attribute test costs one
    class-level lookup on the miss path and nothing on hits.
    """

    _observer = None

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self.num_sets = geometry.num_sets
        self.associativity = geometry.associativity
        self._set_mask = geometry.set_mask
        self._sets: list[dict[int, object]] = [dict() for _ in range(self.num_sets)]
        self._use_counter = 0

    # ------------------------------------------------------------------
    def set_index(self, line: int) -> int:
        return line & self._set_mask

    def get(self, line: int):
        """Return the resident object for ``line`` or None. Does NOT touch LRU."""
        return self._sets[line & self._set_mask].get(line)

    def touch(self, entry) -> None:
        """Mark ``entry`` most-recently-used."""
        self._use_counter += 1
        entry.last_use = self._use_counter

    def has_free_way(self, line: int) -> bool:
        """True if the set that ``line`` maps to has an invalid (free) way."""
        return len(self._sets[line & self._set_mask]) < self.associativity

    def victim(self, line: int) -> tuple[int, object] | None:
        """Return the LRU (line, entry) that would be evicted to make room
        for ``line``, or None if a free way exists."""
        bucket = self._sets[line & self._set_mask]
        if len(bucket) < self.associativity:
            return None
        victim_line = min(bucket, key=lambda ln: bucket[ln].last_use)
        return victim_line, bucket[victim_line]

    def insert(self, line: int, entry) -> tuple[int, object] | None:
        """Insert ``entry`` for ``line``; return the evicted (line, entry) if any.

        The caller is responsible for handling the victim (write-back,
        directory notification) *before* reusing the way; this method simply
        performs the replacement bookkeeping.
        """
        bucket = self._sets[line & self._set_mask]
        evicted = None
        if line not in bucket and len(bucket) >= self.associativity:
            victim_line = min(bucket, key=lambda ln: bucket[ln].last_use)
            evicted = (victim_line, bucket.pop(victim_line))
        self._use_counter += 1
        entry.last_use = self._use_counter
        bucket[line] = entry
        obs = self._observer
        if obs is not None:
            if evicted is not None:
                obs(1, evicted[0], None)
            obs(0, line, entry)
        return evicted

    def pop(self, line: int):
        """Remove and return the entry for ``line`` (None if absent)."""
        entry = self._sets[line & self._set_mask].pop(line, None)
        if entry is not None:
            obs = self._observer
            if obs is not None:
                obs(1, line, None)
        return entry

    def min_last_access(self, line: int) -> float | None:
        """Minimum last-access timestamp over valid lines in ``line``'s set.

        Used by the Timestamp check (Section 3.2): the directory compares the
        home line's last access against this minimum.  Returns None when the
        set has an invalid way, in which case the check trivially passes.
        """
        bucket = self._sets[line & self._set_mask]
        if len(bucket) < self.associativity:
            return None
        return min(entry.last_access for entry in bucket.values())

    def entries_in_set(self, line: int) -> list[tuple[int, object]]:
        """All (line, entry) pairs resident in the set that ``line`` maps to.

        Used by replacement policies that need to choose among a set's ways
        with protocol-specific preferences (e.g. victim replication).
        """
        return list(self._sets[line & self._set_mask].items())

    # ------------------------------------------------------------------
    def lines(self) -> Iterator[tuple[int, object]]:
        """Iterate over all (line, entry) pairs resident in the cache."""
        for bucket in self._sets:
            yield from bucket.items()

    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(bucket) for bucket in self._sets)

    def clear(self) -> None:
        for bucket in self._sets:
            bucket.clear()
        obs = self._observer
        if obs is not None:
            obs(2, -1, None)
