"""Private L1 data cache with the paper's locality-tracking tag extensions.

Responsibilities (Section 3.2 / Figure 5):

* per-line private utilization counter, initialized to 1 on fill and
  incremented on every subsequent hit;
* per-line last-access timestamp (consumed by the Timestamp classification
  scheme at the directory);
* reporting the minimum last-access time of a set and whether the set has an
  invalid way - both are communicated to the home L2 with each miss request;
* returning the final utilization counter when a line is evicted or
  invalidated so the directory can classify the core.
"""

from __future__ import annotations

from repro.common.params import CacheGeometry
from repro.common.types import MESIState
from repro.mem.cache import CacheLine, SetAssocCache


class L1Cache:
    """One core's private L1 (data or instruction) cache."""

    def __init__(self, geometry: CacheGeometry, keep_data: bool = False) -> None:
        self.geometry = geometry
        self.store = SetAssocCache(geometry)
        self.keep_data = keep_data
        # Statistics.
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def lookup(self, line: int) -> CacheLine | None:
        """Return the resident line or None (no LRU/utilization side effects)."""
        return self.store.get(line)

    def hit(self, entry: CacheLine, now: float) -> None:
        """Record a load/store hit: bump LRU, utilization and timestamp.

        The utilization counter is saturating in hardware; we let it grow
        unbounded and clamp at classification time, which is equivalent for
        every PCT <= the saturation value.
        """
        self.hits += 1
        self.store.touch(entry)
        entry.utilization += 1
        entry.last_access = now

    def fill(
        self,
        line: int,
        state: MESIState,
        now: float,
        data: list[int] | None = None,
    ) -> tuple[int, CacheLine] | None:
        """Install ``line`` in ``state``; return the evicted (line, entry) if any.

        Private utilization starts at 1: the access that triggered the fill
        counts as the first use (Section 3.2).
        """
        entry = CacheLine(state)
        entry.utilization = 1
        entry.last_access = now
        if self.keep_data:
            entry.data = list(data) if data is not None else None
        return self.store.insert(line, entry)

    def remove(self, line: int) -> CacheLine | None:
        """Invalidate ``line`` (directory-initiated); return the dead entry."""
        return self.store.pop(line)

    # ------------------------------------------------------------------
    # Hints communicated to the home L2 with each miss (Sections 3.2-3.3).
    # ------------------------------------------------------------------
    def has_invalid_way(self, line: int) -> bool:
        """True if the set ``line`` maps to has a free way (the promotion
        short-cut: filling it cannot pollute the cache)."""
        return self.store.has_free_way(line)

    def min_set_last_access(self, line: int) -> float | None:
        """Minimum last-access time of valid lines in the target set, or
        None when an invalid way exists (Timestamp check trivially true)."""
        return self.store.min_last_access(line)

    # ------------------------------------------------------------------
    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        total = self.accesses
        return self.misses / total if total else 0.0
