"""Shared L2 slice with integrated directory state.

Each tile owns one slice of the logically shared, physically distributed L2
(Section 3.1).  The directory is integrated with the L2 slice by extending
the tag array (Figure 6), so every resident L2 line carries:

* its sharer-tracking directory entry (ACKwise pointers / full map),
* its locality-classifier state (mode, remote utilization, RAT level or
  last-access timestamp, per tracked core),
* a ``busy_until`` reservation implementing the paper's "L2 cache waiting
  time": requests to the same cache line must be serialized to ensure
  memory consistency.
"""

from __future__ import annotations

from repro.common.params import CacheGeometry
from repro.mem.cache import SetAssocCache


class L2Line:
    """One line in an L2 slice plus its integrated directory entry."""

    __slots__ = (
        "last_use",
        "last_access",
        "dirty",
        "dirty_words",
        "data",
        "directory",
        "locality",
        "busy_until",
        "is_replica",
    )

    def __init__(self) -> None:
        self.last_use = 0  # LRU counter
        self.last_access = 0.0  # last-access timestamp (Timestamp scheme)
        self.dirty = False  # needs write-back to memory on eviction
        #: Bitmask of words written *at this slice* by word-granularity
        #: service.  DLS's word-interleaved LLC uses it to write back only
        #: the words this slice is home to (other words of its copy may be
        #: stale replicas of words homed elsewhere).
        self.dirty_words = 0
        self.data: list[int] | None = None  # word values (verify mode)
        self.directory = None  # sharer-tracking entry (set by the directory)
        self.locality = None  # classifier state (set by the classifier)
        self.busy_until = 0.0  # per-line serialization point
        #: Victim-replication: True when this entry is a local *replica* of a
        #: line whose home is another slice (no directory state of its own).
        self.is_replica = False


class L2Slice:
    """One tile's slice of the distributed shared L2 cache."""

    def __init__(self, geometry: CacheGeometry, keep_data: bool = False) -> None:
        self.geometry = geometry
        self.store = SetAssocCache(geometry)
        self.keep_data = keep_data
        # Statistics.
        self.hits = 0
        self.misses = 0
        self.word_reads = 0
        self.word_writes = 0
        self.line_reads = 0
        self.line_writes = 0

    # ------------------------------------------------------------------
    def lookup(self, line: int) -> L2Line | None:
        return self.store.get(line)

    def touch(self, entry: L2Line, now: float) -> None:
        self.store.touch(entry)
        entry.last_access = now

    def fill(self, line: int, now: float, data: list[int] | None = None) -> tuple[int, L2Line] | None:
        """Install ``line``; return the evicted (line, entry) if any.

        The caller must handle the victim *before* the fill logically
        completes: the L2 is inclusive, so evicting an L2 line forces
        invalidation of all its L1 copies (handled by the protocol engine).
        """
        entry = L2Line()
        entry.last_access = now
        if self.keep_data:
            entry.data = list(data) if data is not None else None
        return self.store.insert(line, entry)

    def remove(self, line: int) -> L2Line | None:
        return self.store.pop(line)

    def victim(self, line: int) -> tuple[int, L2Line] | None:
        """Preview the line that a fill would evict (None if a way is free)."""
        return self.store.victim(line)

    # ------------------------------------------------------------------
    @property
    def accesses(self) -> int:
        return self.hits + self.misses
