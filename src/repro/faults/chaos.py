"""The ``repro chaos`` harness: differential sweeps under fault schedules.

Each **cell** of the chaos matrix is one ``(fault, backend)`` pair: a small
sweep grid executed through that backend while a single-fault
:class:`~repro.faults.core.FaultSchedule` is live - in this process for
parent-side failpoints (the store, telemetry), via :data:`FAULTS_ENV` for
spawn pool workers, and via per-subprocess environments for ``repro serve``
daemons (only the *first* daemon of a remote cell carries the schedule, so
multi-host failover has a clean host to fail over to).

Every cell is judged against a fault-free serial reference by the **single
fault invariant** (DESIGN.md section 13): the run must either

* complete with **bit-identical** ``RunStats`` for every job (canonical
  JSON comparison - the exact representation the cache persists), or
* die with a **typed error** (:class:`~repro.common.errors.ReproError`
  subclass or ``OSError``).

Anything else - differing stats, missing jobs, an untyped exception - is a
**silent divergence** and fails the harness.  ``repro chaos`` exits
non-zero if any cell diverges, which is what the CI ``chaos-smoke`` job
asserts.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.common.errors import ConfigError, ReproError, RunnerError
from repro.faults.core import FAULTS, FAULTS_ENV, FaultRule, FaultSchedule
from repro.obs import TELEMETRY
from repro.runner.backends import LocalBackend, ProcessBackend, RemoteBackend
from repro.runner.job import Job
from repro.runner.parallel import ParallelRunner
from repro.runner.store import ResultStore
from repro.runner.sweep import grid_from_args

#: Named single-fault scenarios.  Scopes matter: ``worker`` rules leave the
#: parent's serial-fallback path clean (that is the recovery the watchdog
#: cells prove), ``daemon`` rules fire only inside ``repro serve``.
FAULT_CATALOG: dict[str, tuple[FaultRule, ...]] = {
    "none": (),
    "torn-write": (FaultRule("store.append.torn", hit=1),),
    "corrupt-write": (FaultRule("store.append.corrupt", hit=1),),
    "disk-full": (FaultRule("store.append.disk_full", hit=1),),
    "crash": (FaultRule("worker.crash", scope="worker", hit=1),),
    "hang": (
        FaultRule("worker.hang", scope="worker", hit=1, args={"hang_s": 60.0}),
    ),
    "frame-drop": (FaultRule("daemon.frame_drop", scope="daemon", hit=1),),
    "conn-reset": (FaultRule("daemon.conn_reset", scope="daemon", hit=1),),
    "daemon-kill": (FaultRule("daemon.kill", scope="daemon", hit=1),),
    "stall": (
        FaultRule("daemon.stall", scope="daemon", hit=1, args={"stall_s": 60.0}),
    ),
    # times=0: every process that builds the accelerator fails the build,
    # so spawn workers (fresh imports) all land on the pure-Python fallback.
    "build-fail": (FaultRule("accel.build_fail", times=0),),
    # Site-filtered variants: only the named kernel falls back, the other
    # stays compiled - proving the per-kernel selection seam degrades
    # independently (DESIGN.md section 14).
    "mesh-fallback": (
        FaultRule("accel.build_fail", times=0, args={"kernel": "mesh"}),
    ),
    "sched-fallback": (
        FaultRule("accel.build_fail", times=0, args={"kernel": "sched"}),
    ),
    "sink-dead": (FaultRule("obs.sink_dead", hit=1),),
}

CHAOS_BACKENDS = ("local", "process", "remote")

#: The default single-fault matrix: every fault against the backend whose
#: hardening it exercises.  ``none`` cells prove the harness itself holds
#: bit-identity; remote cells run two daemons with the schedule on daemon 0
#: only, so recovery (not just loud death) is on the table.
DEFAULT_MATRIX: tuple[tuple[str, str], ...] = (
    ("none", "local"),
    ("none", "process"),
    ("none", "remote"),
    ("torn-write", "local"),
    ("corrupt-write", "local"),
    ("disk-full", "local"),
    ("crash", "process"),
    ("hang", "process"),
    ("build-fail", "process"),
    ("mesh-fallback", "process"),
    ("sched-fallback", "process"),
    ("sink-dead", "process"),
    ("crash", "remote"),
    ("frame-drop", "remote"),
    ("conn-reset", "remote"),
    ("daemon-kill", "remote"),
    ("stall", "remote"),
)

#: Chaos workloads: two cheap benchmarks x PCT {1, 4} at tiny scale - four
#: jobs, ~50 ms serially, so the wall clock of a cell is dominated by the
#: recovery machinery under test, not the simulations.
DEFAULT_WORKLOADS = ("radix", "tsp")
DEFAULT_PCTS = (1, 4)

_READY_RE = re.compile(r"listening on ([\d.]+):(\d+)")


def chaos_jobs(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    pcts: Sequence[int] = DEFAULT_PCTS,
    seed: int = 0,
) -> list[Job]:
    """The small differential grid every cell executes."""
    grid = grid_from_args(
        workloads=tuple(workloads),
        families=("pct",),
        pcts=tuple(pcts),
        num_cores=16,
        scale="tiny",
        warmup=False,
        seed=seed,
        num_seeds=1,
        verify=False,
    )
    return list(grid.jobs())


def _canon(stats: dict) -> str:
    """Canonical bytes-on-disk form of one result (the comparison unit)."""
    return json.dumps(stats, sort_keys=True, separators=(",", ":"))


def reference_results(jobs: Sequence[Job]) -> dict[str, str]:
    """Fault-free serial reference: ``job.key -> canonical stats JSON``."""
    if FAULTS.active:
        raise RunnerError("refusing to compute the chaos reference with a "
                          "fault schedule active")
    with ParallelRunner(store=None, backend=LocalBackend()) as runner:
        results = runner.run(list(jobs))
    return {job.key: _canon(stats.to_dict()) for job, stats in zip(jobs, results)}


@dataclass
class CellResult:
    """Outcome of one ``(fault, backend)`` cell."""

    fault: str
    backend: str
    #: "identical" | "typed-error" | "diverged" | "untyped-error"
    outcome: str
    detail: str = ""
    seconds: float = 0.0
    #: Torn/foreign-schema lines the cell's cache reported on reload
    #: (store-fault cells prove the accounting here).
    skipped_lines: int = 0

    @property
    def ok(self) -> bool:
        """The single-fault invariant: identical or loudly, typed, dead."""
        return self.outcome in ("identical", "typed-error")

    def to_dict(self) -> dict:
        return {
            "fault": self.fault,
            "backend": self.backend,
            "outcome": self.outcome,
            "ok": self.ok,
            "detail": self.detail,
            "seconds": round(self.seconds, 3),
            "skipped_lines": self.skipped_lines,
        }


@dataclass
class ChaosReport:
    seed: int
    cells: list[CellResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def table(self) -> str:
        header = f"{'fault':<14} {'backend':<8} {'outcome':<14} {'s':>6}  detail"
        lines = [header, "-" * len(header)]
        for cell in self.cells:
            mark = "" if cell.ok else "  <-- INVARIANT VIOLATION"
            detail = cell.detail
            if cell.skipped_lines:
                detail = (detail + "; " if detail else "") + (
                    f"{cell.skipped_lines} skipped cache line(s)"
                )
            lines.append(
                f"{cell.fault:<14} {cell.backend:<8} {cell.outcome:<14} "
                f"{cell.seconds:>6.1f}  {detail}{mark}"
            )
        verdict = "OK: zero silent divergence" if self.ok else "FAIL: silent divergence"
        lines.append(f"{len(self.cells)} cells, seed {self.seed} - {verdict}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
def _spawn_daemon(env: dict, timeout: float = 30.0):
    """Start one ``repro serve`` subprocess; returns ``(proc, host, port)``."""
    src_dir = str(Path(__file__).resolve().parents[2])
    env = dict(env)
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.runner.cli", "serve",
         "--port", "0", "--workers", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    deadline = time.monotonic() + timeout
    while True:
        line = proc.stdout.readline()
        if not line:
            proc.wait(timeout=5)
            raise RunnerError(
                f"chaos daemon failed to start (exit {proc.returncode})"
            )
        match = _READY_RE.search(line)
        if match:
            return proc, match.group(1), int(match.group(2))
        if time.monotonic() > deadline:
            proc.kill()
            raise RunnerError("chaos daemon never announced readiness")


def _stop_daemon(proc) -> None:
    try:
        proc.terminate()  # SIGTERM: the daemon drains gracefully
        proc.wait(timeout=10)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=10)
    except OSError:
        pass
    finally:
        if proc.stdout is not None:
            proc.stdout.close()


def _run_cell(
    fault: str,
    backend_name: str,
    jobs: Sequence[Job],
    reference: dict[str, str],
    cell_dir: Path,
    seed: int,
    job_timeout: float,
    frame_timeout: float,
) -> CellResult:
    """Execute one matrix cell and judge it against the reference."""
    schedule = FaultSchedule(seed=seed, rules=FAULT_CATALOG[fault])
    cache_dir = cell_dir / "cache"
    daemons = []
    env_was_set = FAULTS_ENV in os.environ
    env_prior = os.environ.get(FAULTS_ENV)
    telemetry_enabled = False
    start = time.perf_counter()
    outcome, detail, results = "identical", "", None
    try:
        if backend_name == "remote":
            # Two daemons; the schedule rides the first one's environment
            # only, so the second is the clean host failover can reach.
            for index in range(2):
                env = dict(os.environ)
                env.pop(FAULTS_ENV, None)
                if index == 0 and schedule.rules:
                    env[FAULTS_ENV] = schedule.to_env()
                daemons.append(_spawn_daemon(env))
            backend = RemoteBackend(
                hosts=tuple((host, port) for _proc, host, port in daemons),
                window=2,
                connect_retries=3,
                retry_delay=0.1,
                retry_max_delay=1.0,
                frame_timeout=frame_timeout,
            )
        else:
            # Parent-side (and, via the environment, spawn-worker-side)
            # activation; role stays "parent" so worker-scoped rules
            # cannot fire in this process.
            if schedule.rules:
                os.environ[FAULTS_ENV] = schedule.to_env()
                FAULTS.activate(schedule)
            if backend_name == "process":
                backend = ProcessBackend(workers=2, job_timeout=job_timeout)
            else:
                backend = LocalBackend()
        if fault == "sink-dead":
            TELEMETRY.enable(str(cell_dir / "telemetry.jsonl"))
            telemetry_enabled = True
        store = ResultStore(str(cache_dir))
        with ParallelRunner(store=store, backend=backend) as runner:
            results = runner.run(list(jobs))
    except (ReproError, OSError) as exc:
        outcome = "typed-error"
        detail = f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # noqa: BLE001 - untyped escape IS the finding
        outcome = "untyped-error"
        detail = f"{type(exc).__name__}: {exc}"
    finally:
        FAULTS.deactivate()
        if env_was_set:
            os.environ[FAULTS_ENV] = env_prior
        else:
            os.environ.pop(FAULTS_ENV, None)
        if telemetry_enabled:
            TELEMETRY.disable()
        for proc, _host, _port in daemons:
            _stop_daemon(proc)

    if results is not None:
        mismatched = []
        for job, stats in zip(jobs, results):
            if _canon(stats.to_dict()) != reference[job.key]:
                mismatched.append(job.describe())
        if mismatched:
            outcome = "diverged"
            detail = f"stats differ from serial reference: {mismatched}"
        else:
            detail = f"{len(jobs)} jobs bit-identical"

    skipped = 0
    if cache_dir.exists():
        # A fresh store replays the log at construction, so its skip
        # counters reflect exactly what the cell's faults left behind.
        skipped = ResultStore(str(cache_dir)).skipped_lines
    if len(detail) > 160:
        detail = detail[:157] + "..."
    return CellResult(
        fault=fault,
        backend=backend_name,
        outcome=outcome,
        detail=detail,
        seconds=time.perf_counter() - start,
        skipped_lines=skipped,
    )


# ----------------------------------------------------------------------
def run_chaos(
    seed: int = 0,
    faults: Sequence[str] | None = None,
    backends: Sequence[str] | None = None,
    matrix: Sequence[tuple[str, str]] | None = None,
    job_timeout: float = 1.5,
    frame_timeout: float = 1.5,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    progress: Callable[[str, str], None] | None = None,
) -> ChaosReport:
    """Run the chaos matrix; the report carries one judged cell per pair.

    ``faults``/``backends`` filter the matrix (unknown names raise
    :class:`~repro.common.errors.ConfigError` - a typo'd chaos run must
    not silently test nothing).
    """
    for name in faults or ():
        if name not in FAULT_CATALOG:
            raise ConfigError(
                f"unknown fault {name!r} (known: {', '.join(sorted(FAULT_CATALOG))})"
            )
    for name in backends or ():
        if name not in CHAOS_BACKENDS:
            raise ConfigError(
                f"unknown chaos backend {name!r} (known: {CHAOS_BACKENDS})"
            )
    cells = [
        (fault, backend)
        for fault, backend in (matrix if matrix is not None else DEFAULT_MATRIX)
        if (faults is None or fault in faults)
        and (backends is None or backend in backends)
    ]
    if not cells:
        raise ConfigError("chaos matrix is empty after filtering")

    jobs = chaos_jobs(workloads=workloads)
    reference = reference_results(jobs)
    report = ChaosReport(seed=seed)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        root = Path(tmp)
        for index, (fault, backend) in enumerate(cells):
            if progress is not None:
                progress(fault, backend)
            cell_dir = root / f"cell-{index:02d}-{fault}-{backend}"
            cell_dir.mkdir()
            report.cells.append(
                _run_cell(
                    fault, backend, jobs, reference, cell_dir,
                    seed, job_timeout, frame_timeout,
                )
            )
    return report
