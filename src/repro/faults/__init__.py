"""Deterministic fault injection for the execution tier (DESIGN.md sec. 13).

``repro.faults`` provides named failpoints threaded through the result
store, the execution backends, the ``repro serve`` daemon, the accelerator
build and the telemetry sink, driven by a seeded :class:`FaultSchedule`
that child processes inherit through the :data:`FAULTS_ENV` environment
variable.  ``repro chaos`` (:mod:`repro.faults.chaos`) runs a differential
sweep under a single-fault matrix and checks the tier's core invariant:

    any single infrastructure fault yields either ``RunStats`` bit-identical
    to a fault-free serial reference, or a loud typed error -
    never silent wrong data.
"""

from repro.faults.core import (
    FAILPOINTS,
    FAULTS,
    FAULTS_ENV,
    ROLES,
    FaultInjector,
    FaultRule,
    FaultSchedule,
    activate_from_env,
)

__all__ = [
    "FAILPOINTS",
    "FAULTS",
    "FAULTS_ENV",
    "ROLES",
    "FaultInjector",
    "FaultRule",
    "FaultSchedule",
    "activate_from_env",
]
