"""Deterministic fault injection: failpoints, schedules, and the injector.

The exhaustive-interleaving tier (DESIGN.md section 11) proved that
*systematic* exploration finds bugs random testing misses.  This module
applies the same philosophy to the infrastructure layer: instead of waiting
for a daemon to die or a disk to fill in production, every failure mode the
execution tier claims to survive is a **named failpoint** that a seeded
:class:`FaultSchedule` can trigger on demand, deterministically.

Three pieces:

* the **failpoint registry** (:data:`FAILPOINTS`) - the closed set of sites
  threaded through the store, the backends, the daemon, the accelerator
  build and the telemetry sink.  Schedules referencing unknown points are
  rejected up front (a typo'd chaos run must not silently test nothing);
* a :class:`FaultSchedule` - ``seed`` plus per-failpoint :class:`FaultRule`
  trigger rules.  Serialized as compact JSON into the :data:`FAULTS_ENV`
  environment variable, so spawn workers and daemon subprocesses inherit
  the exact schedule their parent runs under;
* the :class:`FaultInjector` singleton (:data:`FAULTS`).  Sites call
  ``FAULTS.trigger("point.name")``; the injector counts the hit (per
  process, per point) and returns the matching rule when it fires, else
  ``None``.  The disabled path is one attribute check - with no schedule
  active, production code pays nothing measurable.

**Determinism contract**: a rule fires as a pure function of (schedule
seed, failpoint name, per-process hit index, process role).  No wall
clock, no PRNG state, no PID enters the decision, so two runs of the same
sweep under the same schedule inject faults at exactly the same points -
which is what lets ``repro chaos`` compare a faulted run bit-for-bit
against a clean reference.

The injector *decides*; each site *acts* (truncate the write, ``os._exit``,
drop the reply frame...).  Sites own their failure semantics because the
interesting part of a fault is what the surrounding code does next.
"""

from __future__ import annotations

import json
import logging
import os
import random
import threading
from dataclasses import dataclass, field

from repro.common.errors import ConfigError

#: Environment variable carrying a serialized schedule.  Parsed at import,
#: so spawn children (pool workers, ``repro serve`` subprocesses) inherit
#: their parent's schedule with fresh per-process hit counters.
FAULTS_ENV = "REPRO_FAULTS"

log = logging.getLogger("repro.faults")

#: The closed registry of injectable sites.  Adding a failpoint means
#: adding its site code AND its row here; schedules naming anything else
#: raise :class:`~repro.common.errors.ConfigError`.
FAILPOINTS: dict[str, str] = {
    "store.append.torn": (
        "ResultStore._append writes only a prefix of the record and stops "
        "(a writer dying mid-append); the log gains one torn line"
    ),
    "store.append.disk_full": (
        "ResultStore._append raises OSError(ENOSPC) before writing"
    ),
    "store.append.corrupt": (
        "ResultStore._append scribbles over the head of the record; the "
        "log gains one full-length non-JSON line"
    ),
    "worker.crash": (
        "run_task os._exit()s before executing the job (a worker process "
        "crashing mid-job); arg exit_code (default 3)"
    ),
    "worker.hang": (
        "run_task sleeps before executing the job (a hung worker); arg "
        "hang_s (default 3600)"
    ),
    "daemon.frame_drop": (
        "Daemon completes a job but severs the connection instead of "
        "writing the result frame"
    ),
    "daemon.conn_reset": (
        "Daemon resets the client connection right after reading a frame "
        "(mid-batch connection reset)"
    ),
    "daemon.kill": (
        "Daemon process os._exit()s between frames (never inject into an "
        "in-process daemon: it kills the host process); arg exit_code "
        "(default 9)"
    ),
    "daemon.stall": (
        "Daemon sleeps before replying to a job (a slow host); arg "
        "stall_s (default 5.0)"
    ),
    "accel.build_fail": (
        "accel kernel build/selection fails; the affected kernels fall "
        "back to pure Python.  Site arg kernel: 'build' at build_artifact "
        "(both kernels fall back), 'mesh' / 'sched' at per-kernel "
        "selection - a rule with args={'kernel': 'sched'} forces only the "
        "scheduler kernel's fallback"
    ),
    "obs.sink_dead": (
        "Telemetry.emit raises OSError mid-run; telemetry self-disables "
        "and the run continues"
    ),
}

#: Process roles a rule may scope itself to.  ``parent`` is the default
#: role of any process; ``ProcessBackend`` pool initializers switch their
#: workers to ``worker``; ``serve_forever`` switches daemons to ``daemon``
#: (a daemon's own pool workers are ``worker`` again).
ROLES = ("any", "parent", "worker", "daemon")


@dataclass(frozen=True)
class FaultRule:
    """When one failpoint fires.

    Counting rules (the default, fully deterministic): the rule fires on
    per-process hit indexes ``hit <= n < hit + times`` (1-based; ``times
    <= 0`` means every hit from ``hit`` on).  Probabilistic rules set
    ``p``: each hit fires iff ``Random(f"{seed}:{point}:{n}")`` draws
    below ``p`` - still deterministic given the schedule seed and the hit
    index, just shaped like a failure rate; ``times`` caps total fires.
    """

    point: str
    scope: str = "any"
    hit: int = 1
    times: int = 1
    p: float | None = None
    args: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.point not in FAILPOINTS:
            known = ", ".join(sorted(FAILPOINTS))
            raise ConfigError(f"unknown failpoint {self.point!r} (known: {known})")
        if self.scope not in ROLES:
            raise ConfigError(f"fault scope must be one of {ROLES}, got {self.scope!r}")
        if self.hit < 1:
            raise ConfigError(f"fault hit index is 1-based, got {self.hit}")
        if self.p is not None and not 0.0 <= self.p <= 1.0:
            raise ConfigError(f"fault probability must be in [0, 1], got {self.p}")

    def arg(self, name: str, default):
        """Site-specific parameter (``stall_s``, ``exit_code``...)."""
        return self.args.get(name, default)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out: dict = {"point": self.point}
        if self.scope != "any":
            out["scope"] = self.scope
        if self.hit != 1:
            out["hit"] = self.hit
        if self.times != 1:
            out["times"] = self.times
        if self.p is not None:
            out["p"] = self.p
        if self.args:
            out["args"] = dict(self.args)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultRule":
        if not isinstance(data, dict) or "point" not in data:
            raise ConfigError(f"a fault rule needs at least a 'point': {data!r}")
        unknown = set(data) - {"point", "scope", "hit", "times", "p", "args"}
        if unknown:
            raise ConfigError(f"unknown fault rule keys {sorted(unknown)} in {data!r}")
        try:
            return cls(
                point=data["point"],
                scope=data.get("scope", "any"),
                hit=int(data.get("hit", 1)),
                times=int(data.get("times", 1)),
                p=None if data.get("p") is None else float(data["p"]),
                args=dict(data.get("args") or {}),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"malformed fault rule {data!r}: {exc}") from None


@dataclass(frozen=True)
class FaultSchedule:
    """A seed plus the rules it drives - one chaos scenario, serializable."""

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"seed": self.seed, "rules": [rule.to_dict() for rule in self.rules]}

    def to_env(self) -> str:
        """The compact JSON value :data:`FAULTS_ENV` carries to children."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_spec(cls, spec: "str | dict | FaultSchedule") -> "FaultSchedule":
        """Parse a schedule from JSON text or a dict; validates every rule."""
        if isinstance(spec, FaultSchedule):
            return spec
        if isinstance(spec, str):
            try:
                spec = json.loads(spec)
            except json.JSONDecodeError as exc:
                raise ConfigError(f"fault schedule is not valid JSON: {exc}") from None
        if not isinstance(spec, dict):
            raise ConfigError(f"fault schedule must be a JSON object, got {spec!r}")
        unknown = set(spec) - {"seed", "rules"}
        if unknown:
            raise ConfigError(f"unknown fault schedule keys {sorted(unknown)}")
        rules = spec.get("rules", [])
        if not isinstance(rules, (list, tuple)):
            raise ConfigError(f"fault schedule 'rules' must be a list, got {rules!r}")
        try:
            seed = int(spec.get("seed", 0))
        except (TypeError, ValueError):
            raise ConfigError(f"fault schedule seed must be an int, got {spec.get('seed')!r}") from None
        return cls(seed=seed, rules=tuple(FaultRule.from_dict(r) for r in rules))


class FaultInjector:
    """The process-wide decision engine every failpoint site consults.

    Hit counters are per (process, failpoint) and reset on every
    :meth:`activate`, so a schedule means the same thing in the sweep
    parent, each spawn worker, and each daemon - modulo the role filter.
    """

    __slots__ = ("role", "_schedule", "_rules", "_hits", "_fired", "_lock")

    def __init__(self) -> None:
        self.role = "parent"
        self._schedule: FaultSchedule | None = None
        self._rules: dict[str, tuple[FaultRule, ...]] = {}
        self._hits: dict[str, int] = {}
        self._fired: dict[int, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        return self._schedule is not None

    @property
    def schedule(self) -> FaultSchedule | None:
        return self._schedule

    def activate(self, schedule: "FaultSchedule | str | dict", role: str | None = None) -> None:
        """Install ``schedule`` (parsed/validated) with fresh hit counters."""
        schedule = FaultSchedule.from_spec(schedule)
        with self._lock:
            self._schedule = schedule
            rules: dict[str, list[FaultRule]] = {}
            for rule in schedule.rules:
                rules.setdefault(rule.point, []).append(rule)
            self._rules = {point: tuple(rs) for point, rs in rules.items()}
            self._hits = {}
            self._fired = {}
            if role is not None:
                self.role = role

    def deactivate(self) -> None:
        """Drop the schedule (counters included); idempotent."""
        with self._lock:
            self._schedule = None
            self._rules = {}
            self._hits = {}
            self._fired = {}

    def hits(self, point: str) -> int:
        """Per-process hit count of ``point`` under the active schedule."""
        return self._hits.get(point, 0)

    # ------------------------------------------------------------------
    def trigger(self, point: str, **site) -> FaultRule | None:
        """Count one hit of ``point``; the firing rule, or ``None``.

        ``site`` identifies *which* instance of the failpoint is consulting
        the injector (e.g. ``accel.build_fail`` passes ``kernel="mesh"``):
        a rule skips any site that names one of its ``args`` keys with a
        different value, so ``args={"kernel": "sched"}`` fires only at the
        scheduler kernel's gate while arg-less rules keep matching every
        site.  Rule args unknown to the site remain payload (``stall_s``).

        The hot-path contract mirrors telemetry's: with no schedule active
        this is one attribute check and an immediate return, so threaded
        failpoints cost nothing in production runs.
        """
        if self._schedule is None:
            return None
        firing = None
        with self._lock:
            rules = self._rules.get(point)
            if not rules:
                return None
            n = self._hits.get(point, 0) + 1
            self._hits[point] = n
            for rule in rules:
                if rule.scope != "any" and rule.scope != self.role:
                    continue
                if site and any(
                    key in rule.args and rule.args[key] != value
                    for key, value in site.items()
                ):
                    continue
                if not self._fires(rule, n):
                    continue
                fired = self._fired.get(id(rule), 0)
                if rule.times > 0 and fired >= rule.times:
                    continue
                self._fired[id(rule)] = fired + 1
                firing = rule
                break
        if firing is not None:
            # Outside the lock: reporting goes through the telemetry sink,
            # whose emit path contains a failpoint of its own - re-entering
            # trigger() must not deadlock on the injector lock.
            self._report(firing, n)
        return firing

    def _fires(self, rule: FaultRule, n: int) -> bool:
        if rule.p is not None:
            draw = random.Random(f"{self._schedule.seed}:{rule.point}:{n}").random()
            return draw < rule.p
        if n < rule.hit:
            return False
        return rule.times <= 0 or n < rule.hit + rule.times

    def _report(self, rule: FaultRule, n: int) -> None:
        """One log line + one telemetry event per injection (never raises)."""
        log.warning("fault injected: %s (hit %d, role %s)", rule.point, n, self.role)
        if rule.point.startswith("obs."):
            return  # the sink is the thing being killed; don't re-enter it
        try:
            from repro.obs import TELEMETRY

            if TELEMETRY.enabled:
                TELEMETRY.event(
                    "fault.injected", point=rule.point, hit=n, role=self.role
                )
        except Exception:  # a broken sink must not change injection behavior
            pass


def activate_from_env(injector: "FaultInjector", environ=os.environ) -> bool:
    """Install the :data:`FAULTS_ENV` schedule if present; returns success.

    Import-time hook (the spawn-worker/daemon inheritance path): a
    malformed value logs a warning instead of raising, because breaking
    every ``import repro`` over a typo'd environment variable would be
    worse than losing the injection.  Interactive activation - ``repro
    chaos`` building schedules programmatically - goes through
    :meth:`FaultInjector.activate`, which does raise.
    """
    spec = environ.get(FAULTS_ENV)
    if not spec:
        return False
    try:
        injector.activate(spec)
        return True
    except ConfigError as exc:
        log.warning("%s ignored: %s", FAULTS_ENV, exc)
        return False


#: The process-wide injector every failpoint site consults.
FAULTS = FaultInjector()
activate_from_env(FAULTS)
