"""Verification tiers beyond the per-run golden memory checks.

``repro.verify.exhaustive`` is the model-checking-style tier below the
random-trace differential harness: it enumerates *all* interleavings of tiny
two-core traces and replays every one through every protocol family under
golden-memory verification.  See DESIGN.md section 11.
"""

from repro.verify.exhaustive import (
    DEFAULT_FAMILIES,
    SCENARIOS,
    TEMPLATES,
    ExhaustiveReport,
    Template,
    Violation,
    enumerate_interleavings,
    format_steps,
    run_exhaustive,
)

__all__ = [
    "DEFAULT_FAMILIES",
    "ExhaustiveReport",
    "SCENARIOS",
    "TEMPLATES",
    "Template",
    "Violation",
    "enumerate_interleavings",
    "format_steps",
    "run_exhaustive",
]
