"""Exhaustive small-state model checking of the protocol families.

The random-trace differential harness (``tests/properties``) samples seeded
traces; ordering bugs that need one specific interleaving can survive it
indefinitely.  This tier closes that gap for a bounded state space, the way
the guarded-action-language / lazy-coherence-verification lines of work
(PAPERS.md: arXiv 1803.10323, 1705.08262) do with state-space enumeration:

* **Templates**: tiny two-core programs (2 cores x 2 lines x <= 6 ops per
  core) drawn from read / write / unlock(release) / barrier ops, curated to
  stress the coherence paths (write handoff, upgrade races, dirty L1
  conflicts, release batching, L2 thrash, migratory sharing).
* **Enumeration**: *every* feasible interleaving of the two per-core
  programs, via DFS with canonical-order pruning (DESIGN.md section 11):
  barrier-infeasible branches are never entered, forced moves do not
  branch, and inert release placements are excluded at the template level.
* **Replay**: each interleaving runs through every protocol family as a
  verify-mode engine-level simulation - every read is checked against the
  golden memory at service time, ``check_final_state`` sweeps the final
  image, and the per-family golden/observable images are compared across
  families (all families see the identical access order, so their golden
  images must be bit-identical).
* **Minimization**: a failing interleaving is delta-debugged - ops are
  greedily dropped while the failure persists - so a violation is reported
  as the smallest trace that still reproduces it.

Templates keep one writer per (line, word) across cores (both cores may
write the same *line*, on disjoint words).  Racy same-word writes are
excluded by construction: under release-style families (Neat's batching)
the globally visible order of two racing writes is defined by the release
order, not the access order, so cross-family final-image equality is only
a theorem for single-writer-per-word traces - the same convention the
trace-level differential harness uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import addr as addrmod
from repro.common.errors import ConfigError, ReproError
from repro.common.params import (
    ArchConfig,
    CacheGeometry,
    ProtocolConfig,
    baseline_protocol,
    dls_protocol,
    neat_protocol,
    phase_protocol,
    victim_replication_protocol,
)
from repro.protocol.engine import make_engine

#: One template op: (kind, line index 0/1, word index 0..7).  Kinds:
#: "R" read, "W" write, "U" unlock (release boundary), "B" barrier
#: (arrival is a release boundary; ops after it wait for the other core).
Op = tuple[str, int, int]

#: One replay step: (core, kind, line index, word index).
Step = tuple[int, str, int, int]

_OP_KINDS = ("R", "W", "U", "B")
_ACTIVE_CORES = 2
_MAX_OPS_PER_CORE = 6

#: Default engine configurations: the six protocol families, with Neat
#: additionally covered in both self-downgrade modes (the release-batching
#: path has its own flush machinery worth enumerating).
DEFAULT_FAMILIES: tuple[tuple[str, ProtocolConfig], ...] = (
    ("baseline", baseline_protocol()),
    ("adaptive", ProtocolConfig(protocol="adaptive", pct=4)),
    ("victim", victim_replication_protocol()),
    ("dls", dls_protocol()),
    ("neat", neat_protocol()),
    ("neat-release", neat_protocol("release")),
    ("phase", phase_protocol()),
)


# ----------------------------------------------------------------------
# Scenarios: tiny machine shapes x line placements.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """One (machine shape, line placement) the templates replay on."""

    name: str
    arch: ArchConfig
    #: Concrete line numbers the template's line indices 0/1 map to.
    lines: tuple[int, int]


def _arch(l2: CacheGeometry) -> ArchConfig:
    # Direct-mapped 1KB L1-D (16 sets): lines 16 apart collide in one L1
    # set, so dirty-eviction / early-flush paths are reachable with only
    # two lines.  num_cores=4 is the smallest legal mesh; cores 0 and 1
    # are the active pair.
    return ArchConfig(
        num_cores=4,
        num_memory_controllers=2,
        l1d=CacheGeometry(1, 1, 1),
        l2=l2,
    )


#: The three standard scenarios.  Lines 3/19 share L1 set 3 (and L2 set 3);
#: lines 3/4 are set-disjoint; the "l2-thrash" scenario shrinks the L2 to
#: one way so the two conflicting lines also evict each other at the home,
#: exercising L2 write-back, inclusion purges and DLS dirty-word merges.
SCENARIOS: tuple[Scenario, ...] = (
    Scenario("l1-conflict", _arch(CacheGeometry(2, 2, 7)), (3, 19)),
    Scenario("disjoint", _arch(CacheGeometry(2, 2, 7)), (3, 4)),
    Scenario("l2-thrash", _arch(CacheGeometry(1, 1, 7)), (3, 19)),
)


# ----------------------------------------------------------------------
# Templates.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Template:
    """A two-core program pair over line indices 0/1."""

    name: str
    core0: tuple[Op, ...]
    core1: tuple[Op, ...]

    def __post_init__(self) -> None:
        writers: dict[tuple[int, int], int] = {}
        barriers = []
        for core, prog in enumerate((self.core0, self.core1)):
            if len(prog) > _MAX_OPS_PER_CORE:
                raise ConfigError(
                    f"template {self.name!r}: core{core} has {len(prog)} ops "
                    f"(max {_MAX_OPS_PER_CORE})"
                )
            count = 0
            prev_kind = None
            for index, (kind, line, word) in enumerate(prog):
                if kind not in _OP_KINDS:
                    raise ConfigError(f"template {self.name!r}: bad op kind {kind!r}")
                if kind in ("R", "W") and not (0 <= line <= 1 and 0 <= word <= 7):
                    raise ConfigError(
                        f"template {self.name!r}: op {kind}({line},{word}) out of range"
                    )
                if kind == "B":
                    count += 1
                if kind == "U":
                    # Canonical-order pruning at the template level: a
                    # release with nothing before it, right after another
                    # release, or as the final op (end-of-trace is already
                    # a release) is inert in every family - enumerate only
                    # placements that can matter.
                    if index == 0 or prev_kind == "U" or index == len(prog) - 1:
                        raise ConfigError(
                            f"template {self.name!r}: inert release placement "
                            f"at core{core} op {index}"
                        )
                if kind == "W":
                    owner = writers.setdefault((line, word), core)
                    if owner != core:
                        raise ConfigError(
                            f"template {self.name!r}: ({line},{word}) written "
                            f"by both cores (single-writer-per-word required)"
                        )
                prev_kind = kind
            barriers.append(count)
        if barriers[0] != barriers[1]:
            raise ConfigError(
                f"template {self.name!r}: unbalanced barriers {barriers}"
            )

    @property
    def max_ops(self) -> int:
        return max(len(self.core0), len(self.core1))


def _w(line: int, word: int) -> Op:
    return ("W", line, word)


def _r(line: int, word: int) -> Op:
    return ("R", line, word)


_U: Op = ("U", 0, 0)
_B: Op = ("B", 0, 0)

#: Word-ownership convention: core 0 writes words 0/1, core 1 words 4/5.
TEMPLATES: tuple[Template, ...] = (
    # Write handoff through a release: the minimal producer/consumer.
    Template("wr-handoff", (_w(0, 0), _U, _r(0, 0)), (_r(0, 0),)),
    # Both cores write disjoint words of one line and read each other's.
    Template(
        "word-ping-pong",
        (_w(0, 0), _r(0, 4), _w(0, 1)),
        (_w(0, 4), _r(0, 0), _w(0, 5)),
    ),
    # Producer/consumer in both directions across a barrier.
    Template(
        "barrier-exchange",
        (_w(0, 0), _B, _r(0, 4)),
        (_w(0, 4), _B, _r(0, 0)),
    ),
    # Dirty L1 conflict: the second line evicts the first (MODIFIED) one
    # in the l1-conflict/l2-thrash scenarios, then the line returns.
    Template(
        "dirty-evict-return",
        (_w(0, 0), _w(1, 1), _r(0, 0)),
        (_r(0, 0), _r(1, 1)),
    ),
    # Two read-then-write cores racing for the upgrade.
    Template(
        "upgrade-race",
        (_r(0, 0), _w(0, 0)),
        (_r(0, 4), _w(0, 4)),
    ),
    # Release batching across two lines with an eviction in between: the
    # early (eviction-triggered) flush and the release batch must not
    # double-flush (the Neat release audit, ISSUE 7 satellite).
    Template(
        "release-early-flush",
        (_w(0, 0), _w(0, 1), _w(1, 0), _U, _r(0, 0)),
        (_r(0, 1), _r(1, 0)),
    ),
    # Interleaved writes with releases between them.
    Template(
        "write-release-write",
        (_w(0, 0), _U, _w(0, 1)),
        (_w(0, 4), _U, _w(0, 5)),
    ),
    # Read-shared line promoted by a write: the invalidation round hits
    # every reader.
    Template(
        "readers-then-writer",
        (_r(0, 0), _r(0, 1), _w(0, 0)),
        (_r(0, 0), _r(0, 1)),
    ),
    # Migratory sharing: each core reads the other's word then writes its
    # own, twice around.
    Template(
        "migratory",
        (_r(0, 4), _w(0, 0), _r(0, 5)),
        (_r(0, 0), _w(0, 4), _w(0, 5)),
    ),
    # Disjoint words dirtied by both cores on both lines; the l2-thrash
    # scenario forces home-slice evictions in opposite orders (the DLS
    # dirty-word write-back audit, ISSUE 7 satellite).
    Template(
        "disjoint-dirty-evict",
        (_w(0, 0), _w(1, 1), _r(1, 1)),
        (_w(0, 4), _w(1, 5), _r(0, 0)),
    ),
    # Two barrier phases: write, exchange, write the other line, exchange.
    Template(
        "double-barrier",
        (_w(0, 0), _B, _r(0, 4), _B, _w(1, 0)),
        (_w(0, 4), _B, _r(0, 0), _B, _r(1, 0)),
    ),
    # No writes at all: pure sharing, every value stays zero.
    Template(
        "pure-readers",
        (_r(0, 0), _r(1, 0), _r(0, 1)),
        (_r(0, 0), _r(1, 4), _r(0, 2)),
    ),
    # The 6+6 stress mix: writes, cross reads, releases and an L1
    # conflict, the largest template the tier enumerates (924 orders).
    Template(
        "full-mix",
        (_w(0, 0), _r(1, 0), _w(0, 1), _U, _r(0, 4), _w(1, 1)),
        (_r(0, 0), _w(0, 4), _r(1, 1), _U, _w(1, 4), _r(0, 1)),
    ),
)


# ----------------------------------------------------------------------
# Interleaving enumeration: DFS with barrier feasibility.
# ----------------------------------------------------------------------
def enumerate_interleavings(core0: tuple[Op, ...], core1: tuple[Op, ...]):
    """Yield every feasible schedule as a tuple of core ids (0/1).

    A schedule is feasible iff no op that follows a core's k-th barrier
    executes before the other core's k-th barrier arrival.  The DFS never
    enters an infeasible branch (a blocked core simply offers no move) and
    a forced move (one movable core) does not branch.  With balanced
    barrier counts every partial schedule extends to a complete one, so
    enumeration is exhaustive and prune-sound.
    """
    n0, n1 = len(core0), len(core1)
    prefix: list[int] = []

    def rec(i0: int, i1: int, b0: int, b1: int):
        if i0 == n0 and i1 == n1:
            yield tuple(prefix)
            return
        if i0 < n0 and b0 <= b1:
            prefix.append(0)
            yield from rec(i0 + 1, i1, b0 + (core0[i0][0] == "B"), b1)
            prefix.pop()
        if i1 < n1 and b1 <= b0:
            prefix.append(1)
            yield from rec(i0, i1 + 1, b0, b1 + (core1[i1][0] == "B"))
            prefix.pop()

    yield from rec(0, 0, 0, 0)


def schedule_steps(template: Template, schedule: tuple[int, ...]) -> tuple[Step, ...]:
    """Materialize a schedule into replay steps (core, kind, line, word)."""
    cursors = [0, 0]
    progs = (template.core0, template.core1)
    steps: list[Step] = []
    for core in schedule:
        kind, line, word = progs[core][cursors[core]]
        cursors[core] += 1
        steps.append((core, kind, line, word))
    return tuple(steps)


def format_steps(steps: tuple[Step, ...]) -> str:
    """Human-readable one-line-per-op rendering of a replay trace."""
    names = {"R": "read", "W": "write", "U": "release", "B": "barrier"}
    lines = []
    for index, (core, kind, line, word) in enumerate(steps):
        if kind in ("R", "W"):
            lines.append(f"  {index:2d}. core{core} {names[kind]:<7} line{line} word{word}")
        else:
            lines.append(f"  {index:2d}. core{core} {names[kind]}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Replay: one interleaving through one engine configuration.
# ----------------------------------------------------------------------
def _replay(
    steps: tuple[Step, ...],
    scenario: Scenario,
    proto: ProtocolConfig,
) -> tuple[dict[int, list[int]], dict[int, list[int]]]:
    """Run ``steps`` through a fresh verify-mode engine.

    Returns ``(golden image, observable image)`` keyed by line number.
    Raises ``ReproError`` (CoherenceError/SimulationError) on any golden
    divergence or invariant violation.
    """
    engine = make_engine(scenario.arch, proto, verify=True)
    hook = engine.sync_boundary_hook()
    lines = scenario.lines
    t = 0.0
    for core, kind, line_idx, word in steps:
        if kind == "U" or kind == "B":
            if hook is not None:
                hook(core, t)
        else:
            address = (lines[line_idx] << addrmod.LINE_BITS) | (word << addrmod.WORD_BITS)
            engine.access(core, kind == "W", address, t)
        t += 1.0
    if hook is not None:
        # End-of-trace is each core's final release (Simulator contract).
        for core in range(_ACTIVE_CORES):
            hook(core, t)
            t += 1.0
    engine.check_final_state()
    golden = {line: engine.golden.line_snapshot(line) for line in sorted(engine.golden.lines())}
    observed = {line: engine.final_line_value(line) for line in golden}
    return golden, observed


def _check_steps(
    steps: tuple[Step, ...],
    scenario: Scenario,
    families: tuple[tuple[str, ProtocolConfig], ...],
) -> tuple[str, str] | None:
    """Replay ``steps`` through every family; None when all agree.

    On failure returns ``(family label, error description)`` - either a
    per-family golden/invariant violation or a cross-family image mismatch
    against the first family.
    """
    reference: tuple[str, dict, dict] | None = None
    for label, proto in families:
        try:
            golden, observed = _replay(steps, scenario, proto)
        except ReproError as exc:
            return label, f"{type(exc).__name__}: {exc}"
        if reference is None:
            reference = (label, golden, observed)
            continue
        ref_label, ref_golden, ref_observed = reference
        if golden != ref_golden:
            return (
                f"{label} vs {ref_label}",
                f"golden images diverge: {golden} != {ref_golden}",
            )
        if observed != ref_observed:
            return (
                f"{label} vs {ref_label}",
                f"final observable images diverge: {observed} != {ref_observed}",
            )
    return None


def minimize_steps(
    steps: tuple[Step, ...],
    scenario: Scenario,
    families: tuple[tuple[str, ProtocolConfig], ...],
) -> tuple[Step, ...]:
    """Delta-debug a failing trace: greedily drop ops while it still fails."""
    current = list(steps)
    changed = True
    while changed:
        changed = False
        index = 0
        while index < len(current):
            candidate = tuple(current[:index] + current[index + 1:])
            if candidate and _check_steps(candidate, scenario, families) is not None:
                current = list(candidate)
                changed = True
            else:
                index += 1
    return tuple(current)


# ----------------------------------------------------------------------
# The driver.
# ----------------------------------------------------------------------
@dataclass
class Violation:
    """One failing interleaving, with its minimized reproduction."""

    template: str
    scenario: str
    family: str
    error: str
    steps: tuple[Step, ...]
    minimized: tuple[Step, ...]

    def describe(self) -> str:
        return (
            f"template {self.template!r}, scenario {self.scenario!r}, "
            f"family {self.family}:\n  {self.error}\n"
            f"minimized trace ({len(self.minimized)} of {len(self.steps)} ops):\n"
            f"{format_steps(self.minimized)}"
        )

    def to_dict(self) -> dict:
        return {
            "template": self.template,
            "scenario": self.scenario,
            "family": self.family,
            "error": self.error,
            "steps": [list(s) for s in self.steps],
            "minimized": [list(s) for s in self.minimized],
        }


@dataclass
class ExhaustiveReport:
    """Outcome of one exhaustive run."""

    ops_limit: int
    family_labels: tuple[str, ...] = ()
    scenario_names: tuple[str, ...] = ()
    #: template name -> number of feasible interleavings (per scenario).
    interleavings: dict[str, int] = field(default_factory=dict)
    skipped_templates: tuple[str, ...] = ()
    total_runs: int = 0
    violations: list[Violation] = field(default_factory=list)

    @property
    def total_interleavings(self) -> int:
        return sum(self.interleavings.values())

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "ops_limit": self.ops_limit,
            "families": list(self.family_labels),
            "scenarios": list(self.scenario_names),
            "interleavings": dict(self.interleavings),
            "skipped_templates": list(self.skipped_templates),
            "total_interleavings": self.total_interleavings,
            "total_runs": self.total_runs,
            "violations": [v.to_dict() for v in self.violations],
        }

    def summary(self) -> str:
        lines = [
            f"exhaustive tier: {len(self.interleavings)} templates x "
            f"{len(self.scenario_names)} scenarios x {len(self.family_labels)} "
            f"engine configs (<= {self.ops_limit} ops per core)"
        ]
        for name, count in self.interleavings.items():
            lines.append(f"  {name:<22} {count:5d} interleavings per scenario")
        if self.skipped_templates:
            lines.append(
                f"  skipped (over --ops {self.ops_limit}): "
                + ", ".join(self.skipped_templates)
            )
        lines.append(
            f"{self.total_runs} verified runs over "
            f"{self.total_interleavings * len(self.scenario_names)} interleavings: "
            + ("all interleavings agree, zero violations"
               if self.ok else f"{len(self.violations)} VIOLATIONS")
        )
        for violation in self.violations:
            lines.append("")
            lines.append(violation.describe())
        return "\n".join(lines)


def run_exhaustive(
    ops: int = _MAX_OPS_PER_CORE,
    families: tuple[tuple[str, ProtocolConfig], ...] = DEFAULT_FAMILIES,
    templates: tuple[Template, ...] = TEMPLATES,
    scenarios: tuple[Scenario, ...] = SCENARIOS,
    progress=None,
    max_violations: int = 10,
) -> ExhaustiveReport:
    """Enumerate and verify every interleaving of every selected template.

    ``ops`` caps the per-core template length (templates above it are
    skipped and reported, the CI smoke budget knob).  After the first
    violation in a (template, scenario) pair the remaining interleavings of
    that pair are skipped - one minimized reproduction per defect is worth
    more than thousands of repeats - and the whole run stops after
    ``max_violations``.
    """
    report = ExhaustiveReport(
        ops_limit=ops,
        family_labels=tuple(label for label, _ in families),
        scenario_names=tuple(s.name for s in scenarios),
    )
    selected = [t for t in templates if t.max_ops <= ops]
    report.skipped_templates = tuple(t.name for t in templates if t.max_ops > ops)
    for template in selected:
        schedules = list(enumerate_interleavings(template.core0, template.core1))
        report.interleavings[template.name] = len(schedules)
        if progress is not None:
            progress(template.name, len(schedules) * len(scenarios) * len(families))
        for scenario in scenarios:
            for schedule in schedules:
                steps = schedule_steps(template, schedule)
                failure = _check_steps(steps, scenario, families)
                report.total_runs += len(families)
                if failure is None:
                    continue
                family, error = failure
                report.violations.append(
                    Violation(
                        template=template.name,
                        scenario=scenario.name,
                        family=family,
                        error=error,
                        steps=steps,
                        minimized=minimize_steps(steps, scenario, families),
                    )
                )
                break  # next scenario: one reproduction per pair
            if len(report.violations) >= max_violations:
                return report
    return report
