"""Parameterized synthetic access patterns (beyond the Table-2 kernels).

The 21 named workloads reproduce the paper's benchmarks; this module exposes
the *primitive* sharing patterns that coherence-protocol studies stress, as
a public API for downstream experiments:

* :func:`uniform_random` - uncorrelated reads/writes over a shared region
  (worst case for any locality predictor);
* :func:`hotspot` - a small hot set absorbing most references over a large
  cold tail (the classifier should split them at the PCT boundary);
* :func:`streaming` - every core scans a large shared array once per round
  (pure capacity pressure: the protocol's word-conversion sweet spot);
* :func:`producer_consumer` - paired cores hand a buffer back and forth
  (sharing misses; invalidation-round stress);
* :func:`migratory` - a lock-protected object read-modified-written by
  every core in turn (the classic migratory-sharing pattern).

All generators are deterministic in ``seed`` and return validated
:class:`~repro.workloads.base.Trace` objects runnable on any
:class:`~repro.sim.multicore.Simulator`.
"""

from __future__ import annotations

from repro.common import addr as addrmod
from repro.common.errors import TraceError
from repro.common.rng import make_rng
from repro.workloads.base import Trace, TraceBuilder

LINE = addrmod.LINE_SIZE


def _require_positive(**values: int) -> None:
    for name, value in values.items():
        if value <= 0:
            raise TraceError(f"{name} must be positive, got {value}")


# ----------------------------------------------------------------------
def uniform_random(
    num_cores: int,
    lines: int = 2048,
    accesses_per_core: int = 2000,
    write_fraction: float = 0.2,
    seed: int = 0,
) -> Trace:
    """Uncorrelated accesses over one shared region.

    With no spatio-temporal structure, most lines see low per-core
    utilization: the adaptive protocol should demote aggressively.
    """
    _require_positive(num_cores=num_cores, lines=lines, accesses_per_core=accesses_per_core)
    if not 0.0 <= write_fraction <= 1.0:
        raise TraceError(f"write_fraction must be in [0, 1], got {write_fraction}")
    builder = TraceBuilder("synthetic-uniform", num_cores)
    region = builder.address_space.alloc("region", lines * LINE)
    for tid in range(num_cores):
        rng = make_rng("uniform", seed, tid)
        thread = builder.thread(tid)
        for _ in range(accesses_per_core):
            address = region + rng.randrange(lines) * LINE
            thread.work(2)
            if rng.random() < write_fraction:
                thread.write(address)
            else:
                thread.read(address)
    builder.barrier_all()
    return builder.build()


# ----------------------------------------------------------------------
def hotspot(
    num_cores: int,
    hot_lines: int = 16,
    cold_lines: int = 4096,
    accesses_per_core: int = 2000,
    hot_fraction: float = 0.8,
    write_fraction: float = 0.1,
    seed: int = 0,
) -> Trace:
    """A small hot set over a large cold tail (80/20-style skew).

    The classifier's job is to keep the hot set private (utilization well
    above PCT) while demoting the cold tail to remote word access.
    """
    _require_positive(
        num_cores=num_cores,
        hot_lines=hot_lines,
        cold_lines=cold_lines,
        accesses_per_core=accesses_per_core,
    )
    if not 0.0 <= hot_fraction <= 1.0:
        raise TraceError(f"hot_fraction must be in [0, 1], got {hot_fraction}")
    builder = TraceBuilder("synthetic-hotspot", num_cores)
    hot = builder.address_space.alloc("hot", hot_lines * LINE)
    cold = builder.address_space.alloc("cold", cold_lines * LINE)
    for tid in range(num_cores):
        rng = make_rng("hotspot", seed, tid)
        thread = builder.thread(tid)
        for _ in range(accesses_per_core):
            if rng.random() < hot_fraction:
                address = hot + rng.randrange(hot_lines) * LINE
            else:
                address = cold + rng.randrange(cold_lines) * LINE
            thread.work(2)
            if rng.random() < write_fraction:
                thread.write(address)
            else:
                thread.read(address)
    builder.barrier_all()
    return builder.build()


# ----------------------------------------------------------------------
def streaming(
    num_cores: int,
    lines: int = 4096,
    rounds: int = 2,
    seed: int = 0,
) -> Trace:
    """Every core scans one large shared array, ``rounds`` times.

    Single-use-before-eviction lines are the protocol's ideal conversion
    target: capacity misses become cheap word misses.
    """
    _require_positive(num_cores=num_cores, lines=lines, rounds=rounds)
    builder = TraceBuilder("synthetic-streaming", num_cores)
    region = builder.address_space.alloc("stream", lines * LINE)
    for tid in range(num_cores):
        rng = make_rng("streaming", seed, tid)
        thread = builder.thread(tid)
        # Stagger starting offsets so cores do not convoy on one home slice.
        start = rng.randrange(lines)
        for _round in range(rounds):
            for i in range(lines):
                thread.work(1)
                thread.read(region + ((start + i) % lines) * LINE)
    builder.barrier_all()
    return builder.build()


# ----------------------------------------------------------------------
def producer_consumer(
    num_cores: int,
    buffer_lines: int = 32,
    handoffs: int = 20,
    seed: int = 0,
) -> Trace:
    """Adjacent core pairs hand a buffer back and forth.

    Each handoff invalidates the consumer's copies (sharing misses); with
    few uses per handoff the protocol should pin the buffer at its home
    and convert the ping-pong into word traffic.
    """
    _require_positive(num_cores=num_cores, buffer_lines=buffer_lines, handoffs=handoffs)
    if num_cores % 2:
        raise TraceError(f"producer_consumer needs an even core count, got {num_cores}")
    builder = TraceBuilder("synthetic-prodcons", num_cores)
    buffers = [
        builder.address_space.alloc(f"buf{pair}", buffer_lines * LINE)
        for pair in range(num_cores // 2)
    ]
    for pair in range(num_cores // 2):
        producer = builder.thread(2 * pair)
        consumer = builder.thread(2 * pair + 1)
        buffer = buffers[pair]
        for _ in range(handoffs):
            for i in range(buffer_lines):
                producer.work(2)
                producer.write(buffer + i * LINE)
            for i in range(buffer_lines):
                consumer.work(2)
                consumer.read(buffer + i * LINE)
    builder.barrier_all()
    return builder.build()


# ----------------------------------------------------------------------
def migratory(
    num_cores: int,
    object_lines: int = 4,
    rounds: int = 10,
    uses_per_visit: int = 3,
    seed: int = 0,
) -> Trace:
    """A lock-protected object read-modified-written by every core in turn.

    The classic migratory pattern: each visit ends with a write that
    invalidates the previous visitor, so per-visit utilization sits right
    at the classification boundary when ``uses_per_visit`` is near PCT.
    """
    _require_positive(
        num_cores=num_cores,
        object_lines=object_lines,
        rounds=rounds,
        uses_per_visit=uses_per_visit,
    )
    builder = TraceBuilder("synthetic-migratory", num_cores)
    obj = builder.address_space.alloc("object", object_lines * LINE)
    lock_id = 1
    for _round in range(rounds):
        for tid in range(num_cores):
            thread = builder.thread(tid)
            thread.lock(lock_id)
            for i in range(object_lines):
                for _use in range(uses_per_visit - 1):
                    thread.work(1)
                    thread.read(obj + i * LINE)
                thread.work(1)
                thread.write(obj + i * LINE)
            thread.unlock(lock_id)
    builder.barrier_all()
    return builder.build()


#: Name -> generator mapping for programmatic access.
SYNTHETIC_PATTERNS = {
    "uniform": uniform_random,
    "hotspot": hotspot,
    "streaming": streaming,
    "producer-consumer": producer_consumer,
    "migratory": migratory,
}
