"""UHPC graph workload kernels (Table 2).

connected-components and community-detection model social-network style
graph analytics: huge once-touched edge streams plus scattered shared label
updates - the most network-bound workloads in the paper's suite.
"""

from __future__ import annotations

from repro.common.params import ArchConfig
from repro.common.rng import make_rng
from repro.workloads.base import Trace, TraceBuilder
from repro.workloads.patterns import LINE, hot_loop, line_visit, stream_scan


def build_connected_components(
    arch: ArchConfig,
    edge_lines_per_thread: int = 192,
    label_lines: int = 2048,
    label_ops_per_iter: int = 64,
    iterations: int = 2,
) -> Trace:
    """Connected components by label propagation (Table 2: 2^18 nodes).

    Each iteration streams the thread's edge partition once (utilization-1
    private lines) and performs scattered reads/writes on the shared label
    array.  The paper reports ~50% miss rate with over half the energy in
    the network; capacity misses convert ~1:1 into word misses.
    """
    n = arch.num_cores
    tb = TraceBuilder("concomp", n)
    edges = [tb.address_space.alloc(f"edges{t}", edge_lines_per_thread * LINE)
             for t in range(n)]
    labels = tb.address_space.alloc("labels", label_lines * LINE)

    for it in range(iterations):
        for tid in range(n):
            tp = tb.thread(tid)
            rng = make_rng("concomp", it, tid)
            stream_scan(tp, edges[tid], edge_lines_per_thread, uses_per_line=2,
                        work_per_use=8)
            hot_nodes = max(1, label_lines // 32)
            for _ in range(label_ops_per_iter):
                if rng.random() < 0.3:
                    node = rng.randrange(hot_nodes)
                    uses = 4
                else:
                    node = rng.randrange(label_lines)
                    uses = 1
                line_visit(tp, labels + node * LINE, uses=uses,
                           write_fraction=0.4, rng=rng, work_per_use=8)
        tb.barrier_all()
    return tb.build()


def build_community_detection(
    arch: ArchConfig,
    local_lines: int = 32,
    local_passes: int = 6,
    remote_probes: int = 72,
    neighbour_span: int = 4,
) -> Trace:
    """Community detection / modularity optimization (Table 2: 2^16 nodes).

    Communities give the access stream structure: each thread repeatedly
    reworks its own community's labels (good locality) but probes labels in
    neighbouring threads' communities (low-utilization sharing), plus a
    modularity accumulator under a lock.
    """
    n = arch.num_cores
    tb = TraceBuilder("community", n)
    communities = [tb.address_space.alloc(f"comm{t}", local_lines * LINE) for t in range(n)]
    modularity = tb.address_space.alloc("modularity", LINE)

    for tid in range(n):
        tp = tb.thread(tid)
        rng = make_rng("community", tid)
        for p in range(local_passes):
            stream_scan(tp, communities[tid], local_lines, uses_per_line=5,
                        write_fraction=0.3, rng=rng, work_per_use=5)
            for _ in range(remote_probes // local_passes):
                neighbour = (tid + 1 + rng.randrange(neighbour_span)) % n
                probe = rng.randrange(local_lines)
                line_visit(tp, communities[neighbour] + probe * LINE, uses=1,
                           work_per_use=8)
            tp.lock(0)
            tp.read(modularity)
            tp.write(modularity)
            tp.unlock(0)
    tb.barrier_all()
    return tb.build()
