"""PARSEC workload kernels (Table 2).

See ``repro.workloads.splash2`` for the modelling approach: each kernel
reproduces its namesake's reference skeleton (phases, sharing, per-line
utilization) at scaled problem sizes.
"""

from __future__ import annotations

from repro.common.params import ArchConfig
from repro.common.rng import make_rng
from repro.workloads.base import Trace, TraceBuilder
from repro.workloads.patterns import (
    LINE,
    hot_loop,
    line_visit,
    random_touches,
    stream_scan,
)


def build_blackscholes(
    arch: ArchConfig,
    option_lines: int = 192,
    result_lines: int = 24,
    passes: int = 3,
    batch_lines: int = 16,
    table_lines: int = 8,
) -> Trace:
    """Blackscholes option pricing (Table 2: 64K options).

    PARSEC's blackscholes reprices the whole option array NUM_RUNS times:
    each pass streams a large private array (~2 uses per line) interleaved
    with lookups into a hot CNDF coefficient table.  At PCT=1 the stream
    evicts the hot table (cache pollution, capacity misses); once demoted,
    later passes access option lines as cheap *local* word accesses (private
    pages live in the requester's own L2 slice under R-NUCA) - the paper's
    flagship capacity->word example.
    """
    n = arch.num_cores
    tb = TraceBuilder("blackscholes", n)
    options = [tb.address_space.alloc(f"opt{t}", option_lines * LINE) for t in range(n)]
    results = [tb.address_space.alloc(f"res{t}", result_lines * LINE) for t in range(n)]
    tables = [tb.address_space.alloc(f"tbl{t}", table_lines * LINE) for t in range(n)]

    for tid in range(n):
        tp = tb.thread(tid)
        for _ in range(passes):
            for batch in range(0, option_lines, batch_lines):
                stream_scan(tp, options[tid], min(batch_lines, option_lines - batch),
                            uses_per_line=2, work_per_use=10, start_line=batch)
                # CNDF table consulted between batches: hot, wants to stay.
                stream_scan(tp, tables[tid], table_lines, uses_per_line=1,
                            work_per_use=4)
            stream_scan(tp, results[tid], result_lines, uses_per_line=1,
                        write_fraction=1.0, rng=make_rng("blackscholes", tid))
    tb.barrier_all()
    return tb.build()


def build_streamcluster(
    arch: ArchConfig,
    center_lines: int = 24,
    point_lines: int = 128,
    rounds: int = 5,
) -> Trace:
    """Streamcluster k-median (Table 2: 8192 points per block).

    Every round all threads read the shared candidate-center structure
    (~2 uses per line) and the coordinator then rewrites it, invalidating
    every reader - the paper's flagship sharing->word example (80% of
    streamcluster invalidations have utilization < 4, Figure 1).
    """
    n = arch.num_cores
    tb = TraceBuilder("streamcluster", n)
    centers = tb.address_space.alloc("centers", center_lines * LINE)
    points = [tb.address_space.alloc(f"pts{t}", point_lines * LINE) for t in range(n)]
    cost_line = tb.address_space.alloc("gain", LINE)

    point_batch = max(1, point_lines // max(1, center_lines // 4))
    for round_index in range(rounds):
        coordinator_tid = round_index % n
        for tid in range(n):
            tp = tb.thread(tid)
            rng = make_rng("streamcluster", round_index, tid)
            # Gain evaluation interleaves candidate-center reads with the
            # private point scan, so reads collide with the coordinator's
            # mid-round center updates (no phase barrier in the real code):
            # every update invalidates the readers' low-utilization copies
            # and the readers queue up behind the invalidation rounds at the
            # home L2 - the L2-waiting the adaptive protocol eliminates.
            center_cursor = 0
            for batch in range(0, point_lines, point_batch):
                stream_scan(tp, points[tid], min(point_batch, point_lines - batch),
                            uses_per_line=4, work_per_use=4,
                            write_fraction=0.1, rng=rng, start_line=batch)
                stream_scan(tp, centers, 4, uses_per_line=1, work_per_use=3,
                            start_line=center_cursor % center_lines)
                center_cursor += 4
            if tid == coordinator_tid:
                stream_scan(tp, centers, center_lines, uses_per_line=1,
                            write_fraction=1.0,
                            rng=make_rng("streamcluster", round_index, "upd"))
            tp.lock(0)
            tp.read(cost_line)
            tp.write(cost_line)
            tp.unlock(0)
        tb.barrier_all()
    return tb.build()


def build_dedup(
    arch: ArchConfig,
    chunks_per_pair: int = 16,
    chunk_lines: int = 4,
    hash_lines: int = 1024,
    ring_slots: int = 4,
    probes_per_chunk: int = 3,
) -> Trace:
    """Dedup compression pipeline (Table 2: 31 MB stream).

    Producer threads write chunk buffers through a small ring that consumer
    threads read (migratory sharing: the producer's reuse of a ring slot
    invalidates the consumer's low-utilization copy) and a shared hash table
    takes random once-touched lookups/inserts.
    """
    n = arch.num_cores
    tb = TraceBuilder("dedup", n)
    pairs = n // 2
    buffers = [
        tb.address_space.alloc(f"buf{p}", ring_slots * chunk_lines * LINE)
        for p in range(pairs)
    ]
    hash_table = tb.address_space.alloc("hashtable", hash_lines * LINE)
    tables = [tb.address_space.alloc(f"ctbl{p}", 12 * LINE) for p in range(pairs)]

    for p in range(pairs):
        producer = tb.thread(p)
        consumer = tb.thread(pairs + p)
        rng_p = make_rng("dedup", p, "prod")
        rng_c = make_rng("dedup", p, "cons")
        for chunk in range(chunks_per_pair):
            base = buffers[p] + (chunk % ring_slots) * chunk_lines * LINE
            producer.lock(p)
            stream_scan(producer, base, chunk_lines, uses_per_line=8,
                        write_fraction=1.0, rng=rng_p)
            producer.unlock(p)
            consumer.lock(p)
            stream_scan(consumer, base, chunk_lines, uses_per_line=2, work_per_use=10)
            consumer.unlock(p)
            # Rolling-hash tables: hot per-consumer state.
            hot_loop(consumer, tables[p], 12, passes=1, work_per_use=4)
            # Consumer probes/inserts into the shared hash table.
            for _ in range(probes_per_chunk):
                slot = rng_c.randrange(hash_lines)
                line_visit(consumer, hash_table + slot * LINE, uses=2,
                           write_fraction=0.5, rng=rng_c, work_per_use=8)
    # Odd thread out (if any) does independent local work.
    for tid in range(2 * pairs, n):
        hot_loop(tb.thread(tid), tb.address_space.alloc(f"spare{tid}", 4 * LINE),
                 4, passes=chunks_per_pair)
    tb.barrier_all()
    return tb.build()


def build_bodytrack(
    arch: ArchConfig,
    weight_lines: int = 64,
    model_lines: int = 96,
    frames: int = 3,
) -> Trace:
    """Bodytrack particle filter (Table 2: 2 frames, 2000 particles).

    Per frame the coordinator (thread 0) rewrites the particle-weight
    array; every other thread then reads it (~2 uses per line) - sharing
    misses - and streams a large read-only model (capacity misses).  The
    coordinator's high private utilization makes it the *first tracked
    sharer*, which is exactly the Limited_1 pathology the paper reports:
    newcomers inherit "private" although they want remote.
    """
    n = arch.num_cores
    tb = TraceBuilder("bodytrack", n)
    weights = tb.address_space.alloc("weights", weight_lines * LINE)
    model = tb.address_space.alloc("model", model_lines * LINE)
    scratch = [tb.address_space.alloc(f"scr{t}", 8 * LINE) for t in range(n)]
    workspaces = [tb.address_space.alloc(f"wsp{t}", 48 * LINE) for t in range(n)]

    for frame in range(frames):
        # Coordinator resamples weights and refreshes the per-frame pose/
        # observation model (both rewritten every frame, invalidating all
        # reader copies).
        coordinator = tb.thread(0)
        stream_scan(coordinator, weights, weight_lines, uses_per_line=3,
                    write_fraction=0.6, rng=make_rng("bodytrack", frame, "coord"))
        stream_scan(coordinator, model, model_lines // 2, uses_per_line=1,
                    write_fraction=1.0, rng=make_rng("bodytrack", frame, "pose"))
        tb.barrier_all()
        for tid in range(n):
            tp = tb.thread(tid)
            rng = make_rng("bodytrack", frame, tid)
            if tid != 0:
                # Per-frame particle-weight reuse varies with how many of the
                # thread's particles map to each line (1..6 uses).  One
                # low-reuse frame demotes the line; under Adapt1-way that is
                # terminal and every later high-reuse frame pays a round-trip
                # per access, while two-way transitions re-promote it.
                for wline in range(weight_lines):
                    uses = 1 if rng.random() < 0.25 else 3 + rng.randrange(6)
                    line_visit(tp, weights + wline * LINE, uses=uses, work_per_use=3)
            half_model = model_lines // 2
            stream_scan(tp, model, half_model, uses_per_line=1, work_per_use=6)
            stream_scan(tp, model, model_lines - half_model, uses_per_line=4,
                        work_per_use=4, start_line=half_model)
            hot_loop(tp, scratch[tid], 8, passes=6, write_fraction=0.4, rng=rng,
                     work_per_use=4)
            # Per-frame likelihood workspace: private, revisited every frame
            # with utilization just below PCT.  Under two-way transitions
            # these lines oscillate (demoted at eviction, re-promoted after
            # a few remote accesses); under Adapt1-way one demotion makes
            # every later access a remote round-trip - the paper's 3.3x
            # bodytrack blowup.
            stream_scan(tp, workspaces[tid], 48, uses_per_line=3,
                        write_fraction=0.4, rng=rng, work_per_use=3)
        tb.barrier_all()
    return tb.build()


def build_fluidanimate(
    arch: ArchConfig,
    cell_lines: int = 48,
    edge_lines: int = 6,
    iterations: int = 4,
) -> Trace:
    """Fluidanimate SPH solver (Table 2: 5 frames, 100K particles).

    Threads own spatial cell regions with moderate-reuse updates; boundary
    cells are exchanged with mesh neighbours under fine-grained locks.
    """
    n = arch.num_cores
    tb = TraceBuilder("fluidanimate", n)
    regions = [tb.address_space.alloc(f"cells{t}", cell_lines * LINE) for t in range(n)]

    for it in range(iterations):
        for tid in range(n):
            tp = tb.thread(tid)
            rng = make_rng("fluid", it, tid)
            stream_scan(tp, regions[tid], cell_lines, uses_per_line=3,
                        write_fraction=0.4, rng=rng, work_per_use=8)
            neighbour = (tid + 1) % n
            tp.lock(min(tid, neighbour))
            stream_scan(tp, regions[neighbour], edge_lines, uses_per_line=1,
                        work_per_use=6)
            tp.unlock(min(tid, neighbour))
        tb.barrier_all()
    return tb.build()


def build_canneal(
    arch: ArchConfig,
    netlist_lines: int = 4096,
    moves_per_thread: int = 96,
) -> Trace:
    """Canneal simulated annealing (Table 2: 200K elements).

    Uniformly random once-touched reads/writes over a netlist far larger
    than the L1: essentially every reference misses, utilization is 1, and
    the adaptive protocol converts the entire stream to word accesses.
    """
    n = arch.num_cores
    tb = TraceBuilder("canneal", n)
    netlist = tb.address_space.alloc("netlist", netlist_lines * LINE)
    rng_states = [tb.address_space.alloc(f"rng{t}", 2 * LINE) for t in range(n)]

    for tid in range(n):
        tp = tb.thread(tid)
        rng = make_rng("canneal", tid)
        hot_loop(tp, rng_states[tid], 2, passes=16, write_fraction=0.5, rng=rng,
                 work_per_use=4)
        hot_nets = netlist_lines // 16
        for _ in range(moves_per_thread * 2):
            if rng.random() < 0.3:
                # Hot nets: revisited densely, utilization stays high.
                line = rng.randrange(hot_nets)
                line_visit(tp, netlist + line * LINE, uses=6,
                           write_fraction=0.3, rng=rng, work_per_use=6)
            else:
                line = rng.randrange(netlist_lines)
                line_visit(tp, netlist + line * LINE, uses=1,
                           write_fraction=0.3, rng=rng, work_per_use=14)
    tb.barrier_all()
    return tb.build()
