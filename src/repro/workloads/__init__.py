"""The 21 benchmark workloads of Table 2 as deterministic trace generators."""

from repro.workloads.base import AddressSpace, ThreadProgram, Trace, TraceBuilder
from repro.workloads.registry import (
    WORKLOAD_NAMES,
    WORKLOADS,
    WorkloadSpec,
    get_workload,
    load_workload,
)

__all__ = [
    "AddressSpace",
    "ThreadProgram",
    "Trace",
    "TraceBuilder",
    "WORKLOADS",
    "WORKLOAD_NAMES",
    "WorkloadSpec",
    "get_workload",
    "load_workload",
]
