"""Parallel MI-Bench workload kernels (Table 2).

dijkstra (single-source and all-pairs), patricia and susan, modelled per the
approach described in ``repro.workloads.splash2``.
"""

from __future__ import annotations

from repro.common.params import ArchConfig
from repro.common.rng import make_rng
from repro.workloads.base import Trace, TraceBuilder
from repro.workloads.patterns import LINE, chunk_range, hot_loop, line_visit, stream_scan


def build_dijkstra_ss(
    arch: ArchConfig,
    dist_lines: int = 128,
    relax_rounds: int = 5,
    reads_per_round: int = 20,
    local_passes: int = 6,
) -> Trace:
    """Dijkstra single-source (Table 2: 4096-node graph).

    Relaxation phase: a rotating owner pops the frontier under a lock and
    writes random distance entries while every thread polls distances -
    low-utilization sharing misses (the paper's sharing->word win, and its
    Adapt1-way pathology: threads later need *promotion* for the local
    refinement phase, so one-way demotion is 2.3x slower).
    """
    n = arch.num_cores
    tb = TraceBuilder("dijkstra-ss", n)
    dist = tb.address_space.alloc("dist", dist_lines * LINE)
    frontier = tb.address_space.alloc("frontier", LINE)

    for rnd in range(relax_rounds):
        owner_tid = rnd % n
        for tid in range(n):
            tp = tb.thread(tid)
            rng = make_rng("dijkstra-ss", rnd, tid)
            if tid == owner_tid:
                # Owner pops the frontier under the queue lock and relaxes
                # edges: scattered distance updates that invalidate pollers.
                tp.lock(0)
                tp.read(frontier)
                tp.write(frontier)
                tp.unlock(0)
                for _ in range(reads_per_round):
                    entry = rng.randrange(dist_lines)
                    line_visit(tp, dist + entry * LINE, uses=2, write_fraction=0.6, rng=rng,
                               work_per_use=5)
            else:
                # Everyone else polls distances lock-free.  Reuse per line
                # varies round to round (1..6 uses) - the variable-episode
                # pattern that makes one-way demotion terminal and costly.
                tp.read(frontier)
                for _ in range(reads_per_round):
                    entry = rng.randrange(dist_lines)
                    line_visit(tp, dist + entry * LINE,
                               uses=1 + rng.randrange(6), work_per_use=4)
        tb.barrier_all()
    # Local refinement: each thread repeatedly reworks its distance chunk -
    # high reuse on previously-demoted lines (promotion required).  Two-way
    # transitions re-promote them after a few accesses; Adapt1-way is stuck
    # doing a round-trip per access, which is why the paper reports a 2.3x
    # completion-time blowup for dijkstra-ss.
    lines_per_thread = max(2, dist_lines // n)
    for tid in range(n):
        tp = tb.thread(tid)
        start = (tid * lines_per_thread) % max(1, dist_lines - lines_per_thread + 1)
        for _ in range(local_passes):
            stream_scan(tp, dist, lines_per_thread, uses_per_line=3,
                        start_line=start, work_per_use=3)
    tb.barrier_all()
    return tb.build()


def build_dijkstra_ap(
    arch: ArchConfig,
    matrix_lines: int = 1024,
    rows_per_source: int = 24,
    row_lines: int = 4,
    sources_per_thread: int = 2,
) -> Trace:
    """Dijkstra all-pairs (Table 2: 512-node graph).

    Every thread runs Dijkstra from its own sources: the shared adjacency
    matrix is streamed read-only (once-touched lines, capacity pressure)
    while the private distance array is reused heavily.  Demoting the matrix
    stream protects the distance array - the paper's cache-utilization win
    at PCT 1->2.
    """
    n = arch.num_cores
    tb = TraceBuilder("dijkstra-ap", n)
    matrix = tb.address_space.alloc("adjacency", matrix_lines * LINE)
    dists = [tb.address_space.alloc(f"dist{t}", 12 * LINE) for t in range(n)]

    for tid in range(n):
        tp = tb.thread(tid)
        rng = make_rng("dijkstra-ap", tid)
        for source in range(sources_per_thread):
            for _ in range(rows_per_source):
                row = rng.randrange(matrix_lines // row_lines)
                stream_scan(tp, matrix, row_lines, uses_per_line=1,
                            start_line=row * row_lines, work_per_use=8)
                hot_loop(tp, dists[tid], 12, passes=2, write_fraction=0.3,
                         rng=rng, work_per_use=6)
    tb.barrier_all()
    return tb.build()


def build_patricia(
    arch: ArchConfig,
    queries_per_thread: int = 96,
    leaf_lines: int = 1024,
    mid_lines: int = 64,
    insert_fraction: float = 0.15,
) -> Trace:
    """Patricia trie (Table 2: 5000 IP address queries).

    Lookups walk root (hot) -> mid (warm) -> leaf (once-touched); inserts
    write leaf nodes, invalidating other threads' copies.  Both capacity
    and sharing misses convert to word accesses.
    """
    n = arch.num_cores
    tb = TraceBuilder("patricia", n)
    root = tb.address_space.alloc("root", 2 * LINE)
    mids = tb.address_space.alloc("mid", mid_lines * LINE)
    leaves = tb.address_space.alloc("leaves", leaf_lines * LINE)

    for tid in range(n):
        tp = tb.thread(tid)
        rng = make_rng("patricia", tid)
        for q in range(queries_per_thread):
            line_visit(tp, root + (q % 2) * LINE, uses=3, work_per_use=8)
            mid = rng.randrange(mid_lines)
            line_visit(tp, mids + mid * LINE, uses=2, work_per_use=8)
            mid2 = rng.randrange(mid_lines)
            line_visit(tp, mids + mid2 * LINE, uses=2, work_per_use=8)
            leaf = rng.randrange(leaf_lines)
            if rng.random() < insert_fraction:
                line_visit(tp, leaves + leaf * LINE, uses=2, write_fraction=0.7, rng=rng,
                           work_per_use=8)
            else:
                line_visit(tp, leaves + leaf * LINE, uses=1, work_per_use=10)
    tb.barrier_all()
    return tb.build()


def build_susan(
    arch: ArchConfig,
    tile_lines: int = 36,
    passes: int = 14,
) -> Trace:
    """Susan image smoothing (Table 2: 2.8 MB PGM picture).

    Each thread's image tile plus the brightness LUT fit in the L1: the
    kernel is compute bound with a ~0.2% miss rate and is insensitive to
    PCT, like water-spatial.
    """
    n = arch.num_cores
    tb = TraceBuilder("susan", n)
    tiles = [tb.address_space.alloc(f"tile{t}", tile_lines * LINE) for t in range(n)]
    luts = [tb.address_space.alloc(f"lut{t}", 4 * LINE) for t in range(n)]

    for tid in range(n):
        tp = tb.thread(tid)
        rng = make_rng("susan", tid)
        for p in range(passes):
            stream_scan(tp, tiles[tid], tile_lines, uses_per_line=2,
                        write_fraction=0.25, rng=rng, work_per_use=4)
            hot_loop(tp, luts[tid], 4, passes=2, work_per_use=2)
    tb.barrier_all()
    return tb.build()
