"""Workload trace framework.

The paper drives its evaluation with 21 parallel benchmarks executed on the
Graphite simulator.  We reproduce each benchmark as a *trace generator*: a
deterministic kernel that performs the same algorithmic skeleton (blocked LU,
radix-sort phases, label propagation, k-median rounds, ...) against a
simulated shared address space and records, per thread:

* READ/WRITE references (byte addresses),
* interleaved compute (``work`` cycles between references),
* synchronization (barriers and locks).

The coherence protocol only ever observes this reference stream, so
preserving the *access pattern* (sharing degree, per-line reuse, working-set
pressure, read/write mix) preserves everything the locality classifier
reacts to.

Traces use a **columnar IR**: each core's stream is three parallel
``array('q')`` columns (opcode, address, work) instead of a Python list of
``(op, address, work)`` tuples.  The columns are built once, validated in a
single typed pass, and never mutated afterwards; the simulator walks them
with per-core cursors, the binary trace format v2 maps them straight to
disk, and the parallel runner ships them to workers as a handful of
contiguous buffers (one ``memcpy``-style pickle per column) instead of a
per-record tuple graph.  ``Trace.per_core`` remains available as a
materialized tuple *view* for tooling and tests.

Conventions:

* every thread participates in every barrier, in the same order;
* lock/unlock pairs are balanced per thread;
* private per-thread data is allocated on thread-specific pages so R-NUCA
  classifies it private; shared structures live on shared pages.
"""

from __future__ import annotations

from array import array

from repro.common import addr as addrmod
from repro.common.errors import TraceError
from repro.common.types import Op

#: Logical trace record, used by the text/v1 binary formats and the
#: ``per_core`` compatibility view: (op, address, work_before).
TraceRecord = tuple[int, int, int]

#: One core's stream as parallel columns: (ops, addresses, works).
TraceColumns = tuple[array, array, array]

_OP_READ = int(Op.READ)
_OP_WRITE = int(Op.WRITE)
_OP_BARRIER = int(Op.BARRIER)
_OP_LOCK = int(Op.LOCK)
_OP_UNLOCK = int(Op.UNLOCK)
_OP_WORK = int(Op.WORK)


class Trace:
    """An immutable multithreaded memory-access trace (columnar IR).

    ``ops[tid]``, ``addresses[tid]`` and ``works[tid]`` are parallel
    ``array('q')`` columns holding core ``tid``'s stream.  They are packed
    once at construction and must never be mutated: the scalar summaries
    (``memory_accesses``, ``instructions``, ``footprint_lines``) are
    computed in the same single validation pass and cached.
    """

    __slots__ = (
        "name",
        "num_cores",
        "ops",
        "addresses",
        "works",
        "_memory_accesses",
        "_instructions",
        "_footprint_lines",
    )

    def __init__(self, name: str, num_cores: int, per_core: list[list[TraceRecord]]) -> None:
        """Build the columnar IR from per-core record lists (legacy shape)."""
        if len(per_core) != num_cores:
            raise TraceError(
                f"trace {name!r} has {len(per_core)} streams for {num_cores} cores"
            )
        ops: list[array] = []
        addresses: list[array] = []
        works: list[array] = []
        for tid, stream in enumerate(per_core):
            o, a, w = array("q"), array("q"), array("q")
            try:
                for op, address, work in stream:
                    o.append(op)
                    a.append(address)
                    w.append(work)
            except OverflowError:
                raise TraceError(
                    f"thread {tid}: record value outside 64-bit range"
                ) from None
            except TypeError as exc:
                raise TraceError(f"thread {tid}: non-integer record value ({exc})") from None
            ops.append(o)
            addresses.append(a)
            works.append(w)
        self._init_columns(name, num_cores, ops, addresses, works)

    # ------------------------------------------------------------------
    @classmethod
    def from_columns(
        cls,
        name: str,
        num_cores: int,
        ops: list[array],
        addresses: list[array],
        works: list[array],
    ) -> "Trace":
        """Adopt prebuilt columns without copying (still validated once)."""
        if not (len(ops) == len(addresses) == len(works) == num_cores):
            raise TraceError(
                f"trace {name!r} has {len(ops)}/{len(addresses)}/{len(works)} "
                f"columns for {num_cores} cores"
            )
        trace = object.__new__(cls)
        trace._init_columns(name, num_cores, ops, addresses, works)
        return trace

    def _init_columns(
        self,
        name: str,
        num_cores: int,
        ops: list[array],
        addresses: list[array],
        works: list[array],
    ) -> None:
        self.name = name
        self.num_cores = num_cores
        self.ops = ops
        self.addresses = addresses
        self.works = works
        self._validate_and_summarize()

    # ------------------------------------------------------------------
    @staticmethod
    def _rebuild(
        name: str,
        num_cores: int,
        ops: list[array],
        addresses: list[array],
        works: list[array],
        summary: tuple[int, int, int],
    ) -> "Trace":
        """Pickle fast path: adopt already-validated columns verbatim."""
        trace = object.__new__(Trace)
        trace.name = name
        trace.num_cores = num_cores
        trace.ops = ops
        trace.addresses = addresses
        trace.works = works
        trace._memory_accesses, trace._instructions, trace._footprint_lines = summary
        return trace

    def __reduce__(self):
        """Pickle as raw column buffers (``array`` serializes its machine
        bytes), skipping re-validation on unpickle - this is what makes
        shipping a trace to a worker a handful of contiguous buffers."""
        return (
            Trace._rebuild,
            (
                self.name,
                self.num_cores,
                self.ops,
                self.addresses,
                self.works,
                (self._memory_accesses, self._instructions, self._footprint_lines),
            ),
        )

    # ------------------------------------------------------------------
    def _validate_and_summarize(self) -> None:
        """One typed pass: structural validation + cached scalar summaries."""
        max_address = addrmod.MAX_ADDRESS
        line_bits = addrmod.LINE_BITS
        memory_accesses = 0
        instructions = 0
        lines: set[int] = set()
        barrier_seqs: list[tuple[int, ...]] = []
        for tid in range(self.num_cores):
            ops = self.ops[tid]
            addresses = self.addresses[tid]
            works = self.works[tid]
            if not (len(ops) == len(addresses) == len(works)):
                raise TraceError(
                    f"thread {tid}: ragged columns "
                    f"({len(ops)}/{len(addresses)}/{len(works)} records)"
                )
            barriers: list[int] = []
            lock_depth: dict[int, int] = {}
            for i in range(len(ops)):
                op = ops[i]
                address = addresses[i]
                work = works[i]
                if work < 0:
                    raise TraceError(f"thread {tid}: negative work {work}")
                if address < 0 or address > max_address:
                    raise TraceError(f"thread {tid}: address {address:#x} out of range")
                if op == _OP_READ or op == _OP_WRITE:
                    memory_accesses += 1
                    instructions += work + 1
                    lines.add(address >> line_bits)
                elif op == _OP_BARRIER:
                    barriers.append(address)
                    instructions += work + 1
                elif op == _OP_LOCK:
                    lock_depth[address] = lock_depth.get(address, 0) + 1
                    instructions += work + 1
                elif op == _OP_UNLOCK:
                    depth = lock_depth.get(address, 0) - 1
                    if depth < 0:
                        raise TraceError(f"thread {tid}: unlock of free lock {address}")
                    lock_depth[address] = depth
                    instructions += work + 1
                elif op == _OP_WORK:
                    instructions += work
                else:
                    raise TraceError(f"thread {tid}: unknown opcode {op}")
            if any(depth != 0 for depth in lock_depth.values()):
                raise TraceError(f"thread {tid}: unbalanced lock/unlock")
            barrier_seqs.append(tuple(barriers))
        if len(set(barrier_seqs)) > 1:
            raise TraceError(
                f"trace {self.name!r}: threads disagree on barrier sequence "
                f"(every thread must hit every barrier, in order)"
            )
        self._memory_accesses = memory_accesses
        self._instructions = instructions
        self._footprint_lines = len(lines)

    # ------------------------------------------------------------------
    @property
    def per_core(self) -> list[list[TraceRecord]]:
        """Materialized tuple view of the columns (compatibility/tooling).

        Returns fresh lists on every call; mutating them never affects the
        trace.  Hot paths must walk the columns directly.
        """
        return [
            list(zip(self.ops[tid], self.addresses[tid], self.works[tid]))
            for tid in range(self.num_cores)
        ]

    def stream_length(self, tid: int) -> int:
        return len(self.ops[tid])

    @property
    def total_records(self) -> int:
        return sum(len(ops) for ops in self.ops)

    @property
    def memory_accesses(self) -> int:
        return self._memory_accesses

    @property
    def instructions(self) -> int:
        """Total dynamic instructions: one per record plus its work cycles."""
        return self._instructions

    def footprint_lines(self) -> int:
        """Number of distinct cache lines touched (working-set proxy)."""
        return self._footprint_lines


class AddressSpace:
    """Page-aligned bump allocator for workload data structures.

    Allocations are page aligned so R-NUCA's page-granularity classification
    sees clean private/shared boundaries.  The base is placed high enough to
    stay clear of address 0 (which reads as zero-initialized memory anyway).
    """

    _BASE = 1 << 30

    def __init__(self, page_size: int = addrmod.DEFAULT_PAGE_SIZE) -> None:
        self.page_size = page_size
        self._next = self._BASE
        self.regions: dict[str, tuple[int, int]] = {}

    def alloc(self, name: str, nbytes: int) -> int:
        """Reserve ``nbytes`` on fresh pages; return the base address."""
        if nbytes <= 0:
            raise TraceError(f"allocation {name!r} must be positive, got {nbytes}")
        if name in self.regions:
            raise TraceError(f"duplicate allocation {name!r}")
        base = addrmod.align_up(self._next, self.page_size)
        self._next = base + nbytes
        self.regions[name] = (base, nbytes)
        return base

    def alloc_words(self, name: str, nwords: int) -> int:
        return self.alloc(name, nwords * addrmod.WORD_SIZE)


class ThreadProgram:
    """Per-thread trace recorder handed to workload kernels.

    The kernel-facing API (``work``/``read``/``write``/``read_words``/
    ``write_words``/``lock``/``unlock``) is unchanged from the tuple era;
    records now append straight into the three column arrays.
    """

    __slots__ = ("tid", "_ops", "_addresses", "_works", "_pending_work")

    def __init__(self, tid: int) -> None:
        self.tid = tid
        self._ops = array("q")
        self._addresses = array("q")
        self._works = array("q")
        self._pending_work = 0

    # ------------------------------------------------------------------
    def _append(self, op: int, address: int, work: int) -> None:
        self._ops.append(op)
        self._addresses.append(address)
        self._works.append(work)

    def work(self, cycles: int) -> None:
        """Execute ``cycles`` of pure compute before the next reference."""
        if cycles < 0:
            raise TraceError(f"negative work {cycles}")
        self._pending_work += cycles

    def read(self, address: int) -> None:
        self._append(_OP_READ, address, self._pending_work)
        self._pending_work = 0

    def write(self, address: int) -> None:
        self._append(_OP_WRITE, address, self._pending_work)
        self._pending_work = 0

    def read_words(self, base: int, count: int, stride_words: int = 1) -> None:
        """Read ``count`` words starting at ``base`` (stride in words)."""
        step = stride_words * addrmod.WORD_SIZE
        address = base
        ops, addresses, works = self._ops, self._addresses, self._works
        for _ in range(count):
            ops.append(_OP_READ)
            addresses.append(address)
            works.append(self._pending_work)
            self._pending_work = 0
            address += step

    def write_words(self, base: int, count: int, stride_words: int = 1) -> None:
        step = stride_words * addrmod.WORD_SIZE
        address = base
        ops, addresses, works = self._ops, self._addresses, self._works
        for _ in range(count):
            ops.append(_OP_WRITE)
            addresses.append(address)
            works.append(self._pending_work)
            self._pending_work = 0
            address += step

    def lock(self, lock_id: int) -> None:
        self._append(_OP_LOCK, lock_id, self._pending_work)
        self._pending_work = 0

    def unlock(self, lock_id: int) -> None:
        self._append(_OP_UNLOCK, lock_id, self._pending_work)
        self._pending_work = 0

    def _barrier(self, barrier_id: int) -> None:
        self._append(_OP_BARRIER, barrier_id, self._pending_work)
        self._pending_work = 0

    def _finish(self) -> TraceColumns:
        if self._pending_work:
            self._append(_OP_WORK, 0, self._pending_work)
            self._pending_work = 0
        return self._ops, self._addresses, self._works


class TraceBuilder:
    """Builds a validated ``Trace`` from per-thread programs."""

    def __init__(self, name: str, num_cores: int) -> None:
        if num_cores <= 0:
            raise TraceError(f"num_cores must be positive, got {num_cores}")
        self.name = name
        self.num_cores = num_cores
        self.threads = [ThreadProgram(tid) for tid in range(num_cores)]
        self.address_space = AddressSpace()
        self._next_barrier = 0

    def thread(self, tid: int) -> ThreadProgram:
        return self.threads[tid]

    def barrier_all(self) -> None:
        """Emit one barrier that every thread participates in."""
        barrier_id = self._next_barrier
        self._next_barrier += 1
        for program in self.threads:
            program._barrier(barrier_id)

    def build(self) -> Trace:
        columns = [program._finish() for program in self.threads]
        return Trace.from_columns(
            self.name,
            self.num_cores,
            [c[0] for c in columns],
            [c[1] for c in columns],
            [c[2] for c in columns],
        )
