"""Workload trace framework.

The paper drives its evaluation with 21 parallel benchmarks executed on the
Graphite simulator.  We reproduce each benchmark as a *trace generator*: a
deterministic kernel that performs the same algorithmic skeleton (blocked LU,
radix-sort phases, label propagation, k-median rounds, ...) against a
simulated shared address space and records, per thread:

* READ/WRITE references (byte addresses),
* interleaved compute (``work`` cycles between references),
* synchronization (barriers and locks).

The coherence protocol only ever observes this reference stream, so
preserving the *access pattern* (sharing degree, per-line reuse, working-set
pressure, read/write mix) preserves everything the locality classifier
reacts to.

Conventions:

* every thread participates in every barrier, in the same order;
* lock/unlock pairs are balanced per thread;
* private per-thread data is allocated on thread-specific pages so R-NUCA
  classifies it private; shared structures live on shared pages.
"""

from __future__ import annotations

from repro.common import addr as addrmod
from repro.common.errors import TraceError
from repro.common.types import Op

#: Trace records are plain tuples for speed: (op, address, work_before).
TraceRecord = tuple[int, int, int]


class Trace:
    """An immutable multithreaded memory-access trace."""

    def __init__(self, name: str, num_cores: int, per_core: list[list[TraceRecord]]) -> None:
        if len(per_core) != num_cores:
            raise TraceError(
                f"trace {name!r} has {len(per_core)} streams for {num_cores} cores"
            )
        self.name = name
        self.num_cores = num_cores
        self.per_core = per_core
        self._validate()

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        barrier_seqs: list[tuple[int, ...]] = []
        for tid, stream in enumerate(self.per_core):
            barriers: list[int] = []
            lock_depth: dict[int, int] = {}
            for op, address, work in stream:
                if work < 0:
                    raise TraceError(f"thread {tid}: negative work {work}")
                if address < 0 or address > addrmod.MAX_ADDRESS:
                    raise TraceError(f"thread {tid}: address {address:#x} out of range")
                if op == Op.BARRIER:
                    barriers.append(address)
                elif op == Op.LOCK:
                    lock_depth[address] = lock_depth.get(address, 0) + 1
                elif op == Op.UNLOCK:
                    depth = lock_depth.get(address, 0) - 1
                    if depth < 0:
                        raise TraceError(f"thread {tid}: unlock of free lock {address}")
                    lock_depth[address] = depth
                elif op not in (Op.READ, Op.WRITE, Op.WORK):
                    raise TraceError(f"thread {tid}: unknown opcode {op}")
            if any(depth != 0 for depth in lock_depth.values()):
                raise TraceError(f"thread {tid}: unbalanced lock/unlock")
            barrier_seqs.append(tuple(barriers))
        if len(set(barrier_seqs)) > 1:
            raise TraceError(
                f"trace {self.name!r}: threads disagree on barrier sequence "
                f"(every thread must hit every barrier, in order)"
            )

    # ------------------------------------------------------------------
    @property
    def total_records(self) -> int:
        return sum(len(stream) for stream in self.per_core)

    @property
    def memory_accesses(self) -> int:
        return sum(
            1 for stream in self.per_core for op, _, _ in stream if op in (Op.READ, Op.WRITE)
        )

    @property
    def instructions(self) -> int:
        """Total dynamic instructions: one per record plus its work cycles."""
        return sum(
            work + (1 if op != Op.WORK else 0)
            for stream in self.per_core
            for op, _, work in stream
        )

    def footprint_lines(self) -> int:
        """Number of distinct cache lines touched (working-set proxy)."""
        lines = {
            address >> addrmod.LINE_BITS
            for stream in self.per_core
            for op, address, _ in stream
            if op in (Op.READ, Op.WRITE)
        }
        return len(lines)


class AddressSpace:
    """Page-aligned bump allocator for workload data structures.

    Allocations are page aligned so R-NUCA's page-granularity classification
    sees clean private/shared boundaries.  The base is placed high enough to
    stay clear of address 0 (which reads as zero-initialized memory anyway).
    """

    _BASE = 1 << 30

    def __init__(self, page_size: int = addrmod.DEFAULT_PAGE_SIZE) -> None:
        self.page_size = page_size
        self._next = self._BASE
        self.regions: dict[str, tuple[int, int]] = {}

    def alloc(self, name: str, nbytes: int) -> int:
        """Reserve ``nbytes`` on fresh pages; return the base address."""
        if nbytes <= 0:
            raise TraceError(f"allocation {name!r} must be positive, got {nbytes}")
        if name in self.regions:
            raise TraceError(f"duplicate allocation {name!r}")
        base = addrmod.align_up(self._next, self.page_size)
        self._next = base + nbytes
        self.regions[name] = (base, nbytes)
        return base

    def alloc_words(self, name: str, nwords: int) -> int:
        return self.alloc(name, nwords * addrmod.WORD_SIZE)


class ThreadProgram:
    """Per-thread trace recorder handed to workload kernels."""

    __slots__ = ("tid", "_records", "_pending_work")

    def __init__(self, tid: int) -> None:
        self.tid = tid
        self._records: list[TraceRecord] = []
        self._pending_work = 0

    # ------------------------------------------------------------------
    def work(self, cycles: int) -> None:
        """Execute ``cycles`` of pure compute before the next reference."""
        if cycles < 0:
            raise TraceError(f"negative work {cycles}")
        self._pending_work += cycles

    def read(self, address: int) -> None:
        self._records.append((Op.READ, address, self._pending_work))
        self._pending_work = 0

    def write(self, address: int) -> None:
        self._records.append((Op.WRITE, address, self._pending_work))
        self._pending_work = 0

    def read_words(self, base: int, count: int, stride_words: int = 1) -> None:
        """Read ``count`` words starting at ``base`` (stride in words)."""
        step = stride_words * addrmod.WORD_SIZE
        address = base
        append = self._records.append
        for _ in range(count):
            append((Op.READ, address, self._pending_work))
            self._pending_work = 0
            address += step

    def write_words(self, base: int, count: int, stride_words: int = 1) -> None:
        step = stride_words * addrmod.WORD_SIZE
        address = base
        append = self._records.append
        for _ in range(count):
            append((Op.WRITE, address, self._pending_work))
            self._pending_work = 0
            address += step

    def lock(self, lock_id: int) -> None:
        self._records.append((Op.LOCK, lock_id, self._pending_work))
        self._pending_work = 0

    def unlock(self, lock_id: int) -> None:
        self._records.append((Op.UNLOCK, lock_id, self._pending_work))
        self._pending_work = 0

    def _barrier(self, barrier_id: int) -> None:
        self._records.append((Op.BARRIER, barrier_id, self._pending_work))
        self._pending_work = 0

    def _finish(self) -> list[TraceRecord]:
        if self._pending_work:
            self._records.append((Op.WORK, 0, self._pending_work))
            self._pending_work = 0
        return self._records


class TraceBuilder:
    """Builds a validated ``Trace`` from per-thread programs."""

    def __init__(self, name: str, num_cores: int) -> None:
        if num_cores <= 0:
            raise TraceError(f"num_cores must be positive, got {num_cores}")
        self.name = name
        self.num_cores = num_cores
        self.threads = [ThreadProgram(tid) for tid in range(num_cores)]
        self.address_space = AddressSpace()
        self._next_barrier = 0

    def thread(self, tid: int) -> ThreadProgram:
        return self.threads[tid]

    def barrier_all(self) -> None:
        """Emit one barrier that every thread participates in."""
        barrier_id = self._next_barrier
        self._next_barrier += 1
        for program in self.threads:
            program._barrier(barrier_id)

    def build(self) -> Trace:
        per_core = [program._finish() for program in self.threads]
        return Trace(self.name, self.num_cores, per_core)
