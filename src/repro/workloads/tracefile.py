"""Trace file I/O: persist and reload multithreaded memory-access traces.

Two interchangeable on-disk formats, both self-describing and validated on
load through the normal ``Trace`` constructor:

* **text** (``.trace``) - a line-oriented format meant for humans and for
  bringing external traces into the simulator.  A header line declares the
  trace, then one record per line::

      #trace <name> cores=<n> version=1
      T<tid> R <address> [work]     # read
      T<tid> W <address> [work]     # write
      T<tid> B <barrier-id> [work]  # barrier
      T<tid> L <lock-id> [work]     # lock
      T<tid> U <lock-id> [work]     # unlock
      T<tid> K <cycles>             # pure compute (work)

  Addresses and ids accept decimal or ``0x`` hex; blank lines and ``#``
  comments are ignored.  Records may be interleaved across threads in any
  order - each thread's records keep their relative order.

* **binary** (``.traceb``) - a compact struct-packed format for large
  generated traces (5 bytes fixed header per record stream + 13 bytes per
  record), roughly 6x smaller than text and much faster to parse.

Round-tripping through either format reproduces the trace exactly
(``trace_equal`` checks record-for-record equality).
"""

from __future__ import annotations

import io
import pathlib
import struct

from repro.common.errors import TraceError
from repro.common.types import Op
from repro.workloads.base import Trace, TraceRecord

#: Current file-format version (both formats).
FORMAT_VERSION = 1

_TEXT_OPCODES = {
    "R": int(Op.READ),
    "W": int(Op.WRITE),
    "B": int(Op.BARRIER),
    "L": int(Op.LOCK),
    "U": int(Op.UNLOCK),
    "K": int(Op.WORK),
}
_TEXT_MNEMONICS = {v: k for k, v in _TEXT_OPCODES.items()}

_BINARY_MAGIC = b"RPTR"
#: Per-record packing: opcode (u8), address (u64), work (u32).
_RECORD = struct.Struct("<BQI")
#: File header: magic, version (u16), num_cores (u16), name length (u16).
_HEADER = struct.Struct("<4sHHH")
#: Per-stream header: record count (u64).
_STREAM = struct.Struct("<Q")


# ----------------------------------------------------------------------
# Text format
# ----------------------------------------------------------------------
def save_trace_text(trace: Trace, path: str | pathlib.Path) -> None:
    """Write ``trace`` to ``path`` in the line-oriented text format."""
    out = io.StringIO()
    out.write(f"#trace {trace.name} cores={trace.num_cores} version={FORMAT_VERSION}\n")
    for tid, stream in enumerate(trace.per_core):
        for op, address, work in stream:
            mnemonic = _TEXT_MNEMONICS[int(op)]
            if mnemonic == "K":
                out.write(f"T{tid} K {work}\n")
            elif work:
                out.write(f"T{tid} {mnemonic} {address:#x} {work}\n")
            else:
                out.write(f"T{tid} {mnemonic} {address:#x}\n")
    pathlib.Path(path).write_text(out.getvalue())


def _parse_int(token: str, what: str, line_no: int) -> int:
    try:
        return int(token, 0)  # handles decimal and 0x-prefixed hex
    except ValueError:
        raise TraceError(f"line {line_no}: invalid {what} {token!r}") from None


def load_trace_text(path: str | pathlib.Path) -> Trace:
    """Parse a text trace file; raises :class:`TraceError` on malformed input."""
    lines = pathlib.Path(path).read_text().splitlines()
    name: str | None = None
    num_cores = 0
    streams: list[list[TraceRecord]] = []
    for line_no, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip() if not raw.startswith("#trace") else raw
        if not line:
            continue
        if line.startswith("#trace"):
            if name is not None:
                raise TraceError(f"line {line_no}: duplicate #trace header")
            parts = line.split()
            if len(parts) < 3:
                raise TraceError(f"line {line_no}: malformed #trace header")
            name = parts[1]
            fields = dict(p.split("=", 1) for p in parts[2:] if "=" in p)
            if "cores" not in fields:
                raise TraceError(f"line {line_no}: #trace header missing cores=")
            num_cores = _parse_int(fields["cores"], "core count", line_no)
            version = _parse_int(fields.get("version", "1"), "version", line_no)
            if version != FORMAT_VERSION:
                raise TraceError(
                    f"line {line_no}: unsupported trace version {version} "
                    f"(this build reads version {FORMAT_VERSION})"
                )
            if num_cores <= 0:
                raise TraceError(f"line {line_no}: cores must be positive")
            streams = [[] for _ in range(num_cores)]
            continue
        if name is None:
            raise TraceError(f"line {line_no}: record before #trace header")
        parts = line.split()
        if len(parts) < 2 or not parts[0].startswith("T"):
            raise TraceError(f"line {line_no}: malformed record {line!r}")
        tid = _parse_int(parts[0][1:], "thread id", line_no)
        if not 0 <= tid < num_cores:
            raise TraceError(f"line {line_no}: thread id {tid} out of range (cores={num_cores})")
        mnemonic = parts[1].upper()
        opcode = _TEXT_OPCODES.get(mnemonic)
        if opcode is None:
            raise TraceError(f"line {line_no}: unknown opcode {parts[1]!r}")
        if mnemonic == "K":
            if len(parts) != 3:
                raise TraceError(f"line {line_no}: K takes exactly one operand (cycles)")
            work = _parse_int(parts[2], "work cycles", line_no)
            streams[tid].append((opcode, 0, work))
            continue
        if len(parts) not in (3, 4):
            raise TraceError(f"line {line_no}: expected 'T<tid> {mnemonic} <operand> [work]'")
        address = _parse_int(parts[2], "address", line_no)
        work = _parse_int(parts[3], "work cycles", line_no) if len(parts) == 4 else 0
        streams[tid].append((opcode, address, work))
    if name is None:
        raise TraceError("trace file has no #trace header")
    return Trace(name, num_cores, streams)


# ----------------------------------------------------------------------
# Binary format
# ----------------------------------------------------------------------
def save_trace_binary(trace: Trace, path: str | pathlib.Path) -> None:
    """Write ``trace`` to ``path`` in the compact binary format."""
    name_bytes = trace.name.encode("utf-8")
    if len(name_bytes) > 0xFFFF:
        raise TraceError(f"trace name too long ({len(name_bytes)} bytes)")
    out = io.BytesIO()
    out.write(_HEADER.pack(_BINARY_MAGIC, FORMAT_VERSION, trace.num_cores, len(name_bytes)))
    out.write(name_bytes)
    pack = _RECORD.pack
    for stream in trace.per_core:
        out.write(_STREAM.pack(len(stream)))
        for op, address, work in stream:
            out.write(pack(int(op), address, work))
    pathlib.Path(path).write_bytes(out.getvalue())


def load_trace_binary(path: str | pathlib.Path) -> Trace:
    """Read a binary trace file; raises :class:`TraceError` on corruption."""
    blob = pathlib.Path(path).read_bytes()
    if len(blob) < _HEADER.size:
        raise TraceError(f"{path}: truncated header ({len(blob)} bytes)")
    magic, version, num_cores, name_len = _HEADER.unpack_from(blob, 0)
    if magic != _BINARY_MAGIC:
        raise TraceError(f"{path}: not a binary trace file (bad magic {magic!r})")
    if version != FORMAT_VERSION:
        raise TraceError(
            f"{path}: unsupported trace version {version} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    offset = _HEADER.size
    name = blob[offset : offset + name_len].decode("utf-8")
    offset += name_len
    streams: list[list[TraceRecord]] = []
    unpack_stream = _STREAM.unpack_from
    unpack_record = _RECORD.unpack_from
    for _tid in range(num_cores):
        if offset + _STREAM.size > len(blob):
            raise TraceError(f"{path}: truncated stream header for thread {_tid}")
        (count,) = unpack_stream(blob, offset)
        offset += _STREAM.size
        needed = count * _RECORD.size
        if offset + needed > len(blob):
            raise TraceError(f"{path}: truncated records for thread {_tid}")
        stream: list[TraceRecord] = []
        append = stream.append
        for _ in range(count):
            op, address, work = unpack_record(blob, offset)
            offset += _RECORD.size
            append((op, address, work))
        streams.append(stream)
    if offset != len(blob):
        raise TraceError(f"{path}: {len(blob) - offset} trailing bytes after last stream")
    return Trace(name, num_cores, streams)


# ----------------------------------------------------------------------
# Format dispatch + utilities
# ----------------------------------------------------------------------
def save_trace(trace: Trace, path: str | pathlib.Path) -> None:
    """Save by extension: ``.traceb`` is binary, anything else is text."""
    if str(path).endswith(".traceb"):
        save_trace_binary(trace, path)
    else:
        save_trace_text(trace, path)


def load_trace(path: str | pathlib.Path) -> Trace:
    """Load by content: binary magic wins, otherwise parse as text."""
    p = pathlib.Path(path)
    with p.open("rb") as fh:
        magic = fh.read(len(_BINARY_MAGIC))
    if magic == _BINARY_MAGIC:
        return load_trace_binary(p)
    return load_trace_text(p)


def trace_equal(a: Trace, b: Trace) -> bool:
    """Record-for-record equality (names included)."""
    if a.name != b.name or a.num_cores != b.num_cores:
        return False
    for sa, sb in zip(a.per_core, b.per_core):
        if len(sa) != len(sb):
            return False
        for ra, rb in zip(sa, sb):
            if (int(ra[0]), ra[1], ra[2]) != (int(rb[0]), rb[1], rb[2]):
                return False
    return True


def trace_summary(trace: Trace) -> dict[str, int]:
    """Scalar description used by the CLI's ``trace stats`` command."""
    reads = writes = barriers = locks = 0
    for stream in trace.per_core:
        for op, _address, _work in stream:
            if op == Op.READ:
                reads += 1
            elif op == Op.WRITE:
                writes += 1
            elif op == Op.BARRIER:
                barriers += 1
            elif op == Op.LOCK:
                locks += 1
    return {
        "cores": trace.num_cores,
        "records": trace.total_records,
        "reads": reads,
        "writes": writes,
        "barriers_per_thread": barriers // max(1, trace.num_cores),
        "lock_acquisitions": locks,
        "instructions": trace.instructions,
        "footprint_lines": trace.footprint_lines(),
    }
