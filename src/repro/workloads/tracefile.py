"""Trace file I/O: persist and reload multithreaded memory-access traces.

Three interchangeable on-disk formats, all self-describing and validated on
load through the normal ``Trace`` construction path:

* **text** (``.trace``) - a line-oriented format meant for humans and for
  bringing external traces into the simulator.  A header line declares the
  trace, then one record per line::

      #trace <name> cores=<n> version=1
      T<tid> R <address> [work]     # read
      T<tid> W <address> [work]     # write
      T<tid> B <barrier-id> [work]  # barrier
      T<tid> L <lock-id> [work]     # lock
      T<tid> U <lock-id> [work]     # unlock
      T<tid> K <cycles>             # pure compute (work)

  Addresses and ids accept decimal or ``0x`` hex; blank lines and ``#``
  comments are ignored.  Records may be interleaved across threads in any
  order - each thread's records keep their relative order.

* **binary v2** (``.traceb``, the current write format) - the columnar IR
  laid out verbatim: after the header, each core's stream is a record count
  followed by three contiguous little-endian ``int64`` blocks (ops,
  addresses, works).  Loading memory-maps the file and bulk-copies each
  block straight into the IR's ``array('q')`` columns - no per-record
  parsing at all, which makes loading a multi-million-record trace a few
  ``memcpy``-sized operations.

* **binary v1** (legacy ``.traceb``) - the original struct-packed
  record-at-a-time format (13 bytes per record).  Still readable; new
  files are always written as v2.

Round-tripping through any format reproduces the trace exactly
(``trace_equal`` checks record-for-record equality).
"""

from __future__ import annotations

import io
import mmap
import pathlib
import struct
import sys
from array import array

from repro.common.errors import TraceError
from repro.common.types import Op
from repro.workloads.base import Trace, TraceRecord

#: Current text-format version.
FORMAT_VERSION = 1
#: Current binary-format version (v2 = columnar; v1 = packed records).
BINARY_FORMAT_VERSION = 2

_TEXT_OPCODES = {
    "R": int(Op.READ),
    "W": int(Op.WRITE),
    "B": int(Op.BARRIER),
    "L": int(Op.LOCK),
    "U": int(Op.UNLOCK),
    "K": int(Op.WORK),
}
_TEXT_MNEMONICS = {v: k for k, v in _TEXT_OPCODES.items()}

_BINARY_MAGIC = b"RPTR"
#: v1 per-record packing: opcode (u8), address (u64), work (u32).
_RECORD = struct.Struct("<BQI")
#: File header: magic, version (u16), num_cores (u16), name length (u16).
_HEADER = struct.Struct("<4sHHH")
#: Per-stream header: record count (u64).
_STREAM = struct.Struct("<Q")

_WORD_BYTES = 8  # int64 column cells


# ----------------------------------------------------------------------
# Text format
# ----------------------------------------------------------------------
def save_trace_text(trace: Trace, path: str | pathlib.Path) -> None:
    """Write ``trace`` to ``path`` in the line-oriented text format."""
    out = io.StringIO()
    out.write(f"#trace {trace.name} cores={trace.num_cores} version={FORMAT_VERSION}\n")
    for tid in range(trace.num_cores):
        ops = trace.ops[tid]
        addresses = trace.addresses[tid]
        works = trace.works[tid]
        for i in range(len(ops)):
            mnemonic = _TEXT_MNEMONICS[ops[i]]
            work = works[i]
            if mnemonic == "K":
                out.write(f"T{tid} K {work}\n")
            elif work:
                out.write(f"T{tid} {mnemonic} {addresses[i]:#x} {work}\n")
            else:
                out.write(f"T{tid} {mnemonic} {addresses[i]:#x}\n")
    pathlib.Path(path).write_text(out.getvalue())


def _parse_int(token: str, what: str, line_no: int) -> int:
    try:
        return int(token, 0)  # handles decimal and 0x-prefixed hex
    except ValueError:
        raise TraceError(f"line {line_no}: invalid {what} {token!r}") from None


def load_trace_text(path: str | pathlib.Path) -> Trace:
    """Parse a text trace file; raises :class:`TraceError` on malformed input."""
    lines = pathlib.Path(path).read_text().splitlines()
    name: str | None = None
    num_cores = 0
    streams: list[list[TraceRecord]] = []
    for line_no, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip() if not raw.startswith("#trace") else raw
        if not line:
            continue
        if line.startswith("#trace"):
            if name is not None:
                raise TraceError(f"line {line_no}: duplicate #trace header")
            parts = line.split()
            if len(parts) < 3:
                raise TraceError(f"line {line_no}: malformed #trace header")
            name = parts[1]
            fields = dict(p.split("=", 1) for p in parts[2:] if "=" in p)
            if "cores" not in fields:
                raise TraceError(f"line {line_no}: #trace header missing cores=")
            num_cores = _parse_int(fields["cores"], "core count", line_no)
            version = _parse_int(fields.get("version", "1"), "version", line_no)
            if version != FORMAT_VERSION:
                raise TraceError(
                    f"line {line_no}: unsupported trace version {version} "
                    f"(this build reads version {FORMAT_VERSION})"
                )
            if num_cores <= 0:
                raise TraceError(f"line {line_no}: cores must be positive")
            streams = [[] for _ in range(num_cores)]
            continue
        if name is None:
            raise TraceError(f"line {line_no}: record before #trace header")
        parts = line.split()
        if len(parts) < 2 or not parts[0].startswith("T"):
            raise TraceError(f"line {line_no}: malformed record {line!r}")
        tid = _parse_int(parts[0][1:], "thread id", line_no)
        if not 0 <= tid < num_cores:
            raise TraceError(f"line {line_no}: thread id {tid} out of range (cores={num_cores})")
        mnemonic = parts[1].upper()
        opcode = _TEXT_OPCODES.get(mnemonic)
        if opcode is None:
            raise TraceError(f"line {line_no}: unknown opcode {parts[1]!r}")
        if mnemonic == "K":
            if len(parts) != 3:
                raise TraceError(f"line {line_no}: K takes exactly one operand (cycles)")
            work = _parse_int(parts[2], "work cycles", line_no)
            streams[tid].append((opcode, 0, work))
            continue
        if len(parts) not in (3, 4):
            raise TraceError(f"line {line_no}: expected 'T<tid> {mnemonic} <operand> [work]'")
        address = _parse_int(parts[2], "address", line_no)
        work = _parse_int(parts[3], "work cycles", line_no) if len(parts) == 4 else 0
        streams[tid].append((opcode, address, work))
    if name is None:
        raise TraceError("trace file has no #trace header")
    return Trace(name, num_cores, streams)


# ----------------------------------------------------------------------
# Binary format
# ----------------------------------------------------------------------
def _column_bytes(column: array) -> bytes:
    """Raw little-endian bytes of an int64 column (swap on BE hosts)."""
    if sys.byteorder == "big":  # pragma: no cover - exotic hosts
        swapped = array("q", column)
        swapped.byteswap()
        return swapped.tobytes()
    return column.tobytes()


def _column_from_bytes(buffer) -> array:
    """Adopt a little-endian int64 block as an ``array('q')`` column."""
    column = array("q")
    column.frombytes(buffer)
    if sys.byteorder == "big":  # pragma: no cover - exotic hosts
        column.byteswap()
    return column


def save_trace_binary(trace: Trace, path: str | pathlib.Path) -> None:
    """Write ``trace`` to ``path`` in the columnar binary v2 format."""
    name_bytes = trace.name.encode("utf-8")
    if len(name_bytes) > 0xFFFF:
        raise TraceError(f"trace name too long ({len(name_bytes)} bytes)")
    out = io.BytesIO()
    out.write(
        _HEADER.pack(_BINARY_MAGIC, BINARY_FORMAT_VERSION, trace.num_cores, len(name_bytes))
    )
    out.write(name_bytes)
    for tid in range(trace.num_cores):
        out.write(_STREAM.pack(len(trace.ops[tid])))
        out.write(_column_bytes(trace.ops[tid]))
        out.write(_column_bytes(trace.addresses[tid]))
        out.write(_column_bytes(trace.works[tid]))
    pathlib.Path(path).write_bytes(out.getvalue())


def _load_binary_v1(path, blob, num_cores: int, name: str, offset: int) -> Trace:
    """Legacy record-at-a-time payload (13 bytes per record)."""
    streams: list[list[TraceRecord]] = []
    unpack_stream = _STREAM.unpack_from
    unpack_record = _RECORD.unpack_from
    for _tid in range(num_cores):
        if offset + _STREAM.size > len(blob):
            raise TraceError(f"{path}: truncated stream header for thread {_tid}")
        (count,) = unpack_stream(blob, offset)
        offset += _STREAM.size
        needed = count * _RECORD.size
        if offset + needed > len(blob):
            raise TraceError(f"{path}: truncated records for thread {_tid}")
        stream: list[TraceRecord] = []
        append = stream.append
        for _ in range(count):
            op, address, work = unpack_record(blob, offset)
            offset += _RECORD.size
            append((op, address, work))
        streams.append(stream)
    if offset != len(blob):
        raise TraceError(f"{path}: {len(blob) - offset} trailing bytes after last stream")
    return Trace(name, num_cores, streams)


def _load_binary_v2(path, blob, num_cores: int, name: str, offset: int) -> Trace:
    """Columnar payload: bulk-copy each int64 block into an IR column."""
    ops: list[array] = []
    addresses: list[array] = []
    works: list[array] = []
    view = memoryview(blob)
    unpack_stream = _STREAM.unpack_from
    try:
        for _tid in range(num_cores):
            if offset + _STREAM.size > len(blob):
                raise TraceError(f"{path}: truncated stream header for thread {_tid}")
            (count,) = unpack_stream(blob, offset)
            offset += _STREAM.size
            block = count * _WORD_BYTES
            if offset + 3 * block > len(blob):
                raise TraceError(f"{path}: truncated columns for thread {_tid}")
            ops.append(_column_from_bytes(view[offset : offset + block]))
            offset += block
            addresses.append(_column_from_bytes(view[offset : offset + block]))
            offset += block
            works.append(_column_from_bytes(view[offset : offset + block]))
            offset += block
        if offset != len(blob):
            raise TraceError(f"{path}: {len(blob) - offset} trailing bytes after last stream")
    finally:
        # A raising path would otherwise pin the view in the traceback
        # frame, making the caller's mmap unclosable.
        view.release()
    return Trace.from_columns(name, num_cores, ops, addresses, works)


def load_trace_binary(path: str | pathlib.Path) -> Trace:
    """Read a binary trace file (v1 or v2); raises :class:`TraceError` on
    corruption.  v2 files are memory-mapped so the column blocks flow into
    the IR without per-record parsing."""
    p = pathlib.Path(path)
    with p.open("rb") as fh:
        try:
            mm = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):  # empty file or mmap-hostile FS
            mm = None
        blob = mm if mm is not None else fh.read()
        try:
            if len(blob) < _HEADER.size:
                raise TraceError(f"{path}: truncated header ({len(blob)} bytes)")
            magic, version, num_cores, name_len = _HEADER.unpack_from(blob, 0)
            if magic != _BINARY_MAGIC:
                raise TraceError(f"{path}: not a binary trace file (bad magic {magic!r})")
            offset = _HEADER.size
            name = bytes(blob[offset : offset + name_len]).decode("utf-8")
            offset += name_len
            if version == 1:
                return _load_binary_v1(path, blob, num_cores, name, offset)
            if version == BINARY_FORMAT_VERSION:
                return _load_binary_v2(path, blob, num_cores, name, offset)
            raise TraceError(
                f"{path}: unsupported trace version {version} (this build reads "
                f"versions 1 and {BINARY_FORMAT_VERSION})"
            )
        finally:
            if mm is not None:
                mm.close()


# ----------------------------------------------------------------------
# Format dispatch + utilities
# ----------------------------------------------------------------------
def save_trace(trace: Trace, path: str | pathlib.Path) -> None:
    """Save by extension: ``.traceb`` is binary, anything else is text."""
    if str(path).endswith(".traceb"):
        save_trace_binary(trace, path)
    else:
        save_trace_text(trace, path)


def load_trace(path: str | pathlib.Path) -> Trace:
    """Load by content: binary magic wins, otherwise parse as text."""
    p = pathlib.Path(path)
    with p.open("rb") as fh:
        magic = fh.read(len(_BINARY_MAGIC))
    if magic == _BINARY_MAGIC:
        return load_trace_binary(p)
    return load_trace_text(p)


def trace_equal(a: Trace, b: Trace) -> bool:
    """Record-for-record equality (names included)."""
    if a.name != b.name or a.num_cores != b.num_cores:
        return False
    return a.ops == b.ops and a.addresses == b.addresses and a.works == b.works


def trace_summary(trace: Trace) -> dict[str, int]:
    """Scalar description used by the CLI's ``trace stats`` command."""
    reads = writes = barriers = locks = 0
    op_read, op_write = int(Op.READ), int(Op.WRITE)
    op_barrier, op_lock = int(Op.BARRIER), int(Op.LOCK)
    for ops in trace.ops:
        for op in ops:
            if op == op_read:
                reads += 1
            elif op == op_write:
                writes += 1
            elif op == op_barrier:
                barriers += 1
            elif op == op_lock:
                locks += 1
    return {
        "cores": trace.num_cores,
        "records": trace.total_records,
        "reads": reads,
        "writes": writes,
        "barriers_per_thread": barriers // max(1, trace.num_cores),
        "lock_acquisitions": locks,
        "instructions": trace.instructions,
        "footprint_lines": trace.footprint_lines(),
    }
