"""tsp, dfs and matrix-multiply workload kernels (Table 2)."""

from __future__ import annotations

from repro.common.params import ArchConfig
from repro.common.rng import make_rng
from repro.workloads.base import Trace, TraceBuilder
from repro.workloads.patterns import LINE, chunk_range, hot_loop, line_visit, stream_scan


def build_tsp(
    arch: ArchConfig,
    expansions_per_thread: int = 72,
    update_period: int = 9,
) -> Trace:
    """Travelling salesman branch-and-bound (Table 2: 16 cities).

    Every node expansion reads the shared best-bound line; improving threads
    rewrite it, invalidating all 63 other readers (an ACKwise broadcast
    storm at baseline).  Readers accumulate only 1-2 uses between updates,
    so the adaptive protocol pins the bound at its home slice and converts
    the invalidation storms into word reads - the paper's L2-to-sharers
    latency win.
    """
    n = arch.num_cores
    tb = TraceBuilder("tsp", n)
    bound = tb.address_space.alloc("bound", LINE)
    stacks = [tb.address_space.alloc(f"stack{t}", 12 * LINE) for t in range(n)]

    for tid in range(n):
        tp = tb.thread(tid)
        rng = make_rng("tsp", tid)
        for step in range(expansions_per_thread):
            tp.work(5)
            tp.read(bound)  # prune check on every expansion
            # Private tour stack: push/pop with high reuse.
            line_visit(tp, stacks[tid] + (step % 12) * LINE, uses=6,
                       write_fraction=0.5, rng=rng, work_per_use=4)
            if step % update_period == (tid % update_period):
                tp.lock(0)
                tp.read(bound)
                tp.write(bound)  # new incumbent: invalidates all readers
                tp.unlock(0)
    tb.barrier_all()
    return tb.build()


def build_dfs(
    arch: ArchConfig,
    nodes_per_thread: int = 120,
    visited_lines: int = 2048,
    steal_period: int = 24,
) -> Trace:
    """Parallel depth-first search with work stealing (Table 2: 876800 nodes).

    The private DFS stack is hot; the shared visited array takes one write
    and a few scattered reads per node (write-once, utilization 1); work
    stealing synchronizes through a lock-protected counter.
    """
    n = arch.num_cores
    tb = TraceBuilder("dfs", n)
    visited = tb.address_space.alloc("visited", visited_lines * LINE)
    stacks = [tb.address_space.alloc(f"stack{t}", 8 * LINE) for t in range(n)]
    steal_counter = tb.address_space.alloc("steal", LINE)

    for tid in range(n):
        tp = tb.thread(tid)
        rng = make_rng("dfs", tid)
        node = rng.randrange(visited_lines)
        for step in range(nodes_per_thread):
            line_visit(tp, stacks[tid] + (step % 8) * LINE, uses=6,
                       write_fraction=0.5, rng=rng, work_per_use=5)
            if rng.random() >= 0.4:
                node = rng.randrange(visited_lines)
            tp.work(10)
            tp.read(visited + node * LINE)  # already visited?
            tp.write(visited + node * LINE)  # mark
            if step % steal_period == steal_period - 1:
                tp.lock(0)
                tp.read(steal_counter)
                tp.write(steal_counter)
                tp.unlock(0)
    tb.barrier_all()
    return tb.build()


def build_matmul(
    arch: ArchConfig,
    blocks_per_dim: int = 12,
    block_lines: int = 6,
    a_uses: int = 4,
    b_uses: int = 1,
    c_uses: int = 3,
) -> Trace:
    """Blocked matrix multiply (Table 2: 512x512).

    C(i,j) += A(i,k) * B(k,j): each thread owns a row segment of C blocks,
    so its A row panel is re-read for every owned j (capacity revisits) while
    the shared B column panels are streamed once per (core, block) - the
    low-utilization offenders that pollute the L1 at PCT=1 and convert to
    word accesses under the adaptive protocol.
    """
    n = arch.num_cores
    tb = TraceBuilder("matmul", n)
    a_blocks: dict[tuple[int, int], int] = {}
    b_blocks: dict[tuple[int, int], int] = {}
    c_blocks: dict[tuple[int, int], int] = {}
    for i in range(blocks_per_dim):
        for k in range(blocks_per_dim):
            a_blocks[(i, k)] = tb.address_space.alloc(f"A{i}_{k}", block_lines * LINE)
            b_blocks[(i, k)] = tb.address_space.alloc(f"B{i}_{k}", block_lines * LINE)
            c_blocks[(i, k)] = tb.address_space.alloc(f"C{i}_{k}", block_lines * LINE)

    total_blocks = blocks_per_dim * blocks_per_dim
    for tid in range(n):
        tp = tb.thread(tid)
        rng = make_rng("matmul", tid)
        for flat in chunk_range(total_blocks, n, tid):
            i, j = divmod(flat, blocks_per_dim)
            for k in range(blocks_per_dim):
                stream_scan(tp, a_blocks[(i, k)], block_lines, uses_per_line=a_uses,
                            work_per_use=8)
                stream_scan(tp, b_blocks[(k, j)], block_lines, uses_per_line=b_uses,
                            work_per_use=8)
                stream_scan(tp, c_blocks[(i, j)], block_lines, uses_per_line=c_uses,
                            write_fraction=0.5, rng=rng, work_per_use=8)
    tb.barrier_all()
    return tb.build()
