"""Reusable access-pattern building blocks for workload kernels.

Each helper emits references with a controlled *per-line utilization* - the
quantity the paper's classifier keys on.  A "visit" of ``uses`` references to
one line produces utilization ``uses`` when the line is later evicted or
invalidated, so kernels compose these helpers to place their data on the
private/remote boundary the way the real benchmarks do.
"""

from __future__ import annotations

import random

from repro.common import addr as addrmod
from repro.workloads.base import ThreadProgram

WORD = addrmod.WORD_SIZE
LINE = addrmod.LINE_SIZE
WORDS_PER_LINE = addrmod.WORDS_PER_LINE


def chunk_range(total: int, parts: int, index: int) -> range:
    """Split ``range(total)`` into ``parts`` contiguous chunks; return one."""
    base = total // parts
    extra = total % parts
    start = index * base + min(index, extra)
    size = base + (1 if index < extra else 0)
    return range(start, start + size)


def line_visit(
    tp: ThreadProgram,
    line_base: int,
    uses: int,
    write_fraction: float = 0.0,
    rng: random.Random | None = None,
    work_per_use: int = 2,
) -> None:
    """Touch one cache line ``uses`` times (sequential words, wrapping)."""
    for i in range(uses):
        tp.work(work_per_use)
        address = line_base + (i % WORDS_PER_LINE) * WORD
        if rng is not None and write_fraction > 0 and rng.random() < write_fraction:
            tp.write(address)
        else:
            tp.read(address)


def stream_scan(
    tp: ThreadProgram,
    base: int,
    num_lines: int,
    uses_per_line: int = 1,
    write_fraction: float = 0.0,
    rng: random.Random | None = None,
    work_per_use: int = 2,
    start_line: int = 0,
) -> None:
    """Stream over ``num_lines`` consecutive lines with a fixed per-line reuse.

    ``uses_per_line=1`` models a strided/streaming pattern (the classic
    low-locality offender that pollutes the L1); larger values model dense
    structure-of-arrays processing.
    """
    for i in range(num_lines):
        line_base = base + (start_line + i) * LINE
        line_visit(tp, line_base, uses_per_line, write_fraction, rng, work_per_use)


def hot_loop(
    tp: ThreadProgram,
    base: int,
    num_lines: int,
    passes: int,
    write_fraction: float = 0.0,
    rng: random.Random | None = None,
    work_per_use: int = 2,
) -> None:
    """Repeatedly sweep a small structure that fits in the L1.

    Produces very high per-line utilization (passes x uses), the signature
    of compute-bound kernels like water-spatial and susan.
    """
    for _ in range(passes):
        stream_scan(tp, base, num_lines, 1, write_fraction, rng, work_per_use)


def random_touches(
    tp: ThreadProgram,
    base: int,
    num_lines: int,
    touches: int,
    write_fraction: float,
    rng: random.Random,
    uses_per_touch: int = 1,
    work_per_use: int = 3,
) -> None:
    """Uniformly random line touches over a region (canneal/hash-table style).

    With a region much larger than the L1 every touch is a (capacity) miss
    and per-line utilization stays near ``uses_per_touch``.
    """
    for _ in range(touches):
        line = rng.randrange(num_lines)
        line_visit(tp, base + line * LINE, uses_per_touch, write_fraction, rng, work_per_use)
