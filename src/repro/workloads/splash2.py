"""SPLASH-2 workload kernels (Table 2).

Each kernel reproduces the *memory-reference skeleton* of its namesake:
the phase structure, sharing pattern and per-line utilization profile that
the locality classifier reacts to.  Problem sizes are scaled from Table 2
(see the registry) so a pure-Python simulation completes; DESIGN.md
documents the substitution.
"""

from __future__ import annotations

from repro.common.params import ArchConfig
from repro.common.rng import make_rng
from repro.workloads.base import Trace, TraceBuilder
from repro.workloads.patterns import LINE, chunk_range, hot_loop, line_visit, stream_scan


def build_radix(
    arch: ArchConfig,
    keys_per_thread: int = 256,
    bucket_lines: int = 4,
    passes: int = 2,
) -> Trace:
    """Parallel radix sort (Table 2: 1M integers, radix 1024).

    Three phases per digit pass: local histogram build (private, high
    reuse), global prefix over all threads' histograms (shared, read-once),
    and permutation writes scattered over a shared output array (write-once
    lines - the classic low-utilization sharing pattern).
    """
    n = arch.num_cores
    tb = TraceBuilder("radix", n)
    key_lines = max(1, keys_per_thread // 8)
    keys = [tb.address_space.alloc(f"keys{t}", key_lines * LINE) for t in range(n)]
    hists = [tb.address_space.alloc(f"hist{t}", bucket_lines * LINE) for t in range(n)]
    output = tb.address_space.alloc("output", n * key_lines * LINE)

    for pass_index in range(passes):
        # Phase 1: local histogram (read own keys once, hot histogram).
        for tid in range(n):
            tp = tb.thread(tid)
            stream_scan(tp, keys[tid], key_lines, uses_per_line=4, work_per_use=6)
            hot_loop(tp, hists[tid], bucket_lines, passes=6, write_fraction=0.5,
                     rng=make_rng("radix", pass_index, tid, "hist"), work_per_use=4)
        tb.barrier_all()
        # Phase 2: global prefix - each thread reads one line of every other
        # thread's histogram exactly once (utilization 1..2).
        for tid in range(n):
            tp = tb.thread(tid)
            target_line = (tid + pass_index) % bucket_lines
            for other in range(n):
                if other != tid:
                    line_visit(tp, hists[other] + target_line * LINE, uses=1, work_per_use=8)
        tb.barrier_all()
        # Phase 3: permute into the shared output array (scattered writes).
        for tid in range(n):
            tp = tb.thread(tid)
            rng = make_rng("radix", pass_index, tid, "permute")
            stream_scan(tp, keys[tid], key_lines, uses_per_line=4, work_per_use=6)
            for _ in range(key_lines):
                target = rng.randrange(n * key_lines)
                line_visit(tp, output + target * LINE, uses=6, write_fraction=1.0,
                           rng=rng, work_per_use=4)
        tb.barrier_all()
    return tb.build()


def build_lu(
    arch: ArchConfig,
    num_blocks: int = 14,
    block_lines: int = 8,
    update_uses: int = 3,
) -> Trace:
    """Blocked LU decomposition, non-contiguous blocks (Table 2: 512x512).

    Classic right-looking factorization: the diagonal-block owner
    factorizes (high reuse), perimeter owners stream the diagonal block
    (moderate reuse), interior owners stream two perimeter blocks and update
    their own blocks.  Each thread owns several interior blocks whose lines
    are revisited every round with utilization right at the PCT boundary
    (~3) - which is why lu-nc's completion time degrades past PCT 3 in the
    paper while its energy still improves.
    """
    n = arch.num_cores
    tb = TraceBuilder("lu-nc", n)
    blocks: dict[tuple[int, int], int] = {}
    for i in range(num_blocks):
        for j in range(num_blocks):
            blocks[(i, j)] = tb.address_space.alloc(f"blk{i}_{j}", block_lines * LINE)

    def owner(i: int, j: int) -> int:
        return (i * num_blocks + j) % n

    for k in range(num_blocks):
        diag_owner = owner(k, k)
        tp = tb.thread(diag_owner)
        hot_loop(tp, blocks[(k, k)], block_lines, passes=3, write_fraction=0.4,
                 rng=make_rng("lu", k, "diag"), work_per_use=8)
        tb.barrier_all()
        # Perimeter update: row k and column k blocks past the diagonal.
        for m in range(k + 1, num_blocks):
            for (bi, bj) in ((k, m), (m, k)):
                tp = tb.thread(owner(bi, bj))
                stream_scan(tp, blocks[(k, k)], block_lines, uses_per_line=2, work_per_use=8)
                stream_scan(tp, blocks[(bi, bj)], block_lines, uses_per_line=update_uses,
                            write_fraction=0.5, rng=make_rng("lu", k, bi, bj),
                            work_per_use=8)
        tb.barrier_all()
        # Interior update: trailing submatrix.
        for bi in range(k + 1, num_blocks):
            for bj in range(k + 1, num_blocks):
                tp = tb.thread(owner(bi, bj))
                stream_scan(tp, blocks[(bi, k)], block_lines, uses_per_line=2, work_per_use=8)
                stream_scan(tp, blocks[(k, bj)], block_lines, uses_per_line=2, work_per_use=8)
                dense = update_uses + 2 if (bi + bj) % 2 else update_uses
                stream_scan(tp, blocks[(bi, bj)], block_lines, uses_per_line=dense,
                            write_fraction=0.5, rng=make_rng("lu", k, bi, bj, "upd"),
                            work_per_use=8)
        tb.barrier_all()
    return tb.build()


def build_barnes(
    arch: ArchConfig,
    bodies_per_thread: int = 24,
    tree_lines: int = 340,
    iterations: int = 2,
) -> Trace:
    """Barnes-Hut N-body (Table 2: 16K particles).

    Force computation walks a shared octree: the root/top levels are read by
    every body of every thread (very high utilization - they stay private),
    deep nodes are touched once or twice per walk (low utilization).  Body
    state is thread-private with high reuse.  Tree build updates leaf nodes
    under coarse locks.
    """
    n = arch.num_cores
    tb = TraceBuilder("barnes", n)
    tree = tb.address_space.alloc("tree", tree_lines * LINE)
    bodies = [tb.address_space.alloc(f"bodies{t}", max(1, bodies_per_thread // 2) * LINE)
              for t in range(n)]
    top_lines = max(1, tree_lines // 64)
    mid_lines = max(1, tree_lines // 8)
    body_lines = max(1, bodies_per_thread // 2)

    for it in range(iterations):
        # Tree build: each thread inserts its bodies (leaf writes under lock).
        for tid in range(n):
            tp = tb.thread(tid)
            rng = make_rng("barnes", it, tid, "build")
            for _ in range(max(1, bodies_per_thread // 4)):
                lock_id = rng.randrange(4)
                tp.lock(lock_id)
                leaf = mid_lines + rng.randrange(tree_lines - mid_lines)
                line_visit(tp, tree + leaf * LINE, uses=2, write_fraction=0.5, rng=rng,
                           work_per_use=8)
                tp.unlock(lock_id)
        tb.barrier_all()
        # Force phase: walk root -> mid -> leaves for every body.
        for tid in range(n):
            tp = tb.thread(tid)
            rng = make_rng("barnes", it, tid, "force")
            for b in range(bodies_per_thread):
                line_visit(tp, tree + (b % top_lines) * LINE, uses=2, work_per_use=10)
                mid = top_lines + rng.randrange(mid_lines)
                line_visit(tp, tree + mid * LINE, uses=2, work_per_use=10)
                leaf = mid_lines + rng.randrange(tree_lines - mid_lines)
                leaf_uses = 1 if rng.random() < 0.5 else 4
                line_visit(tp, tree + leaf * LINE, uses=leaf_uses, work_per_use=10)
                line_visit(tp, bodies[tid] + (b % body_lines) * LINE, uses=2,
                           write_fraction=0.5, rng=rng, work_per_use=8)
        tb.barrier_all()
    return tb.build()


def build_ocean(
    arch: ArchConfig,
    rows_per_thread: int = 12,
    lines_per_row: int = 6,
    iterations: int = 3,
) -> Trace:
    """Ocean simulation, non-contiguous partitions (Table 2: 258x258 grid).

    Red-black stencil sweeps over a row-partitioned grid: interior rows are
    thread-private streams (capacity pressure), boundary rows are written by
    the owner every iteration and read by the neighbour - low-utilization
    sharing misses that the adaptive protocol converts to word accesses.
    """
    n = arch.num_cores
    tb = TraceBuilder("ocean-nc", n)
    region_lines = rows_per_thread * lines_per_row
    regions = [tb.address_space.alloc(f"rows{t}", region_lines * LINE) for t in range(n)]

    for it in range(iterations):
        for tid in range(n):
            tp = tb.thread(tid)
            rng = make_rng("ocean", it, tid)
            # Own rows: stencil read-modify-write, moderate reuse.
            half = region_lines // 2
            stream_scan(tp, regions[tid], half, uses_per_line=5,
                        write_fraction=0.35, rng=rng, work_per_use=5)
            stream_scan(tp, regions[tid], region_lines - half, uses_per_line=3,
                        write_fraction=0.35, rng=rng, work_per_use=5,
                        start_line=half)
            # Neighbour boundary rows: read the adjacent threads' edge rows.
            for neighbour, edge_row in ((tid - 1) % n, rows_per_thread - 1), ((tid + 1) % n, 0):
                stream_scan(tp, regions[neighbour], lines_per_row, uses_per_line=1,
                            start_line=edge_row * lines_per_row, work_per_use=8)
        tb.barrier_all()
    return tb.build()


def build_water_spatial(
    arch: ArchConfig,
    molecule_lines: int = 20,
    iterations: int = 18,
) -> Trace:
    """Water-spatial (Table 2: 512 molecules).

    The per-thread molecule set fits comfortably in the L1: almost every
    reference hits, utilization is enormous and the protocol is insensitive
    to PCT (the paper's low-miss-rate anchor at ~0.2%).
    """
    n = arch.num_cores
    tb = TraceBuilder("water-sp", n)
    molecules = [tb.address_space.alloc(f"mol{t}", molecule_lines * LINE) for t in range(n)]
    partials = tb.address_space.alloc("partials", max(1, n // 8) * LINE)

    for it in range(iterations):
        for tid in range(n):
            tp = tb.thread(tid)
            rng = make_rng("water", it, tid)
            stream_scan(tp, molecules[tid], molecule_lines, uses_per_line=3,
                        write_fraction=0.3, rng=rng, work_per_use=6)
    # Contention-free reduction: each thread writes its own partial-sum slot
    # and thread 0 sums them after the barrier.
    for tid in range(n):
        tb.thread(tid).write(partials + tid * 8)
    tb.barrier_all()
    summer = tb.thread(0)
    summer.read_words(partials, n)
    tb.barrier_all()
    return tb.build()


def build_raytrace(
    arch: ArchConfig,
    rays_per_thread: int = 48,
    bvh_top_lines: int = 4,
    bvh_mid_lines: int = 48,
    primitive_lines: int = 1024,
) -> Trace:
    """Raytrace (Table 2: car scene).

    Each ray walks the shared BVH: hot top levels, once-touched primitives.
    The private framebuffer is written sequentially (8 words per line, high
    write utilization) and a work queue is balanced under a lock.
    """
    n = arch.num_cores
    tb = TraceBuilder("raytrace", n)
    bvh = tb.address_space.alloc("bvh", (bvh_top_lines + bvh_mid_lines) * LINE)
    primitives = tb.address_space.alloc("primitives", primitive_lines * LINE)
    framebuffers = [
        tb.address_space.alloc(f"fb{t}", max(1, rays_per_thread // 8) * LINE)
        for t in range(n)
    ]
    queue_line = tb.address_space.alloc("workqueue", LINE)

    for tid in range(n):
        tp = tb.thread(tid)
        rng = make_rng("raytrace", tid)
        for ray in range(rays_per_thread):
            if ray % 16 == 0:  # grab a work chunk
                tp.lock(0)
                tp.read(queue_line)
                tp.write(queue_line)
                tp.unlock(0)
            line_visit(tp, bvh + (ray % bvh_top_lines) * LINE, uses=2, work_per_use=10)
            mid = bvh_top_lines + rng.randrange(bvh_mid_lines)
            line_visit(tp, bvh + mid * LINE, uses=2, work_per_use=10)
            if rng.random() < 0.6:
                prim = rng.randrange(max(1, primitive_lines // 8))
            else:
                prim = rng.randrange(primitive_lines)
            line_visit(tp, primitives + prim * LINE, uses=1, work_per_use=12)
            tp.work(10)
            tp.write(framebuffers[tid] + ray * 8)  # one word per ray, sequential
    tb.barrier_all()
    return tb.build()
