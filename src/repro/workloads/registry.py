"""Workload registry: all 21 benchmarks of Table 2 with scaled problem sizes.

Each entry records the paper's original problem size and the parameters used
at the three reproduction scales:

* ``tiny``  - unit/integration tests (seconds, small core counts welcome);
* ``small`` - the benchmark harness default (all 21 workloads x all sweep
  points complete in minutes at 64 cores);
* ``full``  - CLI/examples, higher-fidelity shapes.

Sizes scale the *pressure ratios* (working set vs 32KB L1-D, sharing degree,
reuse per line), not raw element counts - that is what the classifier sees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ConfigError
from repro.common.params import ArchConfig
from repro.workloads import mibench, others, parsec, splash2, uhpc
from repro.workloads.base import Trace


@dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark: builder + per-scale parameters + provenance."""

    name: str
    suite: str
    table2_size: str
    builder: Callable[..., Trace]
    scales: dict[str, dict[str, int | float]]

    def build(self, arch: ArchConfig, scale: str = "small", **overrides) -> Trace:
        if scale not in self.scales:
            raise ConfigError(
                f"workload {self.name!r} has no scale {scale!r} "
                f"(available: {sorted(self.scales)})"
            )
        params = dict(self.scales[scale])
        params.update(overrides)
        return self.builder(arch, **params)


def _spec(name, suite, size, builder, tiny, small, full):
    return WorkloadSpec(name, suite, size, builder,
                        {"tiny": tiny, "small": small, "full": full})


_SPECS: tuple[WorkloadSpec, ...] = (
    # ------------------------------------------------------------- SPLASH-2
    _spec("radix", "splash2", "1M integers, radix 1024", splash2.build_radix,
          tiny={"keys_per_thread": 64, "bucket_lines": 2, "passes": 1},
          small={"keys_per_thread": 256, "bucket_lines": 4, "passes": 2},
          full={"keys_per_thread": 1024, "bucket_lines": 8, "passes": 3}),
    _spec("lu-nc", "splash2", "512x512 matrix, 16x16 blocks", splash2.build_lu,
          tiny={"num_blocks": 3, "block_lines": 4},
          small={"num_blocks": 14, "block_lines": 8, "update_uses": 3},
          full={"num_blocks": 20, "block_lines": 10, "update_uses": 3}),
    _spec("barnes", "splash2", "16K particles", splash2.build_barnes,
          tiny={"bodies_per_thread": 8, "tree_lines": 96, "iterations": 1},
          small={"bodies_per_thread": 24, "tree_lines": 340, "iterations": 2},
          full={"bodies_per_thread": 64, "tree_lines": 1024, "iterations": 3}),
    _spec("ocean-nc", "splash2", "258x258 ocean", splash2.build_ocean,
          tiny={"rows_per_thread": 4, "lines_per_row": 4, "iterations": 2},
          small={"rows_per_thread": 20, "lines_per_row": 8, "iterations": 3},
          full={"rows_per_thread": 32, "lines_per_row": 10, "iterations": 4}),
    _spec("water-sp", "splash2", "512 molecules", splash2.build_water_spatial,
          tiny={"molecule_lines": 8, "iterations": 6},
          small={"molecule_lines": 20, "iterations": 24},
          full={"molecule_lines": 24, "iterations": 60}),
    _spec("raytrace", "splash2", "car scene", splash2.build_raytrace,
          tiny={"rays_per_thread": 16, "bvh_mid_lines": 16, "primitive_lines": 256},
          small={"rays_per_thread": 48, "bvh_mid_lines": 48, "primitive_lines": 1024},
          full={"rays_per_thread": 160, "bvh_mid_lines": 96, "primitive_lines": 4096}),
    # --------------------------------------------------------------- PARSEC
    _spec("blackscholes", "parsec", "64K options", parsec.build_blackscholes,
          tiny={"option_lines": 48, "result_lines": 8, "passes": 2},
          small={"option_lines": 192, "result_lines": 24, "passes": 3},
          full={"option_lines": 512, "result_lines": 64, "passes": 5}),
    _spec("streamcluster", "parsec", "8192 points per block", parsec.build_streamcluster,
          tiny={"center_lines": 8, "point_lines": 32, "rounds": 3},
          small={"center_lines": 24, "point_lines": 128, "rounds": 5},
          full={"center_lines": 48, "point_lines": 384, "rounds": 8}),
    _spec("dedup", "parsec", "31 MB data", parsec.build_dedup,
          tiny={"chunks_per_pair": 4, "chunk_lines": 2, "hash_lines": 128},
          small={"chunks_per_pair": 16, "chunk_lines": 4, "hash_lines": 1024},
          full={"chunks_per_pair": 48, "chunk_lines": 6, "hash_lines": 4096}),
    _spec("bodytrack", "parsec", "2 frames, 2000 particles", parsec.build_bodytrack,
          tiny={"weight_lines": 16, "model_lines": 24, "frames": 2},
          small={"weight_lines": 64, "model_lines": 160, "frames": 3},
          full={"weight_lines": 128, "model_lines": 512, "frames": 5}),
    _spec("fluidanimate", "parsec", "5 frames, 100K particles", parsec.build_fluidanimate,
          tiny={"cell_lines": 12, "edge_lines": 3, "iterations": 2},
          small={"cell_lines": 48, "edge_lines": 6, "iterations": 4},
          full={"cell_lines": 96, "edge_lines": 10, "iterations": 8}),
    _spec("canneal", "parsec", "200K elements", parsec.build_canneal,
          tiny={"netlist_lines": 512, "moves_per_thread": 24},
          small={"netlist_lines": 2048, "moves_per_thread": 128},
          full={"netlist_lines": 8192, "moves_per_thread": 512}),
    # --------------------------------------------------------- Parallel MI
    _spec("dijkstra-ss", "mibench", "4096-node graph", mibench.build_dijkstra_ss,
          tiny={"dist_lines": 32, "relax_rounds": 3, "reads_per_round": 8,
                "local_passes": 3},
          small={"dist_lines": 256, "relax_rounds": 5, "reads_per_round": 20,
                 "local_passes": 24},
          full={"dist_lines": 512, "relax_rounds": 10, "reads_per_round": 48,
                "local_passes": 36}),
    _spec("dijkstra-ap", "mibench", "512-node graph", mibench.build_dijkstra_ap,
          tiny={"matrix_lines": 256, "rows_per_source": 8, "sources_per_thread": 1},
          small={"matrix_lines": 1024, "rows_per_source": 40, "sources_per_thread": 2},
          full={"matrix_lines": 4096, "rows_per_source": 96, "sources_per_thread": 4}),
    _spec("patricia", "mibench", "5000 IP address queries", mibench.build_patricia,
          tiny={"queries_per_thread": 24, "leaf_lines": 256, "mid_lines": 16},
          small={"queries_per_thread": 128, "leaf_lines": 768, "mid_lines": 64},
          full={"queries_per_thread": 448, "leaf_lines": 2048, "mid_lines": 128}),
    _spec("susan", "mibench", "2.8 MB PGM picture", mibench.build_susan,
          tiny={"tile_lines": 12, "passes": 5},
          small={"tile_lines": 24, "passes": 20},
          full={"tile_lines": 32, "passes": 48}),
    # ------------------------------------------------------------------ UHPC
    _spec("concomp", "uhpc", "2^18-node graph", uhpc.build_connected_components,
          tiny={"edge_lines_per_thread": 48, "label_lines": 512,
                "label_ops_per_iter": 16, "iterations": 1},
          small={"edge_lines_per_thread": 256, "label_lines": 2048,
                 "label_ops_per_iter": 96, "iterations": 2},
          full={"edge_lines_per_thread": 1024, "label_lines": 8192,
                "label_ops_per_iter": 256, "iterations": 3}),
    _spec("community", "uhpc", "2^16-node graph", uhpc.build_community_detection,
          tiny={"local_lines": 8, "local_passes": 2, "remote_probes": 16},
          small={"local_lines": 32, "local_passes": 4, "remote_probes": 72},
          full={"local_lines": 64, "local_passes": 8, "remote_probes": 256}),
    # ---------------------------------------------------------------- Others
    _spec("tsp", "others", "16 cities", others.build_tsp,
          tiny={"expansions_per_thread": 24, "update_period": 7},
          small={"expansions_per_thread": 72, "update_period": 12},
          full={"expansions_per_thread": 256, "update_period": 14}),
    _spec("dfs", "others", "876800-node graph", others.build_dfs,
          tiny={"nodes_per_thread": 32, "visited_lines": 512, "steal_period": 12},
          small={"nodes_per_thread": 120, "visited_lines": 2048, "steal_period": 24},
          full={"nodes_per_thread": 480, "visited_lines": 8192, "steal_period": 32}),
    _spec("matmul", "others", "512x512 matrix", others.build_matmul,
          tiny={"blocks_per_dim": 4, "block_lines": 4},
          small={"blocks_per_dim": 10, "block_lines": 6},
          full={"blocks_per_dim": 20, "block_lines": 8}),
)

WORKLOADS: dict[str, WorkloadSpec] = {spec.name: spec for spec in _SPECS}
WORKLOAD_NAMES: tuple[str, ...] = tuple(spec.name for spec in _SPECS)


def get_workload(name: str) -> WorkloadSpec:
    spec = WORKLOADS.get(name)
    if spec is None:
        raise ConfigError(f"unknown workload {name!r} (available: {WORKLOAD_NAMES})")
    return spec


def load_workload(name: str, arch: ArchConfig, scale: str = "small", **overrides) -> Trace:
    """Build the named benchmark's trace for ``arch`` at the given scale."""
    return get_workload(name).build(arch, scale, **overrides)
