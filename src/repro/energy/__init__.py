"""Dynamic energy model for caches, directory and network.

Two ways to obtain the per-event energy constants:

* the calibrated defaults in :class:`repro.common.params.EnergyConfig`
  (used by all figure reproductions), or
* the analytical backends :mod:`repro.energy.mcpat` (caches/directory) and
  :mod:`repro.energy.dsent` (routers/links), which derive the constants
  from cache geometry, router microarchitecture and a technology node -
  see :func:`repro.energy.mcpat.derive_energy_config`.
"""

from repro.energy.dsent import (
    LinkEnergyModel,
    RouterEnergyModel,
    crossover_node,
    link_energy_per_flit,
    router_energy_per_flit,
)
from repro.energy.mcpat import (
    CacheEnergyModel,
    DirectoryEnergyModel,
    derive_energy_config,
)
from repro.energy.model import EnergyBreakdown, EnergyCounters, EnergyModel
from repro.energy.technology import NODE_11NM, NODE_45NM, NODES, TechnologyNode, node

__all__ = [
    "NODES",
    "NODE_11NM",
    "NODE_45NM",
    "CacheEnergyModel",
    "DirectoryEnergyModel",
    "EnergyBreakdown",
    "EnergyCounters",
    "EnergyModel",
    "LinkEnergyModel",
    "RouterEnergyModel",
    "TechnologyNode",
    "crossover_node",
    "derive_energy_config",
    "link_energy_per_flit",
    "node",
    "router_energy_per_flit",
]
