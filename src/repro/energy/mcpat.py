"""McPAT-flavoured analytical cache/directory energy model (Section 4.2).

The paper obtains cache energies from McPAT at 11 nm.  This backend derives
per-event energies from first principles instead of hardcoding them, using a
simplified CACTI-style array decomposition:

* a **fixed** per-access cost - row decode, wordline drive and bitline
  precharge - that grows with array capacity (longer wires in bigger
  arrays) and associativity (more ways read in parallel);
* a **per-bit** cost for sensing and driving the bits actually read or
  written, which is what separates a *word* access (64 bits) from a *line*
  access (512 bits) in the word-addressable L2.

Outputs land in the same units (pJ/event) and roles as
:class:`repro.common.params.EnergyConfig`, so :func:`derive_energy_config`
can swap the calibrated defaults for fully derived values at any technology
node, preserving the relative structure the paper's results depend on:
line access ~= 4x word access, L1 cheaper than L2, directory negligible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common import addr as addrmod
from repro.common.errors import ConfigError
from repro.common.params import ArchConfig, CacheGeometry, EnergyConfig
from repro.energy.technology import NODE_11NM, TechnologyNode

#: Gate-energy multiples for the array components (dimensionless).  These
#: set the relative weight of decode/wordline/bitline/sense structures and
#: are the only tuned values in the model; they were chosen so the 11 nm
#: derivation of the Table-1 L2 lands near the calibrated EnergyConfig
#: defaults (word ~3 pJ, line ~13 pJ).
DECODE_WEIGHT = 11.0  # per address bit decoded
WORDLINE_WEIGHT = 0.10  # per bit of row width driven
BITLINE_WEIGHT = 0.02  # per subarray row, per column (bit) activated
SENSE_WEIGHT = 0.371  # per bit sensed, scaled by the array-size factor
WRITE_FACTOR = 1.08  # writes swing full rails: slightly pricier

#: Rows per subarray: big arrays are tiled so bitlines stay short.
SUBARRAY_ROWS = 128


@dataclass(frozen=True)
class ArrayEnergy:
    """Per-access energies (pJ) for one SRAM array organization."""

    fixed_read: float  # decode + wordline + bitline, independent of bits out
    per_bit_read: float  # sense + output drive, per bit
    fixed_write: float
    per_bit_write: float

    def read(self, bits: int) -> float:
        """Dynamic energy of reading ``bits`` bits out of the array."""
        if bits <= 0:
            raise ConfigError(f"bits read must be positive, got {bits}")
        return self.fixed_read + self.per_bit_read * bits

    def write(self, bits: int) -> float:
        """Dynamic energy of writing ``bits`` bits into the array."""
        if bits <= 0:
            raise ConfigError(f"bits written must be positive, got {bits}")
        return self.fixed_write + self.per_bit_write * bits


class CacheEnergyModel:
    """Analytical energy model of one cache level at one technology node."""

    def __init__(
        self,
        geometry: CacheGeometry,
        tech: TechnologyNode = NODE_11NM,
        tag_bits: int | None = None,
    ) -> None:
        self.geometry = geometry
        self.tech = tech
        line_bits = max(1, (geometry.line_size - 1).bit_length())
        set_bits = max(1, (geometry.num_sets - 1).bit_length())
        default_tag = addrmod.PHYSICAL_ADDRESS_BITS - line_bits - set_bits
        self.tag_bits = tag_bits if tag_bits is not None else default_tag
        if self.tag_bits <= 0:
            raise ConfigError(f"tag bits must be positive, got {self.tag_bits}")
        self.data_array = self._array(
            rows=geometry.num_sets,
            row_width_bits=geometry.line_size * 8 * geometry.associativity,
        )
        # State/LRU/utilization bits live in the tag array alongside the tag.
        self._tag_entry_bits = self.tag_bits + 8
        self.tag_array = self._array(
            rows=geometry.num_sets,
            row_width_bits=self._tag_entry_bits * geometry.associativity,
        )

    # ------------------------------------------------------------------
    def _array(self, rows: int, row_width_bits: int) -> ArrayEnergy:
        gate = self.tech.gate_energy_pj
        wire_mm = self.tech.wire_energy_pj_per_mm
        address_bits = max(1, (rows - 1).bit_length())
        subarray_rows = min(rows, SUBARRAY_ROWS)
        # H-tree wiring to reach the subarrays: scales with sqrt(capacity).
        capacity_kb = rows * row_width_bits / 8 / 1024
        htree_mm = 0.1 * math.sqrt(max(capacity_kb, 1e-6))
        # Bigger arrays pay longer internal wires per sensed bit.
        size_factor = 1.0 + math.log2(max(capacity_kb, 1.0))
        fixed = (
            DECODE_WEIGHT * address_bits * gate
            + WORDLINE_WEIGHT * row_width_bits * gate
            + htree_mm * wire_mm  # address distribution
        )
        per_bit = (
            BITLINE_WEIGHT * subarray_rows * gate  # precharge + swing per column
            + SENSE_WEIGHT * size_factor * gate  # sense + output drive
            + htree_mm * wire_mm / 64.0  # data return share
        )
        return ArrayEnergy(
            fixed_read=fixed,
            per_bit_read=per_bit,
            fixed_write=fixed * WRITE_FACTOR,
            per_bit_write=per_bit * WRITE_FACTOR,
        )

    # ------------------------------------------------------------------
    # Event energies (pJ) in EnergyConfig vocabulary.
    # ------------------------------------------------------------------
    def word_read(self) -> float:
        return self.data_array.read(self.geometry.line_size * 8 // addrmod.WORDS_PER_LINE)

    def word_write(self) -> float:
        return self.data_array.write(self.geometry.line_size * 8 // addrmod.WORDS_PER_LINE)

    def line_read(self) -> float:
        return self.data_array.read(self.geometry.line_size * 8)

    def line_write(self) -> float:
        return self.data_array.write(self.geometry.line_size * 8)

    def tag_access(self) -> float:
        """Tag probe: read one way's tag + state bits (sequential access).

        The tag array is accessed before the data array (way-predicted /
        sequential organization, standard for energy-conscious L2s), so a
        probe reads a single entry rather than the full set.
        """
        return self.tag_array.read(self._tag_entry_bits)


class DirectoryEnergyModel:
    """Energy of the directory extension bits in the L2 tag array.

    The directory is integrated with the L2 slice (Section 3.1): a lookup
    reads the sharer-tracking + locality bits of one entry, an update writes
    them back.  The paper observes this energy is negligible next to data
    accesses (Section 5.1.1) - which the derivation reproduces, because only
    a few dozen bits move.
    """

    def __init__(
        self,
        l2: CacheGeometry,
        entry_bits: int,
        tech: TechnologyNode = NODE_11NM,
    ) -> None:
        if entry_bits <= 0:
            raise ConfigError(f"directory entry bits must be positive, got {entry_bits}")
        self.entry_bits = entry_bits
        self._array = CacheEnergyModel(l2, tech).tag_array

    def lookup(self) -> float:
        return self._array.read(self.entry_bits)

    def update(self) -> float:
        return self._array.write(self.entry_bits)


# ----------------------------------------------------------------------
def derive_energy_config(
    arch: ArchConfig,
    tech: TechnologyNode = NODE_11NM,
    directory_entry_bits: int = 60,
) -> EnergyConfig:
    """Derive a full :class:`EnergyConfig` from cache geometry + technology.

    ``directory_entry_bits`` defaults to ACKwise_4 pointers (24 bits) plus
    the Limited_3 classifier extension (36 bits) - the Section 3.6 default.
    Network energies come from the DSENT-like backend.
    """
    from repro.energy.dsent import link_energy_per_flit, router_energy_per_flit

    l1i = CacheEnergyModel(arch.l1i, tech)
    l1d = CacheEnergyModel(arch.l1d, tech)
    l2 = CacheEnergyModel(arch.l2, tech)
    directory = DirectoryEnergyModel(arch.l2, directory_entry_bits, tech)
    return EnergyConfig(
        l1i_read=l1i.word_read(),
        l1i_fill=l1i.line_write(),
        l1d_read=l1d.word_read(),
        l1d_write=l1d.word_write(),
        l1d_tag=l1d.tag_access(),
        l1d_line_fill=l1d.line_write(),
        l1d_line_read=l1d.line_read(),
        l2_word_read=l2.word_read(),
        l2_word_write=l2.word_write(),
        l2_line_read=l2.line_read(),
        l2_line_write=l2.line_write(),
        l2_tag=l2.tag_access(),
        directory_lookup=directory.lookup(),
        directory_update=directory.update(),
        router_per_flit=router_energy_per_flit(arch, tech),
        link_per_flit=link_energy_per_flit(arch, tech),
    )
