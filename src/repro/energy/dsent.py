"""DSENT-flavoured mesh router/link energy model (Section 4.2).

The paper obtains network energies from DSENT at 11 nm and reports a key
consequence of wire scaling (Section 5.1.1): **links consume more energy per
flit than routers**.  This backend reproduces that from structure rather
than assertion:

* the *router* is gate-dominated - input buffer write+read, crossbar
  traversal, arbitration and clocking all scale with device capacitance,
  which shrinks with the node;
* the *link* is wire-dominated - its energy is (bits) x (tile span in mm)
  x (wire energy per bit-mm), and wire capacitance per mm does not shrink.

Tile span defaults to 1 mm: tiled multicores historically keep tile size
roughly constant and spend density on more tiles, so the link length is
treated as node-independent (documented substitution; see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.params import ArchConfig
from repro.energy.technology import NODE_11NM, TechnologyNode

#: Gate-energy multiples for router microarchitecture components
#: (dimensionless; relative weights in the DSENT mold).
BUFFER_WRITE_WEIGHT = 0.55  # per flit bit written into the input buffer
BUFFER_READ_WEIGHT = 0.45  # per flit bit read out
CROSSBAR_WEIGHT = 0.60  # per flit bit through the switch, per radix step
ARBITER_WEIGHT = 10.0  # per arbitration (grows with log2 radix)
CLOCK_WEIGHT = 0.35  # per flit bit of pipeline clocking

#: Default physical span of one tile (mm): mesh link length.
DEFAULT_TILE_SPAN_MM = 1.0

#: Mesh router radix: 4 mesh ports + local injection/ejection.
MESH_RADIX = 5


@dataclass(frozen=True)
class RouterEnergyModel:
    """Per-flit energy of one mesh router at a technology node."""

    flit_bits: int
    tech: TechnologyNode = NODE_11NM
    radix: int = MESH_RADIX

    def __post_init__(self) -> None:
        if self.flit_bits <= 0:
            raise ConfigError(f"flit width must be positive, got {self.flit_bits}")
        if self.radix < 2:
            raise ConfigError(f"router radix must be >= 2, got {self.radix}")

    @property
    def buffer_energy(self) -> float:
        gate = self.tech.gate_energy_pj
        return (BUFFER_WRITE_WEIGHT + BUFFER_READ_WEIGHT) * self.flit_bits * gate

    @property
    def crossbar_energy(self) -> float:
        # Crossbar capacitance grows with the number of ports the signal
        # passes: model as per-bit cost scaled by radix.
        return CROSSBAR_WEIGHT * self.flit_bits * self.radix * self.tech.gate_energy_pj / MESH_RADIX

    @property
    def arbiter_energy(self) -> float:
        radix_bits = max(1, (self.radix - 1).bit_length())
        return ARBITER_WEIGHT * radix_bits * self.tech.gate_energy_pj

    @property
    def clock_energy(self) -> float:
        return CLOCK_WEIGHT * self.flit_bits * self.tech.gate_energy_pj

    @property
    def per_flit(self) -> float:
        """Total pJ for one flit to traverse the router pipeline."""
        return self.buffer_energy + self.crossbar_energy + self.arbiter_energy + self.clock_energy


@dataclass(frozen=True)
class LinkEnergyModel:
    """Per-flit energy of one mesh link (tile-to-tile wire bundle)."""

    flit_bits: int
    tech: TechnologyNode = NODE_11NM
    span_mm: float = DEFAULT_TILE_SPAN_MM

    def __post_init__(self) -> None:
        if self.flit_bits <= 0:
            raise ConfigError(f"flit width must be positive, got {self.flit_bits}")
        if self.span_mm <= 0:
            raise ConfigError(f"link span must be positive, got {self.span_mm}")

    @property
    def per_flit(self) -> float:
        """Total pJ to drive one flit across one tile span."""
        return self.flit_bits * self.span_mm * self.tech.wire_energy_pj_per_mm


# ----------------------------------------------------------------------
def router_energy_per_flit(arch: ArchConfig, tech: TechnologyNode = NODE_11NM) -> float:
    """Per-flit router energy for ``arch``'s mesh at ``tech``."""
    return RouterEnergyModel(arch.flit_bits, tech).per_flit


def link_energy_per_flit(
    arch: ArchConfig,
    tech: TechnologyNode = NODE_11NM,
    span_mm: float = DEFAULT_TILE_SPAN_MM,
) -> float:
    """Per-flit link energy for ``arch``'s mesh at ``tech``."""
    return LinkEnergyModel(arch.flit_bits, tech, span_mm).per_flit


def crossover_node(arch: ArchConfig, nodes: list[TechnologyNode]) -> TechnologyNode | None:
    """First node (scanning ``nodes`` in order) where links out-cost routers.

    Feeding the built-in ladder from 45 nm down reproduces the paper's
    observation that the crossover has happened by 11 nm.
    """
    for tech in nodes:
        if link_energy_per_flit(arch, tech) > router_energy_per_flit(arch, tech):
            return tech
    return None
