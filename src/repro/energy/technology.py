"""Technology-node scaling rules shared by the McPAT/DSENT-like backends.

The paper evaluates at the 11 nm node (Section 4.2) and leans on one scaling
fact (Section 5.1.1): **transistors scale better than wires**.  Device
capacitance shrinks roughly with feature size while wire capacitance per
millimetre is nearly constant, so as the node advances, wire-dominated
components (mesh links, long bitlines) grow *relative* to gate-dominated
components (routers, decoders).  This module captures exactly that:

* gate (device) energy per switched bit scales with ``feature_nm`` and
  ``vdd**2``;
* wire energy per bit-mm scales with ``vdd**2`` only.

The built-in nodes follow the ITRS-flavoured voltage ladder used by the
McPAT/DSENT era of tools.  Absolute joule values are calibrated so that the
default :class:`repro.common.params.EnergyConfig` constants emerge at 11 nm;
what the reproduction relies on is the *relative* structure, which is scaling
-rule driven, not hand-tuned.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigError

#: Reference node for calibration: gate/wire unit energies below are quoted
#: at 45 nm, the classic McPAT publication node.
REFERENCE_NM = 45.0

#: Gate energy per switched bit of a minimum-sized SRAM/logic structure at
#: the reference node (pJ).  Everything gate-like is expressed as multiples.
#: Calibrated so the 11 nm mesh router lands at the EnergyConfig default
#: (~0.55 pJ/flit).
GATE_ENERGY_PJ_45 = 0.02966

#: Wire energy per bit per millimetre at the reference node (pJ/bit/mm).
#: Wires do not shrink: this constant only rides the voltage ladder.
#: Calibrated so a 64-bit flit over a 1 mm link at 11 nm lands at the
#: EnergyConfig default (~1.15 pJ/flit).
WIRE_ENERGY_PJ_PER_MM_45 = 0.03666


@dataclass(frozen=True)
class TechnologyNode:
    """One CMOS technology point: feature size and supply voltage."""

    feature_nm: float
    vdd: float

    def __post_init__(self) -> None:
        if self.feature_nm <= 0:
            raise ConfigError(f"feature size must be positive, got {self.feature_nm}")
        if not 0.1 <= self.vdd <= 2.0:
            raise ConfigError(f"implausible supply voltage {self.vdd} V")

    # ------------------------------------------------------------------
    @property
    def _vdd_factor(self) -> float:
        """Dynamic energy rides CV^2: the voltage contribution."""
        ref_vdd = NODES[REFERENCE_NM].vdd
        return (self.vdd / ref_vdd) ** 2

    @property
    def gate_energy_pj(self) -> float:
        """Energy to switch one gate-dominated bit at this node (pJ).

        Device capacitance scales linearly with feature size.
        """
        cap_factor = self.feature_nm / REFERENCE_NM
        return GATE_ENERGY_PJ_45 * cap_factor * self._vdd_factor

    @property
    def wire_energy_pj_per_mm(self) -> float:
        """Energy to drive one bit down one millimetre of wire (pJ).

        Wire capacitance per mm is (to first order) node-independent, so
        only the voltage ladder applies - the "poor wire scaling" of
        Section 5.1.1.
        """
        return WIRE_ENERGY_PJ_PER_MM_45 * self._vdd_factor

    @property
    def wire_to_gate_ratio(self) -> float:
        """How many gate-bit switches one wire bit-mm costs at this node.

        Grows as the node shrinks; the reason link energy overtakes router
        energy at 11 nm.
        """
        return self.wire_energy_pj_per_mm / self.gate_energy_pj


#: ITRS-flavoured voltage ladder (feature nm -> node).
NODES: dict[float, TechnologyNode] = {
    45.0: TechnologyNode(45.0, 1.00),
    32.0: TechnologyNode(32.0, 0.95),
    22.0: TechnologyNode(22.0, 0.85),
    16.0: TechnologyNode(16.0, 0.78),
    11.0: TechnologyNode(11.0, 0.70),
}

#: The paper's evaluation node.
NODE_11NM = NODES[11.0]
NODE_45NM = NODES[45.0]


def node(feature_nm: float) -> TechnologyNode:
    """Look up a built-in node by feature size."""
    try:
        return NODES[float(feature_nm)]
    except KeyError:
        known = ", ".join(f"{k:g}" for k in sorted(NODES))
        raise ConfigError(f"unknown technology node {feature_nm} nm (known: {known})") from None
