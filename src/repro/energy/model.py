"""Dynamic energy accounting for the memory system (Section 4.2).

The paper evaluates *dynamic* energy of the memory system only - L1-I, L1-D,
L2 (with integrated directory) and the network routers/links - using McPAT
(caches) and DSENT (network) at the 11 nm node.  We reproduce the accounting
structure: the simulator counts events, and this model converts event counts
into per-component energies using the ``EnergyConfig`` constants.

Two modelling points from the paper are preserved:

* the L2 is word-addressable, so a remote word access is charged a word read/
  write (~4x cheaper than a line access);
* at 11 nm network links consume more energy than routers per flit, so
  link energy dominates in network-bound workloads (Section 5.1.1).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.common.params import EnergyConfig
from repro.network.mesh import MeshNetwork


class EnergyCounters:
    """Raw event counts accumulated by the protocol engine."""

    __slots__ = (
        "l1i_reads",
        "l1i_fills",
        "l1d_reads",
        "l1d_writes",
        "l1d_tag_accesses",
        "l1d_line_fills",
        "l1d_line_reads",
        "l2_word_reads",
        "l2_word_writes",
        "l2_line_reads",
        "l2_line_writes",
        "l2_tag_accesses",
        "directory_lookups",
        "directory_updates",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-component dynamic energy in pJ (the Figure 8 stack)."""

    l1i: float = 0.0
    l1d: float = 0.0
    l2: float = 0.0
    directory: float = 0.0
    router: float = 0.0
    link: float = 0.0

    @property
    def total(self) -> float:
        return self.l1i + self.l1d + self.l2 + self.directory + self.router + self.link

    @property
    def network(self) -> float:
        return self.router + self.link

    @property
    def caches(self) -> float:
        return self.l1i + self.l1d + self.l2 + self.directory

    def as_dict(self) -> dict[str, float]:
        return {
            "l1i": self.l1i,
            "l1d": self.l1d,
            "l2": self.l2,
            "directory": self.directory,
            "router": self.router,
            "link": self.link,
            "total": self.total,
        }

    def to_dict(self) -> dict[str, float]:
        """Field-only mapping that round-trips exactly through :meth:`from_dict`
        (unlike :meth:`as_dict`, which also reports the derived total)."""
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

    @classmethod
    def from_dict(cls, data: dict) -> "EnergyBreakdown":
        return cls(**{f.name: data[f.name] for f in dataclasses.fields(cls)})

    def scaled(self, factor: float) -> "EnergyBreakdown":
        return EnergyBreakdown(
            l1i=self.l1i * factor,
            l1d=self.l1d * factor,
            l2=self.l2 * factor,
            directory=self.directory * factor,
            router=self.router * factor,
            link=self.link * factor,
        )


@dataclass(frozen=True)
class EnergyModel:
    """Converts event counts into an ``EnergyBreakdown``."""

    config: EnergyConfig = field(default_factory=EnergyConfig)

    def breakdown(self, counters: EnergyCounters, network: MeshNetwork) -> EnergyBreakdown:
        cfg = self.config
        l1i = counters.l1i_reads * cfg.l1i_read + counters.l1i_fills * cfg.l1i_fill
        l1d = (
            counters.l1d_reads * cfg.l1d_read
            + counters.l1d_writes * cfg.l1d_write
            + counters.l1d_tag_accesses * cfg.l1d_tag
            + counters.l1d_line_fills * cfg.l1d_line_fill
            + counters.l1d_line_reads * cfg.l1d_line_read
        )
        l2 = (
            counters.l2_word_reads * cfg.l2_word_read
            + counters.l2_word_writes * cfg.l2_word_write
            + counters.l2_line_reads * cfg.l2_line_read
            + counters.l2_line_writes * cfg.l2_line_write
            + counters.l2_tag_accesses * cfg.l2_tag
        )
        directory = (
            counters.directory_lookups * cfg.directory_lookup
            + counters.directory_updates * cfg.directory_update
        )
        router = network.router_flit_traversals * cfg.router_per_flit
        link = network.link_flit_traversals * cfg.link_per_flit
        return EnergyBreakdown(
            l1i=l1i, l1d=l1d, l2=l2, directory=directory, router=router, link=link
        )
