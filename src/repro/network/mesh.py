"""Mesh timing and traffic accounting.

Implements the Table-1 network model: 2-cycle hop latency (1 router +
1 link), 64-bit flits, wormhole-style serialization and *link contention
only* (infinite input buffers).  The tail of an ``F``-flit message arrives
``F - 1`` cycles after its head.

Contention uses **epoch-based bandwidth accounting**: each directed link
carries at most one flit per cycle, tracked in fixed-width epochs.  A
message consumes capacity in the epochs it traverses and is delayed to the
first epoch with spare capacity.  Unlike a single "next-free-time" high-water
mark, this lets messages use a link *before* reservations made further in
the future (the simulator schedules some events, e.g. DRAM replies, ahead of
time), so transient bursts don't cascade into phantom chip-wide congestion
while sustained saturation still queues realistically.

Storage is a **windowed ring buffer** (DESIGN.md section 8): one contiguous
``WINDOW_EPOCHS x num_links`` slot table indexed ``(epoch % WINDOW) *
num_links + link`` over *dense* link ids.  Each slot packs the epoch it
currently represents and that epoch's occupancy into a single small int
(``epoch * 64 + flits``), so the hottest loop in the simulator does one
list index, one subtraction and one compare per link instead of a dict
probe per link.  A traversal in a newer epoch recycles its slot lazily; the
retired occupancy is flushed into an overflow dict, and epochs a slot does
not currently represent (far-future DRAM reservations, long-retired epochs)
are read and written there.  The combination (slots + overflow) always
encodes exactly the same epoch -> occupancy map as the flat-dict model it
replaces - same reservations, same departure times, bit-identical runs.

Routes are pre-resolved to tuples of dense link ids (``resolve_path``) and
a whole multi-hop reservation happens in one call (``traverse_path``),
which the protocol engines invoke directly for their request -> home ->
reply chains; ``unicast``/``broadcast`` are thin wrappers.

The mesh also counts router and link flit traversals, which the energy model
converts into dynamic energy (DSENT-like, Section 4.2).

**Compiled kernel.**  When :mod:`repro.accel` can build its C extension
(and ``REPRO_NO_ACCEL`` is unset), the epoch-accounting state - slot
table, overflow map, recycle counter - lives inside a native ``MeshKernel``
and ``traverse_path`` is a single FFI call; ``traverse_chain`` /
``traverse_many`` let the protocol engines reserve whole request->reply
chains per FFI crossing.  The pure-Python walk below remains the ungated
fallback and the semantic reference: the kernel replicates it bit for bit
(same per-link float accumulation, same recycle/overflow hand-off), pinned
by the contention property tests run against both implementations
(DESIGN.md section 12).
"""

from __future__ import annotations

from repro import accel as _accel
from repro.common.params import ArchConfig
from repro.network.messages import MsgType, message_flits
from repro.network.topology import Mesh2D

#: Cycles per bandwidth-accounting epoch.  One flit per cycle per link,
#: so each epoch holds EPOCH_CYCLES flits of capacity.  Must stay a power
#: of two: the hot path computes epochs as ``int(t) >> EPOCH_SHIFT``.
EPOCH_CYCLES = 32
EPOCH_SHIFT = 5
assert EPOCH_CYCLES == 1 << EPOCH_SHIFT
_EPOCH_MASK = EPOCH_CYCLES - 1

#: Ring-buffer window width in epochs (power of two).  128 epochs x 32
#: cycles = 4096 cycles of in-window coverage per ring position; epochs a
#: slot does not currently represent spill to the overflow dict (exact,
#: just slower).
WINDOW_EPOCHS = 128
_WINDOW_MASK = WINDOW_EPOCHS - 1
assert WINDOW_EPOCHS & _WINDOW_MASK == 0

#: Slot packing: ``value = epoch * _SLOT_STRIDE + occupancy``.  Occupancy
#: never exceeds EPOCH_CYCLES (32), so 6 bits suffice.
_SLOT_SHIFT = 6
_SLOT_STRIDE = 1 << _SLOT_SHIFT
_SLOT_OCC_MASK = _SLOT_STRIDE - 1
assert EPOCH_CYCLES < _SLOT_STRIDE


class _KernelOverflow:
    """Dict facade over the compiled kernel's overflow hash map.

    Kept API-compatible with the subset of ``dict`` the rest of the code
    (and the property tests) use on ``MeshNetwork._overflow``: truthiness,
    ``len``, ``items``/``values`` for the introspection methods, ``get``
    for debugging.  Stored occupancies are never zero, so absent-vs-zero
    is not ambiguous.
    """

    __slots__ = ("_kernel",)

    def __init__(self, kernel) -> None:
        self._kernel = kernel

    def __len__(self) -> int:
        return self._kernel.overflow_len()

    def __bool__(self) -> bool:
        return self._kernel.overflow_len() > 0

    def items(self) -> list[tuple[int, int]]:
        return self._kernel.overflow_items()

    def values(self) -> list[int]:
        return [value for _key, value in self._kernel.overflow_items()]

    def get(self, key: int, default: int = 0) -> int:
        value = self._kernel.overflow_get(key)
        return value if value else default


class MeshNetwork:
    """Timing + traffic model for the electrical 2-D mesh.

    Slotted: the traffic counters and ring-buffer structures are read on
    every message of the simulation, and slot loads beat instance-dict
    lookups on the hot path.
    """

    __slots__ = (
        "arch",
        "topology",
        "model_contention",
        "naive_contention",
        "_mode",
        "_num_tiles",
        "num_links",
        "_dense_link",
        "_link_bits",
        "_slots",
        "_overflow",
        "_link_free_at",
        "_routes",
        "_bcast_edges",
        "_flits_table",
        "_hop_latency",
        "_kernel",
        "_recycles",
        "link_flit_traversals",
        "messages_sent",
        "flits_sent",
    )

    def __init__(
        self,
        arch: ArchConfig,
        model_contention: bool | None = None,
        accel: bool | None = None,
    ) -> None:
        self.arch = arch
        self.topology = Mesh2D(arch.num_cores)
        #: ``model_contention`` overrides ``arch.link_model`` when given
        #: (kept for tests that construct networks directly).
        if model_contention is None:
            self.model_contention = arch.link_model != "none"
        else:
            self.model_contention = model_contention
        self.naive_contention = arch.link_model == "naive"
        #: The two public flags above, packed for a single hot-path load:
        #: 0 = epoch accounting (the default), 1 = naive, 2 = no contention.
        if not self.model_contention:
            self._mode = 2
        elif self.naive_contention:
            self._mode = 1
        else:
            self._mode = 0
        num_tiles = self.topology.num_tiles
        self._num_tiles = num_tiles
        #: Dense link numbering: position in ``topology.directed_links()``.
        #: ``_dense_link`` maps the sparse ``src * num_tiles + dst`` encoding
        #: to the dense id (-1 for non-links).
        links = self.topology.directed_links()
        self.num_links = len(links)
        self._dense_link = [-1] * (num_tiles * num_tiles)
        for dense, (src, dst) in enumerate(links):
            self._dense_link[src * num_tiles + dst] = dense
        self._link_bits = (self.num_links - 1).bit_length()
        #: Ring-buffer slot table: position ``(epoch % WINDOW) * num_links
        #: + link`` holds ``epoch * 64 + occupancy`` for the epoch that
        #: currently owns the slot.  A plain list, not an ``array``: slot
        #: values are ints either way, and list indexing skips the
        #: box/unbox step of ``array('q')`` on the hot path.
        self._slots: list[int] = [0] * (WINDOW_EPOCHS * self.num_links)
        #: Exact spill storage for epochs a slot does not currently
        #: represent, keyed ``(epoch << link_bits) | link``: far-future
        #: reservations (e.g. DRAM replies scheduled ahead) and retired
        #: occupancy flushed on slot recycling.  Invariant: an entry for
        #: (epoch, link) exists only while the owning slot's epoch is newer
        #: than ``epoch``, so the slot table and the overflow dict always
        #: partition the epoch -> occupancy map exactly.  Memory matches
        #: the PR-3 flat dict (which kept every epoch forever); dict *ops*
        #: drop from one probe per link-hop to one insert per recycling.
        self._overflow: dict[int, int] = {}
        #: The compiled kernel instance, or ``None`` for the pure-Python
        #: walk.  ``accel`` overrides the automatic selection for tests:
        #: ``False`` forces the fallback, ``True`` demands the kernel
        #: (raising if it is unavailable), ``None`` follows
        #: ``repro.accel`` (compiled-and-loadable unless REPRO_NO_ACCEL).
        #: Only the epoch-accounting mode is accelerated; the naive and
        #: no-contention ablations always run the Python paths.
        self._kernel = None
        if self._mode == 0 and accel is not False:
            kernel_cls = _accel.mesh_kernel_class()
            if kernel_cls is not None:
                self._kernel = kernel_cls(
                    self.num_links, self._link_bits, float(arch.hop_latency)
                )
                #: The same memory the kernel mutates, viewed as flat
                #: int64 - the introspection methods below read slots
                #: identically in both implementations.
                self._slots = memoryview(self._kernel).cast("q")
                self._overflow = _KernelOverflow(self._kernel)
            elif accel is True:
                raise RuntimeError(
                    "mesh accelerator requested but unavailable: "
                    f"{_accel.status()['reason']}"
                )
        self._link_free_at: dict[int, float] = {}
        #: Flat (src * num_tiles + dst) -> dense-link-id route memo, filled
        #: on demand from the topology's route cache.  Public contract: the
        #: protocol engines index this list directly (via ``paths``) and
        #: call :meth:`resolve_path` on a miss, skipping a method call per
        #: message on their hottest chains.
        self._routes: list[tuple | None] = [None] * (num_tiles * num_tiles)
        #: Per-root broadcast tree with pre-resolved dense link ids.
        self._bcast_edges: dict[int, tuple[tuple[int, int, int], ...]] = {}
        #: Flit count per message type, precomputed once (``message_flits``
        #: depends only on the type and the arch constants) - the unicast
        #: path is the hottest call chain in the simulator.
        self._flits_table = [message_flits(msg, arch) for msg in MsgType]
        self._hop_latency = arch.hop_latency
        # Traffic counters (inputs to the energy model).  Router traversals
        # are derived: every flit that crosses H links visits H + 1 routers,
        # so router = link + flits summed over messages (holds for the
        # broadcast tree too: num_tiles routers, num_tiles - 1 edges).
        self.link_flit_traversals = 0
        self.messages_sent = 0
        self.flits_sent = 0
        #: Ring-buffer slots recycled for a newer epoch (telemetry counter:
        #: how often the window wrapped past live occupancy; not part of
        #: RunStats).  Incremented on the rare recycle branches only; the
        #: compiled kernel keeps its own count, surfaced through the
        #: ``slot_recycles`` property.
        self._recycles = 0

    # ------------------------------------------------------------------
    @property
    def router_flit_traversals(self) -> int:
        """Derived traffic counter (see ``__init__``); kept in sync with the
        other counters by construction, including across ``reset_stats``."""
        return self.link_flit_traversals + self.flits_sent

    @property
    def slot_recycles(self) -> int:
        """Slots recycled for a newer epoch, whichever side did it."""
        kernel = self._kernel
        return self._recycles if kernel is None else kernel.recycles

    @slot_recycles.setter
    def slot_recycles(self, value: int) -> None:
        kernel = self._kernel
        if kernel is None:
            self._recycles = value
        else:
            kernel.recycles = value

    @property
    def implementation(self) -> str:
        """Which traversal implementation this instance runs."""
        return "fallback" if self._kernel is None else "accel"

    @property
    def paths(self) -> list[tuple | None]:
        """The flat route memo of reserved-path descriptors (see
        :meth:`resolve_path`); entries may be ``None`` until resolved."""
        return self._routes

    def reset_contention(self) -> None:
        """Forget all link reservations (used between independent runs)."""
        if self._kernel is not None:
            self._kernel.reset()  # zeroes slots + overflow in place
        else:
            self._slots = [0] * (WINDOW_EPOCHS * self.num_links)
            self._overflow.clear()
        self._link_free_at.clear()

    def flits_for(self, msg: MsgType) -> int:
        return self._flits_table[msg]

    def resolve_path(self, src: int, dst: int) -> tuple:
        """Pre-resolve the XY route src->dst to a reserved-path descriptor.

        The descriptor is ``(links, hops, span, phase_limit)``: the dense
        link ids of the route, their count, the total hop latency
        ``hops * hop_latency``, and the largest arrival-epoch phase for
        which every head of the message stays inside the arrival epoch -
        everything :meth:`traverse_path` would otherwise recompute per
        message, folded into the route memo once.  With the compiled
        kernel active a fifth element carries the kernel-side path handle.
        Treat it as opaque: resolve once, hand to ``traverse_path``.
        Memoized in :attr:`paths` at index ``src * num_tiles + dst``;
        ``src == dst`` yields the empty route (a same-tile "message" never
        enters the network).
        """
        key = src * self._num_tiles + dst
        path = self._routes[key]
        if path is None:
            dense = self._dense_link
            links = tuple(dense[link] for link in self.topology.route(src, dst))
            hops = len(links)
            hop = self._hop_latency
            limit = EPOCH_CYCLES - 1 - (hops - 1) * hop
            if self._kernel is not None:
                path = (links, hops, hops * hop, limit,
                        self._kernel.register_path(links))
            else:
                path = (links, hops, hops * hop, limit)
            self._routes[key] = path
        return path

    # ------------------------------------------------------------------
    # Occupancy plumbing (slow paths): one (link, epoch) cell at a time,
    # window slot or overflow dict as the slot's epoch tag dictates.
    # ------------------------------------------------------------------
    def _occ_load(self, link: int, epoch: int) -> int:
        value = self._slots[(epoch & _WINDOW_MASK) * self.num_links + link]
        if value >> _SLOT_SHIFT == epoch:
            return value & _SLOT_OCC_MASK
        return self._overflow.get((epoch << self._link_bits) | link, 0)

    def _occ_store(self, link: int, epoch: int, occupancy: int) -> None:
        slot = (epoch & _WINDOW_MASK) * self.num_links + link
        value = self._slots[slot]
        tag = value >> _SLOT_SHIFT
        if tag == epoch:
            self._slots[slot] = (epoch << _SLOT_SHIFT) | occupancy
        elif tag < epoch:
            # Recycle the slot for the newer epoch; the retired occupancy
            # stays exactly readable through the overflow dict.
            self._recycles += 1
            old = value & _SLOT_OCC_MASK
            if old:
                self._overflow[(tag << self._link_bits) | link] = old
            self._slots[slot] = (epoch << _SLOT_SHIFT) | occupancy
        else:
            # The slot belongs to a newer epoch (a reservation further in
            # the future already claimed it): this epoch lives in overflow.
            self._overflow[(epoch << self._link_bits) | link] = occupancy

    def _traverse_naive(self, link: int, t_head: float, flits: int) -> float:
        """Single next-free-time per link (the ablation model).

        A reservation made for the *future* (e.g. a DRAM reply scheduled
        ahead) pushes the high-water mark forward and blocks earlier traffic
        on an idle link; the ablation bench quantifies the resulting phantom
        congestion against the epoch model.
        """
        free_at = self._link_free_at.get(link, 0.0)
        depart = t_head if t_head >= free_at else free_at
        self._link_free_at[link] = depart + flits
        return depart

    def _traverse_link(self, link: int, t_head: float, flits: int) -> float:
        """Reserve ``flits`` of bandwidth on one link; return head depart time."""
        if self.naive_contention:
            return self._traverse_naive(link, t_head, flits)
        # Times are non-negative, so ``int(t) >> EPOCH_SHIFT`` equals
        # ``int(t // EPOCH_CYCLES)`` without the float division.
        epoch = int(t_head) >> EPOCH_SHIFT
        slots = self._slots
        slot = (epoch & _WINDOW_MASK) * self.num_links + link
        value = slots[slot]
        ebase = epoch << _SLOT_SHIFT
        if value <= ebase + EPOCH_CYCLES - flits:
            if value >= ebase:
                slots[slot] = value + flits
                return t_head
            if flits <= EPOCH_CYCLES:
                self._recycles += 1
                old = value & _SLOT_OCC_MASK
                if old:
                    self._overflow[((value >> _SLOT_SHIFT) << self._link_bits) | link] = old
                slots[slot] = ebase | flits
                return t_head
        return self._traverse_congested(link, epoch, t_head, flits)

    def _traverse_congested(self, link: int, epoch: int, t_head: float, flits: int) -> float:
        """Slow path: the arrival epoch cannot hold the whole message."""
        first = epoch
        while self._occ_load(link, epoch) >= EPOCH_CYCLES:
            epoch += 1
        depart = t_head if epoch == first else float(epoch * EPOCH_CYCLES)
        remaining = flits
        while remaining > 0:
            used = self._occ_load(link, epoch)
            take = EPOCH_CYCLES - used
            if take > remaining:
                take = remaining
            self._occ_store(link, epoch, used + take)
            remaining -= take
            epoch += 1
        return depart

    # ------------------------------------------------------------------
    def traverse_path(
        self,
        path: tuple,
        t_head: float,
        flits: int,
        # Module constants bound as defaults: local loads on the hottest
        # code in the simulator instead of global lookups per call.
        _eshift: int = EPOCH_SHIFT,
        _emask: int = _EPOCH_MASK,
        _ecap: int = EPOCH_CYCLES,
        _wmask: int = _WINDOW_MASK,
        _sshift: int = _SLOT_SHIFT,
        _omask: int = _SLOT_OCC_MASK,
    ) -> float:
        """Send ``flits`` along a pre-resolved path; return the TAIL arrival.

        ``path`` is the opaque descriptor from :meth:`resolve_path`.  The
        empty route is a same-tile "message": it arrives instantly,
        consumes no network energy and is not counted - exactly why R-NUCA
        locates private data at the requester's own slice.

        This is the simulator's hottest loop.  The common shape - every hop
        lands in the head's arrival epoch (paths are <= 2W-2 hops of 2
        cycles against 32-cycle epochs) and every link has capacity - runs
        as a single pass of one list index, one subtract, two compares and
        one float add per link, with the epoch row resolved once for the
        whole path.  The head time accumulates ``+= hop`` per link (NOT one
        ``hops * hop`` add at the end: float addition of the hop latency is
        not associative for fractional times, and bit-identity to the
        per-link walk is contractual).  Epoch-crossing paths and contended
        or recycled slots fall back to the generic walk, which reserves
        identically.

        With the compiled kernel active the whole reservation is one FFI
        call; only the traffic counters stay Python-side (integer sums,
        so the split cannot change results).
        """
        hops = path[1]
        if not hops:
            return t_head
        self.link_flit_traversals += flits * hops
        self.messages_sent += 1
        self.flits_sent += flits
        kernel = self._kernel
        if kernel is not None:
            return kernel.traverse(path[4], t_head, flits)
        links, hops, span, phase_limit = path
        hop = self._hop_latency
        mode = self._mode
        if mode:
            if mode == 2:
                return t_head + span + (flits - 1)
            traverse = self._traverse_naive
            for link in links:
                t_head = traverse(link, t_head, flits) + hop
            return t_head + (flits - 1)
        slots = self._slots
        num_links = self.num_links
        t_int = int(t_head)
        # Single-epoch fast pass: the last head departs at
        # t_int + (hops - 1) * hop, still inside the arrival epoch.
        if (t_int & _emask) <= phase_limit and flits <= _ecap:
            epoch = t_int >> _eshift
            row = (epoch & _wmask) * num_links
            ebase = epoch << _sshift
            spare = ebase + _ecap - flits
            for link in links:
                j = row + link
                value = slots[j]
                if value <= spare:
                    if value >= ebase:
                        # In-epoch slot with capacity: reserve and move on.
                        slots[j] = value + flits
                        t_head += hop
                        continue
                    # Stale slot: recycle it for this epoch (the retired
                    # occupancy stays readable through the overflow dict).
                    self._recycles += 1
                    old = value & _omask
                    if old:
                        self._overflow[
                            ((value >> _sshift) << self._link_bits) | link
                        ] = old
                    slots[j] = ebase | flits
                    t_head += hop
                    continue
                break
            else:
                # Every head departed on arrival.
                return t_head + (flits - 1)
            # ``link`` was full or owned by a newer epoch: links before it
            # are already reserved and ``t_head`` is its head-arrival time;
            # resume the generic walk there, carrying the shadow integer
            # clock forward (XY routes never repeat a link, so index() is
            # unambiguous).
            i = links.index(link)
            t_int += i * hop
            links = links[i:]
        epoch = -1  # sentinel: the generic walk recomputes the row first
        row = -1
        ebase = 0
        spare = 0
        overflow = self._overflow
        link_bits = self._link_bits
        claim_ok = flits <= _ecap
        for link in links:
            e = t_int >> _eshift
            if e != epoch:
                epoch = e
                row = (e & _wmask) * num_links
                ebase = e << _sshift
                spare = ebase + _ecap - flits
            j = row + link
            value = slots[j]
            if value <= spare:
                if value >= ebase:
                    slots[j] = value + flits
                    t_head += hop
                    t_int += hop
                    continue
                if claim_ok:
                    self._recycles += 1
                    old = value & _omask
                    if old:
                        overflow[((value >> _sshift) << link_bits) | link] = old
                    slots[j] = ebase | flits
                    t_head += hop
                    t_int += hop
                    continue
            t_head = self._traverse_congested(link, epoch, t_head, flits) + hop
            t_int = int(t_head)
            epoch = -1  # force a row recompute on the next link
        return t_head + (flits - 1)

    # ------------------------------------------------------------------
    def traverse_chain(
        self,
        path1: tuple,
        flits1: int,
        t0: float,
        busy_until: float,
        gap: float,
        path2: tuple,
        flits2: int,
    ) -> tuple[float, float]:
        """Reserve a request leg and its dependent reply leg in one call.

        Exactly equivalent to the unchained engine sequence::

            t1 = traverse_path(path1, t0, flits1)        # request tail
            start = max(t1, busy_until)                   # wait out the line
            t2 = traverse_path(path2, start + gap, flits2)  # reply tail

        and returns ``(t1, t2)`` so the caller can still account the
        waiting time (``busy_until - t1``).  With the compiled kernel and
        two non-empty legs this crosses the FFI boundary once per miss
        instead of once per traversal; any empty leg (same-tile message)
        composes the pure calls, which short-circuit without touching the
        network either way.
        """
        kernel = self._kernel
        if kernel is not None and path1[1] and path2[1]:
            self.link_flit_traversals += flits1 * path1[1] + flits2 * path2[1]
            self.messages_sent += 2
            self.flits_sent += flits1 + flits2
            return kernel.traverse_chain(
                path1[4], flits1, t0, busy_until, gap, path2[4], flits2
            )
        t1 = self.traverse_path(path1, t0, flits1)
        start = busy_until if busy_until > t1 else t1
        return t1, self.traverse_path(path2, start + gap, flits2)

    def traverse_many(self, paths: list, t_head: float, flits: int) -> list[float]:
        """Reserve one same-sized message per path, all departing at
        ``t_head``, in list order; return the per-path tail arrivals.

        The invalidation rounds of the directory families reserve one INV
        per sharer back to back - reservation *order* is contractual (it
        decides who gets the contended slot), and this preserves it while
        crossing the FFI boundary once for the whole round.
        """
        kernel = self._kernel
        if kernel is None:
            traverse = self.traverse_path
            return [traverse(path, t_head, flits) for path in paths]
        handles = [path[4] for path in paths if path[1]]
        if not handles:
            return [t_head] * len(paths)
        self.link_flit_traversals += flits * sum(path[1] for path in paths)
        self.messages_sent += len(handles)
        self.flits_sent += flits * len(handles)
        if len(handles) == len(paths):
            return list(kernel.traverse_many(t_head, flits, handles))
        arrivals = iter(kernel.traverse_many(t_head, flits, handles))
        return [next(arrivals) if path[1] else t_head for path in paths]

    # ------------------------------------------------------------------
    def unicast(self, src: int, dst: int, msg: MsgType, start: float) -> float:
        """Send one message; return the arrival time of its tail flit."""
        if src == dst:
            return start
        path = self._routes[src * self._num_tiles + dst]
        if path is None:
            path = self.resolve_path(src, dst)
        return self.traverse_path(path, start, self._flits_table[msg])

    # ------------------------------------------------------------------
    def broadcast(self, root: int, msg: MsgType, start: float) -> dict[int, float]:
        """Broadcast from ``root``; return per-tile tail arrival times.

        Each router replicates the message on its tree output links, so the
        network carries exactly one copy per tree edge (``num_tiles - 1``
        link traversals per flit) - the single-injection broadcast of
        Section 3.1.  Every tree edge reserves bandwidth through the same
        ring-buffer slot logic as unicast, with the hop latency cached on
        the network (not re-read from the arch per edge).
        """
        flits = self._flits_table[msg]
        arrival: dict[int, float] = {root: start}
        edges = self._bcast_edges.get(root)
        if edges is None:
            dense = self._dense_link
            num_tiles = self._num_tiles
            edges = tuple(
                (src, dst, dense[src * num_tiles + dst])
                for src, dst in self.topology.broadcast_tree(root)
            )
            self._bcast_edges[root] = edges
        hop = self._hop_latency
        tail = flits - 1
        contended = self.model_contention
        kernel = self._kernel
        traverse = self._traverse_link if kernel is None else kernel.traverse_link
        for src, dst, link in edges:
            t_head = arrival[src] - tail if src != root else start
            if t_head < start:
                t_head = start
            if contended:
                t_head = traverse(link, t_head, flits) + hop
            else:
                t_head = t_head + hop
            arrival[dst] = t_head + tail
        # router traversals (flits * num_tiles) are derived: link
        # traversals (flits * (num_tiles - 1) tree edges) + flits_sent.
        self.link_flit_traversals += flits * len(edges)
        self.messages_sent += 1
        self.flits_sent += flits
        return arrival

    # ------------------------------------------------------------------
    # Introspection (property tests / debugging; not on any hot path).
    # ------------------------------------------------------------------
    def reserved_flits(self) -> int:
        """Total bandwidth reserved across all epochs and links.

        Conservation invariant (pinned by the contention property tests):
        with the epoch model active this always equals
        ``link_flit_traversals`` - every flit crossing a link reserves
        exactly one cycle of capacity, wherever the window placed it.
        """
        return (
            sum(value & _SLOT_OCC_MASK for value in self._slots)
            + sum(self._overflow.values())
        )

    def occupancy_map(self) -> dict[tuple[int, int], int]:
        """The full (epoch, link) -> reserved-flits map, slots + overflow.

        Reconstructs exactly the mapping the PR-3 flat dict stored; the
        equivalence property test diffs it against a reference model.
        """
        out: dict[tuple[int, int], int] = {}
        num_links = self.num_links
        for position, value in enumerate(self._slots):
            occupancy = value & _SLOT_OCC_MASK
            if occupancy:
                out[(value >> _SLOT_SHIFT, position % num_links)] = occupancy
        mask = (1 << self._link_bits) - 1
        for key, value in self._overflow.items():
            if value:
                out[(key >> self._link_bits, key & mask)] = value
        return out
