"""Mesh timing and traffic accounting.

Implements the Table-1 network model: 2-cycle hop latency (1 router +
1 link), 64-bit flits, wormhole-style serialization and *link contention
only* (infinite input buffers).  The tail of an ``F``-flit message arrives
``F - 1`` cycles after its head.

Contention uses **epoch-based bandwidth accounting**: each directed link
carries at most one flit per cycle, tracked in fixed-width epochs.  A
message consumes capacity in the epochs it traverses and is delayed to the
first epoch with spare capacity.  Unlike a single "next-free-time" high-water
mark, this lets messages use a link *before* reservations made further in
the future (the simulator schedules some events, e.g. DRAM replies, ahead of
time), so transient bursts don't cascade into phantom chip-wide congestion
while sustained saturation still queues realistically.

The mesh also counts router and link flit traversals, which the energy model
converts into dynamic energy (DSENT-like, Section 4.2).
"""

from __future__ import annotations

from repro.common.params import ArchConfig
from repro.network.messages import MsgType, message_flits
from repro.network.topology import Mesh2D

#: Cycles per bandwidth-accounting epoch.  One flit per cycle per link,
#: so each epoch holds EPOCH_CYCLES flits of capacity.
EPOCH_CYCLES = 32


class MeshNetwork:
    """Timing + traffic model for the electrical 2-D mesh."""

    def __init__(self, arch: ArchConfig, model_contention: bool | None = None) -> None:
        self.arch = arch
        self.topology = Mesh2D(arch.num_cores)
        #: ``model_contention`` overrides ``arch.link_model`` when given
        #: (kept for tests that construct networks directly).
        if model_contention is None:
            self.model_contention = arch.link_model != "none"
        else:
            self.model_contention = model_contention
        self.naive_contention = arch.link_model == "naive"
        self._link_use: dict[int, dict[int, int]] = {}
        self._link_free_at: dict[int, float] = {}
        # Traffic counters (inputs to the energy model).
        self.router_flit_traversals = 0
        self.link_flit_traversals = 0
        self.messages_sent = 0
        self.flits_sent = 0

    # ------------------------------------------------------------------
    def reset_contention(self) -> None:
        """Forget all link reservations (used between independent runs)."""
        self._link_use.clear()
        self._link_free_at.clear()

    def flits_for(self, msg: MsgType) -> int:
        return message_flits(msg, self.arch)

    # ------------------------------------------------------------------
    def _traverse_naive(self, link: int, t_head: float, flits: int) -> float:
        """Single next-free-time per link (the ablation model).

        A reservation made for the *future* (e.g. a DRAM reply scheduled
        ahead) pushes the high-water mark forward and blocks earlier traffic
        on an idle link; the ablation bench quantifies the resulting phantom
        congestion against the epoch model.
        """
        free_at = self._link_free_at.get(link, 0.0)
        depart = t_head if t_head >= free_at else free_at
        self._link_free_at[link] = depart + flits
        return depart

    def _traverse(self, link: int, t_head: float, flits: int) -> float:
        """Reserve ``flits`` of bandwidth on ``link``; return head depart time."""
        if self.naive_contention:
            return self._traverse_naive(link, t_head, flits)
        epochs = self._link_use.get(link)
        if epochs is None:
            epochs = {}
            self._link_use[link] = epochs
        epoch = int(t_head // EPOCH_CYCLES)
        first = epoch
        while epochs.get(epoch, 0) >= EPOCH_CYCLES:
            epoch += 1
        depart = t_head if epoch == first else float(epoch * EPOCH_CYCLES)
        remaining = flits
        while remaining > 0:
            used = epochs.get(epoch, 0)
            take = EPOCH_CYCLES - used
            if take > remaining:
                take = remaining
            epochs[epoch] = used + take
            remaining -= take
            epoch += 1
        return depart

    # ------------------------------------------------------------------
    def unicast(self, src: int, dst: int, msg: MsgType, start: float) -> float:
        """Send one message; return the arrival time of its tail flit.

        A same-tile "message" (e.g. a request whose home slice is local)
        never enters the network: it arrives instantly and consumes no
        network energy, which is exactly why R-NUCA locates private data at
        the requester's own slice.
        """
        flits = self.flits_for(msg)
        if src == dst:
            return start
        path = self.topology.route(src, dst)
        hop = self.arch.hop_latency
        t_head = start
        if self.model_contention:
            for link in path:
                t_head = self._traverse(link, t_head, flits) + hop
        else:
            t_head = start + len(path) * hop
        hops = len(path)
        self.router_flit_traversals += flits * (hops + 1)
        self.link_flit_traversals += flits * hops
        self.messages_sent += 1
        self.flits_sent += flits
        return t_head + (flits - 1)

    # ------------------------------------------------------------------
    def broadcast(self, root: int, msg: MsgType, start: float) -> dict[int, float]:
        """Broadcast from ``root``; return per-tile tail arrival times.

        Each router replicates the message on its tree output links, so the
        network carries exactly one copy per tree edge (``num_tiles - 1``
        link traversals per flit) - the single-injection broadcast of
        Section 3.1.
        """
        flits = self.flits_for(msg)
        arrival: dict[int, float] = {root: start}
        edges = self.topology.broadcast_tree(root)
        hop = self.arch.hop_latency
        for src, dst in edges:
            t_head = arrival[src] - (flits - 1) if src != root else start
            if t_head < start:
                t_head = start
            link = self.topology.link_id(src, dst)
            if self.model_contention:
                t_head = self._traverse(link, t_head, flits) + hop
            else:
                t_head = t_head + hop
            arrival[dst] = t_head + (flits - 1)
        self.router_flit_traversals += flits * self.topology.num_tiles
        self.link_flit_traversals += flits * len(edges)
        self.messages_sent += 1
        self.flits_sent += flits
        return arrival
