"""Mesh timing and traffic accounting.

Implements the Table-1 network model: 2-cycle hop latency (1 router +
1 link), 64-bit flits, wormhole-style serialization and *link contention
only* (infinite input buffers).  The tail of an ``F``-flit message arrives
``F - 1`` cycles after its head.

Contention uses **epoch-based bandwidth accounting**: each directed link
carries at most one flit per cycle, tracked in fixed-width epochs.  A
message consumes capacity in the epochs it traverses and is delayed to the
first epoch with spare capacity.  Unlike a single "next-free-time" high-water
mark, this lets messages use a link *before* reservations made further in
the future (the simulator schedules some events, e.g. DRAM replies, ahead of
time), so transient bursts don't cascade into phantom chip-wide congestion
while sustained saturation still queues realistically.

The mesh also counts router and link flit traversals, which the energy model
converts into dynamic energy (DSENT-like, Section 4.2).
"""

from __future__ import annotations

from repro.common.params import ArchConfig
from repro.network.messages import MsgType, message_flits
from repro.network.topology import Mesh2D

#: Cycles per bandwidth-accounting epoch.  One flit per cycle per link,
#: so each epoch holds EPOCH_CYCLES flits of capacity.  Must stay a power
#: of two: the hot path computes epochs as ``int(t) >> EPOCH_SHIFT``.
EPOCH_CYCLES = 32
EPOCH_SHIFT = 5
assert EPOCH_CYCLES == 1 << EPOCH_SHIFT


class MeshNetwork:
    """Timing + traffic model for the electrical 2-D mesh."""

    def __init__(self, arch: ArchConfig, model_contention: bool | None = None) -> None:
        self.arch = arch
        self.topology = Mesh2D(arch.num_cores)
        #: ``model_contention`` overrides ``arch.link_model`` when given
        #: (kept for tests that construct networks directly).
        if model_contention is None:
            self.model_contention = arch.link_model != "none"
        else:
            self.model_contention = model_contention
        self.naive_contention = arch.link_model == "naive"
        #: Epoch occupancy in ONE flat dict keyed ``(epoch << link_bits) |
        #: link``: a single hash probe per link on the hottest loop in the
        #: mesh, instead of a per-link container plus an inner dict.
        self._link_bits = (self.topology.num_tiles * self.topology.num_tiles - 1).bit_length()
        self._epoch_use: dict[int, int] = {}
        self._link_free_at: dict[int, float] = {}
        #: Flat (src * num_tiles + dst) -> XY route memo, filled on demand
        #: from the topology's route cache.
        self._routes: list[tuple[int, ...] | None] = [None] * (
            self.topology.num_tiles * self.topology.num_tiles
        )
        #: Flit count per message type, precomputed once (``message_flits``
        #: depends only on the type and the arch constants) - the unicast
        #: path is the hottest call chain in the simulator.
        self._flits_table = [message_flits(msg, arch) for msg in MsgType]
        self._hop_latency = arch.hop_latency
        self._num_tiles = self.topology.num_tiles
        # Traffic counters (inputs to the energy model).  Router traversals
        # are derived: every flit that crosses H links visits H + 1 routers,
        # so router = link + flits summed over messages (holds for the
        # broadcast tree too: num_tiles routers, num_tiles - 1 edges).
        self.link_flit_traversals = 0
        self.messages_sent = 0
        self.flits_sent = 0

    # ------------------------------------------------------------------
    @property
    def router_flit_traversals(self) -> int:
        """Derived traffic counter (see ``__init__``); kept in sync with the
        other counters by construction, including across ``reset_stats``."""
        return self.link_flit_traversals + self.flits_sent

    def reset_contention(self) -> None:
        """Forget all link reservations (used between independent runs)."""
        self._epoch_use.clear()
        self._link_free_at.clear()

    def flits_for(self, msg: MsgType) -> int:
        return self._flits_table[msg]

    # ------------------------------------------------------------------
    def _traverse_naive(self, link: int, t_head: float, flits: int) -> float:
        """Single next-free-time per link (the ablation model).

        A reservation made for the *future* (e.g. a DRAM reply scheduled
        ahead) pushes the high-water mark forward and blocks earlier traffic
        on an idle link; the ablation bench quantifies the resulting phantom
        congestion against the epoch model.
        """
        free_at = self._link_free_at.get(link, 0.0)
        depart = t_head if t_head >= free_at else free_at
        self._link_free_at[link] = depart + flits
        return depart

    def _traverse(self, link: int, t_head: float, flits: int) -> float:
        """Reserve ``flits`` of bandwidth on ``link``; return head depart time."""
        if self.naive_contention:
            return self._traverse_naive(link, t_head, flits)
        use = self._epoch_use
        # Times are non-negative, so ``int(t) >> EPOCH_SHIFT`` equals
        # ``int(t // EPOCH_CYCLES)`` without the float division.
        epoch = int(t_head) >> EPOCH_SHIFT
        key = (epoch << self._link_bits) | link
        # Fast path: the whole message fits in the arrival epoch (the common
        # case - messages are <= 9 flits against 32 flits of capacity).
        used = use.get(key, 0)
        if used + flits <= EPOCH_CYCLES:
            use[key] = used + flits
            return t_head
        return self._traverse_congested(link, epoch, t_head, flits)

    def _traverse_congested(self, link: int, epoch: int, t_head: float, flits: int) -> float:
        """Slow path: the arrival epoch cannot hold the whole message."""
        use = self._epoch_use
        link_bits = self._link_bits
        first = epoch
        while use.get((epoch << link_bits) | link, 0) >= EPOCH_CYCLES:
            epoch += 1
        depart = t_head if epoch == first else float(epoch * EPOCH_CYCLES)
        remaining = flits
        while remaining > 0:
            key = (epoch << link_bits) | link
            used = use.get(key, 0)
            take = EPOCH_CYCLES - used
            if take > remaining:
                take = remaining
            use[key] = used + take
            remaining -= take
            epoch += 1
        return depart

    # ------------------------------------------------------------------
    def unicast(self, src: int, dst: int, msg: MsgType, start: float) -> float:
        """Send one message; return the arrival time of its tail flit.

        A same-tile "message" (e.g. a request whose home slice is local)
        never enters the network: it arrives instantly and consumes no
        network energy, which is exactly why R-NUCA locates private data at
        the requester's own slice.
        """
        flits = self._flits_table[msg]
        if src == dst:
            return start
        routes = self._routes
        route_key = src * self._num_tiles + dst
        path = routes[route_key]
        if path is None:
            path = self.topology.route(src, dst)
            routes[route_key] = path
        hop = self._hop_latency
        t_head = start
        if self.model_contention:
            if self.naive_contention:
                traverse = self._traverse_naive
                for link in path:
                    t_head = traverse(link, t_head, flits) + hop
            else:
                # The epoch fast path of _traverse, inlined: one dict probe
                # per link when the arrival epoch has capacity.  ``t_int``
                # shadows int(t_head): hops are integral, so the integer
                # part advances by ``hop`` per uncontended link without a
                # float truncation per link.
                use = self._epoch_use
                link_bits = self._link_bits
                eshift, ecap = EPOCH_SHIFT, EPOCH_CYCLES
                t_int = int(t_head)
                for link in path:
                    key = ((t_int >> eshift) << link_bits) | link
                    used = use.get(key, 0)
                    if used + flits <= ecap:
                        use[key] = used + flits
                        t_head += hop
                        t_int += hop
                    else:
                        t_head = (
                            self._traverse_congested(link, t_int >> eshift, t_head, flits)
                            + hop
                        )
                        t_int = int(t_head)
        else:
            t_head = start + len(path) * hop
        self.link_flit_traversals += flits * len(path)
        self.messages_sent += 1
        self.flits_sent += flits
        return t_head + (flits - 1)

    # ------------------------------------------------------------------
    def broadcast(self, root: int, msg: MsgType, start: float) -> dict[int, float]:
        """Broadcast from ``root``; return per-tile tail arrival times.

        Each router replicates the message on its tree output links, so the
        network carries exactly one copy per tree edge (``num_tiles - 1``
        link traversals per flit) - the single-injection broadcast of
        Section 3.1.
        """
        flits = self.flits_for(msg)
        arrival: dict[int, float] = {root: start}
        edges = self.topology.broadcast_tree(root)
        hop = self.arch.hop_latency
        for src, dst in edges:
            t_head = arrival[src] - (flits - 1) if src != root else start
            if t_head < start:
                t_head = start
            link = self.topology.link_id(src, dst)
            if self.model_contention:
                t_head = self._traverse(link, t_head, flits) + hop
            else:
                t_head = t_head + hop
            arrival[dst] = t_head + (flits - 1)
        # router traversals (flits * num_tiles) are derived: link
        # traversals (flits * (num_tiles - 1) tree edges) + flits_sent.
        self.link_flit_traversals += flits * len(edges)
        self.messages_sent += 1
        self.flits_sent += flits
        return arrival
