"""2-D mesh topology with XY (dimension-ordered) routing and broadcast trees.

The baseline system (Section 3.1) is a tiled multicore connected by an
electrical 2-D mesh with XY routing.  The mesh is augmented with broadcast
support: each router selectively replicates a broadcast message on its output
links so all cores are reached with a single injection (used by ACKwise when
the sharer count overflows the hardware pointers).

Tiles are numbered row-major: tile ``t`` sits at ``(x, y) = (t % W, t // W)``.
A directed link is encoded as the integer ``src_tile * num_tiles + dst_tile``
so the contention model can use flat dictionaries.
"""

from __future__ import annotations

from repro.common.errors import ConfigError


class Mesh2D:
    """Geometry, routes and broadcast trees of a W x W mesh."""

    def __init__(self, num_tiles: int) -> None:
        width = int(num_tiles**0.5)
        if width * width != num_tiles:
            raise ConfigError(f"mesh requires a square tile count, got {num_tiles}")
        self.num_tiles = num_tiles
        self.width = width
        self._route_cache: dict[tuple[int, int], tuple[int, ...]] = {}
        self._broadcast_cache: dict[int, tuple[tuple[int, int], ...]] = {}

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    def coord(self, tile: int) -> tuple[int, int]:
        """Return the (x, y) mesh coordinate of ``tile``."""
        self._check_tile(tile)
        return tile % self.width, tile // self.width

    def tile_at(self, x: int, y: int) -> int:
        """Return the tile id at coordinate (x, y)."""
        if not (0 <= x < self.width and 0 <= y < self.width):
            raise ConfigError(f"coordinate ({x}, {y}) outside {self.width}x{self.width} mesh")
        return y * self.width + x

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance between two tiles (number of links traversed)."""
        sx, sy = self.coord(src)
        dx, dy = self.coord(dst)
        return abs(sx - dx) + abs(sy - dy)

    def link_id(self, src: int, dst: int) -> int:
        """Encode the directed link src->dst as a flat integer."""
        return src * self.num_tiles + dst

    def directed_links(self) -> tuple[tuple[int, int], ...]:
        """Every physical directed link as (src, dst), in a fixed order.

        A W x W mesh has ``4 * W * (W - 1)`` directed links (each adjacent
        tile pair in both directions).  The enumeration order is stable -
        tile-major, then (+x, -x, +y, -y) - so callers may use the position
        in this tuple as a dense link index (the contention model's ring
        buffer is sized ``num_links x WINDOW``, which the sparse
        ``link_id`` encoding would blow up to ``num_tiles**2``).
        """
        links: list[tuple[int, int]] = []
        width = self.width
        for tile in range(self.num_tiles):
            x, y = tile % width, tile // width
            if x + 1 < width:
                links.append((tile, tile + 1))
            if x - 1 >= 0:
                links.append((tile, tile - 1))
            if y + 1 < width:
                links.append((tile, tile + width))
            if y - 1 >= 0:
                links.append((tile, tile - width))
        return tuple(links)

    # ------------------------------------------------------------------
    # Unicast routing
    # ------------------------------------------------------------------
    def route(self, src: int, dst: int) -> tuple[int, ...]:
        """Return the XY route src->dst as a tuple of directed link ids.

        XY routing travels fully along the X dimension first, then along Y;
        it is deterministic and deadlock-free on a mesh.
        """
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        self._check_tile(src)
        self._check_tile(dst)
        links: list[int] = []
        x, y = self.coord(src)
        dx, dy = self.coord(dst)
        here = src
        step = 1 if dx > x else -1
        while x != dx:
            x += step
            nxt = self.tile_at(x, y)
            links.append(self.link_id(here, nxt))
            here = nxt
        step = 1 if dy > y else -1
        while y != dy:
            y += step
            nxt = self.tile_at(x, y)
            links.append(self.link_id(here, nxt))
            here = nxt
        result = tuple(links)
        self._route_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Broadcast tree
    # ------------------------------------------------------------------
    def broadcast_tree(self, root: int) -> tuple[tuple[int, int], ...]:
        """Return the broadcast tree rooted at ``root``.

        The tree mirrors XY routing: the message travels along the root's row
        in both directions, and every router in that row forwards it up and
        down its column.  Each tile is reached exactly once, so the tree has
        ``num_tiles - 1`` edges.

        Edges are returned as ``(src_tile, dst_tile)`` pairs in BFS order
        (parents always precede children), which lets the contention model
        propagate arrival times in a single pass.
        """
        cached = self._broadcast_cache.get(root)
        if cached is not None:
            return cached
        self._check_tile(root)
        edges: list[tuple[int, int]] = []
        rx, ry = self.coord(root)
        # Along the root's row, outward in both directions.
        row_tiles = [root]
        for direction in (1, -1):
            x = rx
            here = root
            while 0 <= x + direction < self.width:
                x += direction
                nxt = self.tile_at(x, ry)
                edges.append((here, nxt))
                row_tiles.append(nxt)
                here = nxt
        # From every row tile, up and down its column.
        for row_tile in row_tiles:
            cx, _ = self.coord(row_tile)
            for direction in (1, -1):
                y = ry
                here = row_tile
                while 0 <= y + direction < self.width:
                    y += direction
                    nxt = self.tile_at(cx, y)
                    edges.append((here, nxt))
                    here = nxt
        result = tuple(edges)
        self._broadcast_cache[root] = result
        return result

    # ------------------------------------------------------------------
    def _check_tile(self, tile: int) -> None:
        if not 0 <= tile < self.num_tiles:
            raise ConfigError(f"tile {tile} outside 0..{self.num_tiles - 1}")
