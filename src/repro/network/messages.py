"""Coherence message catalogue and flit sizing.

Flit accounting follows Section 3.6 of the paper:

* the flit width is 64 bits and every message carries a 1-flit header
  (source, destination, address, message type);
* an invalidation acknowledgement carries the private utilization counter
  *inside* the header (the paper shows 2 spare bits exist), so it stays
  a single flit;
* the cache-line offset and the 1-bit access-length indicator also fit in
  the request header;
* the data word to be written (64 bits) is always sent with a write request
  because the requester does not know whether it is a private or remote
  sharer - this costs one extra flit and is charged on every write miss;
* a full cache line is 8 payload flits, a word is 1 payload flit.
"""

from __future__ import annotations

import enum

from repro.common.params import ArchConfig


class MsgType(enum.IntEnum):
    """Every message class exchanged by the protocol."""

    READ_REQ = 0  #: L1 read miss -> home L2
    WRITE_REQ = 1  #: L1 write miss -> home L2 (carries the data word)
    UPGRADE_REQ = 2  #: write to an S-state line -> home L2 (carries data word)
    LINE_REPLY = 3  #: home -> requester, full cache line (private sharer)
    WORD_REPLY = 4  #: home -> requester, one word (remote sharer)
    WORD_WRITE_ACK = 5  #: home -> requester, remote write completion
    INV_REQ = 6  #: home -> sharer, invalidate
    INV_BROADCAST = 7  #: home -> all tiles (ACKwise pointer overflow)
    INV_ACK = 8  #: sharer -> home (utilization piggybacked in header)
    WB_REQ = 9  #: home -> owner, synchronous write-back/downgrade request
    WB_DATA = 10  #: owner -> home, line data write-back
    EVICT_NOTIFY = 11  #: L1 -> home, clean eviction notice (+ utilization)
    EVICT_DIRTY = 12  #: L1 -> home, dirty eviction with line data
    MEM_READ_REQ = 13  #: home L2 -> memory controller
    MEM_READ_REPLY = 14  #: memory controller -> home L2, line data
    MEM_WRITE = 15  #: home L2 -> memory controller, dirty L2 eviction


def message_flits(msg: MsgType, arch: ArchConfig) -> int:
    """Total flits (header + payload) for a message of type ``msg``."""
    header = arch.header_flits
    word = arch.word_flits
    line = arch.line_flits
    if msg in (
        MsgType.READ_REQ,
        MsgType.INV_REQ,
        MsgType.INV_BROADCAST,
        MsgType.INV_ACK,
        MsgType.WB_REQ,
        MsgType.EVICT_NOTIFY,
        MsgType.MEM_READ_REQ,
        MsgType.WORD_WRITE_ACK,
    ):
        return header
    if msg in (MsgType.WRITE_REQ, MsgType.UPGRADE_REQ, MsgType.WORD_REPLY):
        return header + word
    if msg in (
        MsgType.LINE_REPLY,
        MsgType.WB_DATA,
        MsgType.EVICT_DIRTY,
        MsgType.MEM_READ_REPLY,
        MsgType.MEM_WRITE,
    ):
        return header + line
    raise ValueError(f"unknown message type {msg!r}")
