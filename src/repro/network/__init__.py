"""On-chip network substrate: 2-D mesh, XY routing, broadcast, contention."""

from repro.network.mesh import MeshNetwork
from repro.network.messages import MsgType, message_flits
from repro.network.topology import Mesh2D

__all__ = ["Mesh2D", "MeshNetwork", "MsgType", "message_flits"]
