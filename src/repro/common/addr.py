"""Address arithmetic helpers.

All addresses in the simulator are byte addresses within a 48-bit physical
address space (Table 1).  Cache lines are 64 bytes and words are 64 bits, so
these helpers centralise the bit slicing used throughout the memory system.
"""

from __future__ import annotations

PHYSICAL_ADDRESS_BITS = 48
LINE_SIZE = 64
LINE_BITS = 6  # log2(LINE_SIZE)
WORD_SIZE = 8
WORD_BITS = 3  # log2(WORD_SIZE)
WORDS_PER_LINE = LINE_SIZE // WORD_SIZE
DEFAULT_PAGE_SIZE = 4096

MAX_ADDRESS = (1 << PHYSICAL_ADDRESS_BITS) - 1


def line_of(addr: int) -> int:
    """Return the cache-line number containing byte address ``addr``."""
    return addr >> LINE_BITS


def line_base(addr: int) -> int:
    """Return the byte address of the first byte of ``addr``'s cache line."""
    return addr & ~(LINE_SIZE - 1)


def word_of(addr: int) -> int:
    """Return the global word number containing byte address ``addr``."""
    return addr >> WORD_BITS


def word_in_line(addr: int) -> int:
    """Return the word offset (0..7) of ``addr`` within its cache line."""
    return (addr >> WORD_BITS) & (WORDS_PER_LINE - 1)


def page_of(addr: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Return the page number containing byte address ``addr``."""
    return addr // page_size


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return (value + alignment - 1) // alignment * alignment


def lines_in_page(page: int, page_size: int = DEFAULT_PAGE_SIZE) -> range:
    """Return the range of line numbers that belong to ``page``."""
    lines_per_page = page_size // LINE_SIZE
    first = page * lines_per_page
    return range(first, first + lines_per_page)
