"""Small statistics helpers used by the experiment harness and figures."""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

#: Utilization buckets used by Figures 1 and 2: 1, 2-3, 4-5, 6-7, >=8.
UTILIZATION_BUCKETS: tuple[str, ...] = ("1", "2-3", "4-5", "6-7", ">=8")


def geomean(values: Iterable[float]) -> float:
    """Geometric mean of positive values.

    Raises ``ValueError`` on an empty iterable or non-positive inputs, which
    would silently corrupt normalized-figure summaries otherwise.
    """
    logs = []
    for v in values:
        if v <= 0:
            raise ValueError(f"geomean requires positive values, got {v}")
        logs.append(math.log(v))
    if not logs:
        raise ValueError("geomean of empty sequence")
    return math.exp(sum(logs) / len(logs))


def arithmetic_mean(values: Iterable[float]) -> float:
    vals = list(values)
    if not vals:
        raise ValueError("mean of empty sequence")
    return sum(vals) / len(vals)


def normalize(values: Sequence[float], anchor: float) -> list[float]:
    """Divide every value by ``anchor`` (the paper normalizes to PCT=1)."""
    if anchor == 0:
        raise ValueError("cannot normalize to a zero anchor")
    return [v / anchor for v in values]


def utilization_bucket(utilization: int) -> str:
    """Map a utilization count onto the paper's Figure 1/2 buckets."""
    if utilization < 1:
        raise ValueError(f"utilization counts start at 1, got {utilization}")
    if utilization == 1:
        return "1"
    if utilization <= 3:
        return "2-3"
    if utilization <= 5:
        return "4-5"
    if utilization <= 7:
        return "6-7"
    return ">=8"


def bucket_percentages(counts: Mapping[str, int]) -> dict[str, float]:
    """Convert bucket counts into percentages (0..100) over all buckets."""
    total = sum(counts.get(b, 0) for b in UTILIZATION_BUCKETS)
    if total == 0:
        return {b: 0.0 for b in UTILIZATION_BUCKETS}
    return {b: 100.0 * counts.get(b, 0) / total for b in UTILIZATION_BUCKETS}


def safe_ratio(numerator: float, denominator: float, default: float = 0.0) -> float:
    """``numerator / denominator`` with an explicit default for a zero base."""
    if denominator == 0:
        return default
    return numerator / denominator
