"""Shared types, configuration and helpers for the repro package."""

from repro.common.errors import (
    CoherenceError,
    ConfigError,
    ReproError,
    SimulationError,
    TraceError,
)
from repro.common.params import (
    ArchConfig,
    CacheGeometry,
    EnergyConfig,
    ProtocolConfig,
    baseline_protocol,
)
from repro.common.types import (
    AccessKind,
    DirState,
    MESIState,
    MissType,
    Op,
    RemovalReason,
    ServiceClass,
    SharerMode,
)

__all__ = [
    "AccessKind",
    "ArchConfig",
    "CacheGeometry",
    "CoherenceError",
    "ConfigError",
    "DirState",
    "EnergyConfig",
    "MESIState",
    "MissType",
    "Op",
    "ProtocolConfig",
    "RemovalReason",
    "ReproError",
    "ServiceClass",
    "SharerMode",
    "SimulationError",
    "TraceError",
    "baseline_protocol",
]
