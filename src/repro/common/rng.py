"""Deterministic seed derivation for workload generators.

Every workload derives all of its random state from a single integer seed via
``derive_seed`` so that traces (and therefore every figure) regenerate
identically run-to-run and machine-to-machine.

Seed salting (``seed_scope``): sweep infrastructure that wants *variants* of
a trace (e.g. confidence intervals over trace realizations) activates a salt
that is mixed into every derived seed.  The salt is scoped, explicit, and
carried by the :class:`repro.runner.Job` that requested it - never by ambient
process state - so a worker process rebuilding a trace from a job description
produces bit-identical streams regardless of which process builds it, what
``random.seed`` the process happens to have, or how many jobs it ran before.
A salt of 0 (the default) leaves derivation exactly as unsalted.
"""

from __future__ import annotations

import contextlib
import random
import zlib
from typing import Iterator

#: Active trace-variant salt.  Mutated only via ``seed_scope``.
_seed_salt: int = 0


def current_seed_salt() -> int:
    """The salt currently mixed into ``derive_seed`` (0 = unsalted)."""
    return _seed_salt


@contextlib.contextmanager
def seed_scope(salt: int) -> Iterator[None]:
    """Mix ``salt`` into every ``derive_seed`` call inside the block.

    Nested scopes restore the previous salt on exit, so trace construction
    for one job can never leak its salt into the next.
    """
    global _seed_salt
    previous = _seed_salt
    _seed_salt = int(salt)
    try:
        yield
    finally:
        _seed_salt = previous


def derive_seed(*parts: int | str) -> int:
    """Mix arbitrary parts (workload name, thread id, phase...) into a seed."""
    digest = 0
    if _seed_salt:
        digest = zlib.crc32(str(_seed_salt).encode("utf-8") + b"\x1f", digest)
    for part in parts:
        # The separator keeps part boundaries significant:
        # ("a", "b") must not collide with ("ab",).
        data = str(part).encode("utf-8") + b"\x1f"
        digest = zlib.crc32(data, digest)
    return digest & 0x7FFFFFFF


def make_rng(*parts: int | str) -> random.Random:
    """Return a ``random.Random`` seeded deterministically from ``parts``."""
    return random.Random(derive_seed(*parts))
