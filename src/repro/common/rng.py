"""Deterministic seed derivation for workload generators.

Every workload derives all of its random state from a single integer seed via
``derive_seed`` so that traces (and therefore every figure) regenerate
identically run-to-run and machine-to-machine.
"""

from __future__ import annotations

import random
import zlib


def derive_seed(*parts: int | str) -> int:
    """Mix arbitrary parts (workload name, thread id, phase...) into a seed."""
    digest = 0
    for part in parts:
        # The separator keeps part boundaries significant:
        # ("a", "b") must not collide with ("ab",).
        data = str(part).encode("utf-8") + b"\x1f"
        digest = zlib.crc32(data, digest)
    return digest & 0x7FFFFFFF


def make_rng(*parts: int | str) -> random.Random:
    """Return a ``random.Random`` seeded deterministically from ``parts``."""
    return random.Random(derive_seed(*parts))
