"""Configuration dataclasses mirroring Table 1 of the paper.

``ArchConfig`` describes the hardware substrate (cores, caches, mesh, DRAM),
``ProtocolConfig`` the coherence/classifier options of Sections 3.2-3.7, and
``EnergyConfig`` the per-event dynamic energies used by the DSENT/McPAT-like
energy model (Section 4.2).

All defaults reproduce the paper's evaluated configuration:
64 cores @ 1 GHz, L1-I 16KB/4-way, L1-D 32KB/4-way, L2 256KB/8-way slices,
ACKwise_4, PCT=4, RATmax=16, nRATlevels=2, Limited_3 classifier.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

from repro.common import addr as addrmod
from repro.common.errors import ConfigError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class CacheGeometry:
    """Size/associativity/latency of one cache level."""

    size_kb: int
    associativity: int
    latency: int  # access latency in cycles
    line_size: int = addrmod.LINE_SIZE

    def __post_init__(self) -> None:
        if self.size_kb <= 0:
            raise ConfigError(f"cache size must be positive, got {self.size_kb}KB")
        if self.associativity <= 0:
            raise ConfigError(f"associativity must be positive, got {self.associativity}")
        if self.latency < 0:
            raise ConfigError(f"latency must be non-negative, got {self.latency}")
        if not _is_power_of_two(self.num_sets):
            raise ConfigError(
                f"cache geometry {self.size_kb}KB/{self.associativity}-way yields "
                f"{self.num_sets} sets (must be a power of two)"
            )

    def to_dict(self) -> dict:
        """JSON-ready mapping that round-trips through :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CacheGeometry":
        return cls(**{f.name: data[f.name] for f in dataclasses.fields(cls)})

    @property
    def num_lines(self) -> int:
        return self.size_kb * 1024 // self.line_size

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity

    @property
    def set_mask(self) -> int:
        return self.num_sets - 1


def _default_memory_controller_tiles(num_cores: int, num_controllers: int) -> tuple[int, ...]:
    """Spread memory controllers evenly over the tiles (top and bottom rows).

    The paper attaches 8 controllers to a 64-core mesh but does not specify
    placement; we alternate columns of the first and last mesh rows, a common
    arrangement for edge-attached controllers.
    """
    width = int(math.isqrt(num_cores))
    if width * width == num_cores and num_controllers <= 2 * width:
        top = [c for c in range(1, width, 2)]
        bottom = [num_cores - width + c for c in range(0, width, 2)]
        tiles = []
        for pair in zip(top, bottom):
            tiles.extend(pair)
        tiles.extend(top[len(tiles) // 2:])
        chosen = tuple(sorted(tiles[:num_controllers]))
        if len(chosen) == num_controllers:
            return chosen
    # Fallback: evenly spaced tile ids.
    step = max(1, num_cores // num_controllers)
    return tuple(sorted((i * step) % num_cores for i in range(num_controllers)))


@dataclass(frozen=True)
class ArchConfig:
    """Hardware substrate parameters (Table 1)."""

    num_cores: int = 64
    frequency_ghz: float = 1.0

    l1i: CacheGeometry = field(default_factory=lambda: CacheGeometry(16, 4, 1))
    l1d: CacheGeometry = field(default_factory=lambda: CacheGeometry(32, 4, 1))
    l2: CacheGeometry = field(default_factory=lambda: CacheGeometry(256, 8, 7))

    line_size: int = addrmod.LINE_SIZE
    word_size: int = addrmod.WORD_SIZE
    page_size: int = addrmod.DEFAULT_PAGE_SIZE

    # Electrical 2-D mesh with XY routing (Table 1).
    hop_latency: int = 2  # 1 router + 1 link cycle per hop
    flit_bits: int = 64
    header_flits: int = 1
    #: Link-contention model: "epoch" (default; per-epoch bandwidth
    #: accounting, DESIGN.md decision 6), "naive" (single next-free-time
    #: high-water mark per link - the ablation showing why epoch accounting
    #: is needed) or "none" (infinite bandwidth: pure hop latency).
    link_model: str = "epoch"

    # Off-chip memory.
    num_memory_controllers: int = 8
    dram_latency_cycles: int = 100  # 100 ns @ 1 GHz
    dram_bandwidth_bytes_per_cycle: float = 5.0  # 5 GBps per controller @ 1 GHz
    memory_controller_tiles: tuple[int, ...] = ()

    # Directory.
    ackwise_pointers: int = 4

    # R-NUCA instruction replication cluster size.
    instruction_cluster_size: int = 4

    # Synchronization primitive costs (cycles).  Barriers/locks are modeled
    # as abstract primitives with fixed service latencies plus queueing;
    # their waiting time feeds the "Synchronization" component of Figure 9.
    barrier_latency: int = 50
    lock_latency: int = 10

    def __post_init__(self) -> None:
        if self.num_cores <= 0:
            raise ConfigError(f"num_cores must be positive, got {self.num_cores}")
        width = int(math.isqrt(self.num_cores))
        if width * width != self.num_cores:
            raise ConfigError(
                f"num_cores must be a perfect square for the 2-D mesh, got {self.num_cores}"
            )
        if self.num_memory_controllers <= 0:
            raise ConfigError("need at least one memory controller")
        if self.num_memory_controllers > self.num_cores:
            raise ConfigError("more memory controllers than tiles")
        if self.ackwise_pointers < 1:
            raise ConfigError("ACKwise needs at least one hardware pointer")
        if self.instruction_cluster_size < 1 or self.num_cores % self.instruction_cluster_size:
            raise ConfigError(
                "instruction_cluster_size must divide num_cores "
                f"({self.instruction_cluster_size} vs {self.num_cores})"
            )
        if not self.memory_controller_tiles:
            object.__setattr__(
                self,
                "memory_controller_tiles",
                _default_memory_controller_tiles(self.num_cores, self.num_memory_controllers),
            )
        if len(self.memory_controller_tiles) != self.num_memory_controllers:
            raise ConfigError(
                f"{self.num_memory_controllers} controllers but "
                f"{len(self.memory_controller_tiles)} controller tiles"
            )
        for tile in self.memory_controller_tiles:
            if not 0 <= tile < self.num_cores:
                raise ConfigError(f"memory controller tile {tile} out of range")
        if self.link_model not in ("epoch", "naive", "none"):
            raise ConfigError(f"unknown link_model {self.link_model!r}")

    def to_dict(self) -> dict:
        """JSON-ready mapping that round-trips through :meth:`from_dict`.

        ``__post_init__`` fills ``memory_controller_tiles`` when empty, so the
        serialized form is always fully resolved: two configs hash equal iff
        they describe the same hardware.
        """
        data = dataclasses.asdict(self)
        data["memory_controller_tiles"] = list(self.memory_controller_tiles)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ArchConfig":
        kwargs = {f.name: data[f.name] for f in dataclasses.fields(cls)}
        for level in ("l1i", "l1d", "l2"):
            kwargs[level] = CacheGeometry.from_dict(kwargs[level])
        kwargs["memory_controller_tiles"] = tuple(kwargs["memory_controller_tiles"])
        return cls(**kwargs)

    @property
    def mesh_width(self) -> int:
        return int(math.isqrt(self.num_cores))

    @property
    def words_per_line(self) -> int:
        return self.line_size // self.word_size

    @property
    def line_flits(self) -> int:
        """Payload flits for a full cache line (8 for 64B lines, 64-bit flits)."""
        return self.line_size * 8 // self.flit_bits

    @property
    def word_flits(self) -> int:
        """Payload flits for a single word (1 for 64-bit words and flits)."""
        return self.word_size * 8 // self.flit_bits

    def controller_for_line(self, line: int) -> int:
        """Tile id of the memory controller owning cache line ``line``.

        Lines are interleaved across controllers (common practice; the paper
        does not specify the mapping).
        """
        return self.memory_controller_tiles[line % self.num_memory_controllers]


#: Every selectable coherence protocol family, in presentation order.
PROTOCOL_NAMES: tuple[str, ...] = ("baseline", "adaptive", "victim", "dls", "neat", "phase")

#: Families that keep no sharer-tracking directory at the home.
DIRECTORYLESS_PROTOCOLS: frozenset[str] = frozenset({"dls", "neat"})

#: Canonical values pinned onto directoryless configs: the PCT/classifier
#: knobs are inert for these families, so they are normalized away to keep
#: equality and job content-hashing canonical - two configs that describe
#: the same machine must hash the same.
_DIRECTORYLESS_CANONICAL: dict[str, object] = {
    "pct": 1,
    "classifier": "limited",
    "limited_k": 3,
    "remote_policy": "rat",
    "rat_max": 16,
    "n_rat_levels": 2,
    "one_way": False,
    "complete_vote_init": False,
    "directory": "none",
}

#: Canonical values pinned onto ``protocol="phase"`` configs: the phase
#: protocol keeps a sharer-tracking directory (``directory`` stays
#: selectable) but replaces the utilization classifier with per-line phase
#: tracking, so the PCT/classifier knobs are inert and normalized away.
_PHASE_CANONICAL: dict[str, object] = {
    "pct": 1,
    "classifier": "limited",
    "limited_k": 3,
    "remote_policy": "rat",
    "rat_max": 16,
    "n_rat_levels": 2,
    "one_way": False,
    "complete_vote_init": False,
}


@dataclass(frozen=True)
class ProtocolConfig:
    """Coherence protocol + locality classifier options (Sections 3.2-3.7).

    Beyond the paper's own families, two comparison baselines from related
    work (PAPERS.md) are first-class protocols: "dls" (directoryless shared
    LLC - every access is a word access at the home slice) and "neat"
    (self-invalidation/self-downgrade coherence without sharer tracking).
    Both are directoryless: ``directory`` is normalized to "none" and the
    classifier options are inert for them.
    """

    #: "baseline" = plain directory protocol (everything private; the paper's
    #: PCT=1 anchor). "adaptive" = the locality-aware protocol. "victim" =
    #: the Victim Replication comparison point (Section 2.1): baseline
    #: directory protocol + local-L2 victim caching of L1 evictions.
    #: "dls" / "neat" = the related-work comparison baselines above.
    #: "phase" = phase-priority directory coherence (arXiv 1305.3038): the
    #: directory machinery of "baseline" with a per-line access-phase
    #: classifier choosing between private line grants and word service.
    protocol: str = "adaptive"

    #: Private Caching Threshold (Section 3.5). Utilization >= pct keeps a
    #: core a private sharer; below it the core is demoted to remote.
    pct: int = 4

    #: "limited" = Limited_k classifier (Section 3.4); "complete" = Complete.
    classifier: str = "limited"
    limited_k: int = 3

    #: "rat" = multi-level Remote Access Threshold approximation (Section 3.3);
    #: "timestamp" = idealized Timestamp-check classification (Section 3.2).
    remote_policy: str = "rat"
    rat_max: int = 16
    n_rat_levels: int = 2

    #: Adapt1-way (Section 3.7): demotion only, promotion disabled.
    one_way: bool = False

    #: Learning short-cut for the Complete classifier (Section 5.3 remark):
    #: start newly-tracked cores in the majority-vote mode of the already
    #: tracked cores instead of the initial Private mode.  The Limited_k
    #: classifier always does this when reallocating a slot.
    complete_vote_init: bool = False

    #: Sharer-tracking directory: "ackwise" (default), "fullmap", or "none"
    #: (forced for - and only valid with - the directoryless families).
    directory: str = "ackwise"

    #: Neat self-downgrade policy: "eager" writes every store through to the
    #: home immediately (the conservative endpoint modeled since PR 2);
    #: "release" buffers dirty words in the writer's L1 and flushes them in
    #: one batched line message per release boundary (unlock/barrier), the
    #: published Neat behaviour.  Inert - and normalized to "eager" - for
    #: every other protocol family.
    neat_downgrade: str = "eager"

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOL_NAMES:
            raise ConfigError(f"unknown protocol {self.protocol!r}")
        if self.directory not in ("ackwise", "fullmap", "none"):
            raise ConfigError(f"unknown directory {self.directory!r}")
        if self.pct < 1:
            raise ConfigError(f"pct must be >= 1, got {self.pct}")
        if self.classifier not in ("limited", "complete"):
            raise ConfigError(f"unknown classifier {self.classifier!r}")
        if self.limited_k < 1:
            raise ConfigError(f"limited_k must be >= 1, got {self.limited_k}")
        if self.remote_policy not in ("rat", "timestamp"):
            raise ConfigError(f"unknown remote_policy {self.remote_policy!r}")
        if self.rat_max < self.pct:
            raise ConfigError(
                f"rat_max ({self.rat_max}) must be >= pct ({self.pct})"
            )
        if self.n_rat_levels < 1:
            raise ConfigError(f"n_rat_levels must be >= 1, got {self.n_rat_levels}")
        if self.directory == "none" and self.protocol not in DIRECTORYLESS_PROTOCOLS:
            raise ConfigError(
                f"protocol {self.protocol!r} requires a sharer-tracking directory"
            )
        if self.neat_downgrade not in ("eager", "release"):
            raise ConfigError(f"unknown neat_downgrade {self.neat_downgrade!r}")
        if self.protocol != "neat" and self.neat_downgrade != "eager":
            # Inert knob for every non-Neat family: normalize so equivalent
            # configs share one job content hash.
            object.__setattr__(self, "neat_downgrade", "eager")
        if self.protocol in DIRECTORYLESS_PROTOCOLS:
            # Validated above, now normalized: the PCT/classifier knobs (and
            # the absent directory) are inert for directoryless families, so
            # pin them - ProtocolConfig(protocol="dls") == dls_protocol(),
            # and equivalent configs share one job content hash.
            for name, value in _DIRECTORYLESS_CANONICAL.items():
                object.__setattr__(self, name, value)
        elif self.protocol == "phase":
            # Phase-priority coherence classifies by per-line access phase,
            # not by utilization: the classifier knobs are inert, the
            # directory choice (ackwise/fullmap) stays live.
            for name, value in _PHASE_CANONICAL.items():
                object.__setattr__(self, name, value)

    @property
    def is_adaptive(self) -> bool:
        return self.protocol == "adaptive"

    def rat_levels(self) -> tuple[int, ...]:
        """Remote Access Threshold ladder (Section 3.3).

        RAT is additively increased in equal steps from PCT to RATmax, the
        number of steps being ``n_rat_levels - 1``.  With a single level the
        threshold is pinned at PCT.
        """
        if self.n_rat_levels == 1:
            return (self.pct,)
        span = self.rat_max - self.pct
        steps = self.n_rat_levels - 1
        return tuple(self.pct + round(span * i / steps) for i in range(self.n_rat_levels))

    def replaced(self, **changes) -> "ProtocolConfig":
        """Return a copy with ``changes`` applied (convenience for sweeps).

        Switching a directoryless config back to a directory family would
        carry the pinned ``directory="none"`` into a config that rejects
        it, so the directory reverts to the default unless the caller
        chooses one explicitly.
        """
        target = changes.get("protocol", self.protocol)
        if (
            "directory" not in changes
            and self.directory == "none"
            and target not in DIRECTORYLESS_PROTOCOLS
        ):
            changes["directory"] = "ackwise"
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> dict:
        """JSON-ready mapping that round-trips through :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ProtocolConfig":
        """Rebuild from a mapping; fields the mapping predates (older
        serialized configs, e.g. pre-``neat_downgrade`` test fixtures) keep
        their defaults."""
        kwargs = {}
        for f in dataclasses.fields(cls):
            if f.name in data:
                kwargs[f.name] = data[f.name]
        return cls(**kwargs)


#: Baseline configuration used as the normalization anchor in every figure.
def baseline_protocol(directory: str = "ackwise") -> ProtocolConfig:
    """The paper's baseline: R-NUCA + ACKwise_4 directory protocol (PCT=1)."""
    return ProtocolConfig(protocol="baseline", pct=1, directory=directory)


def victim_replication_protocol(directory: str = "ackwise") -> ProtocolConfig:
    """Victim Replication (Section 2.1): baseline directory + local-slice
    victim caching of L1 evictions."""
    return ProtocolConfig(protocol="victim", pct=1, directory=directory)


def dls_protocol() -> ProtocolConfig:
    """DLS comparison baseline (PAPERS.md): directoryless shared LLC.

    Every access is a word-granularity access at the R-NUCA home slice; no
    private caching, no sharer tracking, no invalidations."""
    return ProtocolConfig(protocol="dls", pct=1, directory="none")


def phase_protocol(directory: str = "ackwise") -> ProtocolConfig:
    """Phase-priority directory coherence (PAPERS.md, arXiv 1305.3038).

    A directory protocol whose service policy follows the line's current
    access *phase*: lines in a write-shared phase are pinned at the home and
    serviced with word accesses (reads and writes), read-shared and private
    phases hand out private copies as usual.  Phases decay back toward
    private across release epochs."""
    return ProtocolConfig(protocol="phase", pct=1, directory=directory)


def neat_protocol(downgrade: str = "eager") -> ProtocolConfig:
    """Neat comparison baseline (PAPERS.md): self-invalidation/self-downgrade
    coherence without sharer tracking.

    ``downgrade="eager"`` writes every store through to the home;
    ``downgrade="release"`` buffers dirty words and self-downgrades them in
    one batched message per line at release boundaries (unlock/barrier).
    Clean read copies self-invalidate when the line is written (flushed, in
    release mode) by another core."""
    return ProtocolConfig(protocol="neat", pct=1, directory="none", neat_downgrade=downgrade)


@dataclass(frozen=True)
class EnergyConfig:
    """Per-event dynamic energies in pJ (11 nm, DSENT/McPAT-flavoured).

    Only *relative* magnitudes matter for reproducing the paper's shapes:

    * network links cost more than routers per flit (poor wire scaling,
      Section 5.1.1);
    * an L2 line access costs ~4x an L2 word access (word-addressable L2,
      Section 4.2);
    * L1 accesses are cheap relative to L2 accesses;
    * directory energy is negligible (Section 5.1.1).
    """

    l1i_read: float = 1.0
    l1i_fill: float = 4.0

    l1d_read: float = 1.6
    l1d_write: float = 1.9
    l1d_tag: float = 0.3
    l1d_line_fill: float = 5.2  # write a full 64B line into the data array
    l1d_line_read: float = 4.6  # read a full line out (write-back)

    l2_word_read: float = 3.2
    l2_word_write: float = 3.5
    l2_line_read: float = 12.8
    l2_line_write: float = 13.6
    l2_tag: float = 0.5

    directory_lookup: float = 0.7
    directory_update: float = 0.8

    router_per_flit: float = 0.55
    link_per_flit: float = 1.15

    def __post_init__(self) -> None:
        for f in dataclasses.fields(self):
            if getattr(self, f.name) < 0:
                raise ConfigError(f"energy {f.name} must be non-negative")

    def to_dict(self) -> dict:
        """JSON-ready mapping that round-trips through :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "EnergyConfig":
        return cls(**{f.name: data[f.name] for f in dataclasses.fields(cls)})
