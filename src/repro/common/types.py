"""Core enumerations shared across the simulator.

These mirror the vocabulary of the paper (Section 3): MESI coherence states,
private/remote sharer modes, and the five cache-miss categories of Section 4.4.
"""

from __future__ import annotations

import enum


class MESIState(enum.IntEnum):
    """Coherence state of a cache line in a private L1 cache."""

    INVALID = 0
    SHARED = 1
    EXCLUSIVE = 2
    MODIFIED = 3

    @property
    def is_valid(self) -> bool:
        return self is not MESIState.INVALID

    @property
    def can_write(self) -> bool:
        """Exclusive lines can be written (E upgrades to M silently)."""
        return self in (MESIState.EXCLUSIVE, MESIState.MODIFIED)


class DirState(enum.IntEnum):
    """Aggregate directory-visible state of a line across all L1 caches."""

    UNCACHED = 0  #: no private L1 copies exist
    SHARED = 1  #: one or more read-only copies
    EXCLUSIVE = 2  #: exactly one owner holding E or M


class AccessKind(enum.IntEnum):
    """Memory reference type issued by a core."""

    READ = 0
    WRITE = 1

    @property
    def is_write(self) -> bool:
        return self is AccessKind.WRITE


class SharerMode(enum.IntEnum):
    """Locality classification of a core w.r.t. a cache line (Section 3.2).

    A *private* sharer receives full cache-line copies; a *remote* sharer is
    serviced with word accesses at the shared L2 home location.
    """

    REMOTE = 0
    PRIVATE = 1


class MissType(enum.IntEnum):
    """L1 miss categories tracked for Figure 10 (Section 4.4)."""

    COLD = 0  #: line never previously brought into this core's cache
    CAPACITY = 1  #: line was evicted to make room for another line
    UPGRADE = 2  #: exclusive request for a line held read-only
    SHARING = 3  #: line was invalidated/downgraded by another core's request
    WORD = 4  #: miss serviced remotely for a line previously accessed remotely


class RemovalReason(enum.IntEnum):
    """Why a line left a private L1 cache (drives demotion, Section 3.2)."""

    EVICTION = 0  #: conflict/capacity replacement chose this line
    INVALIDATION = 1  #: exclusive request by another core


class Op(enum.IntEnum):
    """Opcodes of trace records produced by workload generators."""

    READ = 0
    WRITE = 1
    BARRIER = 2
    LOCK = 3
    UNLOCK = 4
    WORK = 5  #: pure compute (no memory reference); addr is ignored


#: Latency/energy reply classes used by the protocol engine.
class ServiceClass(enum.IntEnum):
    """How an L1 miss was serviced by the home L2/directory."""

    PRIVATE_LINE = 0  #: full cache-line handed to a private sharer
    REMOTE_WORD = 1  #: word round-trip for a remote sharer
