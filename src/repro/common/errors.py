"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An architecture/protocol/energy configuration is invalid."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state (e.g. malformed trace)."""


class CoherenceError(SimulationError):
    """A coherence invariant (SWMR, data value, inclusion) was violated.

    Raised only in verify mode; signals a protocol implementation bug.
    """


class TraceError(ReproError):
    """A workload produced a malformed trace (bad opcode, unbalanced locks...)."""


class RunnerError(ReproError):
    """The sweep execution engine failed (worker crash, bad job list...)."""
