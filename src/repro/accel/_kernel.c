/* Compiled mesh-traversal kernel behind MeshNetwork.traverse_path.
 *
 * This is a CPython extension module (built at import by repro.accel.build;
 * see DESIGN.md section 12) that owns the epoch ring-buffer state of one
 * MeshNetwork instance - the WINDOW_EPOCHS x num_links slot table, the
 * overflow hash map and the slot-recycle counter - and reserves whole
 * pre-resolved paths per call.  Python keeps everything else: route
 * resolution, message flit tables, the traffic counters (integer sums,
 * order-independent) and the naive/no-contention modes.
 *
 * Exactness contract (pinned by tests/properties/test_mesh_contention.py
 * run against both implementations): every arithmetic step mirrors the
 * pure-Python walk in repro/network/mesh.py.
 *
 *   - The head time accumulates `t += hop` per link as an IEEE-754 double,
 *     NOT one `hops * hop` add at the end: float addition of the hop
 *     latency is not associative for fractional times and the property
 *     tests pin bit-identity to the per-link walk.  CPython floats ARE
 *     C doubles, so per-link accumulation here is bit-identical there.
 *   - `(long long)t` truncates toward zero exactly like Python's `int(t)`
 *     for the non-negative simulation times.
 *   - occ_load/occ_store reproduce _occ_load/_occ_store including the
 *     recycle counter and the retired-occupancy flush into overflow, so
 *     slots + overflow partition the epoch->occupancy map identically.
 *
 * The Python fast pass in traverse_path is an *optimization* of the
 * reference per-link walk (same reservations, same departures, same
 * recycle counts - the stale-slot claim is exactly occ_store on an epoch
 * the overflow dict provably has no entry for); this kernel implements the
 * reference walk directly, which is branch-simpler and equally exact.
 *
 * The slot table is exposed to Python through the buffer protocol
 * (memoryview(kernel).cast("q")), so MeshNetwork introspection -
 * reserved_flits, occupancy_map - reads the *same memory* the kernel
 * mutates; there is no shadow copy to drift.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <stdint.h>
#include <string.h>

/* Mirror of the module constants in repro/network/mesh.py.  The loader
 * cross-checks these module attributes against the Python values and
 * refuses the kernel on mismatch, so the two can never drift silently. */
#define K_EPOCH_CYCLES 32
#define K_EPOCH_SHIFT 5
#define K_WINDOW_EPOCHS 128
#define K_WINDOW_MASK (K_WINDOW_EPOCHS - 1)
#define K_SLOT_SHIFT 6
#define K_SLOT_OCC_MASK ((1 << K_SLOT_SHIFT) - 1)
#define K_ABI_VERSION 1

typedef struct {
    PyObject_HEAD
    long long num_links;
    long long link_bits;
    long long hop_int;    /* integral hop latency for the shadow clock */
    double hop;           /* the same value as a double for head times */
    long long recycles;   /* MeshNetwork.slot_recycles when accelerated */
    long long *slots;     /* K_WINDOW_EPOCHS * num_links packed cells */
    Py_ssize_t slot_count;
    /* Overflow map: open addressing, linear probing, no deletions (the
     * Python dict never deletes entries either - reset clears wholesale).
     * Empty cells carry key -1; real keys (epoch << link_bits) | link are
     * always non-negative. */
    long long *okeys;
    long long *ovals;
    Py_ssize_t ocap;      /* power of two */
    Py_ssize_t olen;
    /* Path arena: registered routes as [hops, link0, link1, ...] runs of
     * int32; a handle is the offset of the hops header. */
    int32_t *arena;
    Py_ssize_t arena_len;
    Py_ssize_t arena_cap;
} KernelObject;

/* ------------------------------------------------------------------ */
/* Overflow hash map                                                   */
/* ------------------------------------------------------------------ */

static int
ov_alloc(KernelObject *k, Py_ssize_t cap)
{
    long long *keys = PyMem_Malloc((size_t)cap * sizeof(long long));
    long long *vals = PyMem_Malloc((size_t)cap * sizeof(long long));
    if (keys == NULL || vals == NULL) {
        PyMem_Free(keys);
        PyMem_Free(vals);
        return -1;
    }
    for (Py_ssize_t i = 0; i < cap; i++) {
        keys[i] = -1;
    }
    k->okeys = keys;
    k->ovals = vals;
    k->ocap = cap;
    k->olen = 0;
    return 0;
}

static inline Py_ssize_t
ov_probe(const KernelObject *k, long long key)
{
    Py_ssize_t mask = k->ocap - 1;
    Py_ssize_t i = (Py_ssize_t)(((unsigned long long)key
                                 * 0x9E3779B97F4A7C15ULL) >> 33) & mask;
    while (k->okeys[i] != -1 && k->okeys[i] != key) {
        i = (i + 1) & mask;
    }
    return i;
}

static inline long long
ov_lookup(const KernelObject *k, long long key)
{
    Py_ssize_t i = ov_probe(k, key);
    return (k->okeys[i] == key) ? k->ovals[i] : 0;
}

static int
ov_insert(KernelObject *k, long long key, long long value)
{
    Py_ssize_t i = ov_probe(k, key);
    if (k->okeys[i] == key) {
        k->ovals[i] = value;
        return 0;
    }
    if ((k->olen + 1) * 3 >= k->ocap * 2) {
        long long *old_keys = k->okeys;
        long long *old_vals = k->ovals;
        Py_ssize_t old_cap = k->ocap;
        if (ov_alloc(k, old_cap * 2) < 0) {
            k->okeys = old_keys;
            k->ovals = old_vals;
            k->ocap = old_cap;
            return -1;
        }
        for (Py_ssize_t j = 0; j < old_cap; j++) {
            if (old_keys[j] != -1) {
                Py_ssize_t slot = ov_probe(k, old_keys[j]);
                k->okeys[slot] = old_keys[j];
                k->ovals[slot] = old_vals[j];
                k->olen++;
            }
        }
        PyMem_Free(old_keys);
        PyMem_Free(old_vals);
        i = ov_probe(k, key);
    }
    k->okeys[i] = key;
    k->ovals[i] = value;
    k->olen++;
    return 0;
}

/* ------------------------------------------------------------------ */
/* Epoch accounting (mirrors _occ_load/_occ_store/_traverse_congested) */
/* ------------------------------------------------------------------ */

static inline long long
occ_load(const KernelObject *k, long long link, long long epoch)
{
    long long value = k->slots[(epoch & K_WINDOW_MASK) * k->num_links + link];
    if ((value >> K_SLOT_SHIFT) == epoch) {
        return value & K_SLOT_OCC_MASK;
    }
    return ov_lookup(k, (epoch << k->link_bits) | link);
}

static int
occ_store(KernelObject *k, long long link, long long epoch, long long occupancy)
{
    Py_ssize_t slot = (Py_ssize_t)((epoch & K_WINDOW_MASK) * k->num_links + link);
    long long value = k->slots[slot];
    long long tag = value >> K_SLOT_SHIFT;
    if (tag == epoch) {
        k->slots[slot] = (epoch << K_SLOT_SHIFT) | occupancy;
    }
    else if (tag < epoch) {
        /* Recycle the slot for the newer epoch; the retired occupancy
         * stays exactly readable through the overflow map. */
        k->recycles++;
        long long old = value & K_SLOT_OCC_MASK;
        if (old && ov_insert(k, (tag << k->link_bits) | link, old) < 0) {
            return -1;
        }
        k->slots[slot] = (epoch << K_SLOT_SHIFT) | occupancy;
    }
    else {
        /* The slot belongs to a newer epoch: this epoch lives in overflow. */
        if (ov_insert(k, (epoch << k->link_bits) | link, occupancy) < 0) {
            return -1;
        }
    }
    return 0;
}

static double
traverse_congested(KernelObject *k, long long link, long long epoch,
                   double t_head, long long flits, int *err)
{
    long long first = epoch;
    while (occ_load(k, link, epoch) >= K_EPOCH_CYCLES) {
        epoch++;
    }
    double depart = (epoch == first) ? t_head
                                     : (double)(epoch * K_EPOCH_CYCLES);
    long long remaining = flits;
    while (remaining > 0) {
        long long used = occ_load(k, link, epoch);
        long long take = K_EPOCH_CYCLES - used;
        if (take > remaining) {
            take = remaining;
        }
        if (occ_store(k, link, epoch, used + take) < 0) {
            *err = 1;
            return 0.0;
        }
        remaining -= take;
        epoch++;
    }
    return depart;
}

/* Reserve one link at t_head; return the head DEPART time (the broadcast
 * tree adds the hop latency itself, mirroring _traverse_link). */
static double
traverse_one(KernelObject *k, long long link, double t_head, long long flits,
             int *err)
{
    long long epoch = ((long long)t_head) >> K_EPOCH_SHIFT;
    long long occ = occ_load(k, link, epoch);
    if (occ + flits <= K_EPOCH_CYCLES) {
        if (occ_store(k, link, epoch, occ + flits) < 0) {
            *err = 1;
            return 0.0;
        }
        return t_head;
    }
    return traverse_congested(k, link, epoch, t_head, flits, err);
}

/* Reserve a whole registered path; return the TAIL arrival time. */
static double
traverse_links(KernelObject *k, const int32_t *links, long long hops,
               double t_head, long long flits, int *err)
{
    double hop = k->hop;
    long long hop_int = k->hop_int;
    long long t_int = (long long)t_head;
    for (long long i = 0; i < hops; i++) {
        long long link = links[i];
        long long epoch = t_int >> K_EPOCH_SHIFT;
        long long occ = occ_load(k, link, epoch);
        if (occ + flits <= K_EPOCH_CYCLES) {
            if (occ_store(k, link, epoch, occ + flits) < 0) {
                *err = 1;
                return 0.0;
            }
            t_head += hop;
            t_int += hop_int;
        }
        else {
            t_head = traverse_congested(k, link, epoch, t_head, flits, err)
                     + hop;
            if (*err) {
                return 0.0;
            }
            t_int = (long long)t_head;
        }
    }
    return t_head + (double)(flits - 1);
}

static inline const int32_t *
path_at(KernelObject *k, Py_ssize_t handle, long long *hops)
{
    if (handle < 0 || handle >= k->arena_len) {
        PyErr_SetString(PyExc_ValueError, "bad path handle");
        return NULL;
    }
    const int32_t *p = k->arena + handle;
    *hops = p[0];
    return p + 1;
}

/* ------------------------------------------------------------------ */
/* Type methods                                                        */
/* ------------------------------------------------------------------ */

static PyObject *
Kernel_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    long long num_links, link_bits;
    double hop;
    if (!PyArg_ParseTuple(args, "LLd", &num_links, &link_bits, &hop)) {
        return NULL;
    }
    if (num_links <= 0 || link_bits < 0 || link_bits > 40) {
        PyErr_SetString(PyExc_ValueError, "bad mesh geometry");
        return NULL;
    }
    if (hop <= 0 || hop != (double)(long long)hop) {
        /* The shadow integer clock (t_int += hop) requires an integral
         * hop latency - exactly as the pure-Python walk does. */
        PyErr_SetString(PyExc_ValueError, "hop latency must be integral");
        return NULL;
    }
    KernelObject *self = (KernelObject *)type->tp_alloc(type, 0);
    if (self == NULL) {
        return NULL;
    }
    self->num_links = num_links;
    self->link_bits = link_bits;
    self->hop = hop;
    self->hop_int = (long long)hop;
    self->recycles = 0;
    self->slot_count = (Py_ssize_t)(K_WINDOW_EPOCHS * num_links);
    self->slots = PyMem_Calloc((size_t)self->slot_count, sizeof(long long));
    self->okeys = NULL;
    self->ovals = NULL;
    self->arena = NULL;
    self->arena_len = 0;
    self->arena_cap = 0;
    if (self->slots == NULL || ov_alloc(self, 256) < 0) {
        Py_DECREF(self);
        return PyErr_NoMemory();
    }
    return (PyObject *)self;
}

static void
Kernel_dealloc(KernelObject *self)
{
    PyMem_Free(self->slots);
    PyMem_Free(self->okeys);
    PyMem_Free(self->ovals);
    PyMem_Free(self->arena);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
Kernel_register_path(KernelObject *self, PyObject *arg)
{
    PyObject *seq = PySequence_Fast(arg, "links must be a sequence");
    if (seq == NULL) {
        return NULL;
    }
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    Py_ssize_t need = self->arena_len + n + 1;
    if (need > self->arena_cap) {
        Py_ssize_t cap = self->arena_cap ? self->arena_cap : 256;
        while (cap < need) {
            cap *= 2;
        }
        int32_t *arena = PyMem_Realloc(self->arena,
                                       (size_t)cap * sizeof(int32_t));
        if (arena == NULL) {
            Py_DECREF(seq);
            return PyErr_NoMemory();
        }
        self->arena = arena;
        self->arena_cap = cap;
    }
    int32_t *out = self->arena + self->arena_len;
    out[0] = (int32_t)n;
    for (Py_ssize_t i = 0; i < n; i++) {
        long long link = PyLong_AsLongLong(PySequence_Fast_GET_ITEM(seq, i));
        if (link == -1 && PyErr_Occurred()) {
            Py_DECREF(seq);
            return NULL;
        }
        if (link < 0 || link >= self->num_links) {
            Py_DECREF(seq);
            PyErr_SetString(PyExc_ValueError, "link id out of range");
            return NULL;
        }
        out[1 + i] = (int32_t)link;
    }
    Py_DECREF(seq);
    Py_ssize_t handle = self->arena_len;
    self->arena_len = need;
    return PyLong_FromSsize_t(handle);
}

static PyObject *
Kernel_traverse(KernelObject *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "traverse(handle, t_head, flits)");
        return NULL;
    }
    Py_ssize_t handle = PyLong_AsSsize_t(args[0]);
    double t_head = PyFloat_AsDouble(args[1]);
    long long flits = PyLong_AsLongLong(args[2]);
    if (PyErr_Occurred()) {
        return NULL;
    }
    long long hops;
    const int32_t *links = path_at(self, handle, &hops);
    if (links == NULL) {
        return NULL;
    }
    int err = 0;
    double out = traverse_links(self, links, hops, t_head, flits, &err);
    if (err) {
        return PyErr_NoMemory();
    }
    return PyFloat_FromDouble(out);
}

static PyObject *
Kernel_traverse_link(KernelObject *self, PyObject *const *args,
                     Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "traverse_link(link, t_head, flits)");
        return NULL;
    }
    long long link = PyLong_AsLongLong(args[0]);
    double t_head = PyFloat_AsDouble(args[1]);
    long long flits = PyLong_AsLongLong(args[2]);
    if (PyErr_Occurred()) {
        return NULL;
    }
    if (link < 0 || link >= self->num_links) {
        PyErr_SetString(PyExc_ValueError, "link id out of range");
        return NULL;
    }
    int err = 0;
    double out = traverse_one(self, link, t_head, flits, &err);
    if (err) {
        return PyErr_NoMemory();
    }
    return PyFloat_FromDouble(out);
}

static PyObject *
Kernel_traverse_chain(KernelObject *self, PyObject *const *args,
                      Py_ssize_t nargs)
{
    if (nargs != 7) {
        PyErr_SetString(
            PyExc_TypeError,
            "traverse_chain(handle1, flits1, t0, busy_until, gap, "
            "handle2, flits2)");
        return NULL;
    }
    Py_ssize_t h1 = PyLong_AsSsize_t(args[0]);
    long long f1 = PyLong_AsLongLong(args[1]);
    double t0 = PyFloat_AsDouble(args[2]);
    double busy = PyFloat_AsDouble(args[3]);
    double gap = PyFloat_AsDouble(args[4]);
    Py_ssize_t h2 = PyLong_AsSsize_t(args[5]);
    long long f2 = PyLong_AsLongLong(args[6]);
    if (PyErr_Occurred()) {
        return NULL;
    }
    long long hops1, hops2;
    const int32_t *l1 = path_at(self, h1, &hops1);
    if (l1 == NULL) {
        return NULL;
    }
    const int32_t *l2 = path_at(self, h2, &hops2);
    if (l2 == NULL) {
        return NULL;
    }
    int err = 0;
    double t1 = traverse_links(self, l1, hops1, t0, f1, &err);
    if (err) {
        return PyErr_NoMemory();
    }
    double start = busy > t1 ? busy : t1;
    double t2 = traverse_links(self, l2, hops2, start + gap, f2, &err);
    if (err) {
        return PyErr_NoMemory();
    }
    PyObject *out = PyTuple_New(2);
    if (out == NULL) {
        return NULL;
    }
    PyTuple_SET_ITEM(out, 0, PyFloat_FromDouble(t1));
    PyTuple_SET_ITEM(out, 1, PyFloat_FromDouble(t2));
    return out;
}

static PyObject *
Kernel_traverse_many(KernelObject *self, PyObject *const *args,
                     Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError,
                        "traverse_many(t_head, flits, handles)");
        return NULL;
    }
    double t_head = PyFloat_AsDouble(args[0]);
    long long flits = PyLong_AsLongLong(args[1]);
    if (PyErr_Occurred()) {
        return NULL;
    }
    PyObject *seq = PySequence_Fast(args[2], "handles must be a sequence");
    if (seq == NULL) {
        return NULL;
    }
    Py_ssize_t n = PySequence_Fast_GET_SIZE(seq);
    PyObject *out = PyTuple_New(n);
    if (out == NULL) {
        Py_DECREF(seq);
        return NULL;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        Py_ssize_t handle =
            PyLong_AsSsize_t(PySequence_Fast_GET_ITEM(seq, i));
        long long hops;
        const int32_t *links;
        if ((handle == -1 && PyErr_Occurred())
            || (links = path_at(self, handle, &hops)) == NULL) {
            Py_DECREF(seq);
            Py_DECREF(out);
            return NULL;
        }
        int err = 0;
        double tail = traverse_links(self, links, hops, t_head, flits, &err);
        if (err) {
            Py_DECREF(seq);
            Py_DECREF(out);
            return PyErr_NoMemory();
        }
        PyTuple_SET_ITEM(out, i, PyFloat_FromDouble(tail));
    }
    Py_DECREF(seq);
    return out;
}

static PyObject *
Kernel_reset(KernelObject *self, PyObject *Py_UNUSED(ignored))
{
    memset(self->slots, 0, (size_t)self->slot_count * sizeof(long long));
    for (Py_ssize_t i = 0; i < self->ocap; i++) {
        self->okeys[i] = -1;
    }
    self->olen = 0;
    Py_RETURN_NONE;
}

static PyObject *
Kernel_overflow_len(KernelObject *self, PyObject *Py_UNUSED(ignored))
{
    return PyLong_FromSsize_t(self->olen);
}

static PyObject *
Kernel_overflow_items(KernelObject *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *out = PyList_New(self->olen);
    if (out == NULL) {
        return NULL;
    }
    Py_ssize_t pos = 0;
    for (Py_ssize_t i = 0; i < self->ocap; i++) {
        if (self->okeys[i] == -1) {
            continue;
        }
        PyObject *item = Py_BuildValue("(LL)", self->okeys[i],
                                       self->ovals[i]);
        if (item == NULL) {
            Py_DECREF(out);
            return NULL;
        }
        PyList_SET_ITEM(out, pos++, item);
    }
    return out;
}

static PyObject *
Kernel_overflow_get(KernelObject *self, PyObject *arg)
{
    long long key = PyLong_AsLongLong(arg);
    if (key == -1 && PyErr_Occurred()) {
        return NULL;
    }
    return PyLong_FromLongLong(ov_lookup(self, key));
}

static PyObject *
Kernel_get_recycles(KernelObject *self, void *Py_UNUSED(closure))
{
    return PyLong_FromLongLong(self->recycles);
}

static int
Kernel_set_recycles(KernelObject *self, PyObject *value,
                    void *Py_UNUSED(closure))
{
    long long v = PyLong_AsLongLong(value);
    if (v == -1 && PyErr_Occurred()) {
        return -1;
    }
    self->recycles = v;
    return 0;
}

static int
Kernel_getbuffer(KernelObject *self, Py_buffer *view, int flags)
{
    return PyBuffer_FillInfo(view, (PyObject *)self, self->slots,
                             self->slot_count * (Py_ssize_t)sizeof(long long),
                             0, flags);
}

static PyMethodDef Kernel_methods[] = {
    {"register_path", (PyCFunction)Kernel_register_path, METH_O,
     "register_path(links) -> handle"},
    {"traverse", (PyCFunction)(void (*)(void))Kernel_traverse,
     METH_FASTCALL, "traverse(handle, t_head, flits) -> tail arrival"},
    {"traverse_link", (PyCFunction)(void (*)(void))Kernel_traverse_link,
     METH_FASTCALL, "traverse_link(link, t_head, flits) -> head depart"},
    {"traverse_chain", (PyCFunction)(void (*)(void))Kernel_traverse_chain,
     METH_FASTCALL,
     "traverse_chain(h1, f1, t0, busy, gap, h2, f2) -> (t1, t2)"},
    {"traverse_many", (PyCFunction)(void (*)(void))Kernel_traverse_many,
     METH_FASTCALL, "traverse_many(t_head, flits, handles) -> tuple"},
    {"reset", (PyCFunction)Kernel_reset, METH_NOARGS,
     "forget all reservations (slots + overflow)"},
    {"overflow_len", (PyCFunction)Kernel_overflow_len, METH_NOARGS, NULL},
    {"overflow_items", (PyCFunction)Kernel_overflow_items, METH_NOARGS, NULL},
    {"overflow_get", (PyCFunction)Kernel_overflow_get, METH_O, NULL},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef Kernel_getset[] = {
    {"recycles", (getter)Kernel_get_recycles, (setter)Kernel_set_recycles,
     "slots recycled for a newer epoch", NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyBufferProcs Kernel_as_buffer = {
    (getbufferproc)Kernel_getbuffer,
    NULL,
};

static PyTypeObject KernelType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "_repro_mesh_kernel.MeshKernel",
    .tp_basicsize = sizeof(KernelObject),
    .tp_dealloc = (destructor)Kernel_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Epoch ring-buffer bandwidth accounting for one MeshNetwork",
    .tp_methods = Kernel_methods,
    .tp_getset = Kernel_getset,
    .tp_as_buffer = &Kernel_as_buffer,
    .tp_new = Kernel_new,
};

/* Defined in _sched.c (same shared object). */
extern int repro_sched_register(PyObject *mod);

static struct PyModuleDef kernel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "_repro_mesh_kernel",
    .m_doc = "Compiled mesh traversal kernel (see repro.accel)",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__repro_mesh_kernel(void)
{
    if (PyType_Ready(&KernelType) < 0) {
        return NULL;
    }
    PyObject *mod = PyModule_Create(&kernel_module);
    if (mod == NULL) {
        return NULL;
    }
    if (PyModule_AddObjectRef(mod, "MeshKernel", (PyObject *)&KernelType) < 0
        || PyModule_AddIntConstant(mod, "EPOCH_CYCLES", K_EPOCH_CYCLES) < 0
        || PyModule_AddIntConstant(mod, "EPOCH_SHIFT", K_EPOCH_SHIFT) < 0
        || PyModule_AddIntConstant(mod, "WINDOW_EPOCHS", K_WINDOW_EPOCHS) < 0
        || PyModule_AddIntConstant(mod, "SLOT_SHIFT", K_SLOT_SHIFT) < 0
        || PyModule_AddIntConstant(mod, "ABI_VERSION", K_ABI_VERSION) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    /* Scheduler kernel (accelerator phase 2), compiled from the sibling
     * _sched.c into this same module. */
    if (repro_sched_register(mod) < 0) {
        Py_DECREF(mod);
        return NULL;
    }
    return mod;
}
