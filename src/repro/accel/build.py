"""Compile-at-import machinery for the accelerator kernels.

The package's C sources (``_kernel.c`` mesh kernel + ``_sched.c`` scheduler
kernel, plus any headers) are compiled into one CPython extension module
the first time a process asks for it, then dlopen'd from a per-version
cache directory on every later import (compile once, load forever - the
juno ``cffi.py`` pattern).  The cache key is everything that can
invalidate an artifact:

* the interpreter's ABI tag (``EXT_SUFFIX`` already embeds it, and the
  cache directory is additionally namespaced by ``sys.implementation
  .cache_tag``), so 3.11 and 3.12 never share a shared object;
* **every** ``.c``/``.h`` input's **mtime and content hash**, so editing
  any kernel source - not just the first one - rebuilds on the next
  import;
* the **compiler id** (resolved binary + its ``--version`` banner), so a
  toolchain swap rebuilds rather than trusting a stale artifact.

Every failure mode - no compiler, no Python headers, cc exits non-zero,
the built module will not import or disagrees with the mesh constants -
degrades to ``None`` with a machine-readable reason: the caller falls back
to the pure-Python ring buffer, which stays the ungated implementation.
Nothing in this module raises on a broken toolchain.
"""

from __future__ import annotations

import hashlib
import importlib.machinery
import importlib.util
import json
import os
import shutil
import subprocess
import sys
import sysconfig
from pathlib import Path

SOURCE = Path(__file__).with_name("_kernel.c")
MODULE_NAME = "_repro_mesh_kernel"


def kernel_sources() -> tuple[Path, ...]:
    """Every C translation unit and header that feeds the artifact.

    ``_kernel.c`` (mesh) and ``_sched.c`` (scheduler) compile into the one
    shared object; headers do not compile but must fingerprint - an edited
    inline helper has to invalidate the cache exactly like a ``.c`` edit.
    """
    here = Path(__file__).parent
    return tuple(sorted(here.glob("*.c")) + sorted(here.glob("*.h")))

#: Force the pure-Python fallback (checked per MeshNetwork construction).
NO_ACCEL_ENV = "REPRO_NO_ACCEL"
#: Override the artifact cache directory (tests point this at tmp dirs).
CACHE_ENV = "REPRO_ACCEL_CACHE"
#: Override the compiler (same contract as make's ``CC``).
CC_ENV = "CC"

_CC_CANDIDATES = ("cc", "gcc", "clang")


def find_compiler() -> str | None:
    """Resolve the platform C compiler; ``None`` when there is none.

    Monkeypatch target for the simulated compiler-missing tests.
    """
    override = os.environ.get(CC_ENV)
    if override:
        return shutil.which(override)
    for name in _CC_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def compiler_id(cc: str) -> str:
    """Stable identity of the toolchain: path plus version banner."""
    try:
        proc = subprocess.run(
            [cc, "--version"], capture_output=True, text=True, timeout=30
        )
        banner = proc.stdout.splitlines()[0] if proc.stdout else "unknown"
    except (OSError, subprocess.SubprocessError, IndexError):
        banner = "unknown"
    return f"{cc} ({banner})"


def cache_dir() -> Path:
    override = os.environ.get(CACHE_ENV)
    if override:
        base = Path(override)
    else:
        xdg = os.environ.get("XDG_CACHE_HOME")
        base = Path(xdg) if xdg else Path.home() / ".cache"
        base = base / "repro-accel"
    return base / sys.implementation.cache_tag


def _source_fingerprint(source: Path) -> tuple[float, str]:
    data = source.read_bytes()
    return source.stat().st_mtime, hashlib.sha256(data).hexdigest()


def _resolve_sources(sources) -> tuple[Path, ...]:
    """Normalize the ``build_artifact`` source argument.

    ``None`` means every ``.c``/``.h`` in the package (the production
    path); a single ``Path`` or a sequence supports the build-cache tests,
    which compile copies from a tmp directory.
    """
    if sources is None:
        return kernel_sources()
    if isinstance(sources, (str, Path)):
        return (Path(sources),)
    return tuple(Path(s) for s in sources)


def artifact_paths(sources=None) -> tuple[Path, Path]:
    """The shared object and its build-metadata sidecar in the cache."""
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    directory = cache_dir()
    return directory / f"{MODULE_NAME}{suffix}", directory / f"{MODULE_NAME}.json"


def _fingerprint_map(sources: tuple[Path, ...]) -> dict[str, dict]:
    out = {}
    for source in sources:
        mtime, digest = _source_fingerprint(source)
        out[source.name] = {"mtime": mtime, "sha256": digest}
    return out


def _needs_build(
    artifact: Path, meta_path: Path, sources: tuple[Path, ...], cc_id: str
) -> bool:
    if not artifact.exists() or not meta_path.exists():
        return True
    fingerprints = _fingerprint_map(sources)
    # mtime first: a touched source always rebuilds, even if the sidecar
    # was hand-edited; the content hashes catch mtime-preserving edits.
    artifact_mtime = artifact.stat().st_mtime
    if any(artifact_mtime < fp["mtime"] for fp in fingerprints.values()):
        return True
    try:
        meta = json.loads(meta_path.read_text())
    except (OSError, ValueError):
        return True
    recorded = meta.get("sources")
    if not isinstance(recorded, dict):
        return True  # pre-multi-source sidecar: rebuild once to upgrade it
    return (
        {name: fp["sha256"] for name, fp in fingerprints.items()}
        != {name: fp.get("sha256") for name, fp in recorded.items()}
        or meta.get("compiler_id") != cc_id
        or meta.get("abi") != sysconfig.get_config_var("EXT_SUFFIX")
    )


def build_artifact(sources=None) -> tuple[Path | None, dict]:
    """Ensure a current shared object exists; return ``(path, info)``.

    ``sources`` is ``None`` for the package's own kernels, or an explicit
    ``Path``/sequence (build-cache tests).  ``path`` is ``None`` on any
    failure and ``info`` always carries a ``reason`` string plus whatever
    provenance was established (compiler id, cache path) - this is the
    payload ``repro accel-info`` renders.
    """
    source_paths = _resolve_sources(sources)
    info: dict = {
        "source": ", ".join(str(s) for s in source_paths),
        "cache_dir": str(cache_dir()),
        "compiler": None,
        "reason": None,
        "rebuilt": False,
    }
    from repro.faults import FAULTS

    if FAULTS.active and FAULTS.trigger("accel.build_fail", kernel="build") is not None:
        # Chaos failpoint: a broken toolchain at first import.  Taking the
        # same degrade-to-None path as a real compiler failure proves the
        # pure-Python fallback keeps RunStats bit-identical.
        info["reason"] = "fault injected: accel.build_fail"
        return None, info
    missing = [s for s in source_paths if not s.exists()]
    if not source_paths or missing:
        info["reason"] = f"kernel source missing: {missing or source_paths}"
        return None, info
    cc = find_compiler()
    if cc is None:
        info["reason"] = "no C compiler found (cc/gcc/clang)"
        return None, info
    cc_id = compiler_id(cc)
    info["compiler"] = cc_id
    include = sysconfig.get_paths().get("include")
    if not include or not (Path(include) / "Python.h").exists():
        info["reason"] = f"Python headers not found under {include!r}"
        return None, info

    artifact, meta_path = artifact_paths(source_paths)
    info["artifact"] = str(artifact)
    if not _needs_build(artifact, meta_path, source_paths, cc_id):
        return artifact, info

    compile_units = [s for s in source_paths if s.suffix == ".c"]
    try:
        artifact.parent.mkdir(parents=True, exist_ok=True)
        tmp = artifact.with_suffix(artifact.suffix + f".tmp{os.getpid()}")
        cmd = [
            cc,
            "-O2",
            "-fPIC",
            "-shared",
            f"-I{include}",
            *(str(s) for s in compile_units),
            "-o",
            str(tmp),
        ]
        platinclude = sysconfig.get_paths().get("platinclude")
        if platinclude and platinclude != include:
            cmd.insert(5, f"-I{platinclude}")
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=300)
        if proc.returncode != 0:
            tmp.unlink(missing_ok=True)
            tail = (proc.stderr or proc.stdout or "").strip()[-500:]
            info["reason"] = f"compile failed (exit {proc.returncode}): {tail}"
            return None, info
        os.replace(tmp, artifact)  # atomic: concurrent builders agree
        meta_path.write_text(
            json.dumps(
                {
                    "sources": _fingerprint_map(source_paths),
                    "compiler_id": cc_id,
                    "abi": sysconfig.get_config_var("EXT_SUFFIX"),
                    "command": cmd,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        info["rebuilt"] = True
    except (OSError, subprocess.SubprocessError) as exc:
        info["reason"] = f"compile failed: {exc}"
        return None, info
    return artifact, info


def load_module(artifact: Path):
    """dlopen the built extension module (raises on a broken artifact)."""
    loader = importlib.machinery.ExtensionFileLoader(MODULE_NAME, str(artifact))
    spec = importlib.util.spec_from_file_location(
        MODULE_NAME, str(artifact), loader=loader
    )
    module = importlib.util.module_from_spec(spec)
    loader.exec_module(module)
    return module
