"""Optional compiled accelerators (DESIGN.md sections 12 and 14).

``repro.accel`` builds the package's C sources into one CPython extension
on first use (see :mod:`repro.accel.build`) and hands out two kernel
classes from it:

* ``MeshKernel`` (phase 1): the epoch ring-buffer bandwidth accounting
  behind ``MeshNetwork.traverse_path``;
* ``SchedKernel`` (phase 2): the simulator's columnar record walk -
  cursors, min-clock heap and the inline L1-hit fast path - behind
  ``Simulator._execute``.

Selection rules, per kernel and in order:

1. ``REPRO_NO_ACCEL=1`` (any non-empty value) forces the pure-Python
   implementations of *both* kernels; ``REPRO_NO_ACCEL_MESH`` /
   ``REPRO_NO_ACCEL_SCHED`` force one kernel's fallback independently.
   All three are checked per construction, so tests can flip them with
   ``monkeypatch.setenv`` without reloading modules.
2. Otherwise the module is compiled/loaded once per process and each
   kernel resolved once; **any** failure (no compiler, no headers,
   compile error, import error, constant mismatch with the Python
   definitions, an ``accel.build_fail`` fault at that kernel's gate) logs
   one warning per kernel and pins that kernel's fallback for the rest of
   the process.
3. The pure-Python implementations are the ungated fallback either way -
   bit-identical by the property/fixture suites, just slower.

``status()`` is the introspection payload behind ``repro accel-info``.
"""

from __future__ import annotations

import logging
import os
from typing import Any

from repro.accel import build
from repro.accel.build import CACHE_ENV, NO_ACCEL_ENV

__all__ = [
    "CACHE_ENV",
    "NO_ACCEL_ENV",
    "NO_ACCEL_MESH_ENV",
    "NO_ACCEL_SCHED_ENV",
    "active_impl",
    "kernel_impl",
    "mesh_kernel_class",
    "reset",
    "sched_kernel_class",
    "status",
]

log = logging.getLogger("repro.accel")

#: Force one kernel's pure-Python fallback without touching the other.
NO_ACCEL_MESH_ENV = "REPRO_NO_ACCEL_MESH"
NO_ACCEL_SCHED_ENV = "REPRO_NO_ACCEL_SCHED"

#: One-shot module load state: ``None`` = not attempted yet,
#: ``(module, info)`` afterwards (``module`` is None when the build/load
#: failed).
_state: tuple[Any, dict] | None = None

#: One-shot per-kernel resolution: name -> (cls_or_None, reason_or_None).
_kernels: dict[str, tuple[Any, str | None]] = {}


def _mesh_constants() -> dict[str, int]:
    from repro.network import mesh

    return {
        "EPOCH_CYCLES": mesh.EPOCH_CYCLES,
        "EPOCH_SHIFT": mesh.EPOCH_SHIFT,
        "WINDOW_EPOCHS": mesh.WINDOW_EPOCHS,
        "SLOT_SHIFT": mesh._SLOT_SHIFT,
    }


def _sched_constants() -> dict[str, int]:
    from repro.common import addr
    from repro.common.types import Op

    return {
        "OP_READ": int(Op.READ),
        "OP_WRITE": int(Op.WRITE),
        "OP_BARRIER": int(Op.BARRIER),
        "OP_LOCK": int(Op.LOCK),
        "OP_UNLOCK": int(Op.UNLOCK),
        "OP_WORK": int(Op.WORK),
        "LINE_BITS": addr.LINE_BITS,
    }


#: kernel name -> (module attribute, constants to cross-check, label).
_KERNEL_SPECS = {
    "mesh": ("MeshKernel", _mesh_constants, "mesh accelerator"),
    "sched": ("SchedKernel", _sched_constants, "scheduler accelerator"),
}


def _load_module() -> tuple[Any, dict]:
    global _state
    if _state is not None:
        return _state
    artifact, info = build.build_artifact()
    module = None
    if artifact is not None:
        try:
            module = build.load_module(artifact)
        except (ImportError, OSError) as exc:
            info["reason"] = f"built kernel failed to import: {exc}"
        else:
            info["abi_version"] = getattr(module, "ABI_VERSION", None)
    _state = (module, info)
    return _state


def _kernel(name: str) -> tuple[Any, str | None]:
    """Resolve one kernel class once per process (None = fallback)."""
    cached = _kernels.get(name)
    if cached is not None:
        return cached
    module, info = _load_module()
    attr, constants_fn, label = _KERNEL_SPECS[name]
    cls = None
    reason = info.get("reason")
    if module is not None:
        from repro.faults import FAULTS

        if FAULTS.active and FAULTS.trigger("accel.build_fail", kernel=name) is not None:
            # Per-kernel chaos gate: `args={"kernel": "sched"}` forces only
            # this kernel's fallback while the other stays compiled.
            reason = f"fault injected: accel.build_fail (kernel={name})"
        else:
            mismatch = {
                const: (value, getattr(module, const, None))
                for const, value in constants_fn().items()
                if getattr(module, const, None) != value
            }
            if mismatch:
                reason = f"kernel constant mismatch ({name}): {mismatch}"
            else:
                cls = getattr(module, attr, None)
                if cls is None:
                    reason = f"built module exports no {attr}"
    if cls is None:
        log.warning(
            "%s unavailable, using pure-Python fallback: %s", label, reason
        )
    _kernels[name] = (cls, reason)
    return _kernels[name]


def reset() -> None:
    """Forget the cached load attempt (build-cache tests only)."""
    global _state
    _state = None
    _kernels.clear()


def mesh_kernel_class() -> Any | None:
    """The compiled ``MeshKernel`` class, or ``None`` to use the fallback.

    Honors ``REPRO_NO_ACCEL``/``REPRO_NO_ACCEL_MESH`` on every call; the
    expensive build/load is attempted at most once per process.
    """
    if os.environ.get(NO_ACCEL_ENV) or os.environ.get(NO_ACCEL_MESH_ENV):
        return None
    return _kernel("mesh")[0]


def sched_kernel_class() -> Any | None:
    """The compiled ``SchedKernel`` class, or ``None`` to use the fallback.

    Honors ``REPRO_NO_ACCEL``/``REPRO_NO_ACCEL_SCHED`` on every call; the
    expensive build/load is attempted at most once per process.
    """
    if os.environ.get(NO_ACCEL_ENV) or os.environ.get(NO_ACCEL_SCHED_ENV):
        return None
    return _kernel("sched")[0]


def active_impl() -> str:
    """The implementation a ``MeshNetwork`` built right now would select."""
    return kernel_impl("mesh")


def kernel_impl(name: str) -> str:
    """``"accel"``/``"fallback"`` for one kernel, as selected right now."""
    getter = mesh_kernel_class if name == "mesh" else sched_kernel_class
    return "accel" if getter() is not None else "fallback"


_KERNEL_ENVS = {"mesh": NO_ACCEL_MESH_ENV, "sched": NO_ACCEL_SCHED_ENV}


def status() -> dict:
    """JSON-ready kernel status (the ``repro accel-info`` payload).

    Top-level ``implementation``/``compiled``/``reason`` describe the mesh
    kernel (schema-2 compatibility); ``kernels`` carries the per-kernel
    form the bench provenance and the CI matrix assert on.
    """
    disabled_all = bool(os.environ.get(NO_ACCEL_ENV))
    kernels: dict[str, dict] = {}
    for name, env in _KERNEL_ENVS.items():
        disabled = disabled_all or bool(os.environ.get(env))
        if name in _kernels:
            cls, reason = _kernels[name]
        elif not disabled:
            cls, reason = _kernel(name)
        else:
            cls, reason = None, None
        compiled = cls is not None
        if disabled_all:
            reason = f"{NO_ACCEL_ENV} is set"
        elif disabled:
            reason = f"{env} is set"
        kernels[name] = {
            "implementation": "fallback" if (disabled or not compiled) else "accel",
            "compiled": compiled,
            "disabled_by_env": disabled,
            "reason": reason,
        }
    info = _state[1] if _state is not None else {}
    mesh = kernels["mesh"]
    return {
        "implementation": mesh["implementation"],
        "compiled": mesh["compiled"],
        "disabled_by_env": disabled_all,
        "cache_dir": info.get("cache_dir", str(build.cache_dir())),
        "artifact": info.get("artifact"),
        "compiler": info.get("compiler"),
        "reason": mesh["reason"],
        "source": info.get(
            "source", ", ".join(str(s) for s in build.kernel_sources())
        ),
        "kernels": kernels,
    }
