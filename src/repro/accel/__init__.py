"""Optional compiled accelerator for the mesh hot path (DESIGN.md sec. 12).

``repro.accel`` builds ``_kernel.c`` into a CPython extension on first use
(see :mod:`repro.accel.build`) and hands :class:`~repro.network.mesh
.MeshNetwork` a ``MeshKernel`` class that owns the epoch ring-buffer state
natively.  Selection rules, in order:

1. ``REPRO_NO_ACCEL=1`` (any non-empty value) forces the pure-Python ring
   buffer.  Checked per ``MeshNetwork`` construction, so tests can flip it
   with ``monkeypatch.setenv`` without reloading modules.
2. Otherwise the kernel is compiled/loaded once per process; **any**
   failure (no compiler, no headers, compile error, import error, constant
   mismatch with ``repro.network.mesh``) logs a single warning and pins
   the fallback for the rest of the process.
3. The pure-Python implementation is the ungated fallback either way -
   bit-identical by the contention property tests, just slower.

``status()`` is the introspection payload behind ``repro accel-info``.
"""

from __future__ import annotations

import logging
import os
from typing import Any

from repro.accel import build
from repro.accel.build import CACHE_ENV, NO_ACCEL_ENV

__all__ = [
    "CACHE_ENV",
    "NO_ACCEL_ENV",
    "active_impl",
    "mesh_kernel_class",
    "reset",
    "status",
]

log = logging.getLogger("repro.accel")

#: One-shot load state: ``None`` = not attempted yet, ``(cls, info)``
#: afterwards (``cls`` is None when the build/load failed).
_state: tuple[Any, dict] | None = None


def _mesh_constants() -> dict[str, int]:
    from repro.network import mesh

    return {
        "EPOCH_CYCLES": mesh.EPOCH_CYCLES,
        "EPOCH_SHIFT": mesh.EPOCH_SHIFT,
        "WINDOW_EPOCHS": mesh.WINDOW_EPOCHS,
        "SLOT_SHIFT": mesh._SLOT_SHIFT,
    }


def _load() -> tuple[Any, dict]:
    global _state
    if _state is not None:
        return _state
    artifact, info = build.build_artifact()
    cls = None
    if artifact is not None:
        try:
            module = build.load_module(artifact)
        except (ImportError, OSError) as exc:
            info["reason"] = f"built kernel failed to import: {exc}"
        else:
            mismatch = {
                name: (value, getattr(module, name, None))
                for name, value in _mesh_constants().items()
                if getattr(module, name, None) != value
            }
            if mismatch:
                info["reason"] = f"kernel/mesh constant mismatch: {mismatch}"
            else:
                cls = module.MeshKernel
                info["abi_version"] = module.ABI_VERSION
    if cls is None:
        log.warning(
            "mesh accelerator unavailable, using pure-Python fallback: %s",
            info.get("reason"),
        )
    _state = (cls, info)
    return _state


def reset() -> None:
    """Forget the cached load attempt (build-cache tests only)."""
    global _state
    _state = None


def mesh_kernel_class() -> Any | None:
    """The compiled ``MeshKernel`` class, or ``None`` to use the fallback.

    Honors ``REPRO_NO_ACCEL`` on every call; the expensive build/load is
    attempted at most once per process.
    """
    if os.environ.get(NO_ACCEL_ENV):
        return None
    return _load()[0]


def active_impl() -> str:
    """The implementation a ``MeshNetwork`` built right now would select."""
    return "accel" if mesh_kernel_class() is not None else "fallback"


def status() -> dict:
    """JSON-ready kernel status (the ``repro accel-info`` payload)."""
    disabled = bool(os.environ.get(NO_ACCEL_ENV))
    attempted = _state is not None or not disabled
    if attempted:
        cls, info = _load()
    else:
        cls, info = None, {"reason": None}
    compiled = cls is not None
    out = {
        "implementation": "fallback" if (disabled or not compiled) else "accel",
        "compiled": compiled,
        "disabled_by_env": disabled,
        "cache_dir": info.get("cache_dir", str(build.cache_dir())),
        "artifact": info.get("artifact"),
        "compiler": info.get("compiler"),
        "reason": (
            f"{NO_ACCEL_ENV} is set" if disabled else info.get("reason")
        ),
        "source": info.get("source", str(build.SOURCE)),
    }
    return out
