/* Compiled scheduler kernel: the simulator's columnar record walk in C.
 *
 * Accelerator phase 2 (DESIGN.md section 14).  One SchedKernel instance
 * owns a single `Simulator._execute` pass natively:
 *
 *   - per-core int64 cursors directly over the trace's array('q') columns,
 *     adopted zero-copy through the buffer protocol (no list
 *     materialization);
 *   - the (t, core) min-clock binary heap with the identical tuple-order
 *     tiebreak.  One entry per core means the heap order is a *strict*
 *     total order, and every correct binary heap pops a strictly totally
 *     ordered content set in the same sequence, so the schedule is
 *     bit-identical to heapq's regardless of internal layout;
 *   - per-core compute/latency accumulators as C doubles.  CPython floats
 *     are C doubles and the per-record addition order is unchanged, so
 *     every accumulated value is bit-identical to the pure-Python loop;
 *   - an open-addressing (core, line) -> CacheLine map mirroring the
 *     scheduler_fast_path() L1 buckets (the same Fibonacci-hash + linear
 *     probe machinery as the mesh kernel's overflow map), with *deferred*
 *     hit bookkeeping: utilization delta, last-access timestamp, the
 *     LRU-counter replay index, and the silent E -> M upgrade flag are
 *     buffered per entry and written back before any engine code can
 *     observe them.
 *
 * The kernel exits to Python only on cold events: an access() miss calls
 * the engine directly (the loop stays native around it), while
 * barrier/lock/unlock records return an exit tuple *before* the record is
 * processed and a thin Python trampoline performs the synchronization
 * bookkeeping (sync_boundary_hook, lock queues, deadlock accounting),
 * re-entering through continue_at()/advance()/wake().  Thousands of hit
 * records retire per FFI crossing.
 *
 * Exactness invariants (pinned by the fixture + differential suites):
 *
 *   - flush-before-engine-entry: every deferred hit (LRU counter,
 *     utilization, timestamp, E -> M upgrade) is written back to the
 *     CacheLine objects and the store's _use_counter before *every*
 *     access() call and every exit, so the engine's victim selection,
 *     min_last_access scans, purges and histograms read exactly the state
 *     the pure-Python loop would have produced;
 *   - LRU-counter replay: the kernel never owns store._use_counter.  It
 *     counts hits per core since the last flush; at flush it reads the
 *     counter (the engine may have bumped it during misses), assigns each
 *     dirty line `base + (index of its last hit)` and writes back
 *     `base + hits`, replicating the per-hit `counter = _use_counter + 1`
 *     sequence without touching Python integers on the hot path;
 *   - entry pointers in the map are *borrowed*: the store's set dicts hold
 *     a strong reference for exactly as long as the line is resident, and
 *     every membership change while the kernel is attached flows through
 *     the SetAssocCache._observer hooks (insert, including its internal
 *     victim eviction; pop; clear) into note().
 *
 * Compiled into the same module as the mesh kernel (_kernel.c calls
 * repro_sched_register from its PyInit), behind the same build cache,
 * ABI gate and fallback rules.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

#include <stdint.h>
#include <string.h>

/* Mirrors of repro.common constants; cross-checked against the Python
 * definitions at load time by repro.accel (mismatch -> fallback). */
#define K_OP_READ 0
#define K_OP_WRITE 1
#define K_OP_BARRIER 2
#define K_OP_LOCK 3
#define K_OP_UNLOCK 4
#define K_OP_WORK 5
#define K_LINE_BITS 6
#define K_SCHED_ABI_VERSION 1

#define MAP_EMPTY (-1)
#define MAP_TOMBSTONE (-2)

typedef struct {
    double t;
    long long core;
} HeapEntry;

typedef struct {
    long long key;      /* (line << core_bits) | core; MAP_EMPTY/MAP_TOMBSTONE */
    PyObject *entry;    /* borrowed CacheLine (the set dict owns the ref) */
    long long util_delta;
    long long hit_idx;  /* 1-based index of the last hit in this core's
                           per-flush hit sequence; 0 = clean */
    double last_access;
    int upgraded;       /* deferred silent E -> M */
} MapCell;

typedef struct {
    PyObject_HEAD
    long long num_cores;
    long long core_bits;
    double l1_hit_latency;

    /* Columnar trace views (buffer protocol; zero-copy). */
    Py_buffer *views;            /* 3 * num_cores buffers, in adoption order */
    Py_ssize_t num_views;
    const long long **ops;
    const long long **addrs;
    const long long **works;
    long long *lengths;

    long long *indices;
    double *clocks;
    double *compute;
    double *bd_l1_to_l2;
    double *bd_l2_waiting;
    double *bd_l2_sharers;
    double *bd_l2_offchip;
    long long *hits_r;
    long long *hits_w;
    long long *hit_seq;          /* hits per core since the last flush */
    long long *counter_base;     /* scratch: _use_counter base per core */

    HeapEntry *heap;
    Py_ssize_t heap_len;
    long long current;           /* core to keep running, -1 = pop next */
    double now;

    PyObject *access;            /* engine.access */
    PyObject **core_objs;        /* cached PyLong per core (strong) */

    /* Fast path (NULL/0 when the engine has none). */
    int has_fast;
    PyObject *stores_list;       /* strong ref to the descriptor's list */
    PyObject **stores;           /* borrowed items of stores_list */
    PyObject *exclusive_obj;     /* strong */
    PyObject *modified_obj;      /* strong */
    PyObject *str_use_counter;   /* interned "_use_counter" */
    Py_ssize_t off_state, off_last_use, off_last_access, off_utilization;
    Py_ssize_t off_r_latency, off_r_l1l2, off_r_l2w, off_r_l2s, off_r_l2o;
    Py_ssize_t off_r_hit;

    MapCell *map;
    Py_ssize_t map_cap;          /* power of two */
    Py_ssize_t map_len;          /* occupied cells */
    Py_ssize_t map_used;         /* occupied + tombstones */

    MapCell **dirty;
    Py_ssize_t dirty_len;
    Py_ssize_t dirty_cap;
} SchedObject;

#define SLOT(obj, off) ((PyObject **)((char *)(obj) + (off)))

/* ------------------------------------------------------------------ */
/* Open-addressing map: Fibonacci hash + linear probe (the mesh         */
/* kernel's overflow-map machinery, keyed by (line, core)).             */
/* ------------------------------------------------------------------ */

static inline Py_ssize_t
map_hash(long long key, Py_ssize_t cap)
{
    return (Py_ssize_t)(((unsigned long long)key * 0x9E3779B97F4A7C15ULL) >> 33)
           & (cap - 1);
}

static inline MapCell *
map_find(SchedObject *k, long long key)
{
    Py_ssize_t mask = k->map_cap - 1;
    Py_ssize_t pos = map_hash(key, k->map_cap);
    for (;;) {
        MapCell *cell = &k->map[pos];
        if (cell->key == key) {
            return cell;
        }
        if (cell->key == MAP_EMPTY) {
            return NULL;
        }
        pos = (pos + 1) & mask;
    }
}

static int map_insert(SchedObject *k, long long key, PyObject *entry);

static int
map_rehash(SchedObject *k, Py_ssize_t cap)
{
    MapCell *old = k->map;
    Py_ssize_t old_cap = k->map_cap;
    MapCell *fresh = PyMem_Malloc((size_t)cap * sizeof(MapCell));
    if (fresh == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    for (Py_ssize_t i = 0; i < cap; i++) {
        fresh[i].key = MAP_EMPTY;
    }
    k->map = fresh;
    k->map_cap = cap;
    k->map_len = 0;
    k->map_used = 0;
    if (old != NULL) {
        for (Py_ssize_t i = 0; i < old_cap; i++) {
            if (old[i].key >= 0) {
                /* Rehash only happens with a clean map (inserts occur
                 * exclusively inside engine calls, after a flush), so the
                 * deferred fields are all zero and need no migration. */
                if (map_insert(k, old[i].key, old[i].entry) < 0) {
                    PyMem_Free(old);
                    return -1;
                }
            }
        }
        PyMem_Free(old);
    }
    return 0;
}

static int
map_insert(SchedObject *k, long long key, PyObject *entry)
{
    if ((k->map_used + 1) * 3 >= k->map_cap * 2) {
        Py_ssize_t cap = k->map_cap;
        /* Grow when genuinely loaded; same-size rehash clears tombstones. */
        if ((k->map_len + 1) * 3 >= k->map_cap * 2) {
            cap = k->map_cap * 2;
        }
        if (map_rehash(k, cap) < 0) {
            return -1;
        }
    }
    Py_ssize_t mask = k->map_cap - 1;
    Py_ssize_t pos = map_hash(key, k->map_cap);
    Py_ssize_t grave = -1;
    for (;;) {
        MapCell *cell = &k->map[pos];
        if (cell->key == key) {
            cell->entry = entry;
            cell->util_delta = 0;
            cell->hit_idx = 0;
            cell->last_access = 0.0;
            cell->upgraded = 0;
            return 0;
        }
        if (cell->key == MAP_TOMBSTONE) {
            if (grave < 0) {
                grave = pos;
            }
        }
        else if (cell->key == MAP_EMPTY) {
            if (grave >= 0) {
                cell = &k->map[grave];
            }
            else {
                k->map_used += 1;
            }
            cell->key = key;
            cell->entry = entry;
            cell->util_delta = 0;
            cell->hit_idx = 0;
            cell->last_access = 0.0;
            cell->upgraded = 0;
            k->map_len += 1;
            return 0;
        }
        pos = (pos + 1) & mask;
    }
}

static void
map_remove(SchedObject *k, long long key)
{
    MapCell *cell = map_find(k, key);
    if (cell != NULL) {
        cell->key = MAP_TOMBSTONE;
        cell->entry = NULL;
        cell->util_delta = 0;
        cell->hit_idx = 0;
        cell->upgraded = 0;
        k->map_len -= 1;
    }
}

/* ------------------------------------------------------------------ */
/* Min-clock heap                                                      */
/* ------------------------------------------------------------------ */

static inline int
heap_less(double t, long long core, const HeapEntry *e)
{
    return t < e->t || (t == e->t && core < e->core);
}

static void
heap_push(SchedObject *k, double t, long long core)
{
    Py_ssize_t pos = k->heap_len++;
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (heap_less(t, core, &k->heap[parent])) {
            k->heap[pos] = k->heap[parent];
            pos = parent;
        }
        else {
            break;
        }
    }
    k->heap[pos].t = t;
    k->heap[pos].core = core;
}

static void
heap_siftdown_from_root(SchedObject *k, double t, long long core)
{
    Py_ssize_t pos = 0;
    Py_ssize_t len = k->heap_len;
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= len) {
            break;
        }
        Py_ssize_t right = child + 1;
        if (right < len
            && heap_less(k->heap[right].t, k->heap[right].core, &k->heap[child])) {
            child = right;
        }
        if (heap_less(k->heap[child].t, k->heap[child].core, &(HeapEntry){t, core})) {
            k->heap[pos] = k->heap[child];
            pos = child;
        }
        else {
            break;
        }
    }
    k->heap[pos].t = t;
    k->heap[pos].core = core;
}

static void
heap_pop(SchedObject *k, double *t, long long *core)
{
    *t = k->heap[0].t;
    *core = k->heap[0].core;
    k->heap_len -= 1;
    if (k->heap_len > 0) {
        HeapEntry last = k->heap[k->heap_len];
        heap_siftdown_from_root(k, last.t, last.core);
    }
}

/* heappushpop where the root is known to precede the pushed item. */
static void
heap_replace_root(SchedObject *k, double t, long long core,
                  double *out_t, long long *out_core)
{
    *out_t = k->heap[0].t;
    *out_core = k->heap[0].core;
    heap_siftdown_from_root(k, t, core);
}

/* ------------------------------------------------------------------ */
/* Deferred-hit flush                                                  */
/* ------------------------------------------------------------------ */

static int
flush_dirty(SchedObject *k)
{
    if (k->dirty_len == 0) {
        return 0;
    }
    for (long long c = 0; c < k->num_cores; c++) {
        if (k->hit_seq[c] == 0) {
            continue;
        }
        PyObject *store = k->stores[c];
        PyObject *cur = PyObject_GetAttr(store, k->str_use_counter);
        if (cur == NULL) {
            return -1;
        }
        long long base = PyLong_AsLongLong(cur);
        Py_DECREF(cur);
        if (base == -1 && PyErr_Occurred()) {
            return -1;
        }
        k->counter_base[c] = base;
        PyObject *nv = PyLong_FromLongLong(base + k->hit_seq[c]);
        if (nv == NULL) {
            return -1;
        }
        int rc = PyObject_SetAttr(store, k->str_use_counter, nv);
        Py_DECREF(nv);
        if (rc < 0) {
            return -1;
        }
    }
    long long core_mask = (1LL << k->core_bits) - 1;
    for (Py_ssize_t j = 0; j < k->dirty_len; j++) {
        MapCell *cell = k->dirty[j];
        if (cell->hit_idx == 0) {
            continue;  /* removed and re-marked clean since dirtying */
        }
        long long c = cell->key & core_mask;
        PyObject *e = cell->entry;
        PyObject **slot = SLOT(e, k->off_last_use);
        PyObject *nv = PyLong_FromLongLong(k->counter_base[c] + cell->hit_idx);
        if (nv == NULL) {
            return -1;
        }
        Py_XSETREF(*slot, nv);
        slot = SLOT(e, k->off_utilization);
        long long util = PyLong_AsLongLong(*slot);
        if (util == -1 && PyErr_Occurred()) {
            return -1;
        }
        nv = PyLong_FromLongLong(util + cell->util_delta);
        if (nv == NULL) {
            return -1;
        }
        Py_XSETREF(*slot, nv);
        slot = SLOT(e, k->off_last_access);
        nv = PyFloat_FromDouble(cell->last_access);
        if (nv == NULL) {
            return -1;
        }
        Py_XSETREF(*slot, nv);
        if (cell->upgraded) {
            slot = SLOT(e, k->off_state);
            Py_INCREF(k->modified_obj);
            Py_XSETREF(*slot, k->modified_obj);
        }
        cell->hit_idx = 0;
        cell->util_delta = 0;
        cell->upgraded = 0;
    }
    k->dirty_len = 0;
    memset(k->hit_seq, 0, (size_t)k->num_cores * sizeof(long long));
    return 0;
}

static int
dirty_push(SchedObject *k, MapCell *cell)
{
    if (k->dirty_len >= k->dirty_cap) {
        Py_ssize_t cap = k->dirty_cap ? k->dirty_cap * 2 : 64;
        MapCell **fresh = PyMem_Realloc(k->dirty, (size_t)cap * sizeof(MapCell *));
        if (fresh == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        k->dirty = fresh;
        k->dirty_cap = cap;
    }
    k->dirty[k->dirty_len++] = cell;
    return 0;
}

/* ------------------------------------------------------------------ */
/* Engine access call                                                  */
/* ------------------------------------------------------------------ */

static PyObject *
call_access(SchedObject *k, long long core, int is_write, long long address,
            double t)
{
    PyObject *addr_o = PyLong_FromLongLong(address);
    if (addr_o == NULL) {
        return NULL;
    }
    PyObject *t_o = PyFloat_FromDouble(t);
    if (t_o == NULL) {
        Py_DECREF(addr_o);
        return NULL;
    }
    PyObject *argv[4] = {
        k->core_objs[core], is_write ? Py_True : Py_False, addr_o, t_o,
    };
    PyObject *res = PyObject_Vectorcall(k->access, argv, 4, NULL);
    Py_DECREF(addr_o);
    Py_DECREF(t_o);
    return res;
}

static int
slot_double(SchedObject *k, PyObject *obj, Py_ssize_t off, double *out)
{
    PyObject *v = *SLOT(obj, off);
    if (v == NULL) {
        PyErr_SetString(PyExc_AttributeError, "unset AccessResult slot");
        return -1;
    }
    double d = PyFloat_AsDouble(v);
    if (d == -1.0 && PyErr_Occurred()) {
        return -1;
    }
    *out = d;
    return 0;
}

/* ------------------------------------------------------------------ */
/* Construction                                                        */
/* ------------------------------------------------------------------ */

static Py_ssize_t
member_offset(PyObject *type, const char *name)
{
    PyObject *descr = PyObject_GetAttrString(type, name);
    if (descr == NULL) {
        return -1;
    }
    if (!PyObject_TypeCheck(descr, &PyMemberDescr_Type)) {
        Py_DECREF(descr);
        PyErr_Format(PyExc_TypeError, "%s is not a __slots__ member", name);
        return -1;
    }
    PyMemberDef *member = ((PyMemberDescrObject *)descr)->d_member;
    Py_ssize_t off = member->offset;
    int kind = member->type;
    Py_DECREF(descr);
    if (kind != T_OBJECT_EX) {
        PyErr_Format(PyExc_TypeError, "%s is not an object slot", name);
        return -1;
    }
    return off;
}

static void
Sched_dealloc(SchedObject *k)
{
    if (k->views != NULL) {
        for (Py_ssize_t i = 0; i < k->num_views; i++) {
            PyBuffer_Release(&k->views[i]);
        }
        PyMem_Free(k->views);
    }
    PyMem_Free(k->ops);
    PyMem_Free(k->addrs);
    PyMem_Free(k->works);
    PyMem_Free(k->lengths);
    PyMem_Free(k->indices);
    PyMem_Free(k->clocks);
    PyMem_Free(k->compute);
    PyMem_Free(k->bd_l1_to_l2);
    PyMem_Free(k->bd_l2_waiting);
    PyMem_Free(k->bd_l2_sharers);
    PyMem_Free(k->bd_l2_offchip);
    PyMem_Free(k->hits_r);
    PyMem_Free(k->hits_w);
    PyMem_Free(k->hit_seq);
    PyMem_Free(k->counter_base);
    PyMem_Free(k->heap);
    PyMem_Free(k->map);
    PyMem_Free(k->dirty);
    PyMem_Free(k->stores);
    if (k->core_objs != NULL) {
        for (long long c = 0; c < k->num_cores; c++) {
            Py_XDECREF(k->core_objs[c]);
        }
        PyMem_Free(k->core_objs);
    }
    Py_XDECREF(k->access);
    Py_XDECREF(k->stores_list);
    Py_XDECREF(k->exclusive_obj);
    Py_XDECREF(k->modified_obj);
    Py_XDECREF(k->str_use_counter);
    Py_TYPE(k)->tp_free((PyObject *)k);
}

static int
adopt_columns(SchedObject *k, PyObject *cols, const long long **ptrs,
              long long *lengths, int check_lengths)
{
    for (long long c = 0; c < k->num_cores; c++) {
        PyObject *col = PySequence_GetItem(cols, (Py_ssize_t)c);
        if (col == NULL) {
            return -1;
        }
        Py_buffer *view = &k->views[k->num_views];
        int rc = PyObject_GetBuffer(col, view, PyBUF_SIMPLE);
        Py_DECREF(col);
        if (rc < 0) {
            return -1;
        }
        k->num_views += 1;
        if (view->len % (Py_ssize_t)sizeof(long long) != 0) {
            PyErr_SetString(PyExc_ValueError, "column is not int64-aligned");
            return -1;
        }
        long long n = (long long)(view->len / (Py_ssize_t)sizeof(long long));
        ptrs[c] = (const long long *)view->buf;
        if (check_lengths) {
            if (lengths[c] != n) {
                PyErr_SetString(PyExc_ValueError, "ragged trace columns");
                return -1;
            }
        }
        else {
            lengths[c] = n;
        }
    }
    return 0;
}

static PyObject *
Sched_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *ops_cols, *addr_cols, *work_cols, *start_clocks;
    double l1_hit_latency;
    PyObject *access, *result_type, *fast;
    if (kwds != NULL && PyDict_GET_SIZE(kwds) != 0) {
        PyErr_SetString(PyExc_TypeError, "SchedKernel takes no keyword arguments");
        return NULL;
    }
    if (!PyArg_ParseTuple(args, "OOOOdOOO", &ops_cols, &addr_cols, &work_cols,
                          &start_clocks, &l1_hit_latency, &access,
                          &result_type, &fast)) {
        return NULL;
    }
    SchedObject *k = (SchedObject *)type->tp_alloc(type, 0);
    if (k == NULL) {
        return NULL;
    }
    Py_ssize_t num_cores = PySequence_Size(ops_cols);
    if (num_cores <= 0) {
        if (num_cores == 0) {
            PyErr_SetString(PyExc_ValueError, "need at least one core");
        }
        Py_DECREF(k);
        return NULL;
    }
    k->num_cores = (long long)num_cores;
    k->core_bits = 1;
    while ((1LL << k->core_bits) < k->num_cores) {
        k->core_bits += 1;
    }
    k->l1_hit_latency = l1_hit_latency;
    k->current = -1;
    k->now = 0.0;

    k->views = PyMem_Calloc((size_t)(3 * num_cores), sizeof(Py_buffer));
    k->ops = PyMem_Calloc((size_t)num_cores, sizeof(long long *));
    k->addrs = PyMem_Calloc((size_t)num_cores, sizeof(long long *));
    k->works = PyMem_Calloc((size_t)num_cores, sizeof(long long *));
    k->lengths = PyMem_Calloc((size_t)num_cores, sizeof(long long));
    k->indices = PyMem_Calloc((size_t)num_cores, sizeof(long long));
    k->clocks = PyMem_Calloc((size_t)num_cores, sizeof(double));
    k->compute = PyMem_Calloc((size_t)num_cores, sizeof(double));
    k->bd_l1_to_l2 = PyMem_Calloc((size_t)num_cores, sizeof(double));
    k->bd_l2_waiting = PyMem_Calloc((size_t)num_cores, sizeof(double));
    k->bd_l2_sharers = PyMem_Calloc((size_t)num_cores, sizeof(double));
    k->bd_l2_offchip = PyMem_Calloc((size_t)num_cores, sizeof(double));
    k->hits_r = PyMem_Calloc((size_t)num_cores, sizeof(long long));
    k->hits_w = PyMem_Calloc((size_t)num_cores, sizeof(long long));
    k->hit_seq = PyMem_Calloc((size_t)num_cores, sizeof(long long));
    k->counter_base = PyMem_Calloc((size_t)num_cores, sizeof(long long));
    k->heap = PyMem_Calloc((size_t)num_cores, sizeof(HeapEntry));
    k->core_objs = PyMem_Calloc((size_t)num_cores, sizeof(PyObject *));
    if (k->views == NULL || k->ops == NULL || k->addrs == NULL
        || k->works == NULL || k->lengths == NULL || k->indices == NULL
        || k->clocks == NULL || k->compute == NULL || k->bd_l1_to_l2 == NULL
        || k->bd_l2_waiting == NULL || k->bd_l2_sharers == NULL
        || k->bd_l2_offchip == NULL || k->hits_r == NULL || k->hits_w == NULL
        || k->hit_seq == NULL || k->counter_base == NULL || k->heap == NULL
        || k->core_objs == NULL) {
        PyErr_NoMemory();
        Py_DECREF(k);
        return NULL;
    }
    for (long long c = 0; c < k->num_cores; c++) {
        k->core_objs[c] = PyLong_FromLongLong(c);
        if (k->core_objs[c] == NULL) {
            Py_DECREF(k);
            return NULL;
        }
    }
    if (PySequence_Size(addr_cols) != num_cores
        || PySequence_Size(work_cols) != num_cores) {
        if (!PyErr_Occurred()) {
            PyErr_SetString(PyExc_ValueError, "column sets disagree on core count");
        }
        Py_DECREF(k);
        return NULL;
    }
    if (adopt_columns(k, ops_cols, k->ops, k->lengths, 0) < 0
        || adopt_columns(k, addr_cols, k->addrs, k->lengths, 1) < 0
        || adopt_columns(k, work_cols, k->works, k->lengths, 1) < 0) {
        Py_DECREF(k);
        return NULL;
    }
    if (PySequence_Size(start_clocks) != num_cores) {
        if (!PyErr_Occurred()) {
            PyErr_SetString(PyExc_ValueError, "start_clocks length mismatch");
        }
        Py_DECREF(k);
        return NULL;
    }
    for (long long c = 0; c < k->num_cores; c++) {
        PyObject *v = PySequence_GetItem(start_clocks, (Py_ssize_t)c);
        if (v == NULL) {
            Py_DECREF(k);
            return NULL;
        }
        double d = PyFloat_AsDouble(v);
        Py_DECREF(v);
        if (d == -1.0 && PyErr_Occurred()) {
            Py_DECREF(k);
            return NULL;
        }
        k->clocks[c] = d;
    }
    k->access = Py_NewRef(access);
    k->str_use_counter = PyUnicode_InternFromString("_use_counter");
    if (k->str_use_counter == NULL) {
        Py_DECREF(k);
        return NULL;
    }

    k->off_r_latency = member_offset(result_type, "latency");
    k->off_r_l1l2 = member_offset(result_type, "l1_to_l2");
    k->off_r_l2w = member_offset(result_type, "l2_waiting");
    k->off_r_l2s = member_offset(result_type, "l2_sharers");
    k->off_r_l2o = member_offset(result_type, "l2_offchip");
    k->off_r_hit = member_offset(result_type, "hit");
    if (k->off_r_latency < 0 || k->off_r_l1l2 < 0 || k->off_r_l2w < 0
        || k->off_r_l2s < 0 || k->off_r_l2o < 0 || k->off_r_hit < 0) {
        Py_DECREF(k);
        return NULL;
    }

    if (fast != Py_None) {
        if (!PyDict_Check(fast)) {
            PyErr_SetString(PyExc_TypeError, "fast-path descriptor must be a dict");
            Py_DECREF(k);
            return NULL;
        }
        PyObject *stores = PyDict_GetItemString(fast, "stores");
        PyObject *exclusive = PyDict_GetItemString(fast, "exclusive");
        PyObject *modified = PyDict_GetItemString(fast, "modified");
        PyObject *line_type = PyDict_GetItemString(fast, "line_type");
        if (stores == NULL || exclusive == NULL || modified == NULL
            || line_type == NULL || !PyList_Check(stores)
            || PyList_GET_SIZE(stores) != num_cores) {
            PyErr_SetString(PyExc_ValueError,
                            "fast-path descriptor missing C-adoption fields");
            Py_DECREF(k);
            return NULL;
        }
        k->off_state = member_offset(line_type, "state");
        k->off_last_use = member_offset(line_type, "last_use");
        k->off_last_access = member_offset(line_type, "last_access");
        k->off_utilization = member_offset(line_type, "utilization");
        if (k->off_state < 0 || k->off_last_use < 0 || k->off_last_access < 0
            || k->off_utilization < 0) {
            Py_DECREF(k);
            return NULL;
        }
        k->stores_list = Py_NewRef(stores);
        k->exclusive_obj = Py_NewRef(exclusive);
        k->modified_obj = Py_NewRef(modified);
        k->stores = PyMem_Calloc((size_t)num_cores, sizeof(PyObject *));
        if (k->stores == NULL) {
            PyErr_NoMemory();
            Py_DECREF(k);
            return NULL;
        }
        for (long long c = 0; c < k->num_cores; c++) {
            k->stores[c] = PyList_GET_ITEM(stores, (Py_ssize_t)c);
        }
        if (map_rehash(k, 256) < 0) {
            Py_DECREF(k);
            return NULL;
        }
        /* Adopt the current L1 membership (the warmup pass may have filled
         * the stores); afterwards every change arrives through note(). */
        for (long long c = 0; c < k->num_cores; c++) {
            PyObject *sets = PyObject_GetAttrString(k->stores[c], "_sets");
            if (sets == NULL || !PyList_Check(sets)) {
                Py_XDECREF(sets);
                if (!PyErr_Occurred()) {
                    PyErr_SetString(PyExc_TypeError, "_sets must be a list");
                }
                Py_DECREF(k);
                return NULL;
            }
            for (Py_ssize_t s = 0; s < PyList_GET_SIZE(sets); s++) {
                PyObject *bucket = PyList_GET_ITEM(sets, s);
                if (!PyDict_Check(bucket)) {
                    Py_DECREF(sets);
                    PyErr_SetString(PyExc_TypeError, "set bucket must be a dict");
                    Py_DECREF(k);
                    return NULL;
                }
                Py_ssize_t pos = 0;
                PyObject *key, *value;
                while (PyDict_Next(bucket, &pos, &key, &value)) {
                    long long line = PyLong_AsLongLong(key);
                    if (line == -1 && PyErr_Occurred()) {
                        Py_DECREF(sets);
                        Py_DECREF(k);
                        return NULL;
                    }
                    if (map_insert(k, (line << k->core_bits) | c, value) < 0) {
                        Py_DECREF(sets);
                        Py_DECREF(k);
                        return NULL;
                    }
                }
            }
            Py_DECREF(sets);
        }
        k->has_fast = 1;
    }

    for (long long c = 0; c < k->num_cores; c++) {
        if (k->lengths[c] > 0) {
            heap_push(k, k->clocks[c], c);
        }
    }
    return (PyObject *)k;
}

/* ------------------------------------------------------------------ */
/* The record loop                                                     */
/* ------------------------------------------------------------------ */

static PyObject *
Sched_run(SchedObject *k, PyObject *Py_UNUSED(ignored))
{
    long long core = k->current;
    double now = k->now;
    if (core < 0) {
        if (k->heap_len == 0) {
            if (flush_dirty(k) < 0) {
                return NULL;
            }
            Py_RETURN_NONE;
        }
        heap_pop(k, &now, &core);
    }
    for (;;) {
        const long long *ops = k->ops[core];
        const long long *addrs = k->addrs[core];
        const long long *works = k->works[core];
        long long n = k->lengths[core];
        long long i = k->indices[core];
        double acc = k->compute[core];
        for (;;) {
            long long op = ops[i];
            long long workv = works[i];
            double t;
            if (op <= K_OP_WRITE) {
                double work = (double)workv + k->l1_hit_latency;
                acc += work;
                t = now + work;
                long long address = addrs[i];
                i += 1;
                long long line = address >> K_LINE_BITS;
                MapCell *cell = NULL;
                if (k->has_fast) {
                    cell = map_find(k, (line << k->core_bits) | core);
                    if (cell != NULL && op == K_OP_WRITE) {
                        /* Silent-write predicate: read the state slot per
                         * probe (never cached: the engine rewrites it
                         * during misses).  Resident lines are S/E/M, so
                         * identity against the E and M members is exactly
                         * `state >= EXCLUSIVE`. */
                        PyObject *st = *SLOT(cell->entry, k->off_state);
                        if (st != k->exclusive_obj && st != k->modified_obj) {
                            cell = NULL;
                        }
                    }
                }
                if (cell != NULL) {
                    long long seq = k->hit_seq[core] + 1;
                    k->hit_seq[core] = seq;
                    if (cell->hit_idx == 0 && dirty_push(k, cell) < 0) {
                        return NULL;
                    }
                    cell->hit_idx = seq;
                    cell->util_delta += 1;
                    cell->last_access = t;
                    if (op == K_OP_WRITE) {
                        cell->upgraded = 1;
                        k->hits_w[core] += 1;
                    }
                    else {
                        k->hits_r[core] += 1;
                    }
                }
                else {
                    /* Cold: hand the reference engine the exact state the
                     * pure-Python loop would (flush first), then absorb
                     * the miss result natively. */
                    k->indices[core] = i;
                    k->compute[core] = acc;
                    k->current = core;
                    k->now = now;
                    if (flush_dirty(k) < 0) {
                        return NULL;
                    }
                    PyObject *res =
                        call_access(k, core, op == K_OP_WRITE, address, t);
                    if (res == NULL) {
                        return NULL;
                    }
                    PyObject *hit = *SLOT(res, k->off_r_hit);
                    int truth = hit == NULL ? -1 : PyObject_IsTrue(hit);
                    if (truth < 0) {
                        if (!PyErr_Occurred()) {
                            PyErr_SetString(PyExc_AttributeError,
                                            "unset AccessResult.hit");
                        }
                        Py_DECREF(res);
                        return NULL;
                    }
                    if (!truth) {
                        double v;
                        if (slot_double(k, res, k->off_r_l1l2, &v) < 0) {
                            Py_DECREF(res);
                            return NULL;
                        }
                        k->bd_l1_to_l2[core] += v;
                        if (slot_double(k, res, k->off_r_l2w, &v) < 0) {
                            Py_DECREF(res);
                            return NULL;
                        }
                        k->bd_l2_waiting[core] += v;
                        if (slot_double(k, res, k->off_r_l2s, &v) < 0) {
                            Py_DECREF(res);
                            return NULL;
                        }
                        k->bd_l2_sharers[core] += v;
                        if (slot_double(k, res, k->off_r_l2o, &v) < 0) {
                            Py_DECREF(res);
                            return NULL;
                        }
                        k->bd_l2_offchip[core] += v;
                        if (slot_double(k, res, k->off_r_latency, &v) < 0) {
                            Py_DECREF(res);
                            return NULL;
                        }
                        t += v;
                    }
                    Py_DECREF(res);
                }
            }
            else if (op == K_OP_WORK) {
                t = now + (double)workv;
                i += 1;
                acc += (double)workv;
            }
            else {
                /* Synchronization record: exit to the Python trampoline
                 * *before* processing it (cursor still points at it). */
                k->indices[core] = i;
                k->compute[core] = acc;
                k->current = core;
                k->now = now;
                if (flush_dirty(k) < 0) {
                    return NULL;
                }
                return Py_BuildValue("(LLdLd)", op, core, now, i, acc);
            }

            if (i < n) {
                if (k->heap_len > 0) {
                    const HeapEntry *root = &k->heap[0];
                    if (t < root->t || (t == root->t && core < root->core)) {
                        now = t;  /* still the min-clock core */
                        continue;
                    }
                    k->indices[core] = i;
                    k->clocks[core] = t;
                    k->compute[core] = acc;
                    heap_replace_root(k, t, core, &now, &core);
                }
                else {
                    now = t;  /* only runnable core left */
                    continue;
                }
            }
            else {
                k->indices[core] = i;
                k->clocks[core] = t;
                k->compute[core] = acc;
                if (k->heap_len > 0) {
                    heap_pop(k, &now, &core);
                }
                else {
                    k->current = -1;
                    if (flush_dirty(k) < 0) {
                        return NULL;
                    }
                    Py_RETURN_NONE;
                }
            }
            break;  /* switched cores: reload column pointers */
        }
    }
}

/* ------------------------------------------------------------------ */
/* Trampoline re-entry points                                          */
/* ------------------------------------------------------------------ */

static int
parse_core(SchedObject *k, PyObject *arg, long long *out)
{
    long long core = PyLong_AsLongLong(arg);
    if (core == -1 && PyErr_Occurred()) {
        return -1;
    }
    if (core < 0 || core >= k->num_cores) {
        PyErr_SetString(PyExc_IndexError, "core out of range");
        return -1;
    }
    *out = core;
    return 0;
}

static PyObject *
Sched_advance(SchedObject *k, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 3) {
        PyErr_SetString(PyExc_TypeError, "advance(core, i, acc)");
        return NULL;
    }
    long long core;
    if (parse_core(k, args[0], &core) < 0) {
        return NULL;
    }
    long long i = PyLong_AsLongLong(args[1]);
    if (i == -1 && PyErr_Occurred()) {
        return NULL;
    }
    double acc = PyFloat_AsDouble(args[2]);
    if (acc == -1.0 && PyErr_Occurred()) {
        return NULL;
    }
    k->indices[core] = i;
    k->compute[core] = acc;
    k->current = -1;
    Py_RETURN_NONE;
}

static PyObject *
Sched_continue_at(SchedObject *k, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError, "continue_at(core, i, acc, t)");
        return NULL;
    }
    long long core;
    if (parse_core(k, args[0], &core) < 0) {
        return NULL;
    }
    long long i = PyLong_AsLongLong(args[1]);
    if (i == -1 && PyErr_Occurred()) {
        return NULL;
    }
    double acc = PyFloat_AsDouble(args[2]);
    if (acc == -1.0 && PyErr_Occurred()) {
        return NULL;
    }
    double t = PyFloat_AsDouble(args[3]);
    if (t == -1.0 && PyErr_Occurred()) {
        return NULL;
    }
    k->indices[core] = i;
    k->compute[core] = acc;
    /* The pure-Python loop's post-record tail, verbatim. */
    if (i < k->lengths[core]) {
        if (k->heap_len > 0) {
            const HeapEntry *root = &k->heap[0];
            if (t < root->t || (t == root->t && core < root->core)) {
                k->current = core;
                k->now = t;
            }
            else {
                k->clocks[core] = t;
                double nnow;
                long long ncore;
                heap_replace_root(k, t, core, &nnow, &ncore);
                k->current = ncore;
                k->now = nnow;
            }
        }
        else {
            k->current = core;
            k->now = t;
        }
    }
    else {
        k->clocks[core] = t;
        if (k->heap_len > 0) {
            double nnow;
            long long ncore;
            heap_pop(k, &nnow, &ncore);
            k->current = ncore;
            k->now = nnow;
        }
        else {
            k->current = -1;
        }
    }
    Py_RETURN_NONE;
}

static PyObject *
Sched_wake(SchedObject *k, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError, "wake(core, t)");
        return NULL;
    }
    long long core;
    if (parse_core(k, args[0], &core) < 0) {
        return NULL;
    }
    double t = PyFloat_AsDouble(args[1]);
    if (t == -1.0 && PyErr_Occurred()) {
        return NULL;
    }
    k->clocks[core] = t;
    if (k->indices[core] < k->lengths[core]) {
        heap_push(k, t, core);
        Py_RETURN_TRUE;
    }
    Py_RETURN_FALSE;
}

/* note(core, event, line, entry): SetAssocCache._observer hook.
 * event 0 = insert (entry resident, bookkeeping done), 1 = remove,
 * 2 = clear the whole store. */
static PyObject *
Sched_note(SchedObject *k, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError, "note(core, event, line, entry)");
        return NULL;
    }
    if (!k->has_fast) {
        Py_RETURN_NONE;
    }
    long long core;
    if (parse_core(k, args[0], &core) < 0) {
        return NULL;
    }
    long long event = PyLong_AsLongLong(args[1]);
    if (event == -1 && PyErr_Occurred()) {
        return NULL;
    }
    long long line = PyLong_AsLongLong(args[2]);
    if (line == -1 && PyErr_Occurred()) {
        return NULL;
    }
    if (event == 0) {
        if (map_insert(k, (line << k->core_bits) | core, args[3]) < 0) {
            return NULL;
        }
    }
    else if (event == 1) {
        map_remove(k, (line << k->core_bits) | core);
    }
    else if (event == 2) {
        long long core_mask = (1LL << k->core_bits) - 1;
        for (Py_ssize_t pos = 0; pos < k->map_cap; pos++) {
            MapCell *cell = &k->map[pos];
            if (cell->key >= 0 && (cell->key & core_mask) == core) {
                cell->key = MAP_TOMBSTONE;
                cell->entry = NULL;
                cell->util_delta = 0;
                cell->hit_idx = 0;
                cell->upgraded = 0;
                k->map_len -= 1;
            }
        }
    }
    else {
        PyErr_SetString(PyExc_ValueError, "unknown observer event");
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
Sched_clocks(SchedObject *k, PyObject *Py_UNUSED(ignored))
{
    PyObject *out = PyList_New((Py_ssize_t)k->num_cores);
    if (out == NULL) {
        return NULL;
    }
    for (long long c = 0; c < k->num_cores; c++) {
        PyObject *v = PyFloat_FromDouble(k->clocks[c]);
        if (v == NULL) {
            Py_DECREF(out);
            return NULL;
        }
        PyList_SET_ITEM(out, (Py_ssize_t)c, v);
    }
    return out;
}

static PyObject *
Sched_finish(SchedObject *k, PyObject *Py_UNUSED(ignored))
{
    if (flush_dirty(k) < 0) {
        return NULL;
    }
    PyObject *hits_r = PyList_New((Py_ssize_t)k->num_cores);
    PyObject *hits_w = PyList_New((Py_ssize_t)k->num_cores);
    PyObject *rows = PyList_New((Py_ssize_t)k->num_cores);
    if (hits_r == NULL || hits_w == NULL || rows == NULL) {
        goto fail;
    }
    for (long long c = 0; c < k->num_cores; c++) {
        PyObject *r = PyLong_FromLongLong(k->hits_r[c]);
        if (r == NULL) {
            goto fail;
        }
        PyList_SET_ITEM(hits_r, (Py_ssize_t)c, r);
        PyObject *w = PyLong_FromLongLong(k->hits_w[c]);
        if (w == NULL) {
            goto fail;
        }
        PyList_SET_ITEM(hits_w, (Py_ssize_t)c, w);
        PyObject *row = Py_BuildValue(
            "(ddddd)", k->compute[c], k->bd_l1_to_l2[c], k->bd_l2_waiting[c],
            k->bd_l2_sharers[c], k->bd_l2_offchip[c]);
        if (row == NULL) {
            goto fail;
        }
        PyList_SET_ITEM(rows, (Py_ssize_t)c, row);
    }
    PyObject *out = PyTuple_Pack(3, hits_r, hits_w, rows);
    Py_DECREF(hits_r);
    Py_DECREF(hits_w);
    Py_DECREF(rows);
    return out;
fail:
    Py_XDECREF(hits_r);
    Py_XDECREF(hits_w);
    Py_XDECREF(rows);
    return NULL;
}

static PyObject *
Sched_stats(SchedObject *k, PyObject *Py_UNUSED(ignored))
{
    return Py_BuildValue(
        "{s:L,s:n,s:n,s:n,s:n,s:L}", "num_cores", k->num_cores, "map_cap",
        k->map_cap, "map_len", k->map_len, "dirty_len", k->dirty_len,
        "heap_len", k->heap_len, "current", k->current);
}

static PyMethodDef Sched_methods[] = {
    {"run", (PyCFunction)Sched_run, METH_NOARGS,
     "Run until a sync record, an error, or completion; returns None when "
     "every core is drained, else (op, core, now, i, acc)."},
    {"advance", (PyCFunction)(void (*)(void))Sched_advance, METH_FASTCALL,
     "advance(core, i, acc): store cursor state and park the core."},
    {"continue_at", (PyCFunction)(void (*)(void))Sched_continue_at,
     METH_FASTCALL,
     "continue_at(core, i, acc, t): store cursor state and reschedule "
     "through the post-record tail."},
    {"wake", (PyCFunction)(void (*)(void))Sched_wake, METH_FASTCALL,
     "wake(core, t) -> bool: set the core's clock; re-queue it when records "
     "remain (returns whether it was queued)."},
    {"note", (PyCFunction)(void (*)(void))Sched_note, METH_FASTCALL,
     "note(core, event, line, entry): L1 store membership observer."},
    {"clocks", (PyCFunction)Sched_clocks, METH_NOARGS,
     "Final per-core clocks as a list of floats."},
    {"finish", (PyCFunction)Sched_finish, METH_NOARGS,
     "Flush deferred state; return (hits_r, hits_w, per-core breakdown "
     "rows (compute, l1_to_l2, l2_waiting, l2_sharers, l2_offchip))."},
    {"stats", (PyCFunction)Sched_stats, METH_NOARGS,
     "Introspection counters (tests only)."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject SchedType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "_repro_mesh_kernel.SchedKernel",
    .tp_basicsize = sizeof(SchedObject),
    .tp_dealloc = (destructor)Sched_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT,
    .tp_doc = "Native min-clock scheduler over one columnar trace execution",
    .tp_methods = Sched_methods,
    .tp_new = Sched_new,
};

int
repro_sched_register(PyObject *mod)
{
    if (PyType_Ready(&SchedType) < 0) {
        return -1;
    }
    if (PyModule_AddObjectRef(mod, "SchedKernel", (PyObject *)&SchedType) < 0
        || PyModule_AddIntConstant(mod, "OP_READ", K_OP_READ) < 0
        || PyModule_AddIntConstant(mod, "OP_WRITE", K_OP_WRITE) < 0
        || PyModule_AddIntConstant(mod, "OP_BARRIER", K_OP_BARRIER) < 0
        || PyModule_AddIntConstant(mod, "OP_LOCK", K_OP_LOCK) < 0
        || PyModule_AddIntConstant(mod, "OP_UNLOCK", K_OP_UNLOCK) < 0
        || PyModule_AddIntConstant(mod, "OP_WORK", K_OP_WORK) < 0
        || PyModule_AddIntConstant(mod, "LINE_BITS", K_LINE_BITS) < 0
        || PyModule_AddIntConstant(mod, "SCHED_ABI_VERSION",
                                   K_SCHED_ABI_VERSION) < 0) {
        return -1;
    }
    return 0;
}
