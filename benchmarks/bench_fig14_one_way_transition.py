"""Figure 14: Adapt1-way vs Adapt2-way (the need for two-way transitions)."""

from repro.experiments.figures import figure14_one_way


def test_fig14_one_way_transition(benchmark, runner, save_result):
    result = benchmark.pedantic(figure14_one_way, args=(runner,), rounds=1, iterations=1)
    save_result("fig14_one_way", result.text)
    geomean_time, _geomean_energy = result.data["geomean"]
    # One-way demotion must be worse overall (paper: +34% time, +13% energy).
    assert geomean_time > 1.0
    # The re-promotion-dependent benchmarks suffer the most.
    assert result.data["lu-nc"][0] > 1.2
    assert result.data["dijkstra-ss"][0] > 1.1
