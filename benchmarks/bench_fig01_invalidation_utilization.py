"""Figure 1: % of invalidated L1 lines by utilization (baseline system)."""

from repro.experiments.figures import figure1_invalidations


def test_fig01_invalidations_vs_utilization(benchmark, runner, save_result):
    result = benchmark.pedantic(
        figure1_invalidations, args=(runner,), rounds=1, iterations=1
    )
    save_result("fig01_invalidations", result.text)
    # Motivation claim: a large share of streamcluster invalidations are
    # low-utilization (the paper reports ~80% below 4 uses).
    buckets = result.data["streamcluster"]
    assert buckets["1"] + buckets["2-3"] > 50.0
