"""Figure 9: per-benchmark completion-time breakdown vs PCT."""

from repro.experiments.figures import figure9_completion_time


def test_fig09_completion_time_vs_pct(benchmark, runner, save_result):
    result = benchmark.pedantic(
        figure9_completion_time, args=(runner,), rounds=1, iterations=1
    )
    save_result("fig09_completion_time", result.text)
    geomean = result.data["geomean"]
    # Headline claim: completion time improves at PCT=4 vs the baseline.
    assert geomean[4] < 0.95
    # lu-nc degrades past PCT 3 (Section 5.1.2).
    assert result.data["lu-nc"][8]["total"] > result.data["lu-nc"][3]["total"]
