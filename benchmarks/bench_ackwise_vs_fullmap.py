"""Section 5 preamble: baseline ACKwise_4 tracks a full-map directory."""

from repro.experiments.figures import ackwise_vs_fullmap


def test_ackwise_vs_fullmap(benchmark, runner, save_result):
    result = benchmark.pedantic(ackwise_vs_fullmap, args=(runner,), rounds=1, iterations=1)
    save_result("ackwise_vs_fullmap", result.text)
    time_ratio, energy_ratio = result.data["geomean"]
    # Paper: within 1%; allow some slack at reproduction scale.
    assert abs(time_ratio - 1.0) < 0.03
    assert abs(energy_ratio - 1.0) < 0.03
