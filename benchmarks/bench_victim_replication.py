"""Extension: Victim Replication vs the locality-aware protocol.

Section 2.1 criticizes VR for replicating every L1 victim "irrespective of
whether [it] will be re-used in the future".  This bench quantifies that:
VR should win on benchmarks whose victims are re-read and lose (pollution,
extra L2 writes) where they are not, while the adaptive protocol never
relies on blanket replication.
"""

from repro.experiments.figures import victim_replication_comparison


def test_victim_replication_comparison(benchmark, runner, save_result):
    result = benchmark.pedantic(
        victim_replication_comparison, args=(runner,), rounds=1, iterations=1
    )
    save_result("victim_replication", result.text)
    summary = result.data["geomean"]
    # The adaptive protocol beats the baseline on both axes (the paper's
    # headline claim); VR must at least show its defining trade-off
    # somewhere: replicas are created, and some benchmark re-uses them.
    assert summary["adapt_time"] < 1.0
    assert summary["adapt_energy"] < 1.0
    per_bench = [v for k, v in result.data.items() if k != "geomean"]
    assert any(row["replicas"] > 0 for row in per_bench)
    assert any(row["replica_hits"] > 0 for row in per_bench)
    # VR's blanket replication is not uniformly better: at least one
    # benchmark pays for it in energy (extra local-L2 line writes).
    assert any(row["vr_energy"] > 1.0 for row in per_bench)
