"""Ablation: epoch-based vs naive link-bandwidth accounting (DESIGN.md #6).

The naive single next-free-time model lets future-scheduled events (DRAM
replies) block earlier traffic on idle links; this quantifies the phantom
congestion that motivated the epoch model.
"""

from repro.experiments.ablations import link_model_ablation


def test_ablation_link_model(benchmark, runner, save_result):
    result = benchmark.pedantic(
        link_model_ablation, args=(runner,), rounds=1, iterations=1
    )
    save_result("ablation_link_model", result.text)
    means = result.data["geomean"]
    # Contention can only add latency: none <= epoch (within noise), and
    # the naive model's phantom congestion makes it the slowest.
    assert means["none"] <= 1.02
    assert means["naive"] >= means["epoch"]
