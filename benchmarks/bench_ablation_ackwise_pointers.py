"""Ablation: ACKwise_p pointer-count sensitivity.

The paper fixes p=4 (Table 1).  Fewer pointers overflow earlier and
broadcast more; this sweep shows the broadcast fraction rising as p drops
while performance stays within a modest band (ACKwise's design point).
"""

from repro.experiments.ablations import ackwise_pointer_sweep


def test_ablation_ackwise_pointers(benchmark, runner, save_result):
    result = benchmark.pedantic(
        ackwise_pointer_sweep, args=(runner,), rounds=1, iterations=1
    )
    save_result("ablation_ackwise_pointers", result.text)
    for name, per_p in result.data.items():
        fractions = [per_p[p]["broadcast_fraction"] for p in sorted(per_p)]
        # Broadcast fraction is non-increasing in the pointer count.
        assert all(a >= b - 1e-9 for a, b in zip(fractions, fractions[1:])), name
