"""Figure 11: geometric means of completion time and energy vs PCT.

The headline figure: both curves fall from PCT=1, reach their best region
around PCT=4 and rise again at large PCT (word misses overwhelm the savings).
"""

from repro.experiments.figures import figure11_geomean_sweep


def test_fig11_geomean_pct_sweep(benchmark, runner, save_result):
    result = benchmark.pedantic(
        figure11_geomean_sweep, args=(runner,), rounds=1, iterations=1
    )
    save_result("fig11_geomean_sweep", result.text)
    series = result.data["series"]
    time4, energy4 = series[4]
    # Paper: -15% completion time and -25% energy at PCT=4; shapes must
    # show a clear win at 4 (exact magnitudes depend on the substrate).
    assert time4 < 0.95
    assert energy4 < 0.85
    # Completion-time U-shape: the far tail is worse than the optimum.
    time20, energy20 = series[20]
    assert time20 > time4
    # Energy stops improving after the PCT 5-8 plateau (paper: it climbs
    # again; in this substrate the tail stays flat because remote word
    # accesses remain comparatively cheap for the synthetic kernels -
    # documented deviation, see EXPERIMENTS.md).
    best_energy = min(e for _t, e in series.values())
    assert energy20 >= best_energy - 0.01
    assert series[20][0] >= series[8][0] - 0.01  # time keeps degrading
