"""Shared fixtures for the figure-reproduction benchmark suite.

All benches share one memoizing ``ExperimentRunner`` (figures 8-11 reuse the
same PCT sweep, so each (workload, protocol) point simulates exactly once per
session).  Every bench renders its figure's table, prints it and archives it
under ``benchmarks/results/`` so EXPERIMENTS.md can reference the output.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.harness import ExperimentRunner

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """The paper's evaluation system (64 cores) at benchmark scale."""
    return ExperimentRunner()


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _save
