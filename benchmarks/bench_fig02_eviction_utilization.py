"""Figure 2: % of evicted L1 lines by utilization (baseline system)."""

from repro.experiments.figures import figure2_evictions


def test_fig02_evictions_vs_utilization(benchmark, runner, save_result):
    result = benchmark.pedantic(figure2_evictions, args=(runner,), rounds=1, iterations=1)
    save_result("fig02_evictions", result.text)
    # Every benchmark that evicts must have a fully-populated histogram.
    populated = [name for name, b in result.data.items() if sum(b.values()) > 0]
    assert len(populated) >= 15
