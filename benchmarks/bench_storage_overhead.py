"""Section 3.6: storage-overhead arithmetic (18KB / 192KB / 12KB / 32KB)."""

import pytest

from repro.common.params import ArchConfig, ProtocolConfig
from repro.experiments.storage import storage_report, storage_table


def test_storage_overhead_table(benchmark, save_result):
    text = benchmark.pedantic(storage_table, rounds=1, iterations=1)
    save_result("storage_overhead", text)
    limited = storage_report(ArchConfig(), ProtocolConfig(classifier="limited"))
    complete = storage_report(ArchConfig(), ProtocolConfig(classifier="complete"))
    assert limited.classifier_kb == pytest.approx(18.0)
    assert complete.classifier_kb == pytest.approx(192.0)
    assert limited.sharer_kb == pytest.approx(12.0)
    assert limited.fullmap_kb == pytest.approx(32.0)
    assert limited.beats_fullmap()
    assert limited.overhead_fraction == pytest.approx(0.057, abs=0.005)
