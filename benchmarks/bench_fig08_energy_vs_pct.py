"""Figure 8: per-benchmark energy breakdown vs PCT (normalized to PCT=1)."""

from repro.experiments.figures import figure8_energy


def test_fig08_energy_vs_pct(benchmark, runner, save_result):
    result = benchmark.pedantic(figure8_energy, args=(runner,), rounds=1, iterations=1)
    save_result("fig08_energy", result.text)
    geomean = result.data["geomean"]
    # Headline claim: substantial energy reduction at the optimum PCT=4.
    assert geomean[4] < 0.9
    # The insensitive anchors stay flat.
    assert abs(result.data["water-sp"][4]["total"] - 1.0) < 0.1
    assert abs(result.data["susan"][4]["total"] - 1.0) < 0.1
