"""Ablation: the Section 5.3 remark - Complete classifier with the
Limited_k learning short-cut (majority-vote initial mode for new sharers).
"""

from repro.experiments.ablations import vote_init_ablation


def test_ablation_vote_init(benchmark, runner, save_result):
    result = benchmark.pedantic(vote_init_ablation, args=(runner,), rounds=1, iterations=1)
    save_result("ablation_vote_init", result.text)
    t, e = result.data["geomean"]
    # The short-cut must not hurt materially on the paper's named set; the
    # paper suggests it as a refinement, not a trade-off.
    assert t < 1.05
    assert e < 1.05
