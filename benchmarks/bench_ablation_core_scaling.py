"""Ablation: does the adaptive protocol's benefit survive mesh growth?

The paper's premise is that data movement costs grow with core count, so
the locality-aware protocol should keep (or grow) its advantage from 16 to
64 tiles.
"""

from repro.experiments.ablations import core_count_scaling


def test_ablation_core_scaling(benchmark, save_result):
    result = benchmark.pedantic(core_count_scaling, rounds=1, iterations=1)
    save_result("ablation_core_scaling", result.text)
    for name, per_n in result.data.items():
        # The adaptive protocol wins at the paper's 64-core design point.
        t64, e64 = per_n[64]
        assert t64 < 1.0, name
        assert e64 < 1.0, name
