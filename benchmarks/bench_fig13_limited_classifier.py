"""Figure 13: Limited_k classifier sensitivity (k = 1, 3, 5, 7 vs Complete)."""

from repro.experiments.figures import figure13_limited_classifier


def test_fig13_limited_classifier(benchmark, runner, save_result):
    result = benchmark.pedantic(
        figure13_limited_classifier, args=(runner,), rounds=1, iterations=1
    )
    save_result("fig13_limited_classifier", result.text)
    summary = result.data["geomean"]
    # k=1 misclassifies (paper's radix/bodytrack pathologies); k=3 recovers
    # most of the Complete classifier's behaviour at 1/10th the storage.
    assert summary[1][1] > summary[3][1]  # k=1 energy worse than k=3
    assert summary[3][0] < 1.15  # k=3 completion time near Complete
    assert summary[3][1] < summary[1][1]
    # Diminishing returns beyond k=3.
    assert abs(summary[7][1] - summary[3][1]) < abs(summary[3][1] - summary[1][1])
