"""Figure 10: L1-D miss rate and miss-type breakdown vs PCT."""

from repro.experiments.figures import figure10_miss_breakdown


def test_fig10_miss_breakdown(benchmark, runner, save_result):
    result = benchmark.pedantic(
        figure10_miss_breakdown, args=(runner,), rounds=1, iterations=1
    )
    save_result("fig10_miss_breakdown", result.text)
    # The baseline has no word misses; the adaptive protocol converts
    # capacity/sharing misses into them (streamcluster is the flagship).
    sc = result.data["streamcluster"]
    assert sc[1]["word"] == 0.0
    assert sc[4]["word"] > 0.0
    assert sc[4]["sharing"] < sc[1]["sharing"]
    # Low-miss anchors stay low at every PCT.
    assert all(result.data["water-sp"][p]["total"] < 1.0 for p in (1, 2, 3, 4, 6, 8))
