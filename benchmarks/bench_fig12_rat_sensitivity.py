"""Figure 12: Remote Access Threshold sensitivity (vs Timestamp scheme)."""

from repro.experiments.figures import figure12_rat_sensitivity


def test_fig12_rat_sensitivity(benchmark, runner, save_result):
    result = benchmark.pedantic(
        figure12_rat_sensitivity, args=(runner,), rounds=1, iterations=1
    )
    save_result("fig12_rat_sensitivity", result.text)
    # A single RAT level wastes energy (paper: ~9% over Timestamp).
    single_time, single_energy = result.data["L-1"]
    assert single_energy > 1.01
    # The chosen configuration (2 levels, RATmax=16) approximates the
    # Timestamp scheme closely.
    chosen_time, chosen_energy = result.data["L-2,T-16"]
    assert abs(chosen_time - 1.0) < 0.06
    assert abs(chosen_energy - 1.0) < 0.06
    assert chosen_energy < single_energy
