#!/usr/bin/env python3
"""How the protocol handles the five classic sharing patterns.

Runs each synthetic pattern (`repro.workloads.synthetic`) under the
baseline and the locality-aware protocol.  Each pattern wins through a
different conversion: streaming/uniform data trades capacity misses for
word accesses, write-shared hotspots and migratory objects trade
invalidation ping-pong for word traffic, and producer/consumer handoffs
stop invalidating the consumer's whole buffer.

Run with::

    python examples/sharing_patterns.py
"""

from repro import ProtocolConfig, Simulator, baseline_protocol
from repro.common.params import ArchConfig, CacheGeometry
from repro.common.types import MissType
from repro.viz import TextTable
from repro.workloads.synthetic import (
    hotspot,
    migratory,
    producer_consumer,
    streaming,
    uniform_random,
)

ARCH = ArchConfig(
    num_cores=16,
    num_memory_controllers=4,
    l1i=CacheGeometry(2, 2, 1),
    l1d=CacheGeometry(2, 2, 1),
    l2=CacheGeometry(16, 4, 7),
)

PATTERNS = {
    "uniform-random": uniform_random(16, lines=1024, accesses_per_core=1500),
    "hotspot-80/20": hotspot(16, hot_lines=8, cold_lines=2048, accesses_per_core=1500),
    "streaming": streaming(16, lines=1024, rounds=2),
    "producer-consumer": producer_consumer(16, buffer_lines=32, handoffs=15),
    "migratory": migratory(16, object_lines=4, rounds=12, uses_per_visit=2),
}


def main() -> None:
    table = TextTable(
        ["pattern", "time ratio", "energy ratio", "remote %", "sharing -> word"],
        formats=[None, ".3f", ".3f", ".1f", None],
    )
    for name, trace in PATTERNS.items():
        base = Simulator(ARCH, baseline_protocol(), warmup=True).run(trace)
        adapt = Simulator(ARCH, ProtocolConfig(pct=4), warmup=True).run(trace)
        remote_pct = 100 * adapt.remote_accesses / max(1, trace.memory_accesses)
        conversion = (
            f"{base.miss.count(MissType.SHARING)} -> "
            f"{adapt.miss.count(MissType.SHARING)} shr, "
            f"{adapt.miss.count(MissType.WORD)} word"
        )
        table.add_row([
            name,
            adapt.completion_time / base.completion_time,
            adapt.energy.total / base.energy.total,
            remote_pct,
            conversion,
        ])
    print("adaptive (PCT=4) vs baseline on the classic sharing patterns")
    print("(ratios < 1 favour the locality-aware protocol)\n")
    print(table)
    print(
        "\nEvery pattern wins for a different reason: streaming/uniform\n"
        "convert capacity misses to word accesses; the write-shared hotspot\n"
        "and the migratory object convert invalidation ping-pong instead -\n"
        "their sharing misses all but disappear."
    )


if __name__ == "__main__":
    main()
