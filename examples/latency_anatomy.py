#!/usr/bin/env python3
"""Dissect where time and energy go (Figures 8/9 style, one workload).

Prints the six completion-time components and six energy components at
every PCT, showing how the adaptive protocol trades invalidation round-trips
and line fills for word accesses.

Run with::

    python examples/latency_anatomy.py [workload]
"""

import sys

from repro.experiments.harness import ExperimentRunner, protocol_for_pct

TIME_COMPONENTS = ("compute", "l1_to_l2", "l2_waiting", "l2_sharers", "l2_offchip", "sync")
ENERGY_COMPONENTS = ("l1i", "l1d", "l2", "directory", "router", "link")


def main(workload: str) -> None:
    runner = ExperimentRunner(workloads=(workload,))
    print(f"workload: {workload}\n")
    print("Completion-time components (cycles, average per core):")
    print(f"{'pct':>4}" + "".join(f"{c:>12}" for c in TIME_COMPONENTS) + f"{'total':>12}")
    for pct in (1, 2, 4, 8):
        lat = runner.run(workload, protocol_for_pct(pct)).latency
        print(f"{pct:>4}" + "".join(f"{getattr(lat, c):12,.0f}" for c in TIME_COMPONENTS)
              + f"{lat.total:12,.0f}")
    print("\nDynamic energy components (nJ):")
    print(f"{'pct':>4}" + "".join(f"{c:>12}" for c in ENERGY_COMPONENTS) + f"{'total':>12}")
    for pct in (1, 2, 4, 8):
        energy = runner.run(workload, protocol_for_pct(pct)).energy
        print(f"{pct:>4}"
              + "".join(f"{getattr(energy, c) / 1e3:12,.1f}" for c in ENERGY_COMPONENTS)
              + f"{energy.total / 1e3:12,.1f}")
    print("\nMiss-type breakdown (% of L1-D accesses):")
    print(f"{'pct':>4}{'cold':>10}{'capacity':>10}{'upgrade':>10}{'sharing':>10}"
          f"{'word':>10}{'total':>10}")
    for pct in (1, 2, 4, 8):
        miss = runner.run(workload, protocol_for_pct(pct)).miss
        rates = miss.rate_breakdown()
        print(f"{pct:>4}" + "".join(
            f"{100 * rates[k]:10.2f}" for k in ("cold", "capacity", "upgrade", "sharing", "word")
        ) + f"{100 * miss.miss_rate:10.2f}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "blackscholes")
