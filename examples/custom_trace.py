#!/usr/bin/env python3
"""Bring your own trace: build one by hand, save it, reload it, simulate it.

This example shows the downstream-user workflow the trace tools enable:

1. author a workload with ``TraceBuilder`` (or convert an external trace to
   the documented text format);
2. persist it (text for inspection, binary for bulk);
3. simulate it under the baseline and the locality-aware protocol.

The hand-built kernel mixes two behaviours the classifier must separate:
a small "hot" working set every core re-reads many times (strong locality -
it should stay privately cached) and a large shared "stream" every core
scans once per pass (no reuse before eviction - it should be demoted to
remote word accesses instead of polluting the L1).

Run with::

    python examples/custom_trace.py
"""

import pathlib
import tempfile

from repro import Simulator, baseline_protocol, load_workload  # noqa: F401  (public API tour)
from repro.common.params import ProtocolConfig
from repro.experiments.harness import bench_arch
from repro.workloads.base import TraceBuilder
from repro.workloads.tracefile import load_trace, save_trace, trace_summary

ROUNDS = 6
HOT_LINES = 8
STREAM_LINES = 1024  # 64 KB shared scan: 8x one L1 at bench scale


def build_trace(num_cores: int):
    builder = TraceBuilder("hot-vs-stream", num_cores)
    # One page per core so R-NUCA classifies each core's hot set private.
    hot = builder.address_space.alloc("hot", 4096 * num_cores)
    stream = builder.address_space.alloc("stream", STREAM_LINES * 64)

    for tid in range(num_cores):
        thread = builder.thread(tid)
        my_hot = hot + tid * 4096
        chunk = STREAM_LINES // ROUNDS
        for round_ in range(ROUNDS):
            # Hot data: re-read the same few private lines over and over.
            for _ in range(4):
                thread.work(4)
                thread.read_words(my_hot, count=HOT_LINES, stride_words=8)
            # Shared stream: every core scans the same big region once per
            # round, interleaved with the hot reuse.
            for i in range(round_ * chunk, (round_ + 1) * chunk):
                thread.work(1)
                thread.read(stream + i * 64)
    builder.barrier_all()
    return builder.build()


def main() -> None:
    arch = bench_arch()
    trace = build_trace(arch.num_cores)

    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "hot-vs-stream.traceb"
        save_trace(trace, path)
        print(f"saved {path.name} ({path.stat().st_size:,} bytes)")
        reloaded = load_trace(path)

    print("trace summary:")
    for key, value in trace_summary(reloaded).items():
        print(f"  {key:<20} {value:,}")
    print()

    base = Simulator(arch, baseline_protocol(), warmup=True).run(reloaded)
    adaptive = Simulator(arch, ProtocolConfig(pct=4), warmup=True).run(reloaded)

    print(f"{'':<22}{'baseline':>12}{'adaptive':>12}")
    print(f"{'completion (cycles)':<22}{base.completion_time:>12,.0f}{adaptive.completion_time:>12,.0f}")
    print(f"{'energy (nJ)':<22}{base.energy.total / 1e3:>12,.1f}{adaptive.energy.total / 1e3:>12,.1f}")
    print(f"{'network flits':<22}{base.network_flits:>12,}{adaptive.network_flits:>12,}")
    print(f"{'remote accesses':<22}{base.remote_accesses:>12,}{adaptive.remote_accesses:>12,}")
    print()
    print(
        "The hot page stays privately cached (high utilization) while the\n"
        "single-use stream is demoted to remote word accesses - the\n"
        "classifier separates the two automatically."
    )


if __name__ == "__main__":
    main()
