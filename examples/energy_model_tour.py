#!/usr/bin/env python3
"""Tour of the analytical energy backends (McPAT/DSENT-flavoured).

Derives the per-event energy constants from cache geometry, router
microarchitecture and a technology node, shows the wire-vs-gate scaling
story of Section 5.1.1 (links overtake routers as the node shrinks), and
re-runs a benchmark with the fully *derived* 11 nm constants to confirm
the paper's shapes don't depend on the calibrated defaults.

Run with::

    python examples/energy_model_tour.py
"""

from repro import Simulator, baseline_protocol, load_workload
from repro.common.params import ArchConfig, EnergyConfig, ProtocolConfig
from repro.energy import NODES, crossover_node, derive_energy_config
from repro.energy.dsent import link_energy_per_flit, router_energy_per_flit
from repro.experiments.harness import bench_arch
from repro.viz import TextTable, line_chart


def main() -> None:
    arch = ArchConfig()  # Table 1 geometry for the derivation
    ladder = [NODES[nm] for nm in sorted(NODES, reverse=True)]

    # ------------------------------------------------------------------
    print("=== Router vs link energy per flit across technology nodes ===")
    table = TextTable(
        ["node (nm)", "router (pJ)", "link (pJ)", "link/router"],
        formats=[None, ".3f", ".3f", ".2f"],
    )
    router_series, link_series = [], []
    for tech in ladder:
        r = router_energy_per_flit(arch, tech)
        l = link_energy_per_flit(arch, tech)
        router_series.append(r)
        link_series.append(l)
        table.add_row([f"{tech.feature_nm:g}", r, l, l / r])
    print(table)
    cross = crossover_node(arch, ladder)
    print(f"\nlinks out-cost routers from the {cross.feature_nm:g} nm node on -")
    print("wires ride only the voltage ladder while gates also shrink (Section 5.1.1).\n")

    print(line_chart(
        [t.feature_nm for t in reversed(ladder)],
        {
            "router": list(reversed(router_series)),
            "link": list(reversed(link_series)),
        },
        width=56, height=12,
        title="pJ/flit vs feature size (left = 11 nm, right = 45 nm)",
    ))
    print()

    # ------------------------------------------------------------------
    print("=== Derived 11 nm constants vs calibrated defaults ===")
    derived = derive_energy_config(arch, NODES[11.0])
    defaults = EnergyConfig()
    table = TextTable(
        ["event", "derived (pJ)", "default (pJ)"], formats=[None, ".3f", ".3f"]
    )
    for name in ("l1d_read", "l2_word_read", "l2_line_read", "directory_lookup",
                 "router_per_flit", "link_per_flit"):
        table.add_row([name, getattr(derived, name), getattr(defaults, name)])
    print(table)
    ratio = derived.l2_line_read / derived.l2_word_read
    print(f"\nderived L2 line/word ratio: {ratio:.1f}x (the word-addressable-L2 premise)\n")

    # ------------------------------------------------------------------
    print("=== Same experiment, derived constants ===")
    bench = bench_arch()
    trace = load_workload("streamcluster", bench, scale="small")
    derived_bench = derive_energy_config(bench, NODES[11.0])
    results = {}
    for label, proto in (("baseline", baseline_protocol()), ("adaptive", ProtocolConfig(pct=4))):
        with_defaults = Simulator(bench, proto, warmup=True).run(trace)
        with_derived = Simulator(bench, proto, energy=derived_bench, warmup=True).run(trace)
        results[label] = (with_defaults.energy.total, with_derived.energy.total)
    for constants in ("calibrated defaults", "derived 11 nm"):
        idx = 0 if constants == "calibrated defaults" else 1
        saving = 1 - results["adaptive"][idx] / results["baseline"][idx]
        print(f"  {constants:<22}: adaptive saves {100 * saving:5.1f}% energy vs baseline")
    print("\nThe protocol's energy win is a property of the event-count shift")
    print("(line fetches + invalidations -> word accesses), not of any single")
    print("set of per-event constants.")


if __name__ == "__main__":
    main()
