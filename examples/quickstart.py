#!/usr/bin/env python3
"""Quickstart: simulate one benchmark under the baseline and the
locality-aware adaptive protocol, and compare them.

Run with::

    python examples/quickstart.py
"""

from repro import ProtocolConfig, Simulator, baseline_protocol, load_workload
from repro.experiments.harness import bench_arch


def main() -> None:
    # The paper's evaluation system: 64 tiles, mesh NoC, ACKwise_4,
    # R-NUCA shared L2 (capacity-scaled caches - see DESIGN.md).
    arch = bench_arch()

    # Build a deterministic trace of the streamcluster kernel (Table 2).
    trace = load_workload("streamcluster", arch, scale="small")
    print(f"workload: {trace.name}")
    print(f"  memory accesses : {trace.memory_accesses:,}")
    print(f"  instructions    : {trace.instructions:,}")
    print(f"  footprint       : {trace.footprint_lines():,} cache lines")
    print()

    # Baseline: plain directory protocol (the paper's PCT=1 anchor).
    base = Simulator(arch, baseline_protocol(), warmup=True).run(trace)
    # Adaptive: PCT=4, Limited_3 classifier, RATmax=16 - Table 1 defaults.
    adaptive = Simulator(arch, ProtocolConfig(pct=4), warmup=True).run(trace)

    def show(label, stats):
        print(f"{label}:")
        print(f"  completion time : {stats.completion_time:12,.0f} cycles")
        print(f"  dynamic energy  : {stats.energy.total / 1e3:12,.1f} nJ")
        print(f"  L1-D miss rate  : {100 * stats.miss.miss_rate:12.2f} %")
        print(f"  network flits   : {stats.network_flits:12,}")
        print(f"  remote accesses : {stats.remote_accesses:12,}")
        print()

    show("baseline (R-NUCA + ACKwise_4)", base)
    show("locality-aware adaptive (PCT=4)", adaptive)

    print("adaptive / baseline:")
    print(f"  completion time : {adaptive.completion_time / base.completion_time:.3f}")
    print(f"  energy          : {adaptive.energy.total / base.energy.total:.3f}")


if __name__ == "__main__":
    main()
