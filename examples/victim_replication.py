#!/usr/bin/env python3
"""Victim Replication vs the locality-aware protocol (paper Section 2.1).

Victim Replication (Zhang & Asanovic) turns the local L2 slice into a
victim cache for L1 evictions.  The paper's criticism: it replicates
*every* victim, "irrespective of whether [it] will be re-used in the
future".  This example runs one benchmark where blanket replication pays
off (a large read-mostly working set) and one where it backfires
(write-shared data), and shows the locality-aware protocol holding up on
both.

Run with::

    python examples/victim_replication.py
"""

from repro import Simulator, baseline_protocol, load_workload
from repro.common.params import ProtocolConfig, victim_replication_protocol
from repro.experiments.harness import bench_arch
from repro.viz import grouped_bar_chart

WORKLOADS = ("dijkstra-ap", "streamcluster")


def main() -> None:
    arch = bench_arch()
    protocols = {
        "baseline": baseline_protocol(),
        "victim-repl": victim_replication_protocol(),
        "adaptive": ProtocolConfig(pct=4),
    }

    time_ratio: dict[str, list[float]] = {name: [] for name in protocols}
    energy_ratio: dict[str, list[float]] = {name: [] for name in protocols}

    for workload in WORKLOADS:
        trace = load_workload(workload, arch, scale="small")
        print(f"=== {workload} ({trace.memory_accesses:,} accesses) ===")
        base_stats = None
        for name, proto in protocols.items():
            stats = Simulator(arch, proto, warmup=True).run(trace)
            if base_stats is None:
                base_stats = stats
            t = stats.completion_time / base_stats.completion_time
            e = stats.energy.total / base_stats.energy.total
            time_ratio[name].append(t)
            energy_ratio[name].append(e)
            extra = ""
            if proto.protocol == "victim":
                hit_pct = 100 * stats.replica_hits / max(1, stats.replicas_created)
                extra = (
                    f"  replicas={stats.replicas_created:,}"
                    f" hits={stats.replica_hits:,} ({hit_pct:.0f}% re-used)"
                    f" invalidated={stats.replica_invalidations:,}"
                )
            print(f"  {name:<12} time x{t:.3f}  energy x{e:.3f}{extra}")
        print()

    print(grouped_bar_chart(
        list(WORKLOADS), time_ratio, width=36,
        title="Completion time (normalized to baseline; shorter is better)",
    ))
    print()
    print(grouped_bar_chart(
        list(WORKLOADS), energy_ratio, width=36,
        title="Dynamic energy (normalized to baseline; shorter is better)",
    ))
    print()
    print(
        "Victim replication is a gamble on victim re-use; the locality-aware\n"
        "protocol instead measures per-line locality and only keeps data\n"
        "close when the measurements justify it."
    )


if __name__ == "__main__":
    main()
