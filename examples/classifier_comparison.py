#!/usr/bin/env python3
"""Compare locality-classifier organizations on one workload.

Reproduces the Section 5.3/5.4 comparisons in miniature: the Complete
classifier (per-core state at every directory entry, 192KB/core) vs
Limited_k (k tracked cores + majority vote, 18KB/core at k=3) vs the
Adapt1-way ablation (no re-promotion).

Run with::

    python examples/classifier_comparison.py [workload]
"""

import sys

from repro.experiments.harness import ExperimentRunner, adaptive_protocol
from repro.experiments.storage import storage_report
from repro.common.params import ArchConfig, ProtocolConfig


def main(workload: str) -> None:
    runner = ExperimentRunner(workloads=(workload,))
    configs = [
        ("Complete", adaptive_protocol(classifier="complete")),
        ("Limited_1", adaptive_protocol(classifier="limited", limited_k=1)),
        ("Limited_3", adaptive_protocol(classifier="limited", limited_k=3)),
        ("Limited_7", adaptive_protocol(classifier="limited", limited_k=7)),
        ("Adapt1-way", adaptive_protocol(one_way=True)),
    ]
    print(f"workload: {workload}\n")
    print(f"{'classifier':<12}{'time':>12}{'energy (nJ)':>14}{'promos':>8}"
          f"{'demos':>8}{'storage/core':>14}")
    for label, proto in configs:
        stats = runner.run(workload, proto)
        report = storage_report(ArchConfig(), proto)
        print(f"{label:<12}{stats.completion_time:12,.0f}"
              f"{stats.energy.total / 1e3:14,.1f}{stats.promotions:8,}"
              f"{stats.demotions:8,}{report.classifier_kb:11.1f} KB")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "streamcluster")
