#!/usr/bin/env python3
"""Sweep the Private Caching Threshold on a few benchmarks (Figure 11 style).

Shows the characteristic U-shape: small PCT leaves low-locality lines in the
private caches; large PCT demotes well-utilized lines and pays word-miss
round-trips instead.

Run with::

    python examples/pct_sweep.py [workload ...]
"""

import sys

from repro.common.statsutil import geomean
from repro.experiments.harness import ExperimentRunner, protocol_for_pct

DEFAULT_WORKLOADS = ("streamcluster", "blackscholes", "lu-nc", "water-sp")
PCTS = (1, 2, 3, 4, 6, 8, 12, 16)


def main(workloads) -> None:
    runner = ExperimentRunner(workloads=tuple(workloads))
    print(f"{'pct':>4} | " + " | ".join(f"{name:>22}" for name in workloads)
          + f" | {'geomean':>15}")
    print(f"{'':>4} | " + " | ".join(f"{'time':>10} {'energy':>11}" for _ in workloads)
          + f" | {'time':>7} {'energy':>7}")
    anchors = {name: runner.run(name, protocol_for_pct(1)) for name in workloads}
    for pct in PCTS:
        cells = []
        tratios, eratios = [], []
        for name in workloads:
            stats = runner.run(name, protocol_for_pct(pct))
            t = stats.completion_time / anchors[name].completion_time
            e = stats.energy.total / anchors[name].energy.total
            tratios.append(t)
            eratios.append(e)
            cells.append(f"{t:10.3f} {e:11.3f}")
        print(f"{pct:>4} | " + " | ".join(cells)
              + f" | {geomean(tratios):7.3f} {geomean(eratios):7.3f}")


if __name__ == "__main__":
    main(sys.argv[1:] or DEFAULT_WORKLOADS)
