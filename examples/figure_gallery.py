#!/usr/bin/env python3
"""Render the paper's headline figures as terminal charts.

Runs a reduced sweep (16 cores, tiny problem sizes, a benchmark subset) so
the whole gallery takes about a minute, then draws:

* Figure 11 - the PCT U-curve (geomean completion time & energy);
* Figure 8  - per-benchmark energy stacks at PCT 1 vs 4;
* Figure 10 - the miss-mix shift (capacity/sharing -> word) vs PCT;
* Figure 14 - Adapt1-way vs Adapt2-way grouped bars.

For publication-fidelity tables use the benchmark harness
(``pytest benchmarks/ --benchmark-only``) or the CLI
(``repro-experiments --figure 11``).

Run with::

    python examples/figure_gallery.py
"""

from repro.common.types import MissType
from repro.experiments.figures import (
    figure8_energy,
    figure10_miss_breakdown,
    figure11_geomean_sweep,
    figure14_one_way,
)
from repro.experiments.harness import ExperimentRunner, bench_arch
from repro.viz import grouped_bar_chart, line_chart, stacked_bar_chart

WORKLOADS = ("streamcluster", "dijkstra-ss", "blackscholes", "lu-nc", "water-sp")
PCTS = (1, 2, 3, 4, 6, 8, 12, 16)


def main() -> None:
    runner = ExperimentRunner(arch=bench_arch(16), scale="tiny", workloads=WORKLOADS)

    # ------------------------------------------------------------- Fig 11
    fig11 = figure11_geomean_sweep(runner, pcts=PCTS)
    series = fig11.data["series"]
    print(line_chart(
        list(PCTS),
        {
            "completion": [series[p][0] for p in PCTS],
            "energy": [series[p][1] for p in PCTS],
        },
        width=56, height=14,
        title="Figure 11 - geomean vs PCT (normalized to PCT=1)",
    ))
    print(f"\nbest combined PCT on this subset: {fig11.data['best_pct']}\n")

    # ------------------------------------------------------------- Fig 8
    fig8 = figure8_energy(runner, pcts=(1, 4))
    components = ("l1i", "l1d", "l2", "directory", "router", "link")
    labels, stacks = [], {c: [] for c in components}
    for name in WORKLOADS:
        for pct in (1, 4):
            labels.append(f"{name[:10]}@{pct}")
            for c in components:
                stacks[c].append(fig8.data[name][pct][c])
    print(stacked_bar_chart(
        labels, stacks, width=44,
        title="Figure 8 - energy stacks, PCT 1 vs 4 (each pair normalized to its PCT=1)",
    ))
    print()

    # ------------------------------------------------------------- Fig 10
    fig10 = figure10_miss_breakdown(runner, pcts=(1, 4, 8))
    mixes = {mt.name.lower(): [] for mt in MissType}
    mix_labels = []
    for pct in (1, 4, 8):
        mix_labels.append(f"PCT={pct}")
        for mt in MissType:
            key = mt.name.lower()
            total = sum(fig10.data[n][pct][key] for n in WORKLOADS)
            mixes[key].append(total)
    print(stacked_bar_chart(
        mix_labels, mixes, width=44,
        title="Figure 10 - aggregate miss mix vs PCT (capacity/sharing -> word)",
    ))
    print()

    # ------------------------------------------------------------- Fig 14
    fig14 = figure14_one_way(runner)
    names = [n for n in fig14.data if n != "geomean"]
    print(grouped_bar_chart(
        names,
        {
            "time ratio": [fig14.data[n][0] for n in names],
            "energy ratio": [fig14.data[n][1] for n in names],
        },
        width=36,
        title="Figure 14 - Adapt1-way / Adapt2-way (higher = 2-way transitions matter)",
    ))


if __name__ == "__main__":
    main()
