"""The public API surface: importable, documented, and sufficient for the
README quickstart without reaching into submodules."""

from __future__ import annotations

import pytest

import repro


class TestSurface:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_semver(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_public_callables_have_docstrings(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj):
                assert obj.__doc__, f"{name} lacks a docstring"


class TestQuickstartContract:
    def test_readme_quickstart_runs(self):
        arch = repro.ArchConfig(num_cores=16, num_memory_controllers=4)
        trace = repro.load_workload("water-sp", arch, scale="tiny")
        sim = repro.Simulator(arch, repro.ProtocolConfig(pct=4))
        stats = sim.run(trace)
        assert stats.completion_time > 0
        assert stats.energy.total > 0

    def test_six_protocol_families_constructible(self):
        assert repro.baseline_protocol().protocol == "baseline"
        assert repro.ProtocolConfig(pct=4).protocol == "adaptive"
        assert repro.victim_replication_protocol().protocol == "victim"
        assert repro.dls_protocol().protocol == "dls"
        assert repro.neat_protocol().protocol == "neat"
        assert repro.phase_protocol().protocol == "phase"
        # The directoryless families resolve to directory="none"; phase
        # keeps a directory (it is a directory protocol with phase service).
        assert repro.dls_protocol().directory == "none"
        assert repro.neat_protocol().directory == "none"
        assert repro.phase_protocol().directory == "ackwise"

    def test_trace_io_round_trip_via_top_level(self, tmp_path):
        arch = repro.ArchConfig(num_cores=16, num_memory_controllers=4)
        trace = repro.load_workload("tsp", arch, scale="tiny")
        path = tmp_path / "t.traceb"
        repro.save_trace(trace, path)
        again = repro.load_trace(path)
        assert again.name == trace.name
        assert again.total_records == trace.total_records

    def test_workload_names_match_table2_count(self):
        assert len(repro.WORKLOAD_NAMES) == 21
