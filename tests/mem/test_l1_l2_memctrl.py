"""L1 cache, L2 slice and memory-controller tests."""

import pytest

from repro.common.params import ArchConfig, CacheGeometry
from repro.common.types import MESIState
from repro.mem.golden import GoldenMemory
from repro.mem.l1 import L1Cache
from repro.mem.l2 import L2Slice
from repro.mem.memctrl import MemoryController, MemorySubsystem
from repro.common.errors import CoherenceError


class TestL1Cache:
    @pytest.fixture
    def l1(self):
        return L1Cache(CacheGeometry(1, 2, 1))

    def test_fill_initializes_utilization_to_one(self, l1):
        l1.fill(0, MESIState.SHARED, now=5.0)
        entry = l1.lookup(0)
        assert entry.utilization == 1
        assert entry.last_access == 5.0

    def test_hit_increments_utilization(self, l1):
        l1.fill(0, MESIState.SHARED, now=1.0)
        entry = l1.lookup(0)
        l1.hit(entry, now=2.0)
        l1.hit(entry, now=3.0)
        assert entry.utilization == 3
        assert entry.last_access == 3.0
        assert l1.hits == 2

    def test_fill_returns_victim_with_utilization(self, l1):
        l1.fill(0, MESIState.SHARED, now=1.0)
        l1.fill(8, MESIState.SHARED, now=2.0)
        evicted = l1.fill(16, MESIState.SHARED, now=3.0)
        assert evicted is not None
        line, entry = evicted
        assert line == 0
        assert entry.utilization == 1

    def test_invalid_way_hint(self, l1):
        assert l1.has_invalid_way(0)
        l1.fill(0, MESIState.SHARED, 0.0)
        l1.fill(8, MESIState.SHARED, 0.0)
        assert not l1.has_invalid_way(0)
        assert l1.min_set_last_access(0) == 0.0

    def test_remove(self, l1):
        l1.fill(0, MESIState.MODIFIED, 0.0)
        entry = l1.remove(0)
        assert entry.state is MESIState.MODIFIED
        assert l1.lookup(0) is None

    def test_keep_data(self):
        l1 = L1Cache(CacheGeometry(1, 2, 1), keep_data=True)
        l1.fill(0, MESIState.SHARED, 0.0, data=[1, 2, 3, 4, 5, 6, 7, 8])
        assert l1.lookup(0).data == [1, 2, 3, 4, 5, 6, 7, 8]

    def test_miss_rate(self, l1):
        l1.misses = 3
        l1.fill(0, MESIState.SHARED, 0.0)
        l1.hit(l1.lookup(0), 1.0)
        assert l1.miss_rate() == pytest.approx(3 / 4)


class TestL2Slice:
    @pytest.fixture
    def l2(self):
        return L2Slice(CacheGeometry(4, 4, 7))

    def test_fill_and_lookup(self, l2):
        assert l2.fill(100, now=1.0) is None
        entry = l2.lookup(100)
        assert entry is not None
        assert entry.last_access == 1.0
        assert not entry.dirty

    def test_touch_updates_timestamp(self, l2):
        l2.fill(100, now=1.0)
        entry = l2.lookup(100)
        l2.touch(entry, now=9.0)
        assert entry.last_access == 9.0

    def test_busy_until_default(self, l2):
        l2.fill(0, now=0.0)
        assert l2.lookup(0).busy_until == 0.0

    def test_victim_preview(self, l2):
        geometry = l2.geometry
        set_span = geometry.num_sets
        for i in range(geometry.associativity):
            l2.fill(i * set_span, now=float(i))
        assert l2.victim(geometry.associativity * set_span) is not None


class TestMemoryController:
    @pytest.fixture
    def arch(self):
        return ArchConfig(num_cores=16, num_memory_controllers=4)

    def test_uncontended_access(self, arch):
        ctrl = MemoryController(arch, tile=0)
        finish, queue = ctrl.access(0.0, 64)
        assert queue == 0.0
        # 100-cycle latency + 64B / 5 B-per-cycle transfer.
        assert finish == pytest.approx(100 + 64 / 5.0)

    def test_bandwidth_queueing(self, arch):
        ctrl = MemoryController(arch, tile=0)
        ctrl.access(0.0, 64)
        _, queue = ctrl.access(0.0, 64)
        assert queue == pytest.approx(64 / 5.0)

    def test_queue_drains(self, arch):
        ctrl = MemoryController(arch, tile=0)
        ctrl.access(0.0, 64)
        _, queue = ctrl.access(1000.0, 64)
        assert queue == 0.0

    def test_stats(self, arch):
        ctrl = MemoryController(arch, tile=0)
        ctrl.access(0.0, 64)
        ctrl.access(0.0, 64)
        assert ctrl.requests == 2
        assert ctrl.bytes_transferred == 128
        assert ctrl.total_queue_delay > 0.0

    def test_subsystem_mapping(self, arch):
        mem = MemorySubsystem(arch)
        assert len(mem.controllers) == 4
        ctrl = mem.controller_for_line(12345)
        assert ctrl is mem.controllers[arch.controller_for_line(12345)]


class TestGoldenMemory:
    def test_untouched_reads_zero(self):
        golden = GoldenMemory()
        assert golden.read_word(10, 3) == 0
        assert golden.line_snapshot(10) == [0] * 8

    def test_write_then_read(self):
        golden = GoldenMemory()
        golden.write_word(10, 3, 42)
        assert golden.read_word(10, 3) == 42
        assert golden.line_snapshot(10)[3] == 42

    def test_check_read_passes(self):
        golden = GoldenMemory()
        golden.write_word(1, 0, 7)
        golden.check_read(1, 0, 7, "test")

    def test_check_read_raises_on_mismatch(self):
        golden = GoldenMemory()
        golden.write_word(1, 0, 7)
        with pytest.raises(CoherenceError):
            golden.check_read(1, 0, 8, "test")

    def test_check_line_raises_on_divergence(self):
        golden = GoldenMemory()
        golden.write_word(1, 0, 7)
        with pytest.raises(CoherenceError):
            golden.check_line(1, [0] * 8, "test")
        golden.check_line(1, [7, 0, 0, 0, 0, 0, 0, 0], "test")
