"""Direct tests for the golden reference memory (verify-mode backbone)."""

from __future__ import annotations

import pytest

from repro.common.errors import CoherenceError
from repro.mem.golden import GoldenMemory


class TestReadsAndWrites:
    def test_untouched_memory_reads_zero(self):
        golden = GoldenMemory()
        assert golden.read_word(0x100, 3) == 0
        golden.check_read(0x100, 3, 0, "cold read")  # must not raise

    def test_write_then_read_round_trips(self):
        golden = GoldenMemory()
        golden.write_word(7, 2, 42)
        assert golden.read_word(7, 2) == 42
        golden.check_read(7, 2, 42, "ok")

    def test_writes_to_different_words_independent(self):
        golden = GoldenMemory()
        golden.write_word(7, 0, 1)
        golden.write_word(7, 1, 2)
        assert golden.line_snapshot(7) == [1, 2, 0, 0, 0, 0, 0, 0]

    def test_line_snapshot_is_a_copy(self):
        golden = GoldenMemory()
        golden.write_word(7, 0, 1)
        snapshot = golden.line_snapshot(7)
        snapshot[0] = 999
        assert golden.read_word(7, 0) == 1


class TestCorruptionDetection:
    def test_stale_read_raises_with_context(self):
        golden = GoldenMemory()
        golden.write_word(7, 2, 42)
        with pytest.raises(CoherenceError, match="L1 hit core 3"):
            golden.check_read(7, 2, 41, "L1 hit core 3")

    def test_lost_write_detected_at_line_check(self):
        golden = GoldenMemory()
        golden.write_word(9, 0, 5)
        with pytest.raises(CoherenceError):
            golden.check_line(9, [0] * 8, "L2 eviction")

    def test_matching_line_check_passes(self):
        golden = GoldenMemory()
        golden.write_word(9, 0, 5)
        expected = golden.line_snapshot(9)
        golden.check_line(9, expected, "L2 eviction")
