"""Set-associative cache tests, including an LRU reference model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.params import CacheGeometry
from repro.common.types import MESIState
from repro.mem.cache import CacheLine, SetAssocCache


@pytest.fixture
def cache():
    # 1KB, 2-way, 64B lines -> 16 lines, 8 sets.
    return SetAssocCache(CacheGeometry(1, 2, 1))


def _line(state=MESIState.SHARED):
    return CacheLine(state)


class TestBasics:
    def test_miss_returns_none(self, cache):
        assert cache.get(123) is None

    def test_insert_then_get(self, cache):
        entry = _line()
        assert cache.insert(5, entry) is None
        assert cache.get(5) is entry

    def test_same_set_mapping(self, cache):
        # Lines 0 and 8 map to set 0 (8 sets).
        assert cache.set_index(0) == cache.set_index(8)
        assert cache.set_index(0) != cache.set_index(1)

    def test_free_way_tracking(self, cache):
        assert cache.has_free_way(0)
        cache.insert(0, _line())
        assert cache.has_free_way(0)
        cache.insert(8, _line())
        assert not cache.has_free_way(0)
        assert cache.has_free_way(1)  # other sets unaffected

    def test_eviction_on_full_set(self, cache):
        first = _line()
        cache.insert(0, first)
        cache.insert(8, _line())
        evicted = cache.insert(16, _line())
        assert evicted is not None
        evicted_line, evicted_entry = evicted
        assert evicted_line == 0  # LRU: the oldest insert
        assert evicted_entry is first
        assert cache.get(0) is None

    def test_touch_protects_from_eviction(self, cache):
        first = _line()
        cache.insert(0, first)
        cache.insert(8, _line())
        cache.touch(first)  # 0 becomes MRU
        evicted_line, _ = cache.insert(16, _line())
        assert evicted_line == 8

    def test_reinsert_same_line_does_not_evict(self, cache):
        cache.insert(0, _line())
        cache.insert(8, _line())
        assert cache.insert(0, _line()) is None

    def test_pop(self, cache):
        entry = _line()
        cache.insert(3, entry)
        assert cache.pop(3) is entry
        assert cache.pop(3) is None
        assert cache.has_free_way(3)

    def test_victim_preview_matches_insert(self, cache):
        cache.insert(0, _line())
        cache.insert(8, _line())
        preview = cache.victim(16)
        actual = cache.insert(16, _line())
        assert preview[0] == actual[0]

    def test_occupancy_and_lines(self, cache):
        cache.insert(0, _line())
        cache.insert(1, _line())
        assert cache.occupancy() == 2
        assert {line for line, _ in cache.lines()} == {0, 1}

    def test_clear(self, cache):
        cache.insert(0, _line())
        cache.clear()
        assert cache.occupancy() == 0


class TestMinLastAccess:
    def test_none_with_free_way(self, cache):
        cache.insert(0, _line())
        assert cache.min_last_access(0) is None

    def test_min_over_full_set(self, cache):
        a, b = _line(), _line()
        a.last_access, b.last_access = 10.0, 4.0
        cache.insert(0, a)
        cache.insert(8, b)
        assert cache.min_last_access(0) == 4.0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=31), min_size=1, max_size=200))
def test_lru_matches_reference_model(accesses):
    """The cache must behave exactly like a per-set LRU reference model."""
    geometry = CacheGeometry(1, 2, 1)  # 8 sets, 2 ways
    cache = SetAssocCache(geometry)
    reference: dict[int, list[int]] = {}  # set -> lines in LRU order (front = LRU)

    for line in accesses:
        set_index = line & geometry.set_mask
        order = reference.setdefault(set_index, [])
        entry = cache.get(line)
        if entry is not None:
            cache.touch(entry)
            order.remove(line)
            order.append(line)
        else:
            if len(order) == geometry.associativity:
                expected_victim = order.pop(0)
                evicted = cache.insert(line, CacheLine(MESIState.SHARED))
                assert evicted is not None and evicted[0] == expected_victim
            else:
                assert cache.insert(line, CacheLine(MESIState.SHARED)) is None
            order.append(line)

    for set_index, order in reference.items():
        resident = {ln for ln, _ in cache.lines() if ln & geometry.set_mask == set_index}
        assert resident == set(order)
