"""DLS engine tests: directoryless word-granularity service at the home."""

from __future__ import annotations

from repro.common.params import dls_protocol
from repro.common.types import MESIState, MissType
from repro.coherence.directory import NullSharerPolicy
from repro.protocol.dls import DLSEngine
from tests.protocol.test_engine import BASE, LINE, WORD, share_page, small_arch


def make_dls_engine(verify: bool = True) -> DLSEngine:
    return DLSEngine(small_arch(), dls_protocol(), verify=verify)


class TestWordService:
    def test_every_access_is_a_miss(self):
        engine = make_dls_engine()
        for i in range(5):
            result = engine.access(0, False, BASE, 100.0 * i)
            assert not result.hit
            assert result.remote
        assert engine.miss_stats.hits == 0
        assert engine.miss_stats.misses == 5
        assert engine.miss_stats.miss_rate == 1.0

    def test_first_touch_cold_then_word(self):
        engine = make_dls_engine()
        assert engine.access(0, False, BASE, 0.0).miss_type is MissType.COLD
        assert engine.access(0, True, BASE, 100.0).miss_type is MissType.WORD
        assert engine.access(0, False, BASE, 200.0).miss_type is MissType.WORD

    def test_l1_never_fills(self):
        engine = make_dls_engine()
        engine.access(0, False, BASE, 0.0)
        engine.access(0, True, BASE, 100.0)
        assert engine.l1_state(0, BASE // LINE) is MESIState.INVALID
        assert all(l1.store.occupancy() == 0 for l1 in engine.l1d)

    def test_word_counters_at_home(self):
        engine = make_dls_engine()
        engine.access(0, False, BASE, 0.0)
        engine.access(1, True, BASE, 100.0)
        assert sum(s.word_reads for s in engine.l2) == 1
        assert sum(s.word_writes for s in engine.l2) == 1
        assert sum(s.line_reads for s in engine.l2) == 0


class TestDirectoryless:
    def test_no_directory_state(self):
        engine = make_dls_engine()
        engine.access(0, False, BASE, 0.0)
        engine.access(1, True, BASE, 100.0)
        assert engine.directory_entry(BASE // LINE) is None
        assert isinstance(engine.sharer_policy, NullSharerPolicy)
        assert engine.sharer_policy.storage_bits_per_entry() == 0

    def test_no_invalidation_traffic(self):
        """A write-read-write ping-pong costs exactly request + reply each."""
        engine = make_dls_engine()
        share_page(engine)  # pin R-NUCA's page classification first
        home = engine.placement.shared_word_home(BASE // LINE, 0)
        a, b = [c for c in range(12) if c != home][:2]  # off-home actors
        engine.access(a, True, BASE, 100.0)  # cold fill happens here
        before = engine.network.messages_sent
        engine.access(b, False, BASE, 500.0)
        engine.access(a, True, BASE, 1000.0)
        assert engine.network.messages_sent - before == 4
        assert engine.inval_histogram.total == 0

    def test_config_normalizes_directory_to_none(self):
        assert dls_protocol().directory == "none"


class TestWordInterleaving:
    """Pin the DLS LLC interleaving function (ROADMAP fidelity fix)."""

    def test_interleaving_function_is_round_robin_over_words(self):
        engine = make_dls_engine()
        placement = engine.placement
        num_cores = engine.arch.num_cores
        wpl = engine.arch.words_per_line
        for line in (0, 1, 17, BASE // LINE, BASE // LINE + 3):
            for word in range(wpl):
                assert placement.shared_word_home(line, word) == (
                    (line * wpl + word) % num_cores
                )

    def test_consecutive_words_stripe_across_consecutive_slices(self):
        engine = make_dls_engine()
        line = BASE // LINE
        homes = [engine.placement.shared_word_home(line, w) for w in range(8)]
        first = homes[0]
        assert homes == [(first + i) % engine.arch.num_cores for i in range(8)]
        # The next line continues the stripe where this one left off.
        assert engine.placement.shared_word_home(line + 1, 0) == (
            (first + 8) % engine.arch.num_cores
        )

    def test_shared_accesses_route_to_per_word_homes(self):
        """Two words of one shared line are serviced at different slices."""
        engine = make_dls_engine()
        share_page(engine)
        line = BASE // LINE
        h0 = engine.placement.shared_word_home(line, 0)
        h3 = engine.placement.shared_word_home(line, 3)
        assert h0 != h3
        engine.access(0, True, BASE, 100.0)
        engine.access(1, True, BASE + 3 * WORD, 200.0)
        assert engine.l2[h0].word_writes == 1
        assert engine.l2[h3].word_writes == 1
        # Each word home keeps its own copy of the line.
        assert engine.l2[h0].lookup(line) is not None
        assert engine.l2[h3].lookup(line) is not None

    def test_private_pages_stay_at_owner_for_every_word(self):
        engine = make_dls_engine()
        for word in range(8):
            engine.access(5, True, BASE + word * WORD, 100.0 * word)
        assert engine.l2[5].word_writes == 8
        assert sum(s.word_writes for s in engine.l2) == 8

    def test_word_masked_writeback_preserves_golden_memory(self):
        """Evicting one word home must not clobber words homed elsewhere."""
        engine = make_dls_engine(verify=True)
        share_page(engine)
        line = BASE // LINE
        engine.access(0, True, BASE, 100.0)  # word 0 at its home
        engine.access(1, True, BASE + 3 * WORD, 200.0)  # word 3 elsewhere
        h0 = engine.placement.shared_word_home(line, 0)
        ventry = engine.l2[h0].lookup(line)
        assert ventry is not None and ventry.dirty
        # Force the word-0 home to evict its copy; word 3's value must
        # survive in the assembled final image.
        engine._evict_l2_line(h0, line, ventry, 1000.0)
        engine.l2[h0].remove(line)
        engine.check_final_state()

    def test_dirty_word_mask_is_per_slice(self):
        """A slice masks exactly the words it serviced writes for - never
        words homed at other slices (its images of those may be stale)."""
        engine = make_dls_engine(verify=True)
        share_page(engine)
        line = BASE // LINE
        engine.access(0, True, BASE, 100.0)
        engine.access(1, True, BASE + 3 * WORD, 200.0)
        h0 = engine.placement.shared_word_home(line, 0)
        h3 = engine.placement.shared_word_home(line, 3)
        assert engine.l2[h0].lookup(line).dirty_words == 1 << 0
        assert engine.l2[h3].lookup(line).dirty_words == 1 << 3

    def test_disjoint_dirty_evictions_merge_in_either_order(self):
        """Two cores dirty disjoint words at two word homes; evicting the
        homes in EITHER order must merge both words into the DRAM image
        (the per-word write-back masking audit, ISSUE 7 satellite)."""
        line = BASE // LINE
        for first_word in (0, 3):
            engine = make_dls_engine(verify=True)
            share_page(engine)
            engine.access(0, True, BASE, 100.0)  # core 0 dirties word 0
            engine.access(1, True, BASE + 3 * WORD, 200.0)  # core 1, word 3
            homes = {
                w: engine.placement.shared_word_home(line, w) for w in (0, 3)
            }
            order = [homes[first_word], homes[3 - first_word]]
            for t, home in zip((1000.0, 2000.0), order):
                ventry = engine.l2[home].lookup(line)
                assert ventry is not None and ventry.dirty
                engine._evict_l2_line(home, line, ventry, t)
                engine.l2[home].remove(line)
            golden = engine.golden.line_snapshot(line)
            image = engine._dram_image[line]
            assert image[0] == golden[0] != 0
            assert image[3] == golden[3] != 0
            engine.check_final_state()


class TestVerifiedData:
    def test_write_read_roundtrip_under_golden(self):
        engine = make_dls_engine(verify=True)
        engine.access(0, True, BASE, 0.0)
        engine.access(1, False, BASE, 100.0)  # golden check inside
        engine.access(2, True, BASE + 8, 200.0)
        engine.access(3, False, BASE + 8, 300.0)
        engine.check_final_state()

    def test_serialization_on_same_line(self):
        """Back-to-back writes to one line pay L2 waiting time."""
        engine = make_dls_engine()
        share_page(engine)  # pin the home so no mid-test page transition
        engine.access(0, True, BASE, 100.0)
        result = engine.access(1, True, BASE, 100.0)
        assert result.l2_waiting > 0
