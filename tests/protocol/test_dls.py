"""DLS engine tests: directoryless word-granularity service at the home."""

from __future__ import annotations

from repro.common.params import dls_protocol
from repro.common.types import MESIState, MissType
from repro.coherence.directory import NullSharerPolicy
from repro.protocol.dls import DLSEngine
from tests.protocol.test_engine import BASE, LINE, share_page, small_arch


def make_dls_engine(verify: bool = True) -> DLSEngine:
    return DLSEngine(small_arch(), dls_protocol(), verify=verify)


class TestWordService:
    def test_every_access_is_a_miss(self):
        engine = make_dls_engine()
        for i in range(5):
            result = engine.access(0, False, BASE, 100.0 * i)
            assert not result.hit
            assert result.remote
        assert engine.miss_stats.hits == 0
        assert engine.miss_stats.misses == 5
        assert engine.miss_stats.miss_rate == 1.0

    def test_first_touch_cold_then_word(self):
        engine = make_dls_engine()
        assert engine.access(0, False, BASE, 0.0).miss_type is MissType.COLD
        assert engine.access(0, True, BASE, 100.0).miss_type is MissType.WORD
        assert engine.access(0, False, BASE, 200.0).miss_type is MissType.WORD

    def test_l1_never_fills(self):
        engine = make_dls_engine()
        engine.access(0, False, BASE, 0.0)
        engine.access(0, True, BASE, 100.0)
        assert engine.l1_state(0, BASE // LINE) is MESIState.INVALID
        assert all(l1.store.occupancy() == 0 for l1 in engine.l1d)

    def test_word_counters_at_home(self):
        engine = make_dls_engine()
        engine.access(0, False, BASE, 0.0)
        engine.access(1, True, BASE, 100.0)
        assert sum(s.word_reads for s in engine.l2) == 1
        assert sum(s.word_writes for s in engine.l2) == 1
        assert sum(s.line_reads for s in engine.l2) == 0


class TestDirectoryless:
    def test_no_directory_state(self):
        engine = make_dls_engine()
        engine.access(0, False, BASE, 0.0)
        engine.access(1, True, BASE, 100.0)
        assert engine.directory_entry(BASE // LINE) is None
        assert isinstance(engine.sharer_policy, NullSharerPolicy)
        assert engine.sharer_policy.storage_bits_per_entry() == 0

    def test_no_invalidation_traffic(self):
        """A write-read-write ping-pong costs exactly request + reply each."""
        engine = make_dls_engine()
        share_page(engine)  # pin R-NUCA's page classification first
        home = engine.placement.shared_home(BASE // LINE)
        a, b = [c for c in range(12) if c != home][:2]  # off-home actors
        engine.access(a, True, BASE, 100.0)  # cold fill happens here
        before = engine.network.messages_sent
        engine.access(b, False, BASE, 500.0)
        engine.access(a, True, BASE, 1000.0)
        assert engine.network.messages_sent - before == 4
        assert engine.inval_histogram.total == 0

    def test_config_normalizes_directory_to_none(self):
        assert dls_protocol().directory == "none"


class TestVerifiedData:
    def test_write_read_roundtrip_under_golden(self):
        engine = make_dls_engine(verify=True)
        engine.access(0, True, BASE, 0.0)
        engine.access(1, False, BASE, 100.0)  # golden check inside
        engine.access(2, True, BASE + 8, 200.0)
        engine.access(3, False, BASE + 8, 300.0)
        engine.check_final_state()

    def test_serialization_on_same_line(self):
        """Back-to-back writes to one line pay L2 waiting time."""
        engine = make_dls_engine()
        share_page(engine)  # pin the home so no mid-test page transition
        engine.access(0, True, BASE, 100.0)
        result = engine.access(1, True, BASE, 100.0)
        assert result.l2_waiting > 0
