"""Neat engine tests: write-through self-downgrade, version-checked
self-invalidation, and the absence of coherence traffic."""

from __future__ import annotations

from repro.common.params import neat_protocol
from repro.common.types import MESIState, MissType
from repro.coherence.directory import NullSharerPolicy
from repro.protocol.neat import NeatEngine
from tests.protocol.test_engine import BASE, LINE, small_arch


def make_neat_engine(verify: bool = True) -> NeatEngine:
    return NeatEngine(small_arch(), neat_protocol(), verify=verify)


class TestReadCaching:
    def test_read_miss_fills_shared_and_then_hits(self):
        engine = make_neat_engine()
        assert engine.access(0, False, BASE, 0.0).miss_type is MissType.COLD
        assert engine.l1_state(0, BASE // LINE) is MESIState.SHARED
        result = engine.access(0, False, BASE, 100.0)
        assert result.hit
        assert engine.miss_stats.hits == 1

    def test_read_shared_data_caches_on_every_core(self):
        engine = make_neat_engine()
        for core in range(4):
            engine.access(core, False, BASE, 100.0 * core)
        before = engine.miss_stats.misses
        for core in range(4):
            assert engine.access(core, False, BASE, 1000.0 + core).hit
        assert engine.miss_stats.misses == before


class TestSelfInvalidation:
    def test_remote_write_stales_other_copies(self):
        engine = make_neat_engine()
        engine.access(0, False, BASE, 0.0)  # core 0 caches the line
        engine.access(1, True, BASE, 500.0)  # core 1 writes through
        result = engine.access(0, False, BASE, 1000.0)
        assert not result.hit
        assert result.miss_type is MissType.SHARING
        assert engine.self_invalidations == 1

    def test_reload_after_self_invalidation_is_fresh(self):
        engine = make_neat_engine(verify=True)
        engine.access(0, False, BASE, 0.0)
        engine.access(1, True, BASE, 500.0)
        engine.access(0, False, BASE, 1000.0)  # golden check inside
        assert engine.access(0, False, BASE, 1500.0).hit  # fresh again
        engine.check_final_state()

    def test_writer_keeps_fresh_copy_valid(self):
        engine = make_neat_engine()
        engine.access(0, False, BASE, 0.0)  # fresh copy
        engine.access(0, True, BASE, 500.0)  # own write-through refreshes it
        assert engine.access(0, False, BASE, 1000.0).hit
        assert engine.self_invalidations == 0

    def test_writer_with_stale_copy_drops_it(self):
        engine = make_neat_engine(verify=True)
        engine.access(0, False, BASE, 0.0)  # core 0 caches
        engine.access(1, True, BASE + 8, 500.0)  # core 1 stales it (word 1)
        engine.access(0, True, BASE, 1000.0)  # core 0 writes word 0: stale copy dies
        assert engine.l1_state(0, BASE // LINE) is MESIState.INVALID
        assert engine.self_invalidations == 1
        # The reload must see BOTH writes (a one-word refresh would have
        # revalidated the stale sibling words).
        engine.access(0, False, BASE + 8, 1500.0)  # golden check inside
        engine.check_final_state()


class TestWriteThrough:
    def test_every_store_reaches_the_home(self):
        engine = make_neat_engine()
        for i in range(3):
            result = engine.access(0, True, BASE, 100.0 * i)
            assert not result.hit
            assert result.remote
        assert engine.write_throughs == 3
        assert sum(s.word_writes for s in engine.l2) == 3

    def test_store_misses_classified_cold_then_word(self):
        engine = make_neat_engine()
        assert engine.access(0, True, BASE, 0.0).miss_type is MissType.COLD
        assert engine.access(0, True, BASE, 100.0).miss_type is MissType.WORD


class TestNoCoherenceTraffic:
    def test_no_directory_state(self):
        engine = make_neat_engine()
        engine.access(0, False, BASE, 0.0)
        engine.access(1, True, BASE, 500.0)
        assert engine.directory_entry(BASE // LINE) is None
        assert isinstance(engine.sharer_policy, NullSharerPolicy)

    def test_remote_write_sends_no_invalidations(self):
        """The write costs request + ack even with three other sharers."""
        engine = make_neat_engine()
        for core in range(3):
            engine.access(core, False, BASE, 100.0 * core)
        before = engine.network.messages_sent
        engine.access(3, True, BASE, 1000.0)
        assert engine.network.messages_sent - before == 2

    def test_eviction_is_silent(self):
        engine = make_neat_engine()
        engine.access(0, False, BASE, 0.0)
        before = engine.network.messages_sent
        # Fill the 2-way set (lines 8 apart map to the same set) so BASE's
        # line is evicted.  The page is private, so the L1<->home traffic is
        # all same-tile; the only messages are the two DRAM fetch round
        # trips - and crucially no eviction notification.
        engine.access(0, False, BASE + 8 * LINE, 100.0)
        engine.access(0, False, BASE + 16 * LINE, 200.0)
        assert engine.l1_state(0, BASE // LINE) is MESIState.INVALID
        assert engine.network.messages_sent - before == 4
        assert engine.evict_histogram.total == 1


class TestWritePathSelfInvalidation:
    def test_reload_after_stale_writer_discard_is_sharing_miss(self):
        """The history INVAL bit must survive the write path's own update."""
        engine = make_neat_engine()
        engine.access(0, False, BASE, 0.0)  # core 0 caches
        engine.access(1, True, BASE, 500.0)  # core 1 stales it
        engine.access(0, True, BASE, 1000.0)  # core 0 writes: stale copy dies
        result = engine.access(0, False, BASE, 1500.0)
        assert result.miss_type is MissType.SHARING

    def test_write_to_fresh_held_copy_is_upgrade_miss(self):
        engine = make_neat_engine()
        engine.access(0, False, BASE, 0.0)  # fresh SHARED copy
        result = engine.access(0, True, BASE, 500.0)
        assert result.miss_type is MissType.UPGRADE

    def test_write_to_stale_held_copy_is_sharing_miss(self):
        engine = make_neat_engine()
        engine.access(0, False, BASE, 0.0)  # core 0 caches
        engine.access(1, True, BASE, 500.0)  # core 1 stales it
        result = engine.access(0, True, BASE, 1000.0)
        assert result.miss_type is MissType.SHARING
        assert engine.self_invalidations == 1
